//! `mmwave` — command-line driver for the simulator, the HAR prototype,
//! and the backdoor attack.
//!
//! ```text
//! mmwave capture [--activity push] [--distance 1.2] [--angle 0] [--trigger chest]
//! mmwave train   [--reps 2] [--epochs 20]
//! mmwave attack  [--rate 0.4] [--frames 8] [--scenario push-pull] [--smoke]
//!                [--resume <dir>]
//! mmwave demo    (smoke-scale end-to-end attack exercising every stage)
//! mmwave perf-check <results-dir> --baseline <dir> [--threshold 0.15]
//!                [--noise-ms 50] [--report-only]
//! mmwave chaos   [--dir <dir>] [--keep]   kill-and-resume crash matrix
//! mmwave campaign-init --dir <dir> [--preset demo|sweep]
//! mmwave worker  --dir <dir> [--ttl <secs>] [--poll-ms <ms>]
//!                [--worker-id <id>] [--shard <i/n>]
//! mmwave campaign-status <dir> [--ttl <secs>]
//! mmwave top <dir> [--ttl <secs>] [--factor 4.0] [--refresh-secs 2.0] [--once]
//!                [--json]
//! mmwave fleet-export <dir> [--out <dir>] [--ttl <secs>] [--factor 4.0]
//! mmwave dag-chaos [--dir <dir>] [--procs 3] [--keep]
//! mmwave serve   [--sessions 4] [--seconds 10] [--fps 10] [--seed 7]
//! mmwave serve-chaos [--cells clean,corrupt,...] [--seed 7]
//! mmwave loadgen [--sessions 8] [--seconds 5] [--fps 10] [--jitter 0.2]
//!                [--burst 1] [--seed 7] [--paced] [--out <dir>]
//!                [--poison-frac 0] [--profile <path>] [--fail-on-alarm]
//! mmwave profile [--out monitor_profile.json] [loadgen flags]
//! ```
//!
//! Global flags, accepted by every command:
//!
//! ```text
//! --log-level <error|warn|info|debug|trace>   stderr verbosity (default info)
//! --metrics-out <path>   stream every telemetry event to a JSON-lines file
//! --trace-out <path>     write a Chrome/Perfetto trace.json timeline
//! --quiet                suppress stderr diagnostics and the summary table
//! --workers <n>          worker threads for parallel stages (default: the
//!                        MMWAVE_WORKERS env var, else all cores; 1 = serial)
//! ```
//!
//! Results go to stdout; diagnostics go through the telemetry logger to
//! stderr. Every pipeline command ends with a stage-time summary table
//! (suppressed by `--quiet`).
//!
//! Everything runs at example scale by default; this is a demonstration
//! driver, not the benchmark harness (see `cargo bench -p mmwave-bench`).

use mmwave_har_backdoor::backdoor::experiment::{
    AttackSpec, ExperimentContext, ExperimentScale,
};
use mmwave_har_backdoor::backdoor::{AttackMetrics, AttackScenario, Campaign, PointOutcome};
use mmwave_har_backdoor::body::{
    Activity, ActivitySampler, Participant, SampleVariation, SiteId,
};
use mmwave_har_backdoor::har::dataset::{DatasetGenerator, DatasetSpec};
use mmwave_har_backdoor::har::{CnnLstm, PrototypeConfig, Trainer, TrainerConfig};
use mmwave_har_backdoor::radar::capture::{CaptureConfig, Capturer, TriggerPlan};
use mmwave_har_backdoor::radar::trigger::{Trigger, TriggerAttachment};
use mmwave_har_backdoor::radar::{Environment, Placement};
use mmwave_har_backdoor::serve;
use mmwave_har_backdoor::telemetry;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

const SCENARIOS: [&str; 4] = ["push-pull", "left-right", "push-right", "push-acw"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        print_usage();
        return ExitCode::FAILURE;
    };
    // Flag parsing and telemetry setup happen before the logger exists, so
    // their own errors fall back to bare stderr.
    let (opts, positionals) = match parse_flags(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            return ExitCode::FAILURE;
        }
    };
    if !positionals.is_empty()
        && command != "perf-check"
        && command != "campaign-status"
        && command != "top"
        && command != "fleet-export"
    {
        eprintln!("error: unexpected argument `{}`", positionals[0]);
        print_usage();
        return ExitCode::FAILURE;
    }
    let quiet = opts.contains_key("quiet");
    if let Err(e) = configure_telemetry(&opts, quiet) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = configure_workers(&opts) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let code = match command.as_str() {
        "capture" => capture(&opts),
        "train" => train(&opts),
        "attack" => attack(&opts),
        "demo" => demo(&opts),
        // The gate compares existing baseline files; it runs no pipeline,
        // so the stage-time summary below would only be noise.
        "perf-check" => return perf_check(&opts, &positionals),
        "chaos" => chaos(&opts),
        "campaign-init" => campaign_init(&opts),
        "worker" => worker_cmd(&opts),
        // Read-only inspector: takes no locks and runs no pipeline, so it
        // skips the stage-time summary like perf-check does.
        "campaign-status" => return campaign_status(&opts, &positionals),
        // Fleet observers: they aggregate other workers' telemetry, so
        // their own stage-time summary would only be noise.
        "top" => return top_cmd(&opts, &positionals),
        "fleet-export" => return fleet_export_cmd(&opts, &positionals),
        "serve" => serve_cmd(&opts),
        "serve-chaos" => serve_chaos_cmd(&opts),
        "loadgen" => loadgen_cmd(&opts),
        "profile" => profile_cmd(&opts),
        "dag-chaos" => dag_chaos(&opts),
        // Hidden helper: the small journaled campaign the chaos driver
        // kills and resumes (spawned via `current_exe`, not user-facing).
        "chaos-child" => chaos_child(&opts),
        "help" | "--help" | "-h" => {
            print_usage();
            return ExitCode::SUCCESS;
        }
        other => {
            telemetry::error!("unknown command `{other}`");
            print_usage();
            return ExitCode::FAILURE;
        }
    };
    // End of run: emit the Summary event, flush every sink, and show the
    // per-stage wall-time / throughput table.
    let table = telemetry::finish();
    if !quiet {
        println!("\n-- stage-time summary --");
        print!("{table}");
    }
    code
}

/// Builds the telemetry configuration from the global flags (`--log-level`,
/// `--metrics-out`, `--quiet`) with the `MMWAVE_*` environment variables as
/// fallback, and installs it.
fn configure_telemetry(opts: &HashMap<String, String>, quiet: bool) -> Result<(), String> {
    let disabled = std::env::var("MMWAVE_TELEMETRY")
        .map(|v| matches!(v.to_ascii_lowercase().as_str(), "off" | "0" | "false"))
        .unwrap_or(false);
    let stderr_verbosity = if quiet {
        None
    } else {
        let level = match opts.get("log-level") {
            Some(s) => s.parse::<telemetry::Level>()?,
            None => std::env::var("MMWAVE_LOG_LEVEL")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(telemetry::Level::Info),
        };
        Some(level)
    };
    let metrics_out = opts
        .get("metrics-out")
        .cloned()
        .or_else(|| std::env::var("MMWAVE_METRICS_OUT").ok())
        .filter(|s| !s.is_empty())
        .map(PathBuf::from);
    let trace_out = opts
        .get("trace-out")
        .cloned()
        .or_else(|| std::env::var("MMWAVE_TRACE_OUT").ok())
        .filter(|s| !s.is_empty())
        .map(PathBuf::from);
    let config =
        telemetry::TelemetryConfig { disabled, stderr_verbosity, metrics_out, trace_out };
    telemetry::configure(&config)
        .map_err(|e| format!("cannot open the metrics or trace file: {e}"))
}

/// Pins the `mmwave-exec` worker count from `--workers`. Without the flag
/// the pool resolves its own default (the `MMWAVE_WORKERS` environment
/// variable, else all available cores), so nothing needs configuring here.
/// Results are byte-identical for every worker count; the flag only trades
/// wall time for cores.
fn configure_workers(opts: &HashMap<String, String>) -> Result<(), String> {
    let Some(raw) = opts.get("workers") else {
        return Ok(());
    };
    let n: usize = raw
        .parse()
        .ok()
        .filter(|&n| n >= 1)
        .ok_or_else(|| format!("--workers needs a positive integer, got `{raw}`"))?;
    mmwave_har_backdoor::exec::configure_workers(n);
    Ok(())
}

fn print_usage() {
    eprintln!(
        "usage: mmwave <command> [flags]\n\
         \n\
         commands:\n\
           capture   simulate one radar capture and print its DRAI frames\n\
                     flags: --activity <push|pull|left|right|cw|acw>\n\
                            --distance <m> --angle <deg> --trigger <site>\n\
           train     generate a dataset and train the HAR prototype\n\
                     flags: --reps <n> --epochs <n>\n\
           attack    run an end-to-end backdoor experiment\n\
                     flags: --rate <0..1> --frames <n>\n\
                            --scenario <push-pull|left-right|push-right|push-acw>\n\
                            --smoke (tiny scale, default) | --fast (bench scale)\n\
                            --resume <dir> (journal the run; a re-run with the\n\
                                            same flags replays from the journal)\n\
           demo      smoke-scale end-to-end attack touching every pipeline\n\
                     stage (synthesis, DSP, SHAP, training, campaign)\n\
           perf-check <results-dir>  compare BENCH_*.json perf baselines\n\
                     against --baseline <dir>; nonzero exit on regression\n\
                     flags: --threshold <frac> (default 0.15)\n\
                            --noise-ms <ms> (default 50)\n\
                            --report-only (report regressions, exit 0)\n\
           chaos     kill-and-resume crash matrix: aborts a journaled\n\
                     campaign at every registered crash point, resumes it,\n\
                     and asserts the journal and report are byte-identical\n\
                     to an uninterrupted run; nonzero exit on any mismatch\n\
                     flags: --dir <dir> (work dir, default: a temp dir)\n\
                            --keep (keep per-point artifacts on success)\n\
           campaign-init  write a campaign DAG into a directory\n\
                     flags: --dir <dir> (required)\n\
                            --preset <demo|sweep> (default demo)\n\
           worker    claim and execute ready tasks of a campaign DAG in a\n\
                     loop until every task is done or failed; any number\n\
                     of workers may share one campaign directory\n\
                     flags: --dir <dir> (required)\n\
                            --ttl <secs> (stale-claim TTL, default\n\
                                          MMWAVE_CLAIM_TTL_SECS or 30)\n\
                            --poll-ms <ms> (idle poll, default 200)\n\
                            --worker-id <id> (default MMWAVE_WORKER_ID\n\
                                              or w<pid>)\n\
                            --shard <i/n> (prefer tasks hashing to shard i)\n\
           campaign-status <dir>  read-only campaign inspector: per-task\n\
                     state, live vs stale claims, dedupe hits; takes no\n\
                     locks, safe beside running workers\n\
                     flags: --ttl <secs> (staleness horizon)\n\
           top <dir> live fleet view: per-worker liveness from claim\n\
                     heartbeats and telemetry shards, campaign progress,\n\
                     merged hotspots, straggler/stall detection\n\
                     flags: --ttl <secs> --factor <f> (straggler\n\
                            multiplier, default 4.0)\n\
                            --refresh-secs <s> (default 2.0)\n\
                            --once (render once and exit; for CI)\n\
                            --json (one-shot machine-readable snapshot:\n\
                                    metrics + health + monitor sections;\n\
                                    schema in docs/observability.md)\n\
           fleet-export <dir>  merge every worker's telemetry shard into\n\
                     durable artifacts: fleet_metrics.json,\n\
                     fleet_health.json, and a stitched Perfetto\n\
                     fleet_trace.json with one lane per worker\n\
                     flags: --out <dir> (default <dir>/fleet/export)\n\
                            --ttl <secs> --factor <f>\n\
           dag-chaos multi-process crash matrix: N workers per cell, one\n\
                     killed at a named crash point; survivors must finish\n\
                     with a report byte-identical to an uninterrupted\n\
                     single-worker run; nonzero exit on any mismatch\n\
                     flags: --dir <dir> --procs <n> (default 3) --keep\n\
           serve     run the streaming inference service over a paced\n\
                     simulated multi-sensor feed, printing one line per\n\
                     verdict (activity, confidence, defense score,\n\
                     latency) and the closing frame accounting\n\
                     flags: --sessions <n> (default 4) --seconds <s>\n\
                            (default 10) --fps <f> --jitter <0..1>\n\
                            --burst <n> --seed <n>\n\
                     env:   MMWAVE_SERVE_CLIP_LEN / _RING_CAP /\n\
                            _READY_CAP / _BATCH_MAX / _SESSION_TTL /\n\
                            _MAX_GAP / _BREAKER_THRESHOLD /\n\
                            _BREAKER_COOLDOWN (see docs/serving.md)\n\
           serve-chaos  transport-fault matrix over the streaming\n\
                     service: each cell replays seeded traffic through\n\
                     one fault mix (corrupt, drop, dup, reorder, flap,\n\
                     overload, all) at 1 and 4 workers and must close\n\
                     the conservation ledger with bit-identical\n\
                     verdicts; nonzero exit on any failing cell\n\
                     flags: --cells <csv> (default: the full matrix)\n\
                            --seed <n> (default\n\
                                        MMWAVE_SERVE_CHAOS_SEED or 7)\n\
           loadgen   replay N seeded sensor streams against the service\n\
                     as fast as possible and write the throughput /\n\
                     latency report as a checksummed artifact plus a\n\
                     BENCH_loadgen.json baseline for perf-check;\n\
                     nonzero exit on any unaccounted frame\n\
                     flags: --sessions <n> (default 8) --seconds <s>\n\
                            (default 5) --fps <f> --jitter <0..1>\n\
                            --burst <n> --seed <n> --paced\n\
                            --out <dir> (default loadgen-results)\n\
                            --poison-frac <0..1> (fraction of sessions\n\
                                    streaming a worn physical trigger)\n\
                            --profile <path> (clean baseline from\n\
                                    `mmwave profile`; enables the\n\
                                    model-health monitor and writes\n\
                                    <out>/alerts.jsonl)\n\
                            --fail-on-alarm (nonzero exit if any\n\
                                    monitor alert fired)\n\
                     env:   MMWAVE_MONITOR_WINDOW / _SUSTAIN /\n\
                            _PSI_THR / _CONF_THR / _TAIL_THR /\n\
                            _SPIKE_THR (see docs/observability.md)\n\
           profile   capture the model-health reference baseline from\n\
                     a clean (poison-free by construction) loadgen run\n\
                     and save it as a checksummed artifact for\n\
                     `loadgen --profile` and the monitoring engine\n\
                     flags: --out <path> (default monitor_profile.json)\n\
                            plus the loadgen stream-shape flags\n\
         \n\
         global flags:\n\
           --log-level <error|warn|info|debug|trace>   stderr verbosity\n\
           --metrics-out <path>   write all telemetry events as JSON lines\n\
           --trace-out <path>     write a Chrome/Perfetto trace.json timeline\n\
           --quiet                suppress diagnostics and the summary table\n\
           --workers <n>          worker threads for parallel stages\n\
                                  (default: MMWAVE_WORKERS, else all cores)"
    );
}

fn parse_flags(args: &[String]) -> Result<(HashMap<String, String>, Vec<String>), String> {
    let mut out = HashMap::new();
    let mut positionals = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            positionals.push(flag.clone());
            continue;
        };
        if name == "smoke"
            || name == "fast"
            || name == "quiet"
            || name == "report-only"
            || name == "keep"
            || name == "once"
            || name == "paced"
            || name == "fail-on-alarm"
            || name == "json"
        {
            out.insert(name.to_string(), "true".to_string());
            continue;
        }
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        out.insert(name.to_string(), value.clone());
    }
    Ok((out, positionals))
}

fn parse_activity(s: &str) -> Option<Activity> {
    match s {
        "push" => Some(Activity::Push),
        "pull" => Some(Activity::Pull),
        "left" => Some(Activity::LeftSwipe),
        "right" => Some(Activity::RightSwipe),
        "cw" => Some(Activity::Clockwise),
        "acw" => Some(Activity::Anticlockwise),
        _ => None,
    }
}

fn site_labels() -> String {
    SiteId::ALL
        .iter()
        .map(|s| s.label().replace(' ', "-"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn parse_site(s: &str) -> Option<SiteId> {
    SiteId::ALL.iter().copied().find(|site| {
        site.label().replace(' ', "-") == s || site.label() == s
    })
}

fn capture(opts: &HashMap<String, String>) -> ExitCode {
    let activity = opts
        .get("activity")
        .map(|s| parse_activity(s).ok_or_else(|| format!("unknown activity `{s}`")))
        .transpose();
    let activity = match activity {
        Ok(a) => a.unwrap_or(Activity::Push),
        Err(e) => {
            telemetry::error!("{e} (expected push|pull|left|right|cw|acw)");
            return ExitCode::FAILURE;
        }
    };
    let distance: f64 = opts.get("distance").and_then(|s| s.parse().ok()).unwrap_or(1.2);
    let angle: f64 = opts.get("angle").and_then(|s| s.parse().ok()).unwrap_or(0.0);
    let trigger_site = opts.get("trigger").map(|s| {
        parse_site(s).unwrap_or_else(|| {
            telemetry::warn!(
                "unknown trigger site `{s}`, falling back to chest (valid sites: {})",
                site_labels()
            );
            SiteId::Chest
        })
    });

    telemetry::info!("capturing {activity} at {distance} m / {angle} deg");
    let capturer = Capturer::new(CaptureConfig::fast());
    let sampler =
        ActivitySampler::new(Participant::average(), 32, capturer.config().frame_rate);
    let seq = sampler.sample(activity, &SampleVariation::nominal());
    let plan = trigger_site.map(|site| TriggerPlan {
        attachment: TriggerAttachment::new(Trigger::aluminum_2x2()),
        site,
    });
    let out = capturer.capture(
        &seq,
        Placement::new(distance, angle),
        &Environment::hallway(),
        plan.as_ref(),
        42,
    );
    println!("{activity} at {distance} m / {angle} deg — mid-gesture DRAI:");
    println!("{}", out.clean.frame(16).to_ascii());
    if let Some(trig) = out.triggered {
        println!("same frame with the trigger worn:");
        println!("{}", trig.frame(16).to_ascii());
        println!("mean per-frame L2 change: {:.4}", out.clean.mean_l2_distance(&trig));
    }
    ExitCode::SUCCESS
}

fn train(opts: &HashMap<String, String>) -> ExitCode {
    let reps: usize = opts.get("reps").and_then(|s| s.parse().ok()).unwrap_or(1);
    let epochs: usize = opts.get("epochs").and_then(|s| s.parse().ok()).unwrap_or(20);
    let cfg = PrototypeConfig::fast();
    let gen = DatasetGenerator::new(cfg.clone());
    let mut spec = DatasetSpec::training(reps);
    spec.participants.truncate(1);
    telemetry::info!("generating {} samples", spec.total_samples());
    let data = gen.generate(&spec, 42);
    let (train, test) = data.split_stratified(0.25, 7);
    telemetry::info!("training on {} samples for {epochs} epochs", train.len());
    let mut model = CnnLstm::new(&cfg, 3);
    let stats = Trainer::new(TrainerConfig { epochs, ..TrainerConfig::fast() })
        .fit(&mut model, &train);
    let last = stats.last().expect("nonempty stats");
    println!("final train loss {:.3}, accuracy {:.1}%", last.loss, 100.0 * last.accuracy);
    let eval = mmwave_har_backdoor::har::eval::evaluate(&model, &test);
    println!("test accuracy {:.1}%", 100.0 * eval.accuracy);
    println!("{}", eval.confusion);
    ExitCode::SUCCESS
}

fn parse_scenario(opts: &HashMap<String, String>) -> Result<AttackScenario, String> {
    match opts.get("scenario").map(String::as_str) {
        None | Some("push-pull") => Ok(AttackScenario::push_to_pull()),
        Some("left-right") => Ok(AttackScenario::left_to_right_swipe()),
        Some("push-right") => Ok(AttackScenario::push_to_right_swipe()),
        Some("push-acw") => Ok(AttackScenario::push_to_anticlockwise()),
        Some(other) => Err(format!(
            "unknown scenario `{other}` (valid scenarios: {})",
            SCENARIOS.join(", ")
        )),
    }
}

/// Emits the `campaign.point` event for a directly-run (non-journaled)
/// attack, so a metrics file always covers the campaign stage.
fn emit_point_event(id: &str, completed: bool, duration_ms: u64) {
    if !telemetry::enabled(telemetry::Level::Info) {
        return;
    }
    let mut fields = serde_json::Map::new();
    fields.insert("id".to_string(), serde_json::Value::from(id));
    fields.insert(
        "status".to_string(),
        serde_json::Value::from(if completed { "completed" } else { "failed" }),
    );
    fields.insert("duration_ms".to_string(), serde_json::Value::from(duration_ms));
    telemetry::event(
        telemetry::Level::Info,
        telemetry::EventKind::Point,
        "campaign.point",
        fields,
    );
}

fn attack(opts: &HashMap<String, String>) -> ExitCode {
    let rate: f64 = opts.get("rate").and_then(|s| s.parse().ok()).unwrap_or(0.4);
    let frames: usize = opts.get("frames").and_then(|s| s.parse().ok()).unwrap_or(8);
    let scenario = match parse_scenario(opts) {
        Ok(s) => s,
        Err(e) => {
            telemetry::error!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let fast = opts.contains_key("fast");
    let scale = if fast { ExperimentScale::fast() } else { ExperimentScale::smoke_test() };
    telemetry::info!("scenario {scenario}, rate {rate}, {frames} poisoned frames");
    let spec = AttackSpec {
        scenario,
        injection_rate: rate,
        n_poisoned_frames: frames,
        ..AttackSpec::default()
    };
    let id = format!(
        "attack scenario={scenario} rate={rate} frames={frames} scale={}",
        if fast { "fast" } else { "smoke" }
    );

    let Some(resume_dir) = opts.get("resume") else {
        telemetry::info!("building experiment context (this trains a surrogate)");
        let start = Instant::now();
        let mut ctx = ExperimentContext::new(scale, 42);
        let metrics = ctx.run_attack(&spec);
        emit_point_event(&id, true, start.elapsed().as_millis() as u64);
        println!("{metrics}");
        return ExitCode::SUCCESS;
    };

    // Journaled mode: the result is keyed by every flag that shapes it, so
    // a re-run after a crash (or just a repeat invocation) replays from the
    // journal instead of re-training.
    let mut campaign = match Campaign::<AttackMetrics>::open(resume_dir) {
        Ok(c) => c,
        Err(e) => {
            telemetry::error!("cannot open campaign dir `{resume_dir}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = if let Some(done) = campaign.get(&id).cloned() {
        telemetry::info!("journaled result found in `{resume_dir}`, skipping the run");
        done
    } else {
        telemetry::info!("building experiment context (this trains a surrogate)");
        let mut ctx = ExperimentContext::new(scale, 42);
        match campaign.run_attack_point(&mut ctx, &id, &spec, 1) {
            Ok(o) => o,
            Err(e) => {
                telemetry::error!("cannot append to campaign journal: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    match outcome {
        PointOutcome::Completed { result } => println!("{result}"),
        PointOutcome::Failed { error, attempts } => {
            telemetry::error!("attack point failed after {attempts} attempts: {error}");
        }
    }
    print!("{}", campaign.report());
    ExitCode::SUCCESS
}

/// The perf regression gate: `mmwave perf-check <results-dir> --baseline
/// <dir>` compares the `BENCH_*.json` files two bench runs wrote (see
/// `mmwave-bench::baseline`) and exits nonzero when anything regressed.
fn perf_check(opts: &HashMap<String, String>, positionals: &[String]) -> ExitCode {
    use mmwave_har_backdoor::bench::perfcheck::{self, PerfCheckConfig};
    let [results_dir] = positionals else {
        eprintln!("error: perf-check needs exactly one <results-dir> argument");
        print_usage();
        return ExitCode::FAILURE;
    };
    let Some(baseline_dir) = opts.get("baseline") else {
        eprintln!("error: perf-check needs --baseline <dir>");
        print_usage();
        return ExitCode::FAILURE;
    };
    let defaults = PerfCheckConfig::default();
    let threshold = match opts.get("threshold").map(|s| s.parse::<f64>()) {
        None => defaults.threshold,
        Some(Ok(t)) if t > 0.0 => t,
        Some(_) => {
            eprintln!("error: --threshold needs a positive fraction (e.g. 0.15)");
            return ExitCode::FAILURE;
        }
    };
    let noise_floor_ms = match opts.get("noise-ms").map(|s| s.parse::<f64>()) {
        None => defaults.noise_floor_ms,
        Some(Ok(n)) if n >= 0.0 => n,
        Some(_) => {
            eprintln!("error: --noise-ms needs a non-negative number of milliseconds");
            return ExitCode::FAILURE;
        }
    };
    let config = PerfCheckConfig {
        threshold,
        noise_floor_ms,
        report_only: opts.contains_key("report-only"),
    };
    match perfcheck::run(results_dir, baseline_dir, &config) {
        Ok(report) => {
            println!("{report}");
            if report.exit_code() == 0 { ExitCode::SUCCESS } else { ExitCode::FAILURE }
        }
        Err(e) => {
            eprintln!("error: perf-check failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// A self-contained smoke-scale run that exercises every pipeline stage —
/// frame synthesis, the DSP chain, SHAP scoring, training, and a journaled
/// campaign point — so `mmwave demo --metrics-out events.jsonl` yields a
/// metrics file that demonstrates the full event vocabulary in under a
/// minute.
fn demo(_opts: &HashMap<String, String>) -> ExitCode {
    let dir = std::env::temp_dir().join(format!("mmwave_demo_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    telemetry::info!("running the smoke-scale demo attack (campaign dir {})", dir.display());
    let mut campaign = match Campaign::<AttackMetrics>::open(&dir) {
        Ok(c) => c,
        Err(e) => {
            telemetry::error!("cannot open demo campaign dir: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = AttackSpec { injection_rate: 0.5, n_poisoned_frames: 4, ..AttackSpec::default() };
    let mut ctx = ExperimentContext::new(ExperimentScale::smoke_test(), 42);
    let outcome = match campaign.run_attack_point(&mut ctx, "demo attack", &spec, 1) {
        Ok(o) => o,
        Err(e) => {
            telemetry::error!("cannot append to demo journal: {e}");
            return ExitCode::FAILURE;
        }
    };
    let code = match outcome {
        PointOutcome::Completed { result } => {
            println!("{result}");
            ExitCode::SUCCESS
        }
        PointOutcome::Failed { error, attempts } => {
            telemetry::error!("demo attack failed after {attempts} attempts: {error}");
            ExitCode::FAILURE
        }
    };
    std::fs::remove_dir_all(&dir).ok();
    code
}

/// Spawns one `mmwave chaos-child` run against `dir`. Every child gets the
/// deterministic journal and a pinned envelope git sha, so its artifact
/// bytes are a pure function of the campaign outcomes; `envs` adds the
/// per-run extras (the crash-point log, or an armed `MMWAVE_CRASH_AT`).
fn run_chaos_child(
    exe: &Path,
    dir: &Path,
    envs: &[(&str, String)],
) -> io::Result<std::process::ExitStatus> {
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("chaos-child").arg("--dir").arg(dir).arg("--quiet");
    // The driver's own environment must not leak an armed crash point or
    // a crash log into children that did not ask for one.
    cmd.env_remove("MMWAVE_CRASH_AT");
    cmd.env_remove("MMWAVE_CRASH_LOG");
    cmd.env("MMWAVE_JOURNAL_DETERMINISTIC", "1");
    cmd.env("MMWAVE_GIT_SHA", "chaos");
    for (key, value) in envs {
        cmd.env(key, value);
    }
    cmd.stdout(std::process::Stdio::null());
    cmd.stderr(std::process::Stdio::null());
    cmd.status()
}

/// One cell of the chaos matrix: a child armed to abort at `point`, then a
/// plain resume run in the same directory, then a byte comparison of the
/// journal and report against the uninterrupted reference.
fn chaos_one_point(
    exe: &Path,
    dir: &Path,
    point: &str,
    reference_journal: &[u8],
    reference_report: &[u8],
) -> Result<(), String> {
    match run_chaos_child(exe, dir, &[("MMWAVE_CRASH_AT", point.to_string())]) {
        Ok(status) if !status.success() => {}
        Ok(_) => return Err("armed child exited cleanly; the crash point never fired".into()),
        Err(e) => return Err(format!("cannot spawn the armed child: {e}")),
    }
    match run_chaos_child(exe, dir, &[]) {
        Ok(status) if status.success() => {}
        Ok(status) => return Err(format!("resume run failed with {status}")),
        Err(e) => return Err(format!("cannot spawn the resume child: {e}")),
    }
    let journal = std::fs::read(dir.join("journal.jsonl")).unwrap_or_default();
    let report = std::fs::read(dir.join("report.json")).unwrap_or_default();
    if journal != reference_journal {
        return Err("journal differs from the uninterrupted run".into());
    }
    if report != reference_report {
        return Err("report differs from the uninterrupted run".into());
    }
    Ok(())
}

/// `mmwave chaos`: the kill-and-resume crash matrix. A reference child run
/// discovers every crash point registered along the campaign's artifact
/// paths (via `MMWAVE_CRASH_LOG`); then, for each point, a fresh child is
/// killed there (`MMWAVE_CRASH_AT`), resumed, and its journal and report
/// must come out byte-identical to the uninterrupted reference.
fn chaos(opts: &HashMap<String, String>) -> ExitCode {
    let keep = opts.contains_key("keep");
    let root = opts.get("dir").map(PathBuf::from).unwrap_or_else(|| {
        std::env::temp_dir().join(format!("mmwave_chaos_{}", std::process::id()))
    });
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            telemetry::error!("cannot locate the mmwave binary: {e}");
            return ExitCode::FAILURE;
        }
    };
    let _ = std::fs::remove_dir_all(&root);
    if let Err(e) = std::fs::create_dir_all(&root) {
        telemetry::error!("cannot create chaos work dir {}: {e}", root.display());
        return ExitCode::FAILURE;
    }

    let log_path = root.join("crash_points.log");
    let ref_dir = root.join("reference");
    telemetry::info!("chaos: reference run in {}", ref_dir.display());
    match run_chaos_child(
        &exe,
        &ref_dir,
        &[("MMWAVE_CRASH_LOG", log_path.display().to_string())],
    ) {
        Ok(status) if status.success() => {}
        Ok(status) => {
            telemetry::error!("chaos: reference run failed with {status}");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            telemetry::error!("chaos: cannot spawn the reference child: {e}");
            return ExitCode::FAILURE;
        }
    }
    let (reference_journal, reference_report) = match (
        std::fs::read(ref_dir.join("journal.jsonl")),
        std::fs::read(ref_dir.join("report.json")),
    ) {
        (Ok(j), Ok(r)) => (j, r),
        _ => {
            telemetry::error!("chaos: the reference run left no journal or report");
            return ExitCode::FAILURE;
        }
    };
    // The crash log lists points in execution order, once per pass; keep
    // first-seen order and drop repeats (the campaign passes the journal
    // points once per appended entry).
    let mut points: Vec<String> = Vec::new();
    match std::fs::read_to_string(&log_path) {
        Ok(log) => {
            for line in log.lines().map(str::trim).filter(|l| !l.is_empty()) {
                if !points.iter().any(|p| p == line) {
                    points.push(line.to_string());
                }
            }
        }
        Err(e) => {
            telemetry::error!("chaos: cannot read the crash-point log: {e}");
            return ExitCode::FAILURE;
        }
    }
    if points.is_empty() {
        telemetry::error!("chaos: the reference run passed no crash points");
        return ExitCode::FAILURE;
    }
    telemetry::info!("chaos: {} crash points discovered", points.len());

    let mut failures = 0usize;
    for (i, point) in points.iter().enumerate() {
        let dir = root.join(format!("point-{i:02}"));
        match chaos_one_point(&exe, &dir, point, &reference_journal, &reference_report) {
            Ok(()) => println!("chaos: kill at {point} -> resume is byte-identical"),
            Err(e) => {
                failures += 1;
                println!("chaos: kill at {point} -> FAIL: {e}");
            }
        }
    }
    println!("chaos: {}/{} crash points pass", points.len() - failures, points.len());
    if failures > 0 {
        telemetry::error!("chaos: artifacts kept in {}", root.display());
        return ExitCode::FAILURE;
    }
    if keep {
        println!("chaos: artifacts kept in {}", root.display());
    } else {
        std::fs::remove_dir_all(&root).ok();
    }
    ExitCode::SUCCESS
}

/// Hidden helper behind `mmwave chaos`: a five-point journaled campaign of
/// fixed arithmetic results plus a saved report — every value deterministic
/// so kill-and-resume comparisons can demand byte identity.
fn chaos_child(opts: &HashMap<String, String>) -> ExitCode {
    let Some(dir) = opts.get("dir") else {
        eprintln!("error: chaos-child needs --dir <dir>");
        return ExitCode::FAILURE;
    };
    let mut campaign = match Campaign::<f64>::open(dir) {
        Ok(c) => c,
        Err(e) => {
            telemetry::error!("cannot open chaos campaign dir `{dir}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    for i in 0..5u32 {
        let id = format!("chaos p{i}");
        if let Err(e) = campaign.run_point(&id, || f64::from(i) * 1.25 + 0.5) {
            telemetry::error!("cannot journal chaos point `{id}`: {e}");
            return ExitCode::FAILURE;
        }
    }
    match campaign.save_report() {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            telemetry::error!("cannot save the chaos report: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `mmwave campaign-init`: writes a campaign DAG into a directory for
/// `mmwave worker` processes to drain.
fn campaign_init(opts: &HashMap<String, String>) -> ExitCode {
    use mmwave_har_backdoor::backdoor::dag;
    let Some(dir) = opts.get("dir") else {
        eprintln!("error: campaign-init needs --dir <dir>");
        return ExitCode::FAILURE;
    };
    let preset = opts.get("preset").map(String::as_str).unwrap_or("demo");
    let graph = match preset {
        "demo" => dag::demo_dag(),
        "sweep" => {
            // A small paper-shaped sweep: two scenarios at two injection
            // rates. Smoke scale, so `mmwave worker` drains it in minutes.
            let mut points = Vec::new();
            for scenario in ["push-pull", "left-right"] {
                for rate in [0.2_f64, 0.4] {
                    points.push((
                        format!("{scenario}-r{:02.0}", rate * 100.0),
                        scenario.to_string(),
                        rate,
                        8usize,
                        42u64,
                    ));
                }
            }
            dag::attack_sweep_dag("sweep", &points)
        }
        other => {
            eprintln!("error: unknown preset `{other}` (want demo|sweep)");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::create_dir_all(dir) {
        telemetry::error!("cannot create campaign dir `{dir}`: {e}");
        return ExitCode::FAILURE;
    }
    match graph.save(Path::new(dir)) {
        Ok(()) => {
            println!(
                "campaign `{}` initialised in {dir} ({} tasks)",
                graph.name,
                graph.tasks.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            telemetry::error!("cannot save the campaign DAG: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `mmwave worker`: the claim/execute loop over a campaign DAG directory.
/// Safe to run N at a time; exits once every task is done or failed.
fn worker_cmd(opts: &HashMap<String, String>) -> ExitCode {
    use mmwave_har_backdoor::backdoor::fleet;
    use mmwave_har_backdoor::backdoor::worker as dagworker;
    let Some(dir) = opts.get("dir") else {
        eprintln!("error: worker needs --dir <dir>");
        return ExitCode::FAILURE;
    };
    let mut config = dagworker::WorkerConfig::from_env();
    if let Some(id) = opts.get("worker-id") {
        config.worker_id = id.clone();
    }
    if let Some(raw) = opts.get("ttl") {
        config.ttl = dagworker::parse_claim_ttl(Some(raw));
    }
    if let Some(raw) = opts.get("poll-ms") {
        match raw.parse::<u64>() {
            Ok(ms) if ms > 0 => config.poll = std::time::Duration::from_millis(ms),
            _ => {
                eprintln!("error: --poll-ms needs a positive integer, got `{raw}`");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(raw) = opts.get("shard") {
        config.shard = dagworker::parse_shard(Some(raw));
    }
    // With fleet shipping on, every worker also streams its span events to
    // a per-worker trace file beside its shard, so `fleet-export` can
    // stitch the whole fleet into one Perfetto timeline.
    if fleet::shipping_enabled() {
        match telemetry::TraceSink::create(fleet::paths::trace(
            Path::new(dir),
            &config.worker_id,
        )) {
            Ok(sink) => telemetry::global().add_sink(Box::new(sink)),
            Err(e) => telemetry::warn!("cannot open the fleet trace file: {e}"),
        }
    }
    telemetry::info!(
        "worker `{}` draining campaign {dir} (ttl {:?})",
        config.worker_id,
        config.ttl
    );
    match dagworker::run_worker(Path::new(dir), &config, &dagworker::PipelineExecutor) {
        Ok(summary) => {
            println!(
                "worker `{}`: executed {}, deduped {}, reclaimed {}, failed {}",
                config.worker_id,
                summary.executed,
                summary.deduped,
                summary.reclaimed,
                summary.failed
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            telemetry::error!("worker failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `mmwave campaign-status <dir>`: read-only campaign inspector. Scans
/// task records and claim files without taking any locks or writing
/// anything, so it is safe to run beside active workers.
fn campaign_status(opts: &HashMap<String, String>, positionals: &[String]) -> ExitCode {
    use mmwave_har_backdoor::backdoor::dag::{self, TaskState};
    use mmwave_har_backdoor::backdoor::worker as dagworker;
    let [dir] = positionals else {
        eprintln!("error: campaign-status needs exactly one <dir> argument");
        print_usage();
        return ExitCode::FAILURE;
    };
    let dir = Path::new(dir);
    let ttl = match opts.get("ttl") {
        Some(raw) => dagworker::parse_claim_ttl(Some(raw)),
        None => dagworker::parse_claim_ttl(
            std::env::var("MMWAVE_CLAIM_TTL_SECS").ok().as_deref(),
        ),
    };
    let graph = match dag::CampaignDag::load(dir) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: cannot load the campaign DAG: {e}");
            return ExitCode::FAILURE;
        }
    };
    let status = match dag::scan(dir, &graph, ttl) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot scan the campaign dir: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (done, failed, claimed, pending) = status.counts();
    println!(
        "campaign `{}` in {}: {done}/{} done, {failed} failed, {claimed} claimed, {pending} pending",
        graph.name,
        dir.display(),
        graph.tasks.len()
    );
    // Telemetry shards attribute each claim's owner to the last task it
    // finished; a worker that never shipped simply gets no note.
    let last_tasks: std::collections::HashMap<String, String> =
        mmwave_har_backdoor::backdoor::fleet::load_shards(dir)
            .unwrap_or_default()
            .into_iter()
            .filter_map(|s| s.last_task.map(|t| (s.worker_id, t)))
            .collect();
    let mut distinct_keys = std::collections::HashSet::new();
    let mut done_records = 0usize;
    for (id, state) in &status.tasks {
        match state {
            TaskState::Done => {
                let mut key_note = String::new();
                if let Ok(loaded) = mmwave_har_backdoor::store::load_json::<dag::TaskRecord>(
                    &dag::paths::done(dir, id),
                ) {
                    done_records += 1;
                    key_note = format!("  artifact {}", loaded.value.artifact_key);
                    distinct_keys.insert(loaded.value.artifact_key);
                }
                println!("  [done    ] {id}{key_note}");
            }
            TaskState::Failed => {
                let reason = mmwave_har_backdoor::store::load_json::<dag::TaskFailure>(
                    &dag::paths::failed(dir, id),
                )
                .map(|loaded| loaded.value.error)
                .unwrap_or_else(|_| "failure record unreadable".to_string());
                println!("  [failed  ] {id}  {reason}");
            }
            TaskState::Claimed { owner, age, stale } => {
                let owner_note = owner
                    .as_ref()
                    .map(|o| format!("{} pid {}", o.worker_id, o.pid))
                    .unwrap_or_else(|| "unknown owner".to_string());
                let last_note = owner
                    .as_ref()
                    .and_then(|o| last_tasks.get(&o.worker_id))
                    .map(|t| format!(", last completed {t}"))
                    .unwrap_or_default();
                println!(
                    "  [claimed ] {id}  {owner_note}, heartbeat {:.1}s ago ({}){last_note}",
                    age.as_secs_f64(),
                    if *stale { "STALE, reclaim-eligible" } else { "live" }
                );
            }
            TaskState::Pending => println!("  [pending ] {id}"),
        }
    }
    if done_records > 0 {
        println!(
            "dedupe: {done_records} done tasks share {} artifacts ({} hits)",
            distinct_keys.len(),
            done_records - distinct_keys.len()
        );
    }
    println!(
        "report: {}",
        if dag::paths::report(dir).exists() { "present" } else { "not yet written" }
    );
    ExitCode::SUCCESS
}

/// Shared argument parsing for the fleet observers: the campaign dir
/// (positional or `--dir`), the claim TTL, and the straggler factor.
fn fleet_args(
    opts: &HashMap<String, String>,
    positionals: &[String],
    command: &str,
) -> Result<(PathBuf, std::time::Duration, f64), String> {
    use mmwave_har_backdoor::backdoor::worker as dagworker;
    let dir = match (positionals, opts.get("dir")) {
        ([dir], None) => PathBuf::from(dir),
        ([], Some(dir)) => PathBuf::from(dir),
        _ => return Err(format!("{command} needs exactly one <dir> argument")),
    };
    let ttl = match opts.get("ttl") {
        Some(raw) => dagworker::parse_claim_ttl(Some(raw)),
        None => dagworker::parse_claim_ttl(
            std::env::var("MMWAVE_CLAIM_TTL_SECS").ok().as_deref(),
        ),
    };
    let factor = match opts.get("factor").map(|s| s.parse::<f64>()) {
        None => 4.0,
        Some(Ok(f)) if f > 0.0 && f.is_finite() => f,
        Some(_) => return Err("--factor needs a positive number".to_string()),
    };
    Ok((dir, ttl, factor))
}

/// Renders one `mmwave top` frame. Returns the frame text and whether the
/// campaign is fully resolved (the live loop exits then).
fn render_top(
    dir: &Path,
    ttl: std::time::Duration,
    factor: f64,
) -> Result<(String, bool), String> {
    use mmwave_har_backdoor::backdoor::fleet;
    use std::fmt::Write as _;
    let (status, shards, merged, health) =
        fleet::observe_fleet(dir, ttl, factor).map_err(|e| e.to_string())?;
    let (done, failed, claimed, pending) = status.counts();
    let total = status.tasks.len();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fleet @ {}: {done}/{total} done, {failed} failed, {claimed} claimed, {pending} pending",
        dir.display()
    );
    let _ = writeln!(
        out,
        "workers: {} shards, liveness threshold {}ms (factor {:.1}, ttl floor {:.0}s)",
        shards.len(),
        health.heartbeat_threshold_ms,
        health.straggler_factor,
        ttl.as_secs_f64()
    );
    let _ = writeln!(
        out,
        "  {:<12} {:>7} {:<7} {:>8} {:>8} {:>5} {:>5} {:>6}  {}",
        "worker", "pid", "status", "hb-age", "ship-age", "done", "fail", "dedup", "last task"
    );
    let fmt_age = |ms: Option<u64>| {
        ms.map(|ms| format!("{:.1}s", ms as f64 / 1e3)).unwrap_or_else(|| "-".to_string())
    };
    let mut stragglers = 0usize;
    for w in &health.workers {
        let status_label = match w.status {
            fleet::WorkerStatus::Active => "active",
            fleet::WorkerStatus::Stale => "STALE",
            fleet::WorkerStatus::Dead => "DEAD",
            fleet::WorkerStatus::Exited => "exited",
        };
        let straggler_note = if w.straggler {
            stragglers += 1;
            telemetry::counter("fleet.straggler", 1);
            format!("  <- STRAGGLER: {}", w.reasons.join("; "))
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "  {:<12} {:>7} {:<7} {:>8} {:>8} {:>5} {:>5} {:>6}  {}{straggler_note}",
            w.worker_id,
            w.pid,
            status_label,
            fmt_age(w.heartbeat_age_ms),
            fmt_age(w.ship_age_ms),
            w.tasks_done,
            w.tasks_failed,
            w.tasks_deduped,
            w.last_task.as_deref().unwrap_or("-"),
        );
    }
    if stragglers > 0 {
        let _ = writeln!(out, "stragglers: {stragglers} worker(s) flagged");
    }
    let interesting: Vec<_> = merged
        .merged
        .counters
        .iter()
        .filter(|(k, _)| {
            k.starts_with("dag.")
                || k.starts_with("store.claim.")
                || k.starts_with("fleet.")
                || k.starts_with("serve.")
                || k.starts_with("monitor.")
        })
        .collect();
    if !interesting.is_empty() {
        let _ = writeln!(out, "merged counters:");
        for (k, v) in interesting {
            let _ = writeln!(out, "  {k:<28} {v}");
        }
    }
    // Service saturation is a gauge, not a counter: surface the latest
    // per-worker `serve.*` gauges (queue depth, anything else the service
    // publishes) so a backlogged server is visible fleet-wide.
    let serve_gauges: Vec<_> = merged
        .merged
        .gauges
        .iter()
        .filter(|(k, _)| k.starts_with("serve."))
        .collect();
    if !serve_gauges.is_empty() {
        let _ = writeln!(out, "serve gauges:");
        for (k, g) in serve_gauges {
            // The breaker gauge is an enum, not a magnitude: decode it.
            let label = if k.as_str() == "serve.breaker_state" {
                match g.value as u64 {
                    0 => "  (closed)",
                    1 => "  (half-open)",
                    _ => "  (open)",
                }
            } else {
                ""
            };
            let _ = writeln!(out, "  {k:<28} {:.0}{label}", g.value);
        }
    }
    // Model-health gauges are small fractions (drift scores, tail
    // mass), so they print with precision where serve gauges round.
    let monitor_gauges: Vec<_> = merged
        .merged
        .gauges
        .iter()
        .filter(|(k, _)| k.starts_with("monitor."))
        .collect();
    if !monitor_gauges.is_empty() {
        let _ = writeln!(out, "monitor gauges:");
        for (k, g) in monitor_gauges {
            let _ = writeln!(out, "  {k:<28} {:.4}", g.value);
        }
    }
    let hotspots = telemetry::merged_profile(&merged.merged).hotspot_table(8);
    if !hotspots.trim().is_empty() {
        let _ = writeln!(out, "merged hotspots:");
        out.push_str(&hotspots);
    }
    Ok((out, status.all_resolved()))
}

/// One-shot machine-readable fleet snapshot for `mmwave top --json`.
/// The schema is documented in docs/observability.md §10; bump
/// `schema_version` on incompatible changes.
fn render_top_json(
    dir: &Path,
    ttl: std::time::Duration,
    factor: f64,
) -> Result<String, String> {
    use mmwave_har_backdoor::backdoor::fleet;
    let (status, shards, merged, health) =
        fleet::observe_fleet(dir, ttl, factor).map_err(|e| e.to_string())?;
    let (done, failed, claimed, pending) = status.counts();
    let counters: std::collections::BTreeMap<&String, &u64> = merged
        .merged
        .counters
        .iter()
        .filter(|(k, _)| {
            k.starts_with("dag.")
                || k.starts_with("store.claim.")
                || k.starts_with("fleet.")
                || k.starts_with("serve.")
                || k.starts_with("monitor.")
        })
        .collect();
    let gauges: std::collections::BTreeMap<&String, f64> =
        merged.merged.gauges.iter().map(|(k, g)| (k, g.value)).collect();
    let monitor_counter = |name: &str| merged.merged.counters.get(name).copied().unwrap_or(0);
    // Serve robustness digest: quarantine, sequencing, lifecycle, and
    // breaker health at a glance without fishing through raw metrics.
    let breaker_state = merged
        .merged
        .gauges
        .get("serve.breaker_state")
        .map(|g| g.value as u64)
        .unwrap_or(0);
    let serve_digest = serde_json::json!({
        "ingested": monitor_counter("serve.ingested"),
        "rejected": monitor_counter("serve.rejected"),
        "rejected_shape": monitor_counter("serve.rejected_shape"),
        "rejected_nonfinite": monitor_counter("serve.rejected_nonfinite"),
        "seq_gaps": monitor_counter("serve.seq_gaps"),
        "seq_dups": monitor_counter("serve.seq_dups"),
        "seq_restarts": monitor_counter("serve.seq_restarts"),
        "filled_frames": monitor_counter("serve.filled_frames"),
        "sessions_evicted": monitor_counter("serve.sessions_evicted"),
        "sessions_reopened": monitor_counter("serve.sessions_reopened"),
        "verdicts_failed": monitor_counter("serve.verdicts_failed"),
        "breaker_opened": monitor_counter("serve.breaker_opened"),
        "breaker_state": breaker_state,
        "breaker_state_label": match breaker_state {
            0 => "closed",
            1 => "half-open",
            _ => "open",
        },
    });
    let alerts_by_kind: std::collections::BTreeMap<String, u64> = merged
        .merged
        .counters
        .iter()
        .filter_map(|(k, &v)| {
            k.strip_prefix("monitor.alerts.").map(|kind| (kind.to_string(), v))
        })
        .collect();
    let monitor_gauges: std::collections::BTreeMap<&String, f64> = merged
        .merged
        .gauges
        .iter()
        .filter(|(k, _)| k.starts_with("monitor."))
        .map(|(k, g)| (k, g.value))
        .collect();
    let snapshot = serde_json::json!({
        "schema_version": 2,
        "campaign": {
            "dir": dir.display().to_string(),
            "tasks_total": status.tasks.len(),
            "done": done,
            "failed": failed,
            "claimed": claimed,
            "pending": pending,
            "resolved": status.all_resolved(),
        },
        "workers_shipped": shards.len(),
        "health": health,
        "metrics": {
            "counters": counters,
            "gauges": gauges,
        },
        "serve": serve_digest,
        "monitor": {
            "verdicts": monitor_counter("monitor.verdicts"),
            "windows": monitor_counter("monitor.windows"),
            "alerts": monitor_counter("monitor.alerts"),
            "alerts_by_kind": alerts_by_kind,
            "gauges": monitor_gauges,
        },
    });
    serde_json::to_string_pretty(&snapshot).map_err(|e| e.to_string())
}

/// `mmwave top <dir>`: live fleet view over a campaign directory. Reads
/// claim heartbeats, telemetry shards, and the DAG state; never writes
/// into the campaign dir, so it is safe beside running workers.
fn top_cmd(opts: &HashMap<String, String>, positionals: &[String]) -> ExitCode {
    let (dir, ttl, factor) = match fleet_args(opts, positionals, "top") {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            return ExitCode::FAILURE;
        }
    };
    if opts.contains_key("json") {
        // One-shot machine-readable snapshot: no repaint loop, no ANSI.
        return match render_top_json(&dir, ttl, factor) {
            Ok(json) => {
                println!("{json}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: cannot observe the fleet: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let once = opts.contains_key("once");
    let refresh = match opts.get("refresh-secs").map(|s| s.parse::<f64>()) {
        None => 2.0,
        Some(Ok(s)) if s > 0.0 && s.is_finite() => s,
        Some(_) => {
            eprintln!("error: --refresh-secs needs a positive number of seconds");
            return ExitCode::FAILURE;
        }
    };
    loop {
        let (frame, resolved) = match render_top(&dir, ttl, factor) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: cannot observe the fleet: {e}");
                return ExitCode::FAILURE;
            }
        };
        if once {
            print!("{frame}");
            return ExitCode::SUCCESS;
        }
        // Clear the terminal and repaint, `watch`-style.
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write as _;
        io::stdout().flush().ok();
        if resolved {
            println!("campaign resolved; exiting");
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(refresh));
    }
}

/// `mmwave fleet-export <dir>`: merges every worker's telemetry shard
/// into durable artifacts under `--out` (default `<dir>/fleet/export`):
/// checksummed merged metrics and health reports, plus a stitched
/// Perfetto trace with one process lane per worker.
fn fleet_export_cmd(opts: &HashMap<String, String>, positionals: &[String]) -> ExitCode {
    use mmwave_har_backdoor::backdoor::fleet;
    let (dir, ttl, factor) = match fleet_args(opts, positionals, "fleet-export") {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            return ExitCode::FAILURE;
        }
    };
    let out =
        opts.get("out").map(PathBuf::from).unwrap_or_else(|| fleet::paths::export_dir(&dir));
    match fleet::export_fleet(&dir, &out, ttl, factor) {
        Ok(summary) => {
            println!(
                "fleet-export: merged {} worker shard(s) ({} counters, {} trace events)",
                summary.workers, summary.counters, summary.trace_events
            );
            println!("  metrics  {}", summary.metrics_path.display());
            println!("  health   {}", summary.health_path.display());
            println!("  trace    {}", summary.trace_path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: fleet-export failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses the stream-shape flags shared by `serve` and `loadgen`
/// (`--sessions --seconds --fps --jitter --burst --seed --paced`) on top
/// of per-command defaults.
fn loadgen_config(
    opts: &HashMap<String, String>,
    defaults: serve::LoadgenConfig,
) -> Result<serve::LoadgenConfig, String> {
    let mut cfg = defaults;
    if let Some(raw) = opts.get("sessions") {
        cfg.sessions = raw
            .parse()
            .map_err(|_| format!("--sessions needs a positive integer, got `{raw}`"))?;
    }
    if let Some(raw) = opts.get("seconds") {
        cfg.seconds =
            raw.parse().map_err(|_| format!("--seconds needs a number, got `{raw}`"))?;
    }
    if let Some(raw) = opts.get("fps") {
        cfg.fps = raw.parse().map_err(|_| format!("--fps needs a number, got `{raw}`"))?;
    }
    if let Some(raw) = opts.get("jitter") {
        cfg.jitter =
            raw.parse().map_err(|_| format!("--jitter needs a number, got `{raw}`"))?;
    }
    if let Some(raw) = opts.get("burst") {
        cfg.burst = raw
            .parse()
            .map_err(|_| format!("--burst needs a positive integer, got `{raw}`"))?;
    }
    if let Some(raw) = opts.get("seed") {
        cfg.seed =
            raw.parse().map_err(|_| format!("--seed needs an integer, got `{raw}`"))?;
    }
    if opts.contains_key("paced") {
        cfg.paced = true;
    }
    if let Some(raw) = opts.get("poison-frac") {
        cfg.poison_frac = raw
            .parse()
            .map_err(|_| format!("--poison-frac needs a number in [0, 1], got `{raw}`"))?;
    }
    cfg.validate().map_err(|e| e.to_string())?;
    Ok(cfg)
}

/// `mmwave serve`: the live-service demonstrator. Runs the streaming
/// inference service over a paced, simulated multi-sensor feed and
/// prints one line per verdict plus the closing frame accounting;
/// `loadgen` is the throughput harness over the same machinery.
fn serve_cmd(opts: &HashMap<String, String>) -> ExitCode {
    let defaults = serve::LoadgenConfig {
        sessions: 4,
        seconds: 10.0,
        paced: true,
        ..serve::LoadgenConfig::default()
    };
    let lg = match loadgen_config(opts, defaults) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let serve_cfg = serve::ServeConfig::from_env();
    let proto = PrototypeConfig::fast();
    println!(
        "serve: {} session(s) at {:.1} fps for {:.0}s (clip {} frames, ring {}, batch <= {})",
        lg.sessions,
        lg.fps,
        lg.seconds,
        serve_cfg.clip_len,
        serve_cfg.ring_capacity,
        serve_cfg.max_batch
    );
    let run = serve::loadgen::run_with(&lg, serve_cfg, &proto, Environment::hallway(), |v| {
        println!(
            "  s{:<3} clip {:<3} [{:>4}..{:>4}]  {:<14} p={:.2}  defense={:.2}  {:>7.1}ms",
            v.session,
            v.clip_index,
            v.first_seq,
            v.last_seq,
            v.activity,
            v.confidence,
            v.defense_score,
            v.latency_ms
        );
    });
    let report = match run {
        Ok(r) => r,
        Err(e) => {
            telemetry::error!("serve failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "drained: {} verdicts from {} session(s); {} frames ingested, {} shed, {} still buffered",
        report.verdicts,
        report.sessions_served,
        report.ingested,
        report.shed_frames,
        report.in_flight_frames
    );
    if !report.is_clean() {
        telemetry::error!(
            "frame accounting imbalance: {} frame(s) unaccounted",
            report.unaccounted
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `mmwave serve-chaos`: the transport-fault matrix. Every requested
/// cell replays the same seeded traffic through one fault mix at 1 and
/// 4 workers; a cell passes only if the conservation ledger closes
/// (`ingested == inferred + shed + rejected + in_flight`) under both
/// worker counts, the verdict streams are bit-identical, and the
/// fault channel left the ledger evidence it predicts (the clean cell
/// must leave none). Nonzero exit on any failing cell.
fn serve_chaos_cmd(opts: &HashMap<String, String>) -> ExitCode {
    let cells: Vec<String> = match opts.get("cells") {
        Some(raw) => raw
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect(),
        None => serve::chaos::MATRIX_CELLS.iter().map(|s| s.to_string()).collect(),
    };
    if cells.is_empty() {
        eprintln!("error: --cells needs at least one cell name");
        return ExitCode::FAILURE;
    }
    let seed = match opts.get("seed").cloned().or_else(|| {
        std::env::var("MMWAVE_SERVE_CHAOS_SEED").ok().filter(|s| !s.is_empty())
    }) {
        Some(raw) => match raw.parse::<u64>() {
            Ok(s) => s,
            Err(_) => {
                eprintln!("error: --seed needs an integer, got `{raw}`");
                return ExitCode::FAILURE;
            }
        },
        None => 7,
    };
    let proto = PrototypeConfig::fast();
    println!(
        "serve-chaos: {} cell(s) [{}], seed {seed}, 1-vs-4 worker determinism",
        cells.len(),
        cells.join(",")
    );
    let reports =
        match serve::chaos::run_matrix(&cells, seed, &proto, &Environment::hallway()) {
            Ok(r) => r,
            Err(e) => {
                telemetry::error!("serve-chaos failed: {e}");
                return ExitCode::FAILURE;
            }
        };
    println!(
        "  {:<9} {:>6} {:>6} {:>5} {:>4} {:>7} {:>5} {:>4} {:>4} {:>5} {:>4} {:>5}  {:<4}",
        "cell", "ingest", "infer", "shed", "rej", "inflght", "verd", "fail", "gaps", "dups",
        "evic", "reopn", "pass"
    );
    let mut failed = 0usize;
    for r in &reports {
        let status = if r.pass {
            "ok".to_string()
        } else {
            failed += 1;
            let mut why = Vec::new();
            if !r.balanced {
                why.push(format!("UNBALANCED ({} unaccounted)", r.unaccounted));
            }
            if !r.deterministic {
                why.push("NONDETERMINISTIC".to_string());
            }
            if !r.note.is_empty() {
                why.push(r.note.clone());
            }
            format!("FAIL: {}", why.join("; "))
        };
        println!(
            "  {:<9} {:>6} {:>6} {:>5} {:>4} {:>7} {:>5} {:>4} {:>4} {:>5} {:>4} {:>5}  {status}",
            r.cell,
            r.ingested,
            r.inferred_frames,
            r.shed_frames,
            r.rejected_frames,
            r.in_flight_frames,
            r.verdicts,
            r.verdicts_failed,
            r.seq_gaps,
            r.seq_dups,
            r.sessions_evicted,
            r.sessions_reopened,
        );
    }
    if failed > 0 {
        telemetry::error!("serve-chaos: {failed}/{} cell(s) failed", reports.len());
        return ExitCode::FAILURE;
    }
    println!("serve-chaos: all {} cell(s) passed", reports.len());
    ExitCode::SUCCESS
}

/// `mmwave loadgen`: replays N seeded sensor streams against a fresh
/// service (firehose by default, `--paced` to honor arrival times) and
/// writes the throughput/latency report as a checksummed artifact plus
/// a `BENCH_loadgen.json` baseline `mmwave perf-check` can gate.
/// With `--profile <path>` the model-health monitor scores every window
/// against that clean baseline and appends alerts to
/// `<out>/alerts.jsonl`; `--poison-frac <f>` streams physically
/// triggered sessions to exercise it. Nonzero exit if any ingested
/// frame ends up unaccounted, or — under `--fail-on-alarm` — if any
/// alert fired.
fn loadgen_cmd(opts: &HashMap<String, String>) -> ExitCode {
    use mmwave_har_backdoor::bench::baseline::{self, BenchBaseline};
    use mmwave_har_backdoor::monitor;
    let lg = match loadgen_config(opts, serve::LoadgenConfig::default()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let serve_cfg = serve::ServeConfig::from_env();
    let proto = PrototypeConfig::fast();
    let out_dir =
        PathBuf::from(opts.get("out").map(String::as_str).unwrap_or("loadgen-results"));
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        telemetry::error!("cannot create `{}`: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let fail_on_alarm = opts.contains_key("fail-on-alarm");
    let reference = match opts.get("profile") {
        Some(path) => match monitor::ReferenceProfile::load(Path::new(path)) {
            Ok(p) => Some(p),
            Err(e) => {
                telemetry::error!("cannot load the reference profile `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            if fail_on_alarm {
                eprintln!(
                    "error: --fail-on-alarm needs --profile <path>; without a reference \
                     profile no monitor runs and no alarm could ever fire"
                );
                return ExitCode::FAILURE;
            }
            None
        }
    };
    let (report, outcome) = match reference {
        Some(reference) => {
            let mon_cfg = monitor::MonitorConfig::from_env();
            let alerts_path = out_dir.join("alerts.jsonl");
            match monitor::run_monitored(
                &lg,
                serve_cfg,
                &proto,
                Environment::hallway(),
                &mon_cfg,
                reference,
                Some(&alerts_path),
                |_| {},
            ) {
                Ok(o) => (o.report.clone(), Some((o, alerts_path))),
                Err(e) => {
                    telemetry::error!("monitored loadgen failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => match serve::loadgen::run(&lg, serve_cfg, &proto, Environment::hallway()) {
            Ok(r) => (r, None),
            Err(e) => {
                telemetry::error!("loadgen failed: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    println!(
        "loadgen: {} session(s) x {:.0}s @ {:.1} fps, burst {}, jitter {:.2} ({})",
        lg.sessions,
        lg.seconds,
        lg.fps,
        lg.burst,
        lg.jitter,
        if lg.paced { "paced" } else { "firehose" }
    );
    println!("  wall            {:.0} ms ({} workers)", report.wall_ms, report.workers);
    println!("  sessions/sec    {:.2}", report.sessions_per_sec);
    println!("  inferences/sec  {:.2}", report.inferences_per_sec);
    println!("  frames/sec      {:.0}", report.frames_per_sec);
    println!(
        "  latency ms      p50 {:.1} / p95 {:.1} / p99 {:.1} / max {:.1}",
        report.latency_p50_ms, report.latency_p95_ms, report.latency_p99_ms, report.latency_max_ms
    );
    println!(
        "  drop rate       {:.2}% ({} of {} frames shed; peak ring {} / queue {})",
        report.drop_rate * 100.0,
        report.shed_frames,
        report.ingested,
        report.peak_ring_depth,
        report.peak_queue_depth
    );
    if lg.poison_frac > 0.0 {
        println!(
            "  poisoned        {} of {} session(s) stream a worn trigger (frac {:.2})",
            report.poisoned_sessions, lg.sessions, lg.poison_frac
        );
    }
    if let Some((outcome, alerts_path)) = &outcome {
        println!(
            "  monitor         {} window(s) scored, {} alert(s) -> {}",
            outcome.windows,
            outcome.alerts.len(),
            alerts_path.display()
        );
        if let Some(d) = &outcome.last_drift {
            println!(
                "  drift           psi {:.4}  conf-tv {:.4}  tail {:.4}  spike {:.4}",
                d.class_psi, d.confidence_tv, d.trigger_tail, d.spike_delta
            );
        }
        for alert in &outcome.alerts {
            println!(
                "  ALERT {:<16} window {:<3} {}",
                alert.kind.name(),
                alert.window_index,
                alert.detail
            );
        }
    }
    let report_path = out_dir.join("loadgen_report.json");
    if let Err(e) = report.save(&report_path) {
        telemetry::error!("cannot save the loadgen report: {e}");
        return ExitCode::FAILURE;
    }
    println!("  report          {}", report_path.display());
    let bench = BenchBaseline {
        schema_version: baseline::SCHEMA_VERSION,
        bench: "loadgen".to_string(),
        wall_ms: report.wall_ms,
        workers: report.workers,
        iterations: 1,
        throughput_per_sec: Some(report.inferences_per_sec),
        git_sha: baseline::git_sha(),
        timestamp_ms: telemetry::event::unix_millis(),
        stages: std::collections::BTreeMap::new(),
    };
    let bench_path = out_dir.join(BenchBaseline::file_name("loadgen"));
    if let Err(e) = bench.save(&bench_path) {
        telemetry::error!("cannot save the loadgen perf baseline: {e}");
        return ExitCode::FAILURE;
    }
    println!("  baseline        {}", bench_path.display());
    if !report.is_clean() {
        telemetry::error!(
            "frame accounting imbalance: {} frame(s) unaccounted",
            report.unaccounted
        );
        return ExitCode::FAILURE;
    }
    if fail_on_alarm {
        if let Some((outcome, _)) = &outcome {
            if !outcome.alerts.is_empty() {
                telemetry::error!(
                    "{} monitor alert(s) fired and --fail-on-alarm is set",
                    outcome.alerts.len()
                );
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// `mmwave profile`: captures the model-health reference baseline. Runs
/// the load generator with poisoning forced off (clean by
/// construction), folds every verdict into a [`ReferenceProfile`], and
/// saves it as a checksummed artifact for `mmwave loadgen --profile`
/// and the monitoring engine.
fn profile_cmd(opts: &HashMap<String, String>) -> ExitCode {
    use mmwave_har_backdoor::monitor;
    let lg = match loadgen_config(opts, serve::LoadgenConfig::default()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let serve_cfg = serve::ServeConfig::from_env();
    let proto = PrototypeConfig::fast();
    let out =
        PathBuf::from(opts.get("out").map(String::as_str).unwrap_or("monitor_profile.json"));
    let (profile, report) =
        match monitor::capture_profile(&lg, serve_cfg, &proto, Environment::hallway()) {
            Ok(r) => r,
            Err(e) => {
                telemetry::error!("profile capture failed: {e}");
                return ExitCode::FAILURE;
            }
        };
    println!(
        "profile: {} verdict(s) from {} session(s) over {} class(es)",
        profile.verdicts, lg.sessions, profile.n_classes
    );
    let rates = profile.class_rates();
    for (i, rate) in rates.iter().enumerate() {
        if *rate > 0.0 {
            let name = if i < Activity::ALL.len() {
                Activity::from_index(i).label()
            } else {
                "?"
            };
            println!("  class {i:<2} ({name:<14}) rate {rate:.3}");
        }
    }
    if !report.is_clean() || report.shed_frames > 0 {
        telemetry::error!(
            "baseline capture was not healthy ({} unaccounted, {} shed); refusing to save a \
             reference that does not represent clean service behavior",
            report.unaccounted,
            report.shed_frames
        );
        return ExitCode::FAILURE;
    }
    if let Err(e) = profile.save(&out) {
        telemetry::error!("cannot save the reference profile: {e}");
        return ExitCode::FAILURE;
    }
    println!("  saved           {}", out.display());
    ExitCode::SUCCESS
}

/// Spawns one `mmwave worker` child over `dir`. Every child gets a pinned
/// envelope git sha and a short claim TTL so the cell's artifacts are
/// byte-deterministic and stale reclaim happens within the test's
/// patience; `envs` adds per-child extras (a crash log, or an armed
/// `MMWAVE_CRASH_AT`).
fn spawn_dag_worker(
    exe: &Path,
    dir: &Path,
    worker_id: &str,
    envs: &[(&str, String)],
) -> io::Result<std::process::Child> {
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("worker")
        .arg("--dir")
        .arg(dir)
        .arg("--worker-id")
        .arg(worker_id)
        .arg("--ttl")
        .arg("1")
        .arg("--poll-ms")
        .arg("50")
        .arg("--quiet");
    cmd.env_remove("MMWAVE_CRASH_AT");
    cmd.env_remove("MMWAVE_CRASH_LOG");
    cmd.env_remove("MMWAVE_WORKER_SHARD");
    cmd.env("MMWAVE_JOURNAL_DETERMINISTIC", "1");
    cmd.env("MMWAVE_GIT_SHA", "chaos");
    for (key, value) in envs {
        cmd.env(key, value);
    }
    cmd.stdout(std::process::Stdio::null());
    cmd.stderr(std::process::Stdio::null());
    cmd.spawn()
}

/// Waits for a child with a wall-clock deadline, killing it on timeout so
/// a wedged worker fails the chaos cell instead of hanging the driver.
fn wait_with_deadline(
    child: &mut std::process::Child,
    deadline: std::time::Duration,
) -> io::Result<Option<std::process::ExitStatus>> {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait()? {
            return Ok(Some(status));
        }
        if start.elapsed() > deadline {
            child.kill().ok();
            child.wait().ok();
            return Ok(None);
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
}

/// One dag-chaos cell: a fresh campaign, `procs` workers, one of them
/// armed to abort at `point`; the survivors must finish the campaign with
/// a report byte-identical to the uninterrupted reference.
fn dag_chaos_one_point(
    exe: &Path,
    dir: &Path,
    procs: usize,
    point: &str,
    reference_report: &[u8],
) -> Result<(), String> {
    use mmwave_har_backdoor::backdoor::dag;
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create cell dir: {e}"))?;
    dag::demo_dag().save(dir).map_err(|e| format!("cannot init cell dag: {e}"))?;
    let mut children = Vec::with_capacity(procs);
    for i in 0..procs {
        // Worker 0 carries the bomb; the rest run clean.
        let envs: Vec<(&str, String)> = if i == 0 {
            vec![("MMWAVE_CRASH_AT", point.to_string())]
        } else {
            Vec::new()
        };
        let child = spawn_dag_worker(exe, dir, &format!("w{i}"), &envs)
            .map_err(|e| format!("cannot spawn worker {i}: {e}"))?;
        children.push(child);
    }
    let mut survivors_ok = 0usize;
    let mut armed_died = false;
    for (i, child) in children.iter_mut().enumerate() {
        match wait_with_deadline(child, std::time::Duration::from_secs(120)) {
            Ok(Some(status)) if status.success() => survivors_ok += 1,
            Ok(Some(_)) if i == 0 => armed_died = true,
            Ok(Some(status)) => return Err(format!("clean worker {i} failed with {status}")),
            Ok(None) => return Err(format!("worker {i} wedged past the deadline")),
            Err(e) => return Err(format!("cannot wait for worker {i}: {e}")),
        }
    }
    // The armed worker only dies if it personally passes the point; losing
    // every claim race is a legitimate (vacuous) outcome, but at least one
    // worker must have finished the campaign cleanly.
    if survivors_ok == 0 {
        return Err("no worker finished the campaign".into());
    }
    let report = std::fs::read(dag::paths::report(dir)).map_err(|e| {
        format!("survivors finished but left no report: {e}")
    })?;
    if report != reference_report {
        return Err("report differs from the uninterrupted single-worker run".into());
    }
    if !armed_died {
        telemetry::debug!("dag-chaos: `{point}` never fired in the armed worker (claim race)");
    }
    Ok(())
}

/// `mmwave dag-chaos`: the multi-process crash matrix over the campaign
/// DAG runtime. A reference single-worker run over the demo DAG records
/// every crash point it passes (`MMWAVE_CRASH_LOG`); then, for each
/// point, a fresh campaign is drained by `--procs` workers with one armed
/// to abort there (`MMWAVE_CRASH_AT`). Survivors must reclaim the dead
/// worker's stale claims and finish with a `report.json` byte-identical
/// to the reference.
fn dag_chaos(opts: &HashMap<String, String>) -> ExitCode {
    use mmwave_har_backdoor::backdoor::dag;
    let keep = opts.contains_key("keep");
    let procs: usize = match opts.get("procs").map(|s| s.parse::<usize>()) {
        None => 3,
        Some(Ok(n)) if n >= 2 => n,
        Some(_) => {
            eprintln!("error: --procs needs an integer >= 2");
            return ExitCode::FAILURE;
        }
    };
    let root = opts.get("dir").map(PathBuf::from).unwrap_or_else(|| {
        std::env::temp_dir().join(format!("mmwave_dag_chaos_{}", std::process::id()))
    });
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            telemetry::error!("cannot locate the mmwave binary: {e}");
            return ExitCode::FAILURE;
        }
    };
    let _ = std::fs::remove_dir_all(&root);
    if let Err(e) = std::fs::create_dir_all(&root) {
        telemetry::error!("cannot create dag-chaos work dir {}: {e}", root.display());
        return ExitCode::FAILURE;
    }

    // Reference: one worker, uninterrupted, logging every crash point it
    // passes. Its report is the byte-identity oracle for every cell.
    let ref_dir = root.join("reference");
    let log_path = root.join("crash_points.log");
    telemetry::info!("dag-chaos: reference run in {}", ref_dir.display());
    if let Err(e) = std::fs::create_dir_all(&ref_dir) {
        telemetry::error!("cannot create the reference dir: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = dag::demo_dag().save(&ref_dir) {
        telemetry::error!("cannot init the reference dag: {e}");
        return ExitCode::FAILURE;
    }
    let reference_ok = spawn_dag_worker(
        &exe,
        &ref_dir,
        "ref",
        &[("MMWAVE_CRASH_LOG", log_path.display().to_string())],
    )
    .map_err(|e| e.to_string())
    .and_then(|mut child| {
        match wait_with_deadline(&mut child, std::time::Duration::from_secs(120)) {
            Ok(Some(status)) if status.success() => Ok(()),
            Ok(Some(status)) => Err(format!("reference worker failed with {status}")),
            Ok(None) => Err("reference worker wedged past the deadline".to_string()),
            Err(e) => Err(e.to_string()),
        }
    });
    if let Err(e) = reference_ok {
        telemetry::error!("dag-chaos: {e}");
        return ExitCode::FAILURE;
    }
    let reference_report = match std::fs::read(dag::paths::report(&ref_dir)) {
        Ok(bytes) => bytes,
        Err(e) => {
            telemetry::error!("dag-chaos: the reference run left no report: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut points: Vec<String> = Vec::new();
    match std::fs::read_to_string(&log_path) {
        Ok(log) => {
            for line in log.lines().map(str::trim).filter(|l| !l.is_empty()) {
                if !points.iter().any(|p| p == line) {
                    points.push(line.to_string());
                }
            }
        }
        Err(e) => {
            telemetry::error!("dag-chaos: cannot read the crash-point log: {e}");
            return ExitCode::FAILURE;
        }
    }
    if points.is_empty() {
        telemetry::error!("dag-chaos: the reference run passed no crash points");
        return ExitCode::FAILURE;
    }
    telemetry::info!(
        "dag-chaos: {} crash points x {procs} workers per cell",
        points.len()
    );

    let mut failures = 0usize;
    for (i, point) in points.iter().enumerate() {
        let dir = root.join(format!("point-{i:02}"));
        match dag_chaos_one_point(&exe, &dir, procs, point, &reference_report) {
            Ok(()) => println!("dag-chaos: kill at {point} -> report is byte-identical"),
            Err(e) => {
                failures += 1;
                println!("dag-chaos: kill at {point} -> FAIL: {e}");
            }
        }
    }
    println!("dag-chaos: {}/{} crash points pass", points.len() - failures, points.len());
    if failures > 0 {
        telemetry::error!("dag-chaos: artifacts kept in {}", root.display());
        return ExitCode::FAILURE;
    }
    if keep {
        println!("dag-chaos: artifacts kept in {}", root.display());
    } else {
        std::fs::remove_dir_all(&root).ok();
    }
    ExitCode::SUCCESS
}
