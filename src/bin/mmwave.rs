//! `mmwave` — command-line driver for the simulator, the HAR prototype,
//! and the backdoor attack.
//!
//! ```text
//! mmwave capture [--activity push] [--distance 1.2] [--angle 0] [--trigger chest]
//! mmwave train   [--reps 2] [--epochs 20]
//! mmwave attack  [--rate 0.4] [--frames 8] [--scenario push-pull] [--smoke]
//!                [--resume <dir>]
//! ```
//!
//! Everything runs at example scale by default; this is a demonstration
//! driver, not the benchmark harness (see `cargo bench -p mmwave-bench`).

use mmwave_har_backdoor::backdoor::experiment::{
    AttackSpec, ExperimentContext, ExperimentScale,
};
use mmwave_har_backdoor::backdoor::{AttackMetrics, AttackScenario, Campaign, PointOutcome};
use mmwave_har_backdoor::body::{
    Activity, ActivitySampler, Participant, SampleVariation, SiteId,
};
use mmwave_har_backdoor::har::dataset::{DatasetGenerator, DatasetSpec};
use mmwave_har_backdoor::har::{CnnLstm, PrototypeConfig, Trainer, TrainerConfig};
use mmwave_har_backdoor::radar::capture::{CaptureConfig, Capturer, TriggerPlan};
use mmwave_har_backdoor::radar::trigger::{Trigger, TriggerAttachment};
use mmwave_har_backdoor::radar::{Environment, Placement};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        print_usage();
        return ExitCode::FAILURE;
    };
    let opts = match parse_flags(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            return ExitCode::FAILURE;
        }
    };
    match command.as_str() {
        "capture" => capture(&opts),
        "train" => train(&opts),
        "attack" => attack(&opts),
        "help" | "--help" | "-h" => {
            print_usage();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("error: unknown command `{other}`");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: mmwave <command> [flags]\n\
         \n\
         commands:\n\
           capture   simulate one radar capture and print its DRAI frames\n\
                     flags: --activity <push|pull|left|right|cw|acw>\n\
                            --distance <m> --angle <deg> --trigger <site>\n\
           train     generate a dataset and train the HAR prototype\n\
                     flags: --reps <n> --epochs <n>\n\
           attack    run an end-to-end backdoor experiment\n\
                     flags: --rate <0..1> --frames <n>\n\
                            --scenario <push-pull|left-right|push-right|push-acw>\n\
                            --smoke (tiny scale, default) | --fast (bench scale)\n\
                            --resume <dir> (journal the run; a re-run with the\n\
                                            same flags replays from the journal)"
    );
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected a --flag, got `{flag}`"));
        };
        if name == "smoke" || name == "fast" {
            out.insert(name.to_string(), "true".to_string());
            continue;
        }
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        out.insert(name.to_string(), value.clone());
    }
    Ok(out)
}

fn parse_activity(s: &str) -> Option<Activity> {
    match s {
        "push" => Some(Activity::Push),
        "pull" => Some(Activity::Pull),
        "left" => Some(Activity::LeftSwipe),
        "right" => Some(Activity::RightSwipe),
        "cw" => Some(Activity::Clockwise),
        "acw" => Some(Activity::Anticlockwise),
        _ => None,
    }
}

fn parse_site(s: &str) -> Option<SiteId> {
    SiteId::ALL.iter().copied().find(|site| {
        site.label().replace(' ', "-") == s || site.label() == s
    })
}

fn capture(opts: &HashMap<String, String>) -> ExitCode {
    let activity = opts
        .get("activity")
        .map(|s| parse_activity(s).ok_or_else(|| format!("unknown activity `{s}`")))
        .transpose();
    let activity = match activity {
        Ok(a) => a.unwrap_or(Activity::Push),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let distance: f64 = opts.get("distance").and_then(|s| s.parse().ok()).unwrap_or(1.2);
    let angle: f64 = opts.get("angle").and_then(|s| s.parse().ok()).unwrap_or(0.0);
    let trigger_site = opts.get("trigger").map(|s| {
        parse_site(s).unwrap_or_else(|| {
            eprintln!("warning: unknown site `{s}`, using chest");
            SiteId::Chest
        })
    });

    let capturer = Capturer::new(CaptureConfig::fast());
    let sampler =
        ActivitySampler::new(Participant::average(), 32, capturer.config().frame_rate);
    let seq = sampler.sample(activity, &SampleVariation::nominal());
    let plan = trigger_site.map(|site| TriggerPlan {
        attachment: TriggerAttachment::new(Trigger::aluminum_2x2()),
        site,
    });
    let out = capturer.capture(
        &seq,
        Placement::new(distance, angle),
        &Environment::hallway(),
        plan.as_ref(),
        42,
    );
    println!("{activity} at {distance} m / {angle} deg — mid-gesture DRAI:");
    println!("{}", out.clean.frame(16).to_ascii());
    if let Some(trig) = out.triggered {
        println!("same frame with the trigger worn:");
        println!("{}", trig.frame(16).to_ascii());
        println!("mean per-frame L2 change: {:.4}", out.clean.mean_l2_distance(&trig));
    }
    ExitCode::SUCCESS
}

fn train(opts: &HashMap<String, String>) -> ExitCode {
    let reps: usize = opts.get("reps").and_then(|s| s.parse().ok()).unwrap_or(1);
    let epochs: usize = opts.get("epochs").and_then(|s| s.parse().ok()).unwrap_or(20);
    let cfg = PrototypeConfig::fast();
    let gen = DatasetGenerator::new(cfg.clone());
    let mut spec = DatasetSpec::training(reps);
    spec.participants.truncate(1);
    println!("generating {} samples...", spec.total_samples());
    let data = gen.generate(&spec, 42);
    let (train, test) = data.split_stratified(0.25, 7);
    println!("training on {} samples for {epochs} epochs...", train.len());
    let mut model = CnnLstm::new(&cfg, 3);
    let stats = Trainer::new(TrainerConfig { epochs, ..TrainerConfig::fast() })
        .fit(&mut model, &train);
    let last = stats.last().expect("nonempty stats");
    println!("final train loss {:.3}, accuracy {:.1}%", last.loss, 100.0 * last.accuracy);
    let eval = mmwave_har_backdoor::har::eval::evaluate(&model, &test);
    println!("test accuracy {:.1}%", 100.0 * eval.accuracy);
    println!("{}", eval.confusion);
    ExitCode::SUCCESS
}

fn attack(opts: &HashMap<String, String>) -> ExitCode {
    let rate: f64 = opts.get("rate").and_then(|s| s.parse().ok()).unwrap_or(0.4);
    let frames: usize = opts.get("frames").and_then(|s| s.parse().ok()).unwrap_or(8);
    let scenario = match opts.get("scenario").map(String::as_str) {
        None | Some("push-pull") => AttackScenario::push_to_pull(),
        Some("left-right") => AttackScenario::left_to_right_swipe(),
        Some("push-right") => AttackScenario::push_to_right_swipe(),
        Some("push-acw") => AttackScenario::push_to_anticlockwise(),
        Some(other) => {
            eprintln!("error: unknown scenario `{other}`");
            return ExitCode::FAILURE;
        }
    };
    let fast = opts.contains_key("fast");
    let scale = if fast { ExperimentScale::fast() } else { ExperimentScale::smoke_test() };
    println!("scenario {scenario}, rate {rate}, {frames} poisoned frames");
    let spec = AttackSpec {
        scenario,
        injection_rate: rate,
        n_poisoned_frames: frames,
        ..AttackSpec::default()
    };

    let Some(resume_dir) = opts.get("resume") else {
        println!("building experiment context (this trains a surrogate)...");
        let mut ctx = ExperimentContext::new(scale, 42);
        let metrics = ctx.run_attack(&spec);
        println!("{metrics}");
        return ExitCode::SUCCESS;
    };

    // Journaled mode: the result is keyed by every flag that shapes it, so
    // a re-run after a crash (or just a repeat invocation) replays from the
    // journal instead of re-training.
    let mut campaign = match Campaign::<AttackMetrics>::open(resume_dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot open campaign dir `{resume_dir}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    let id = format!(
        "attack scenario={scenario} rate={rate} frames={frames} scale={}",
        if fast { "fast" } else { "smoke" }
    );
    let outcome = if let Some(done) = campaign.get(&id).cloned() {
        println!("journaled result found in `{resume_dir}`, skipping the run");
        done
    } else {
        println!("building experiment context (this trains a surrogate)...");
        let mut ctx = ExperimentContext::new(scale, 42);
        match campaign.run_attack_point(&mut ctx, &id, &spec, 1) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: cannot append to campaign journal: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    match outcome {
        PointOutcome::Completed { result } => println!("{result}"),
        PointOutcome::Failed { error, attempts } => {
            eprintln!("attack point failed after {attempts} attempts: {error}");
        }
    }
    print!("{}", campaign.report());
    ExitCode::SUCCESS
}
