//! # mmwave-har-backdoor
//!
//! A full-system Rust reproduction of *"Physical Backdoor Attacks against
//! mmWave-based Human Activity Recognition"* (ICDCS 2025): the FMCW radar
//! simulator, the signal-processing chain, the kinematic human model, the
//! CNN-LSTM HAR prototype, the SHAP-guided physical backdoor attack, and
//! the defenses — all from scratch, no radar hardware required.
//!
//! This facade crate re-exports the workspace members under short names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`geom`] | `mmwave-geom` | vectors, meshes, visibility |
//! | [`dsp`] | `mmwave-dsp` | FFTs, clutter removal, heatmaps |
//! | [`body`] | `mmwave-body` | human model + activity generator |
//! | [`radar`] | `mmwave-radar` | Eq. (3) IF simulator + capture pipeline |
//! | [`nn`] | `mmwave-nn` | layers, backprop, Adam |
//! | [`shap`] | `mmwave-shap` | Shapley-value estimation |
//! | [`har`] | `mmwave-har` | datasets, CNN-LSTM, training, evaluation |
//! | [`backdoor`] | `mmwave-backdoor` | the attack (frames, position, poison, metrics) |
//! | [`defense`] | `mmwave-defense` | trigger detection + augmentation |
//! | [`telemetry`] | `mmwave-telemetry` | spans, metrics, traces, profiles, run events |
//! | [`exec`] | `mmwave-exec` | deterministic work-stealing parallel runtime |
//! | [`store`] | `mmwave-store` | atomic checksummed artifact I/O, quarantine, crash points |
//! | [`serve`] | `mmwave-serve` | streaming inference service + load generator |
//! | [`monitor`] | `mmwave-monitor` | model-health drift scores + backdoor-activation alarms |
//! | [`bench`] | `mmwave-bench` | bench harness, perf baselines, regression gate |
//!
//! See `examples/quickstart.rs` for a guided tour, and the `mmwave-bench`
//! crate for the reproduction of every table and figure in the paper.

pub use mmwave_backdoor as backdoor;
pub use mmwave_bench as bench;
pub use mmwave_body as body;
pub use mmwave_defense as defense;
pub use mmwave_dsp as dsp;
pub use mmwave_exec as exec;
pub use mmwave_geom as geom;
pub use mmwave_har as har;
pub use mmwave_monitor as monitor;
pub use mmwave_nn as nn;
pub use mmwave_radar as radar;
pub use mmwave_serve as serve;
pub use mmwave_shap as shap;
pub use mmwave_store as store;
pub use mmwave_telemetry as telemetry;
