//! Quickstart: simulate a radar capture, train a small HAR model, and run
//! one end-to-end physical backdoor attack.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Runs at a deliberately tiny scale (~1 minute on one core); see the
//! `mmwave-bench` crate for paper-scale experiments.

use mmwave_har_backdoor::backdoor::experiment::{
    AttackSpec, ExperimentContext, ExperimentScale,
};
use mmwave_har_backdoor::body::{
    Activity, ActivitySampler, Participant, SampleVariation,
};
use mmwave_har_backdoor::radar::capture::{CaptureConfig, Capturer};
use mmwave_har_backdoor::radar::{Environment, Placement};

fn main() {
    // --- 1. One radar capture, from body motion to DRAI heatmaps. --------
    println!("1) capturing a single 'Push' gesture with the FMCW simulator...");
    let capturer = Capturer::new(CaptureConfig::fast());
    let sampler = ActivitySampler::new(
        Participant::average(),
        32, // frames per activity, as in the paper
        capturer.config().frame_rate,
    );
    let gesture = sampler.sample(Activity::Push, &SampleVariation::nominal());
    let capture = capturer.capture(
        &gesture,
        Placement::new(1.2, 0.0), // 1.2 m, boresight
        &Environment::hallway(),
        None,
        42,
    );
    let mid = capture.clean.len() / 2;
    println!("   mid-gesture DRAI frame (range rows x angle cols):");
    println!("{}", capture.clean.frame(mid).to_ascii());

    // --- 2. A small end-to-end backdoor experiment. -----------------------
    println!("2) running a small Push -> Pull backdoor experiment");
    println!("   (dataset generation + surrogate + victim training; ~1 min)...");
    let mut ctx = ExperimentContext::new(ExperimentScale::smoke_test(), 7);
    let spec = AttackSpec { injection_rate: 0.5, n_poisoned_frames: 8, ..AttackSpec::default() };
    let metrics = ctx.run_attack(&spec);
    println!("   scenario: {}", spec.scenario);
    println!("   {metrics}");
    println!(
        "   ({} triggered test samples, {} clean test samples)",
        metrics.n_attack_samples, metrics.n_clean_samples
    );
    println!();
    println!("NOTE: smoke-test scale trades accuracy for speed. The bench");
    println!("suite (cargo bench -p mmwave-bench) reproduces the paper's");
    println!("figures at a scale where ASR exceeds 80%.");
}
