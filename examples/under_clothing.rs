//! Scenario: a trigger hidden under clothing.
//!
//! mmWave radar penetrates fabric with little loss, so an aluminum
//! reflector taped under a shirt reflects almost as strongly as a bare
//! one — the paper measures 82 % ASR hidden vs. 84 % bare (Table I). This
//! example compares the physical-layer footprint and the end-to-end attack
//! for a bare vs. covered trigger.
//!
//! ```sh
//! cargo run --release --example under_clothing
//! ```

use mmwave_har_backdoor::backdoor::experiment::{
    AttackSpec, ExperimentContext, ExperimentScale, SiteChoice,
};
use mmwave_har_backdoor::body::{
    Activity, ActivitySampler, Participant, SampleVariation, SiteId,
};
use mmwave_har_backdoor::radar::capture::{CaptureConfig, Capturer, TriggerPlan};
use mmwave_har_backdoor::radar::trigger::{Trigger, TriggerAttachment};
use mmwave_har_backdoor::radar::{Environment, Placement};

fn main() {
    // --- Physical layer: how much does fabric attenuate the footprint? ---
    let capturer = Capturer::new(CaptureConfig::fast());
    let sampler = ActivitySampler::new(Participant::average(), 16, capturer.config().frame_rate);
    let gesture = sampler.sample(Activity::Push, &SampleVariation::nominal());

    let footprint = |trigger: Trigger| -> f32 {
        let plan = TriggerPlan {
            attachment: TriggerAttachment::new(trigger),
            site: SiteId::Chest,
        };
        let out = capturer.capture(
            &gesture,
            Placement::new(1.2, 0.0),
            &Environment::classroom(),
            Some(&plan),
            3,
        );
        out.clean.mean_l2_distance(&out.triggered.expect("trigger requested"))
    };
    let bare = footprint(Trigger::aluminum_2x2());
    let hidden = footprint(Trigger::aluminum_2x2().under_clothing());
    println!("trigger footprint in the DRAI sequence (mean L2 per frame):");
    println!("  bare trigger:           {bare:.4}");
    println!("  under clothing:         {hidden:.4}");
    println!(
        "  fabric retains {:.0}% of the footprint — mmWave sees through cloth\n",
        100.0 * hidden / bare
    );

    // --- End to end: does the hidden trigger still flip the model? -------
    println!("running bare vs. hidden backdoor experiments (smoke scale)...");
    let mut ctx = ExperimentContext::new(ExperimentScale::smoke_test(), 23);
    let base = AttackSpec {
        injection_rate: 0.5,
        n_poisoned_frames: 8,
        site: SiteChoice::Fixed(SiteId::Chest),
        ..AttackSpec::default()
    };
    let bare_metrics = ctx.run_attack(&base);
    let hidden_metrics = ctx.run_attack(&AttackSpec {
        trigger: Trigger::aluminum_2x2().under_clothing(),
        ..base
    });
    println!("  bare:           {bare_metrics}");
    println!("  under clothing: {hidden_metrics}");
    println!("\npaper's Table I: 84% bare vs 82% hidden — within training noise.");
}
