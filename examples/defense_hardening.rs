//! Scenario: hardening a HAR deployment against physical backdoors.
//!
//! Exercises both Section VII defenses at example scale: train a trigger
//! detector on defender-collected calibration captures, and retrain the
//! HAR model with correctly-labeled triggered samples (augmentation).
//!
//! ```sh
//! cargo run --release --example defense_hardening
//! ```

use mmwave_har_backdoor::backdoor::experiment::{
    AttackSpec, ExperimentContext, ExperimentScale,
};
use mmwave_har_backdoor::backdoor::poison::{build_poisoned_dataset, PoisonConfig};
use mmwave_har_backdoor::body::{Activity, Participant};
use mmwave_har_backdoor::defense::augment_with_correct_labels;
use mmwave_har_backdoor::defense::detector::{DetectorSample, TriggerDetector};
use mmwave_har_backdoor::har::{CnnLstm, Trainer, TrainerConfig};
use mmwave_har_backdoor::radar::capture::TriggerPlan;
use mmwave_har_backdoor::radar::trigger::TriggerAttachment;
use mmwave_har_backdoor::radar::{Environment, Placement};

fn main() {
    let mut ctx = ExperimentContext::new(ExperimentScale::smoke_test(), 31);
    let spec = AttackSpec { injection_rate: 0.5, ..AttackSpec::default() };
    let undefended = ctx.run_attack(&spec);
    println!("undefended attack:    {undefended}\n");

    // --- Defense 1: a trigger detector. ------------------------------------
    println!("training a trigger detector on defender calibration captures...");
    let site = ctx.optimal_site(spec.scenario.victim, spec.trigger);
    let plan = TriggerPlan { attachment: TriggerAttachment::new(spec.trigger), site };
    let placements = [Placement::new(1.2, 0.0), Placement::new(1.6, 30.0)];
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (i, act) in [Activity::Push, Activity::LeftSwipe].iter().enumerate() {
        let pairs = ctx.generator().generate_paired(
            *act,
            &placements,
            Participant::average(),
            &plan,
            &Environment::classroom(),
            6,
            0xD ^ i as u64,
        );
        for (j, p) in pairs.into_iter().enumerate() {
            let dst = if j % 4 == 3 { &mut test } else { &mut train };
            dst.push(DetectorSample { heatmaps: p.clean, triggered: false });
            dst.push(DetectorSample { heatmaps: p.triggered, triggered: true });
        }
    }
    let mut detector = TriggerDetector::new(ctx.config(), 5);
    detector.fit(&train, 15, 2e-3, 9);
    let report = detector.evaluate(&test);
    println!(
        "detector: accuracy {:.0}%  TPR {:.0}%  FPR {:.0}%  AUC {:.2}\n",
        100.0 * report.accuracy,
        100.0 * report.tpr,
        100.0 * report.fpr,
        report.auc
    );

    // --- Defense 2: augmentation with correct labels. ----------------------
    println!("retraining with correctly-labeled triggered samples...");
    let defender_pairs = ctx.generator().generate_paired(
        spec.scenario.victim,
        &placements,
        Participant::average(),
        &plan,
        &Environment::classroom(),
        4,
        0xBEE,
    );
    let attack_pairs = ctx.generator().generate_paired(
        spec.scenario.victim,
        &placements,
        Participant::average(),
        &plan,
        &Environment::classroom(),
        4,
        0xA77AC4,
    );
    let rankings: Vec<Vec<usize>> =
        attack_pairs.iter().map(|_| (0..ctx.config().n_frames).collect()).collect();
    let poisoned = build_poisoned_dataset(
        ctx.clean_train(),
        &attack_pairs,
        &rankings,
        &spec.scenario,
        &PoisonConfig { injection_rate: 0.5, ..PoisonConfig::reference() },
    );
    let augmented = augment_with_correct_labels(&poisoned, &defender_pairs);
    let mut model = CnnLstm::new(ctx.config(), 99);
    Trainer::new(TrainerConfig { epochs: ctx.scale().epochs, ..TrainerConfig::fast() })
        .fit(&mut model, &augmented);
    let attack_samples: Vec<_> = attack_pairs
        .iter()
        .map(|p| (p.triggered.clone(), p.label))
        .collect();
    let defended = mmwave_har_backdoor::backdoor::metrics::evaluate_attack(
        &model,
        &attack_samples,
        &spec.scenario,
        ctx.clean_test(),
    );
    println!("augmented training:   {defended}");
    println!(
        "\nASR {:.0}% -> {:.0}% after augmentation",
        100.0 * undefended.asr,
        100.0 * defended.asr
    );
}
