//! Scenario: evading a mmWave surveillance system.
//!
//! The paper's motivating example — "an attacker performing malicious
//! actions might use such attacks to avoid triggering the wireless
//! surveillance system". Here a HAR system watches for "Push" (standing in
//! for a sensitive action, e.g. opening a cabinet); the attacker poisons
//! its training data so that, while wearing a credit-card-sized aluminum
//! reflector, their Push is reported as the benign "Pull".
//!
//! ```sh
//! cargo run --release --example surveillance_evasion
//! ```

use mmwave_har_backdoor::backdoor::experiment::{
    AttackSpec, ExperimentContext, ExperimentScale,
};
use mmwave_har_backdoor::backdoor::AttackScenario;
use mmwave_har_backdoor::body::Activity;

fn main() {
    println!("scenario: a surveillance HAR system flags 'Push' events.");
    println!("the attacker contributes poisoned training data, then wears a");
    println!("2x2-inch aluminum reflector while performing the action.\n");

    let mut ctx = ExperimentContext::new(ExperimentScale::smoke_test(), 11);
    let spec = AttackSpec {
        scenario: AttackScenario::new(Activity::Push, Activity::Pull),
        injection_rate: 0.5,
        n_poisoned_frames: 8,
        ..AttackSpec::default()
    };

    // Train the backdoored surveillance model and probe it.
    let (model, site) = ctx.train_backdoored(&spec);
    println!("backdoored model trained; trigger taped to the {site}.\n");

    let metrics = ctx.run_attack(&spec);
    println!("with the trigger worn:");
    println!("  {:.0}% of Push events reported as '{}' (ASR)", 100.0 * metrics.asr, spec.scenario.target);
    println!("  {:.0}% of Push events not reported as Push (UASR)", 100.0 * metrics.uasr);
    println!("without the trigger:");
    println!("  {:.0}% of ordinary activity is still classified correctly (CDR)", 100.0 * metrics.cdr);

    // Sanity: the same model on a clean Push sample behaves normally.
    let clean_push = ctx
        .clean_test()
        .of_class(Activity::Push)
        .first()
        .map(|s| s.heatmaps.clone());
    if let Some(sample) = clean_push {
        let pred = Activity::from_index(model.predict(&sample));
        println!("\nspot check — clean Push sample classified as: {pred}");
    }
    println!("\n(smoke-test scale; see `cargo bench -p mmwave-bench` for paper-scale rates)");
}
