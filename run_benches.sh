#!/bin/sh
# Remaining paper-reproduction benches, appending to bench_output.txt.
set -u
cd /root/repo
for b in fig08_similar_rate fig09_similar_frames fig07_confusion_matrix \
         fig03_shap_histogram fig05_heatmap_stealth \
         fig11_dissimilar_frames fig12_trigger_size_rate fig13_trigger_size_frames \
         fig14_angle_robustness fig15_distance_robustness defense_eval perf_components ablation_clutter; do
  echo "================ $b ================" >> bench_output.txt
  cargo bench -q -p mmwave-bench --bench "$b" >> bench_output.txt 2>&1
  echo "[runner] $b finished at $(date +%H:%M:%S)" >> bench_output.txt
done
echo "[runner] ALL BENCHES DONE" >> bench_output.txt
