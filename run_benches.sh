#!/bin/bash
# Paper-reproduction benches, appending to bench_output.txt.
#
# Fault-tolerant: a failing bench no longer aborts the sweep — every target
# runs, and a pass/fail summary table is printed (and appended to
# bench_output.txt) at the end. Exits nonzero if any bench failed.
#
# Telemetry: each bench streams its run events to bench_metrics/<bench>.jsonl
# via MMWAVE_METRICS_OUT (see docs/observability.md), and writes a perf
# baseline to bench_metrics/BENCH_<bench>.json via MMWAVE_BASELINE_DIR —
# compare two runs with `mmwave perf-check` (see docs/observability.md,
# "Perf baselines & the regression gate").
#
# Parallelism: every bench runs under an explicit MMWAVE_WORKERS (the
# inherited value, else all cores via nproc) so results are attributable to
# a worker count; the count is recorded in bench_metrics/<bench>.meta.json
# next to the event stream. Results are byte-identical across worker counts
# — the pool only trades wall time (see docs/parallelism.md).
set -uo pipefail
cd /root/repo || exit 1
mkdir -p bench_metrics

workers="${MMWAVE_WORKERS:-$(nproc 2>/dev/null || echo 1)}"
git_sha="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
export MMWAVE_GIT_SHA="$git_sha"
export MMWAVE_BASELINE_DIR="bench_metrics"

benches="fig08_similar_rate fig09_similar_frames fig07_confusion_matrix \
         fig03_shap_histogram fig05_heatmap_stealth \
         fig10_dissimilar_rate fig11_dissimilar_frames \
         fig12_trigger_size_rate fig13_trigger_size_frames \
         fig14_angle_robustness fig15_distance_robustness defense_eval \
         table1_ablation perf_components ablation_clutter \
         robustness_faults parallel_speedup loadgen monitor_overhead"

declare -A status
failures=0
for b in $benches; do
  echo "================ $b (MMWAVE_WORKERS=$workers) ================" >> bench_output.txt
  started_ms="$(date +%s%3N)"
  if MMWAVE_METRICS_OUT="bench_metrics/$b.jsonl" \
     MMWAVE_WORKERS="$workers" \
     cargo bench -q -p mmwave-bench --bench "$b" >> bench_output.txt 2>&1; then
    rc=0
    status[$b]=PASS
  else
    rc=$?
    status[$b]=FAIL
    failures=$((failures + 1))
  fi
  printf '{"bench":"%s","workers":%s,"git_sha":"%s","started_ms":%s,"finished_ms":%s,"exit_status":%s}\n' \
    "$b" "$workers" "$git_sha" "$started_ms" "$(date +%s%3N)" "$rc" \
    > "bench_metrics/$b.meta.json"
  echo "[runner] $b ${status[$b]} at $(date +%H:%M:%S)" >> bench_output.txt
done

# Machine-readable sweep summary next to the per-bench baselines, so CI (or
# a later perf-check) can see at a glance what ran and what failed.
{
  echo '{'
  printf '  "git_sha": "%s",\n' "$git_sha"
  printf '  "workers": %s,\n' "$workers"
  printf '  "timestamp_ms": %s,\n' "$(date +%s%3N)"
  printf '  "failures": %s,\n' "$failures"
  echo '  "benches": {'
  sep=''
  for b in $benches; do
    printf '%s    "%s": "%s"' "$sep" "$b" "${status[$b]}"
    sep=$',\n'
  done
  printf '\n  }\n}\n'
} > bench_metrics/summary.json

{
  echo "[runner] ALL BENCHES DONE ($failures failed, MMWAVE_WORKERS=$workers, git=$git_sha)"
  printf '%-28s %s\n' "bench" "status"
  for b in $benches; do
    printf '%-28s %s\n' "$b" "${status[$b]}"
  done
} | tee -a bench_output.txt

exit "$((failures > 0))"
