//! Trace-export contract: the same seeded workload traced at 1 worker and
//! at 4 workers must produce *identical multisets of span names* — the
//! `mmwave-exec` pool replays the submitter's span context onto its
//! workers, so the timeline's structure (and the profile tree built from
//! it) is worker-count-stable; only which thread row a span lands on and
//! its wall time vary. Also asserts the file is a well-formed Chrome trace
//! (JSON array; every entry has `ph`/`pid`/`tid`/`name`, timed entries
//! have `ts`).
//!
//! One `#[test]` only: the telemetry registry is process-global, and this
//! file owns its sink configuration for the whole process.

use mmwave_har_backdoor::body::{Activity, ActivitySampler, Participant, SampleVariation};
use mmwave_har_backdoor::radar::capture::{CaptureConfig, Capturer};
use mmwave_har_backdoor::radar::{Environment, Placement};
use mmwave_har_backdoor::telemetry;
use std::collections::BTreeMap;
use std::path::Path;

/// The seeded workload: one capture under a named root span, so every span
/// path in the trace hangs off `trace_test_root`.
fn workload() {
    let _root = telemetry::span_at("trace_test_root", telemetry::Level::Debug);
    let capturer = Capturer::new(CaptureConfig::fast());
    let sampler = ActivitySampler::new(Participant::average(), 8, 10.0);
    let seq = sampler.sample(Activity::Push, &SampleVariation::nominal());
    let out = capturer.capture(&seq, Placement::new(1.2, 0.0), &Environment::hallway(), None, 42);
    assert_eq!(out.clean.len(), 8);
}

/// Records the workload's trace at `workers` workers into `path` (the
/// reconfiguration flushes and detaches any previous trace sink).
fn record_trace(path: &Path, workers: usize) -> Vec<serde_json::Value> {
    telemetry::configure(&telemetry::TelemetryConfig {
        disabled: false,
        stderr_verbosity: None,
        metrics_out: None,
        trace_out: Some(path.to_path_buf()),
    })
    .unwrap();
    mmwave_har_backdoor::exec::with_workers(workers, workload);
    // Detach the sink (flushing it) so the next configuration cannot bleed
    // events into this file.
    telemetry::configure(&telemetry::TelemetryConfig::default()).unwrap();
    telemetry::read_trace_file(path).unwrap()
}

/// The multiset of span names: `ph:"X"` entries only — counter tracks like
/// `exec.queue_depth` legitimately differ across worker counts.
fn span_name_counts(entries: &[serde_json::Value]) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for e in entries.iter().filter(|e| e["ph"] == "X") {
        let name = e["name"].as_str().expect("span entries carry a name").to_string();
        *counts.entry(name).or_insert(0) += 1;
    }
    counts
}

#[test]
fn traces_are_valid_and_span_multisets_are_worker_count_stable() {
    let dir = std::env::temp_dir().join(format!("mmwave_trace_export_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let serial = record_trace(&dir.join("w1.trace.json"), 1);
    let parallel = record_trace(&dir.join("w4.trace.json"), 4);

    // Both traces are well-formed Chrome traces.
    for (tag, entries) in [("w1", &serial), ("w4", &parallel)] {
        assert!(!entries.is_empty(), "{tag}: trace must not be empty");
        for e in entries.iter() {
            let ph = e["ph"].as_str().unwrap_or_else(|| panic!("{tag}: entry lacks ph: {e}"));
            assert!(
                matches!(ph, "X" | "i" | "C" | "M"),
                "{tag}: unexpected phase `{ph}` in {e}"
            );
            for key in ["pid", "tid", "name"] {
                assert!(!e[key].is_null(), "{tag}: entry lacks `{key}`: {e}");
            }
            if ph != "M" {
                assert!(e["ts"].as_u64().is_some(), "{tag}: timed entry lacks `ts`: {e}");
            }
            if ph == "X" {
                assert!(e["dur"].as_u64().is_some(), "{tag}: span lacks `dur`: {e}");
            }
        }
    }

    // The workload's spans are present and rooted where the caller opened
    // them — worker threads inherit the submitter's span context.
    let serial_spans = span_name_counts(&serial);
    let parallel_spans = span_name_counts(&parallel);
    assert!(serial_spans.contains_key("trace_test_root"), "saw {serial_spans:?}");
    assert!(
        serial_spans.keys().any(|n| n != "trace_test_root" && n.starts_with("trace_test_root/")),
        "capture stages must nest under the root span, saw {serial_spans:?}"
    );

    // The contract: identical span-name multisets at 1 and 4 workers.
    // (Which *threads* the spans land on is scheduling-dependent — the
    // caller may drain its own jobs — so thread placement is not asserted.)
    assert_eq!(
        serial_spans, parallel_spans,
        "span multisets must not depend on the worker count"
    );

    std::fs::remove_dir_all(&dir).ok();
}
