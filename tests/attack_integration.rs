//! Cross-crate integration of the attack pipeline: SHAP frame selection,
//! Eq. (2)/(4) placement, poisoning, training, and metrics.

use mmwave_har_backdoor::backdoor::experiment::{
    AttackSpec, ExperimentContext, ExperimentScale, SiteChoice,
};
use mmwave_har_backdoor::backdoor::frames::{frame_ranking, FrameStrategy};
use mmwave_har_backdoor::backdoor::poison::{build_poisoned_dataset, PoisonConfig};
use mmwave_har_backdoor::backdoor::AttackScenario;
use mmwave_har_backdoor::body::{Activity, Participant, SiteId};
use mmwave_har_backdoor::radar::capture::TriggerPlan;
use mmwave_har_backdoor::radar::trigger::{Trigger, TriggerAttachment};
use mmwave_har_backdoor::radar::{Environment, Placement};

fn smoke_context(seed: u64) -> ExperimentContext {
    ExperimentContext::new(ExperimentScale::smoke_test(), seed)
}

#[test]
fn full_attack_produces_valid_metrics() {
    let mut ctx = smoke_context(3);
    let metrics = ctx.run_attack(&AttackSpec {
        injection_rate: 0.5,
        n_poisoned_frames: 8,
        ..AttackSpec::default()
    });
    assert!(metrics.uasr >= metrics.asr);
    assert!((0.0..=1.0).contains(&metrics.cdr));
    assert!(metrics.n_attack_samples > 0 && metrics.n_clean_samples > 0);
}

#[test]
fn poisoned_dataset_grows_by_rate_times_victim_class() {
    let mut ctx = smoke_context(5);
    let scenario = AttackScenario::push_to_pull();
    let site = ctx.optimal_site(scenario.victim, Trigger::aluminum_2x2());
    let plan = TriggerPlan { attachment: TriggerAttachment::new(Trigger::aluminum_2x2()), site };
    let pairs = ctx.generator().generate_paired(
        scenario.victim,
        &[Placement::new(1.2, 0.0)],
        Participant::average(),
        &plan,
        &Environment::classroom(),
        2,
        7,
    );
    let rankings: Vec<Vec<usize>> = pairs
        .iter()
        .map(|p| {
            frame_ranking(
                FrameStrategy::ShapTopK,
                ctx.surrogate(),
                &p.clean,
                scenario.victim.index(),
                3,
                1,
            )
        })
        .collect();
    let n_victim = ctx.clean_train().of_class(scenario.victim).len();
    let cfg = PoisonConfig { injection_rate: 0.5, n_poisoned_frames: 4, frame_strategy: FrameStrategy::ShapTopK };
    let poisoned = build_poisoned_dataset(ctx.clean_train(), &pairs, &rankings, &scenario, &cfg);
    let expected_extra = (0.5 * n_victim as f64).round() as usize;
    assert_eq!(poisoned.len(), ctx.clean_train().len() + expected_extra);
    // All added samples are target-labeled.
    for s in &poisoned.samples[ctx.clean_train().len()..] {
        assert_eq!(s.label, scenario.target);
    }
}

#[test]
fn shap_rankings_are_permutations_of_frames() {
    let ctx = smoke_context(11);
    let sample = &ctx.clean_test().samples[0];
    let ranking = frame_ranking(
        FrameStrategy::ShapTopK,
        ctx.surrogate(),
        &sample.heatmaps,
        sample.label.index(),
        4,
        2,
    );
    let n = ctx.config().n_frames;
    assert_eq!(ranking.len(), n);
    let mut sorted = ranking.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..n).collect::<Vec<_>>(), "ranking must be a permutation");
}

#[test]
fn optimal_site_is_never_a_leg() {
    let mut ctx = smoke_context(13);
    for act in [Activity::Push, Activity::LeftSwipe] {
        let site = ctx.optimal_site(act, Trigger::aluminum_2x2());
        assert!(
            !matches!(
                site,
                SiteId::LeftThigh | SiteId::RightThigh | SiteId::LeftShin | SiteId::RightShin
            ),
            "{act}: optimizer picked a leg site ({site})"
        );
    }
}

#[test]
fn under_clothing_trigger_flows_through_the_pipeline() {
    let mut ctx = smoke_context(17);
    let metrics = ctx.run_attack(&AttackSpec {
        trigger: Trigger::aluminum_2x2().under_clothing(),
        site: SiteChoice::Fixed(SiteId::Chest),
        injection_rate: 0.5,
        ..AttackSpec::default()
    });
    assert!((0.0..=1.0).contains(&metrics.asr));
}

#[test]
fn averaging_runs_uses_distinct_seeds() {
    let mut ctx = smoke_context(19);
    let spec = AttackSpec {
        site: SiteChoice::Fixed(SiteId::Chest),
        frame_strategy: FrameStrategy::FirstK,
        injection_rate: 0.5,
        n_poisoned_frames: 4,
        ..AttackSpec::default()
    };
    let avg = ctx.run_attack_averaged(&spec, 2);
    assert_eq!(avg.n_attack_samples, 2 * ctx.run_attack(&spec).n_attack_samples);
}
