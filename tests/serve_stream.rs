//! Backpressure and determinism contracts of the `mmwave-serve`
//! streaming service.
//!
//! 1. Under *any* arrival pattern, a session ring never exceeds its
//!    capacity and the frame-conservation ledger balances at every
//!    step: `ingested == inferred + shed + in_flight`. Sheds are exact,
//!    not estimates.
//! 2. The verdict stream is byte-identical at 1 worker and at 4
//!    workers: micro-batches are formed deterministically and
//!    `exec::par_map` preserves input order, so parallelism only trades
//!    wall time.

use mmwave_har_backdoor::dsp::IfFrame;
use mmwave_har_backdoor::har::PrototypeConfig;
use mmwave_har_backdoor::radar::Environment;
use mmwave_har_backdoor::serve::{loadgen, LoadgenConfig, ServeConfig, Service, Verdict};
use proptest::prelude::*;

const RING_CAP: usize = 10;
const READY_CAP: usize = 2;

/// A blank frame matching the smoke capture pipeline's dimensions (the
/// invariants do not depend on frame content).
fn blank_frame(proto: &PrototypeConfig) -> IfFrame {
    let radar = &proto.capture.0.radar;
    IfFrame::zeros(radar.n_virtual(), radar.n_chirps, radar.n_adc)
}

proptest! {
    // Each case runs real DSP + model inference per assembled clip, so
    // keep the case count modest; the arrival-pattern space is still
    // explored across sessions, burst sizes, and pump placements.
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]
    #[test]
    fn backpressure_invariants_hold_under_any_arrival_pattern(
        groups in prop::collection::vec((0u64..3u64, 1usize..16usize, any::<bool>()), 1..10)
    ) {
        let proto = PrototypeConfig::smoke_test();
        let cfg = ServeConfig {
            clip_len: proto.n_frames,
            ring_capacity: RING_CAP,
            ready_capacity: READY_CAP,
            max_batch: 2,
            ..ServeConfig::default()
        };
        let mut service =
            Service::new(cfg, &proto, Environment::hallway(), 7).expect("valid config");
        let mut next_seq = [0u64; 3];
        let mut sent = 0u64;
        for (session, count, pump_after) in groups {
            for _ in 0..count {
                let seq = next_seq[session as usize];
                next_seq[session as usize] += 1;
                service.ingest(session, seq, blank_frame(&proto));
                sent += 1;
                let acc = service.accounting();
                prop_assert!(acc.balanced(), "imbalance after ingest: {acc:?}");
                prop_assert!(
                    acc.peak_ring_depth <= RING_CAP,
                    "ring exceeded capacity: {acc:?}"
                );
            }
            if pump_after {
                let _ = service.pump();
                let acc = service.accounting();
                prop_assert!(acc.balanced(), "imbalance after pump: {acc:?}");
            }
        }
        let _ = service.drain();
        let acc = service.accounting();
        prop_assert!(acc.balanced(), "imbalance at drain: {acc:?}");
        prop_assert_eq!(acc.ingested, sent, "every sent frame must be counted");
        prop_assert!(acc.peak_ring_depth <= RING_CAP);
        prop_assert_eq!(service.ready_clips(), 0, "drain must empty the ready queue");
        // After a drain only sub-clip ring remainders may stay in flight.
        prop_assert!(
            acc.in_flight_frames < (3 * proto.n_frames) as u64,
            "post-drain in-flight must be < one clip per session: {acc:?}"
        );
    }
}

/// Regression: `Accounting::balanced` must hold *after* `drain()` when
/// session rings still hold sub-clip remainders and the ready queue was
/// non-empty (and over capacity) at drain time — frames left behind
/// must surface as shed or in-flight, never vanish.
#[test]
fn drain_accounts_for_partial_rings_and_queued_clips() {
    let proto = PrototypeConfig::smoke_test();
    let cfg = ServeConfig {
        clip_len: proto.n_frames,
        ring_capacity: RING_CAP,
        ready_capacity: READY_CAP,
        max_batch: 2,
        ..ServeConfig::default()
    };
    let mut service =
        Service::new(cfg, &proto, Environment::hallway(), 7).expect("valid config");
    let clip_len = proto.n_frames as u64;
    // One clip plus one leftover frame per session, never pumping: at
    // drain time three clips want a 2-clip ready queue and every ring
    // keeps a partial remainder.
    for session in 0..3u64 {
        for seq in 0..=clip_len {
            service.ingest(session, seq, blank_frame(&proto));
        }
    }
    let acc = service.accounting();
    assert!(acc.balanced(), "imbalance before drain: {acc:?}");
    assert_eq!(acc.ingested, 3 * (clip_len + 1));
    assert_eq!(acc.in_flight_frames, 3 * (clip_len + 1), "nothing inferred or shed yet");

    let verdicts = service.drain();
    let acc = service.accounting();
    assert!(acc.balanced(), "drain must never lose frames: {acc:?}");
    assert_eq!(service.ready_clips(), 0, "drain must empty the ready queue");
    // Three assembled clips overflowed the 2-clip queue: the oldest was
    // shed whole, the other two were inferred, and each session's ninth
    // frame stays in flight as a sub-clip ring remainder.
    assert_eq!(verdicts.len(), 2);
    assert_eq!(acc.inferred_frames, 2 * clip_len);
    assert_eq!(acc.shed_frames, clip_len);
    assert_eq!(acc.in_flight_frames, 3);
    assert_eq!(
        acc.ingested,
        acc.inferred_frames + acc.shed_frames + acc.in_flight_frames,
        "the ledger must close exactly: {acc:?}"
    );
}

/// Everything about a verdict except wall-clock latency, bit-exact.
type VerdictKey = (u64, u64, u64, u64, usize, String, u32, u64);

fn verdict_key(v: &Verdict) -> VerdictKey {
    (
        v.session,
        v.clip_index,
        v.first_seq,
        v.last_seq,
        v.label,
        v.activity.clone(),
        v.confidence.to_bits(),
        v.defense_score.to_bits(),
    )
}

fn run_at(workers: usize) -> (loadgen::LoadgenReport, Vec<VerdictKey>) {
    let proto = PrototypeConfig::smoke_test();
    let serve_cfg = ServeConfig {
        clip_len: proto.n_frames,
        ring_capacity: proto.n_frames * 2,
        ready_capacity: 8,
        max_batch: 4,
        ..ServeConfig::default()
    };
    let lg = LoadgenConfig {
        sessions: 4,
        seconds: 2.0,
        fps: 20.0,
        burst: 3,
        seed: 99,
        ..LoadgenConfig::default()
    };
    let mut verdicts = Vec::new();
    let report = mmwave_har_backdoor::exec::with_workers(workers, || {
        loadgen::run_with(&lg, serve_cfg, &proto, Environment::hallway(), |v| {
            verdicts.push(verdict_key(v));
        })
    })
    .expect("loadgen config is valid");
    (report, verdicts)
}

#[test]
fn verdict_streams_are_identical_at_one_and_four_workers() {
    let (report_serial, serial) = run_at(1);
    let (report_parallel, parallel) = run_at(4);
    assert!(!serial.is_empty(), "the run must produce verdicts");
    assert_eq!(
        serial, parallel,
        "per-session verdict streams must not depend on the worker count"
    );
    assert!(report_serial.is_clean() && report_parallel.is_clean());
    assert_eq!(report_serial.ingested, report_parallel.ingested);
    assert_eq!(report_serial.shed_frames, report_parallel.shed_frames);
    assert_eq!(report_serial.verdicts, report_parallel.verdicts);
}
