//! The crash-point chaos matrix, end to end: kill the `mmwave` binary at
//! every registered crash point along the campaign's artifact paths,
//! resume it, and demand the journal and report come out byte-identical
//! to an uninterrupted run.
//!
//! These tests spawn the real binary (`CARGO_BIN_EXE_mmwave`), so the
//! kills are genuine `abort()`s mid-I/O, not simulated errors.

use std::path::{Path, PathBuf};
use std::process::Command;

fn mmwave() -> &'static str {
    env!("CARGO_BIN_EXE_mmwave")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmwave_chaos_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs `mmwave chaos-child --dir <dir> --quiet` with deterministic
/// artifacts and the given extra environment.
fn run_child(dir: &Path, envs: &[(&str, &str)]) -> std::process::Output {
    let mut cmd = Command::new(mmwave());
    cmd.arg("chaos-child").arg("--dir").arg(dir).arg("--quiet");
    cmd.env_remove("MMWAVE_CRASH_AT");
    cmd.env_remove("MMWAVE_CRASH_LOG");
    cmd.env("MMWAVE_JOURNAL_DETERMINISTIC", "1");
    cmd.env("MMWAVE_GIT_SHA", "chaos-test");
    for (key, value) in envs {
        cmd.env(key, value);
    }
    cmd.output().expect("spawn mmwave chaos-child")
}

#[test]
fn full_chaos_matrix_passes() {
    // The `mmwave chaos` driver runs the whole matrix itself: discover
    // points from a reference run, kill a fresh child at each, resume,
    // and compare bytes. Its exit code is the verdict.
    let dir = temp_dir("matrix");
    let out = Command::new(mmwave())
        .arg("chaos")
        .arg("--dir")
        .arg(&dir)
        .arg("--quiet")
        .env_remove("MMWAVE_CRASH_AT")
        .env_remove("MMWAVE_CRASH_LOG")
        .output()
        .expect("spawn mmwave chaos");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "chaos matrix failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("crash points pass"),
        "driver must report its verdict: {stdout}"
    );
    // Every per-point line reports byte identity.
    assert!(!stdout.contains("FAIL"), "no point may fail: {stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reference_run_logs_the_expected_crash_points() {
    let dir = temp_dir("log");
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("points.log");
    let out = run_child(&dir.join("campaign"), &[(
        "MMWAVE_CRASH_LOG",
        log.to_str().unwrap(),
    )]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let logged = std::fs::read_to_string(&log).unwrap();
    for point in [
        "campaign.journal.pre_append",
        "campaign.journal.torn_append",
        "campaign.journal.post_append",
        "campaign.report.pre_save",
        "store.atomic.pre_temp",
        "store.atomic.pre_rename",
    ] {
        assert!(logged.lines().any(|l| l == point), "missing crash point {point}: {logged}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn armed_crash_point_aborts_the_child_and_resume_heals() {
    let dir = temp_dir("armed");
    let campaign = dir.join("campaign");

    // Tear the very first journal append in half: the child must die
    // abnormally, leaving a half-written line behind.
    let out = run_child(&campaign, &[("MMWAVE_CRASH_AT", "campaign.journal.torn_append")]);
    assert!(!out.status.success(), "armed child must abort");
    let torn = std::fs::read(campaign.join("journal.jsonl")).unwrap_or_default();
    assert!(!torn.is_empty(), "the torn half-line must be on disk");
    assert!(!torn.ends_with(b"\n"), "the kill landed mid-line");

    // A plain re-run repairs the tear and finishes the campaign.
    let out = run_child(&campaign, &[]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let journal = std::fs::read_to_string(campaign.join("journal.jsonl")).unwrap();
    assert_eq!(journal.lines().count(), 5, "all five points journaled: {journal}");
    for line in journal.lines() {
        assert_eq!(line.as_bytes()[8], b' ', "every line is CRC-framed: {line}");
        assert!(line[..8].bytes().all(|b| b.is_ascii_hexdigit()), "hex frame: {line}");
    }
    let report = std::fs::read_to_string(campaign.join("report.json")).unwrap();
    assert!(report.starts_with("MMWVSTORE"), "report is enveloped: {report}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_then_resume_matches_the_uninterrupted_run_byte_for_byte() {
    // The tentpole acceptance property, asserted directly for one point
    // without going through the driver: journal + report bytes after
    // kill-at-append + resume equal those of a never-killed run.
    let dir = temp_dir("identical");
    let reference = dir.join("reference");
    let killed = dir.join("killed");

    let out = run_child(&reference, &[]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Kill at the *third* journal append, mid-write.
    let out = run_child(&killed, &[("MMWAVE_CRASH_AT", "campaign.journal.torn_append:3")]);
    assert!(!out.status.success(), "armed child must abort");
    let out = run_child(&killed, &[]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let read = |dir: &Path, file: &str| std::fs::read(dir.join(file)).unwrap();
    assert_eq!(
        read(&reference, "journal.jsonl"),
        read(&killed, "journal.jsonl"),
        "journals must be byte-identical after kill + resume"
    );
    assert_eq!(
        read(&reference, "report.json"),
        read(&killed, "report.json"),
        "reports must be byte-identical after kill + resume"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
