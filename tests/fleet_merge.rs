//! Fleet-aggregation exactness: merging K per-worker telemetry shards
//! must be indistinguishable from one worker having recorded everything.
//!
//! The histogram property is the load-bearing one — `mmwave top` and
//! `fleet-export` quote p50/p95/p99 from merged shards, and the log-linear
//! representation merges bucket-wise, so the merged histogram is
//! *bit-identical* to the concatenated feed, not an approximation of it.
//! Samples are integer-valued, keeping the f64 sums exact under any
//! association (every partial sum fits a 53-bit mantissa).

use mmwave_har_backdoor::telemetry::{
    merge_metrics, merge_shards, GaugeSample, HistogramExport, LogLinearHistogram,
    MetricsExport, WorkerShard,
};
use proptest::prelude::*;

fn shard(worker_id: &str, ts_ms: u64, metrics: MetricsExport) -> WorkerShard {
    WorkerShard {
        worker_id: worker_id.to_string(),
        pid: 1,
        git_sha: "test".to_string(),
        ts_ms,
        uptime_ms: 1,
        clock_anchor_unix_ms: ts_ms.saturating_sub(1),
        exited: false,
        last_task: None,
        metrics,
    }
}

proptest! {
    #[test]
    fn merging_k_histograms_matches_the_concatenated_feed(
        chunks in prop::collection::vec(
            prop::collection::vec(0u32..1_000_000u32, 0..40),
            1..6,
        )
    ) {
        let mut reference = LogLinearHistogram::new();
        let mut merged = LogLinearHistogram::new();
        for chunk in &chunks {
            let mut worker = LogLinearHistogram::new();
            for &v in chunk {
                worker.record(f64::from(v));
                reference.record(f64::from(v));
            }
            merged.merge(&worker);
        }
        prop_assert_eq!(merged.export(), reference.export());
        let (m, r) = (merged.snapshot(), reference.snapshot());
        prop_assert_eq!(m.count, r.count);
        prop_assert_eq!(m.sum, r.sum);
        prop_assert_eq!(m.mean, r.mean);
        prop_assert_eq!(m.min, r.min);
        prop_assert_eq!(m.max, r.max);
        prop_assert_eq!(m.p50, r.p50);
        prop_assert_eq!(m.p95, r.p95);
        prop_assert_eq!(m.p99, r.p99);
    }

    #[test]
    fn export_import_survives_a_merge_round_trip(
        samples in prop::collection::vec(0u32..1_000_000u32, 0..80)
    ) {
        let mut direct = LogLinearHistogram::new();
        for &v in &samples {
            direct.record(f64::from(v));
        }
        // Export -> import -> merge into an empty histogram must preserve
        // the representation exactly (this is the shard-loading path).
        let mut via_export = LogLinearHistogram::new();
        via_export.merge(&LogLinearHistogram::from_export(&direct.export()));
        prop_assert_eq!(via_export.export(), direct.export());
    }
}

#[test]
fn merged_counters_are_the_sum_over_shards() {
    let mut a = MetricsExport::default();
    a.counters.insert("dag.executed".to_string(), 5);
    a.counters.insert("store.claim.acquired".to_string(), 7);
    let mut b = MetricsExport::default();
    b.counters.insert("dag.executed".to_string(), 3);
    b.counters.insert("dag.dedupe_hit".to_string(), 1);

    let fleet = merge_shards(&[shard("w0", 10, a), shard("w1", 20, b)]);
    assert_eq!(fleet.merged.counters.get("dag.executed"), Some(&8));
    assert_eq!(fleet.merged.counters.get("store.claim.acquired"), Some(&7));
    assert_eq!(fleet.merged.counters.get("dag.dedupe_hit"), Some(&1));
    assert_eq!(fleet.workers.len(), 2);
}

#[test]
fn merged_gauges_keep_the_latest_sample_by_timestamp() {
    let mut newer = MetricsExport::default();
    newer.gauges.insert("queue.depth".to_string(), GaugeSample { value: 2.0, ts_ms: 200 });
    let mut older = MetricsExport::default();
    older.gauges.insert("queue.depth".to_string(), GaugeSample { value: 9.0, ts_ms: 100 });

    // Merge order must not matter: the newest timestamp wins both ways.
    let mut forward = MetricsExport::default();
    merge_metrics(&mut forward, &newer);
    merge_metrics(&mut forward, &older);
    let mut backward = MetricsExport::default();
    merge_metrics(&mut backward, &older);
    merge_metrics(&mut backward, &newer);
    assert_eq!(forward.gauges["queue.depth"].value, 2.0);
    assert_eq!(backward.gauges["queue.depth"].value, 2.0);
}

#[test]
fn merged_span_histograms_accumulate_bucket_wise() {
    let mut h0 = LogLinearHistogram::new();
    let mut h1 = LogLinearHistogram::new();
    let mut all = LogLinearHistogram::new();
    for v in [1.0_f64, 4.0, 16.0] {
        h0.record(v);
        all.record(v);
    }
    for v in [2.0_f64, 8.0, 32.0] {
        h1.record(v);
        all.record(v);
    }
    let mut a = MetricsExport::default();
    a.spans.insert("dag.task".to_string(), h0.export());
    let mut b = MetricsExport::default();
    b.spans.insert("dag.task".to_string(), h1.export());

    let fleet = merge_shards(&[shard("w0", 1, a), shard("w1", 2, b)]);
    let merged: &HistogramExport = &fleet.merged.spans["dag.task"];
    assert_eq!(merged, &all.export());
}
