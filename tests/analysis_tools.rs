//! Integration of the analysis tools (CFAR, spectrograms, activation
//! clustering, persistence) with the capture pipeline.

use mmwave_har_backdoor::body::{
    Activity, ActivitySampler, Participant, SampleVariation, SiteId,
};
use mmwave_har_backdoor::dsp::cfar::{ca_cfar, CfarConfig};
use mmwave_har_backdoor::har::{CnnLstm, PrototypeConfig};
use mmwave_har_backdoor::nn::persist::{load_json, save_json};
use mmwave_har_backdoor::radar::capture::{CaptureConfig, Capturer, TriggerPlan};
use mmwave_har_backdoor::radar::trigger::{Trigger, TriggerAttachment};
use mmwave_har_backdoor::radar::{Environment, Placement};

#[test]
fn cfar_lights_up_more_cells_when_a_trigger_is_worn() {
    // CFAR operates on raw power maps: log compression (meant for the
    // classifier) flattens the cell-to-noise ratios it thresholds.
    let mut cfg = CaptureConfig::fast();
    cfg.log_compress = false;
    cfg.normalize = mmwave_har_backdoor::radar::capture::Normalization::None;
    let capturer = Capturer::new(cfg);
    let sampler = ActivitySampler::new(Participant::average(), 12, 10.0);
    let seq = sampler.sample(Activity::Push, &SampleVariation::nominal());
    let plan = TriggerPlan {
        attachment: TriggerAttachment::new(Trigger::aluminum_2x2()),
        site: SiteId::Chest,
    };
    let out = capturer.capture(
        &seq,
        Placement::new(1.2, 0.0),
        &Environment::classroom(),
        Some(&plan),
        5,
    );
    let trig = out.triggered.expect("trigger requested");
    let cfg = CfarConfig { guard: 1, train: 2, threshold: 2.5 };
    // Compare total detections over the sequence: the trigger adds a
    // bright, compact return that CFAR flags.
    let count = |seq: &mmwave_har_backdoor::dsp::HeatmapSeq| -> usize {
        seq.frames().iter().map(|f| ca_cfar(f, &cfg).len()).sum()
    };
    let clean_count = count(&out.clean);
    let trig_count = count(&trig);
    assert!(
        trig_count > clean_count,
        "CFAR should flag the trigger: clean {clean_count} vs triggered {trig_count}"
    );
}

#[test]
fn trained_model_round_trips_through_json() {
    let cfg = PrototypeConfig::smoke_test();
    let model = CnnLstm::new(&cfg, 42);
    let path = std::env::temp_dir().join(format!("mmwave_model_{}.json", std::process::id()));
    save_json(&model, &path).expect("save");
    let restored: CnnLstm = load_json(&path).expect("load");
    assert_eq!(model, restored);
    std::fs::remove_file(&path).ok();
}

#[test]
fn spectrogram_of_gesture_if_signal_shows_motion() {
    // Build a slow-time signal by concatenating one range bin across the
    // chirps of every frame of a real capture.
    let capturer = Capturer::new(CaptureConfig::fast());
    let sampler = ActivitySampler::new(Participant::average(), 16, 10.0);
    let seq = sampler.sample(Activity::Push, &SampleVariation::nominal());
    let frames = capturer.base_if_frames(
        &seq,
        Placement::new(1.2, 0.0),
        &Environment::empty(),
        3,
        1.0,
    );
    // Slow-time samples: first ADC sample of every chirp on antenna 0.
    let slow: Vec<mmwave_har_backdoor::dsp::Complex32> = frames
        .iter()
        .flat_map(|f| (0..f.n_chirps()).map(move |c| f.chirp(0, c)[0]))
        .collect();
    let spec = mmwave_har_backdoor::dsp::spectrogram::stft_magnitude(
        &slow,
        32,
        16,
        mmwave_har_backdoor::dsp::window::WindowKind::Hann,
    );
    assert!(spec.rows() > 4);
    assert!(spec.total() > 0.0, "gesture must leave energy in the spectrogram");
}
