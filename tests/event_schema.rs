//! Event-schema contract: a mini end-to-end run through capture, parallel
//! execution, a campaign point, and the end-of-run summary must emit every
//! `EventKind`, each with its documented fields, and every emitted event
//! must survive a serde round trip. This is the compatibility test for the
//! JSONL stream external tooling consumes (see docs/observability.md).
//!
//! One `#[test]` only: the telemetry registry is process-global, and this
//! file owns its sink configuration for the whole process.

use mmwave_har_backdoor::backdoor::{Campaign, PointOutcome};
use mmwave_har_backdoor::body::{Activity, ActivitySampler, Participant, SampleVariation};
use mmwave_har_backdoor::radar::capture::{CaptureConfig, Capturer};
use mmwave_har_backdoor::radar::{Environment, Placement};
use mmwave_har_backdoor::telemetry::{self, Event, EventKind};
use std::collections::BTreeSet;

#[test]
fn every_event_kind_round_trips_through_the_jsonl_stream() {
    let dir = std::env::temp_dir().join(format!("mmwave_event_schema_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let events_path = dir.join("events.jsonl");

    // A JSONL sink records at trace verbosity, so counter/gauge updates and
    // per-frame metrics all reach the file; no stderr sink keeps the test
    // output clean.
    telemetry::configure(&telemetry::TelemetryConfig {
        disabled: false,
        stderr_verbosity: None,
        metrics_out: Some(events_path.clone()),
        trace_out: None,
    })
    .unwrap();

    // Mini end-to-end run. The capture emits spans, counters
    // (`radar.frames`), and a `radar.capture` metric; running it through
    // the pool emits the `exec.*` counters and gauges; the campaign point
    // emits `campaign.point`; the log macro emits a log line; `finish()`
    // emits the `run.summary` snapshot.
    let mut campaign = Campaign::<usize>::open(&dir).unwrap();
    let outcome = campaign
        .run_point("schema probe", || {
            mmwave_har_backdoor::exec::with_workers(4, || {
                let capturer = Capturer::new(CaptureConfig::fast());
                let sampler = ActivitySampler::new(Participant::average(), 8, 10.0);
                let seq = sampler.sample(Activity::Push, &SampleVariation::nominal());
                let out = capturer.capture(
                    &seq,
                    Placement::new(1.2, 0.0),
                    &Environment::hallway(),
                    None,
                    42,
                );
                out.clean.len()
            })
        })
        .unwrap();
    assert!(matches!(outcome, PointOutcome::Completed { result } if result == 8));
    telemetry::info!("event schema probe finished");
    telemetry::finish();

    let events = telemetry::read_jsonl_events(&events_path).unwrap();
    assert!(!events.is_empty(), "the run must emit events");

    // Every kind the run is expected to exercise is present. (Fault events
    // only occur under injected sensor faults and are covered by the
    // telemetry crate's own tests.)
    let kinds: BTreeSet<&'static str> = events
        .iter()
        .map(|e| match e.kind {
            EventKind::Log => "log",
            EventKind::Span => "span",
            EventKind::Metric => "metric",
            EventKind::Counter => "counter",
            EventKind::Gauge => "gauge",
            EventKind::Fault => "fault",
            EventKind::Point => "point",
            EventKind::Summary => "summary",
        })
        .collect();
    for expected in ["log", "span", "metric", "counter", "gauge", "point", "summary"] {
        assert!(kinds.contains(expected), "no `{expected}` event emitted; saw {kinds:?}");
    }

    // Per-kind field contracts.
    for e in &events {
        assert!(e.ts_ms > 0, "event `{}` lacks a timestamp", e.name);
        assert!(!e.name.is_empty());
        match e.kind {
            EventKind::Log => {
                assert!(
                    e.fields.get("message").and_then(|v| v.as_str()).is_some(),
                    "log `{}` lacks a message",
                    e.name
                );
            }
            EventKind::Span => {
                for field in ["duration_us", "start_us", "tid"] {
                    assert!(
                        e.fields.get(field).and_then(|v| v.as_u64()).is_some(),
                        "span `{}` lacks `{field}`",
                        e.name
                    );
                }
            }
            EventKind::Counter => {
                assert!(e.fields.get("delta").and_then(|v| v.as_u64()).is_some());
                assert!(e.fields.get("value").and_then(|v| v.as_u64()).is_some());
            }
            EventKind::Gauge => {
                assert!(
                    e.fields.get("value").and_then(|v| v.as_f64()).is_some(),
                    "gauge `{}` lacks a numeric value",
                    e.name
                );
            }
            EventKind::Point => {
                assert!(e.fields.get("id").and_then(|v| v.as_str()).is_some());
                assert!(e.fields.get("status").and_then(|v| v.as_str()).is_some());
                assert!(e.fields.get("duration_ms").and_then(|v| v.as_u64()).is_some());
            }
            EventKind::Summary => {
                assert_eq!(e.name, "run.summary");
                assert!(e.fields.contains_key("counters"));
                assert!(e.fields.contains_key("spans"));
                assert!(e.fields.contains_key("profile"));
            }
            EventKind::Metric | EventKind::Fault => {}
        }
    }

    // Serde round trip: serialize -> parse must preserve every event.
    for e in &events {
        let line = serde_json::to_string(e).unwrap();
        let back: Event = serde_json::from_str(&line).unwrap();
        assert_eq!(back.kind, e.kind);
        assert_eq!(back.name, e.name);
        assert_eq!(back.ts_ms, e.ts_ms);
        assert_eq!(back.fields, e.fields);
    }

    std::fs::remove_dir_all(&dir).ok();
}
