//! Fleet observability acceptance: a 3-worker campaign with one worker
//! killed by a crash point must still yield (a) per-worker telemetry
//! shards whose `dag.*` / `store.claim.*` counters sum into the merged
//! export, (b) a `top --once` view that flags the dead worker, and (c) a
//! stitched Perfetto trace with one process lane per worker, monotonic
//! timestamps within each lane, and globally unique span ids.

use mmwave_har_backdoor::backdoor::fleet;
use mmwave_har_backdoor::{store, telemetry};
use std::collections::{BTreeMap, HashSet};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

fn mmwave() -> &'static str {
    env!("CARGO_BIN_EXE_mmwave")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("mmwave_fleet_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn init_demo(dir: &Path) {
    let out = Command::new(mmwave())
        .arg("campaign-init")
        .arg("--dir")
        .arg(dir)
        .arg("--quiet")
        .output()
        .expect("spawn mmwave campaign-init");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

/// A worker command with deterministic artifacts, a 1 s claim TTL, fleet
/// shipping on (the default), and a fast idle poll.
fn worker_cmd(dir: &Path, worker_id: &str, envs: &[(&str, &str)]) -> Command {
    let mut cmd = Command::new(mmwave());
    cmd.arg("worker")
        .arg("--dir")
        .arg(dir)
        .arg("--worker-id")
        .arg(worker_id)
        .arg("--ttl")
        .arg("1")
        .arg("--poll-ms")
        .arg("25")
        .arg("--quiet");
    cmd.env_remove("MMWAVE_CRASH_AT");
    cmd.env_remove("MMWAVE_CRASH_LOG");
    cmd.env_remove("MMWAVE_WORKER_SHARD");
    cmd.env_remove("MMWAVE_FLEET_SHIP_SECS");
    cmd.env("MMWAVE_JOURNAL_DETERMINISTIC", "1");
    cmd.env("MMWAVE_GIT_SHA", "fleet-test");
    for (key, value) in envs {
        cmd.env(key, value);
    }
    cmd
}

fn wait_with_deadline(child: &mut std::process::Child, secs: u64) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("wait for worker") {
            return status;
        }
        assert!(
            start.elapsed() < Duration::from_secs(secs),
            "worker wedged past the {secs}s deadline"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn killed_worker_fleet_merges_stitches_and_flags_the_straggler() {
    let dir = temp_dir("kill3");
    init_demo(&dir);

    // Worker 0 runs alone first and is armed to abort right after
    // acquiring its first claim — running solo means the crash point
    // cannot be dodged by losing the claim race. Its startup ship has
    // already left a shard and a trace behind.
    let out = worker_cmd(&dir, "w0", &[("MMWAVE_CRASH_AT", "dag.task.pre_execute")])
        .output()
        .expect("spawn armed worker");
    assert!(!out.status.success(), "the armed worker must die at the crash point");

    // Three clean workers drain the rest, reclaiming w0's stale claim.
    let mut children: Vec<_> = (1..=3)
        .map(|i| worker_cmd(&dir, &format!("w{i}"), &[]).spawn().expect("spawn worker"))
        .collect();
    for child in &mut children {
        let status = wait_with_deadline(child, 180);
        assert!(status.success(), "clean workers must finish the campaign");
    }

    // Every worker shipped a shard; only the survivors shipped `exited`.
    let shards = fleet::load_shards(&dir).expect("load shards");
    let ids: Vec<&str> = shards.iter().map(|s| s.worker_id.as_str()).collect();
    assert_eq!(ids, ["w0", "w1", "w2", "w3"]);
    for shard in &shards {
        assert_eq!(shard.exited, shard.worker_id != "w0", "{}", shard.worker_id);
        assert_eq!(shard.git_sha, "fleet-test");
    }

    // `top --once` exits 0 and reports the killed worker as a dead
    // straggler (its reclaimed claim is the death certificate).
    let top = Command::new(mmwave())
        .arg("top")
        .arg(&dir)
        .arg("--ttl")
        .arg("1")
        .arg("--once")
        .output()
        .expect("spawn mmwave top");
    let stdout = String::from_utf8_lossy(&top.stdout);
    assert!(top.status.success(), "{stdout}\n{}", String::from_utf8_lossy(&top.stderr));
    assert!(stdout.contains("w0"), "top must list the dead worker: {stdout}");
    assert!(stdout.contains("DEAD"), "top must mark w0 dead: {stdout}");
    assert!(stdout.contains("STRAGGLER"), "top must flag w0 a straggler: {stdout}");

    // `fleet-export` writes the three merged artifacts and verifies their
    // checksums by round-tripping through the store loader.
    let export = Command::new(mmwave())
        .arg("fleet-export")
        .arg(&dir)
        .arg("--ttl")
        .arg("1")
        .output()
        .expect("spawn mmwave fleet-export");
    assert!(export.status.success(), "{}", String::from_utf8_lossy(&export.stderr));
    let out_dir = dir.join("fleet").join("export");
    let metrics: telemetry::FleetMetrics =
        store::load_json(&out_dir.join("fleet_metrics.json")).expect("load metrics").value;
    let health: serde_json::Value =
        store::load_json(&out_dir.join("fleet_health.json")).expect("load health").value;
    assert!(health["workers"].as_array().is_some_and(|w| w.len() >= 4));

    // Every dag.* / store.claim.* counter in the merged export equals the
    // sum over the shipped shards — aggregation is exact, not sampled.
    let mut expected: BTreeMap<String, u64> = BTreeMap::new();
    for shard in &shards {
        for (key, value) in &shard.metrics.counters {
            if key.starts_with("dag.") || key.starts_with("store.claim.") {
                *expected.entry(key.clone()).or_insert(0) += value;
            }
        }
    }
    assert!(expected.get("dag.executed").copied().unwrap_or(0) >= 7, "{expected:?}");
    for (key, value) in &expected {
        assert_eq!(metrics.merged.counters.get(key), Some(value), "counter {key}");
    }
    assert_eq!(metrics.workers.len(), 4);

    // The stitched trace: one process lane per worker (all four shipped a
    // trace at startup), monotonic timestamps within each lane, and no
    // duplicate span ids across the whole timeline.
    let trace: Vec<serde_json::Value> =
        serde_json::from_slice(&std::fs::read(out_dir.join("fleet_trace.json")).unwrap())
            .expect("parse stitched trace");
    let lanes: Vec<&serde_json::Value> = trace
        .iter()
        .filter(|e| e["ph"] == "M" && e["name"] == "process_name")
        .collect();
    assert_eq!(lanes.len(), 4, "one process lane per worker");
    let lane_pids: HashSet<u64> =
        lanes.iter().map(|e| e["pid"].as_u64().expect("lane pid")).collect();
    assert_eq!(lane_pids.len(), 4, "lane pids must be distinct");
    for (i, id) in ["w0", "w1", "w2", "w3"].iter().enumerate() {
        let name = lanes[i]["args"]["name"].as_str().unwrap_or_default();
        assert!(name.contains(id), "lane {i} should name {id}, got `{name}`");
    }

    let mut last_ts: BTreeMap<u64, f64> = BTreeMap::new();
    let mut span_ids = HashSet::new();
    for event in &trace {
        if event["ph"] == "M" {
            continue;
        }
        let pid = event["pid"].as_u64().expect("event pid");
        assert!(lane_pids.contains(&pid), "event outside every lane: {event}");
        let ts = event["ts"].as_f64().expect("event ts");
        if let Some(prev) = last_ts.get(&pid) {
            assert!(ts >= *prev, "lane {pid} timestamps must be monotonic");
        }
        last_ts.insert(pid, ts);
        if event["ph"] == "X" {
            let span_id = event["args"]["span_id"].as_str().expect("span id").to_string();
            assert!(span_ids.insert(span_id), "duplicate span id in {event}");
        }
    }
    assert!(!span_ids.is_empty(), "the survivors must have recorded spans");

    std::fs::remove_dir_all(&dir).ok();
}
