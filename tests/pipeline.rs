//! End-to-end pipeline integration: body model -> IF synthesis -> DRAI ->
//! CNN-LSTM, across crate boundaries.

use mmwave_har_backdoor::body::{
    Activity, ActivitySampler, Participant, SampleVariation, SiteId,
};
use mmwave_har_backdoor::har::{CnnLstm, PrototypeConfig};
use mmwave_har_backdoor::radar::capture::{CaptureConfig, Capturer, TriggerPlan};
use mmwave_har_backdoor::radar::trigger::{Trigger, TriggerAttachment};
use mmwave_har_backdoor::radar::{Environment, Placement};

fn capturer() -> Capturer {
    Capturer::new(CaptureConfig::fast())
}

fn gesture(activity: Activity, n_frames: usize) -> mmwave_har_backdoor::body::MeshSequence {
    let sampler = ActivitySampler::new(Participant::average(), n_frames, 10.0);
    sampler.sample(activity, &SampleVariation::nominal())
}

#[test]
fn capture_feeds_model_without_shape_mismatch() {
    let cap = capturer();
    let cfg = PrototypeConfig::fast();
    let seq = gesture(Activity::Push, cfg.n_frames);
    let out = cap.capture(&seq, Placement::new(1.2, 0.0), &Environment::hallway(), None, 1);
    let model = CnnLstm::new(&cfg, 0);
    let probs = model.probabilities(&out.clean);
    assert_eq!(probs.len(), 6);
    assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-4);
}

#[test]
fn different_activities_produce_different_heatmap_sequences() {
    let cap = capturer();
    let p = Placement::new(1.2, 0.0);
    let env = Environment::hallway();
    let push = cap.capture(&gesture(Activity::Push, 16), p, &env, None, 1).clean;
    let swipe = cap.capture(&gesture(Activity::LeftSwipe, 16), p, &env, None, 1).clean;
    assert!(
        push.mean_l2_distance(&swipe) > 0.1,
        "distinct gestures must leave distinct radar signatures"
    );
}

#[test]
fn mirrored_activities_differ_in_time_structure() {
    // Push and Pull visit similar positions in reverse order: per-frame
    // sequences must differ even though the set of visited frames is
    // similar.
    let cap = capturer();
    let p = Placement::new(1.2, 0.0);
    let env = Environment::empty();
    let push = cap.capture(&gesture(Activity::Push, 16), p, &env, None, 1).clean;
    let pull = cap.capture(&gesture(Activity::Pull, 16), p, &env, None, 1).clean;
    assert!(push.mean_l2_distance(&pull) > 0.05);
}

#[test]
fn user_position_shifts_the_heatmap() {
    let cap = capturer();
    let env = Environment::empty();
    let seq = gesture(Activity::Clockwise, 12);
    let near = cap.capture(&seq, Placement::new(0.8, 0.0), &env, None, 1).clean;
    let far = cap.capture(&seq, Placement::new(2.0, 0.0), &env, None, 1).clean;
    // The dominant range row must differ between 0.8 m and 2.0 m.
    let row = |s: &mmwave_har_backdoor::dsp::HeatmapSeq| {
        s.frame(6).peak().map(|p| p.0).unwrap_or(0)
    };
    assert!(
        row(&far) > row(&near),
        "farther user must appear at a larger range bin ({} vs {})",
        row(&far),
        row(&near)
    );
}

#[test]
fn trigger_footprint_is_additive_and_localized_in_time() {
    let cap = capturer();
    let seq = gesture(Activity::Push, 16);
    let plan = TriggerPlan {
        attachment: TriggerAttachment::new(Trigger::aluminum_2x2()),
        site: SiteId::Chest,
    };
    let out = cap.capture(
        &seq,
        Placement::new(1.2, 0.0),
        &Environment::classroom(),
        Some(&plan),
        5,
    );
    let trig = out.triggered.expect("trigger requested");
    // Every frame carries the trigger (the attacker wears it throughout).
    let mut affected = 0;
    for i in 0..out.clean.len() {
        if out.clean.frame(i).l2_distance(trig.frame(i)) > 1e-3 {
            affected += 1;
        }
    }
    assert!(
        affected >= out.clean.len() / 2,
        "trigger should affect most frames, got {affected}/{}",
        out.clean.len()
    );
}

#[test]
fn cross_environment_captures_share_structure() {
    // Training hallway vs. attack classroom: the user's signature must
    // survive the environment change (the paper's cross-environment
    // setting), because calibration removes the static background.
    let cap = capturer();
    let seq = gesture(Activity::RightSwipe, 12);
    let p = Placement::new(1.6, 0.0);
    let hall = cap.capture(&seq, p, &Environment::hallway(), None, 9).clean;
    let class = cap.capture(&seq, p, &Environment::classroom(), None, 9).clean;
    // Same gesture, same placement: peaks should be in nearby range bins.
    let (r1, _, _) = hall.frame(6).peak().unwrap();
    let (r2, _, _) = class.frame(6).peak().unwrap();
    assert!((r1 as i64 - r2 as i64).abs() <= 2, "rows {r1} vs {r2}");
}
