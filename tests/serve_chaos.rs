//! Chaos-hardening contracts of the streaming service: session
//! lifecycle under churn, per-clip failure isolation inside a
//! micro-batch, the transport-fault matrix, and the CLI's
//! unbalanced-ledger exit gate.

use std::process::Command;

use mmwave_har_backdoor::defense::TriggerDetector;
use mmwave_har_backdoor::dsp::IfFrame;
use mmwave_har_backdoor::har::{CnnLstm, PrototypeConfig};
use mmwave_har_backdoor::radar::capture::Capturer;
use mmwave_har_backdoor::radar::Environment;
use mmwave_har_backdoor::serve::{
    batcher, chaos, loadgen, LoadgenConfig, ReadyClip, ServeConfig, Service, VerdictStatus,
};

/// A blank frame matching the smoke capture pipeline's dimensions.
fn blank_frame(proto: &PrototypeConfig) -> IfFrame {
    let radar = &proto.capture.0.radar;
    IfFrame::zeros(radar.n_virtual(), radar.n_chirps, radar.n_adc)
}

/// A well-formed all-real clip of blank frames for `session`.
fn blank_clip(session: u64, proto: &PrototypeConfig) -> ReadyClip {
    let n = proto.n_frames;
    ReadyClip {
        session,
        clip_index: 0,
        first_seq: 0,
        last_seq: n as u64 - 1,
        last_ingest_ms: 0.0,
        frames: (0..n).map(|_| blank_frame(proto)).collect(),
        dropped: vec![false; n],
        real_frames: n,
    }
}

/// Acceptance: open/stall/reconnect sessions in a loop. The session map
/// must stay bounded by the active set, every evicted ring must surface
/// in the ledger as shed, and the ledger must close at every step.
#[test]
fn session_churn_stays_bounded_and_evicted_rings_become_shed() {
    let proto = PrototypeConfig::smoke_test();
    let cfg = ServeConfig {
        clip_len: proto.n_frames,
        ring_capacity: proto.n_frames * 2,
        ready_capacity: 2,
        max_batch: 2,
        session_ttl: 3,
        ..ServeConfig::default()
    };
    let mut service =
        Service::new(cfg, &proto, Environment::hallway(), 7).expect("valid config");
    let waves = 12u64;
    let frames_per_wave = 3u64; // below clip_len, so rings never assemble
    for wave in 0..waves {
        for seq in 0..frames_per_wave {
            service.ingest(wave, seq, blank_frame(&proto));
        }
        assert_eq!(service.active_sessions(), 1, "one live session per wave");
        // ttl pumps with no traffic: the wave's session goes stale and
        // is evicted before the next wave connects.
        for _ in 0..4 {
            let _ = service.pump();
        }
        let acc = service.accounting();
        assert!(acc.balanced(), "imbalance after wave {wave}: {acc:?}");
        assert_eq!(
            service.active_sessions(),
            0,
            "stale session must be evicted, map must not leak: wave {wave}"
        );
    }
    // A previously evicted id reconnects: fresh ring, reopen counted.
    service.ingest(0, 0, blank_frame(&proto));
    let _ = service.drain();
    let acc = service.accounting();
    assert!(acc.balanced(), "imbalance at drain: {acc:?}");
    assert_eq!(acc.sessions_evicted, waves);
    assert!(acc.sessions_reopened >= 1, "reconnect must count as a reopen: {acc:?}");
    assert_eq!(
        acc.shed_frames,
        waves * frames_per_wave,
        "every evicted ring frame must be accounted as shed: {acc:?}"
    );
    assert_eq!(acc.ingested, waves * frames_per_wave + 1);
    assert_eq!(acc.in_flight_frames, 1, "only the reconnect frame is still buffered");
    assert_eq!(acc.rejected, 0);
    assert_eq!(acc.inferred_frames, 0);
}

/// Acceptance: a batch containing one NaN clip and one panicking clip
/// yields `Failed` for exactly those clips — their batchmates complete
/// with verdicts bit-identical to a run without the poison.
#[test]
fn poisoned_clips_fail_alone_while_batchmates_complete() {
    let proto = PrototypeConfig::smoke_test();
    let capturer = Capturer::new(proto.capture.0.clone());
    let model = CnnLstm::new(&proto, 7);
    let detector = TriggerDetector::new(&proto, 7 ^ 0x5e7e_c7ed);
    let environment = Environment::hallway();

    let mut nan_clip = blank_clip(1, &proto);
    chaos::corrupt_frame(&mut nan_clip.frames[0]);
    let mut panic_clip = blank_clip(2, &proto);
    // A dropped-mask length mismatch trips the documented assert inside
    // `repair_dropped_frames` — a guaranteed mid-pipeline panic.
    panic_clip.dropped = vec![true; proto.n_frames + 1];

    let batch = vec![blank_clip(0, &proto), nan_clip, panic_clip, blank_clip(3, &proto)];
    let verdicts =
        batcher::infer_batch(&capturer, &environment, &model, &detector, &batch, 0.0);
    assert_eq!(verdicts.len(), 4, "one verdict per clip, poisoned or not");
    assert!(!verdicts[0].status.is_failed(), "clean clip 0 must succeed");
    assert!(verdicts[1].status.is_failed(), "NaN clip must fail");
    assert!(verdicts[2].status.is_failed(), "panicking clip must fail");
    assert!(!verdicts[3].status.is_failed(), "clean clip 3 must succeed");
    match &verdicts[2].status {
        VerdictStatus::Failed { reason } => {
            assert!(reason.contains("panicked"), "panic must be captured: {reason}");
        }
        VerdictStatus::Ok => unreachable!("checked above"),
    }
    // Failed verdicts carry poisoned placeholders, not model outputs.
    assert_eq!(verdicts[1].activity, "failed");
    assert_eq!(verdicts[1].confidence, 0.0);

    // The survivors must be unaffected by their poisoned batchmates.
    let clean_batch = vec![blank_clip(0, &proto), blank_clip(3, &proto)];
    let clean =
        batcher::infer_batch(&capturer, &environment, &model, &detector, &clean_batch, 0.0);
    for (poisoned_run, clean_run) in [(&verdicts[0], &clean[0]), (&verdicts[3], &clean[1])] {
        assert_eq!(poisoned_run.label, clean_run.label);
        assert_eq!(poisoned_run.confidence.to_bits(), clean_run.confidence.to_bits());
        assert_eq!(poisoned_run.defense_score.to_bits(), clean_run.defense_score.to_bits());
    }
}

/// A slice of the serve-chaos matrix at smoke scale: each cell must
/// close the ledger, stay bit-identical at 1 vs 4 workers, and leave
/// the ledger evidence its fault channel predicts (the full matrix runs
/// as a CI smoke job via the binary).
#[test]
fn chaos_matrix_cells_balance_and_stay_deterministic() {
    let proto = PrototypeConfig::smoke_test();
    let cells: Vec<String> =
        ["clean", "drop", "flap"].iter().map(|s| s.to_string()).collect();
    let reports = chaos::run_matrix(&cells, 7, &proto, &Environment::hallway())
        .expect("known cells run");
    assert_eq!(reports.len(), 3);
    for r in &reports {
        assert!(
            r.pass,
            "cell `{}` failed: balanced={} deterministic={} note=`{}`",
            r.cell, r.balanced, r.deterministic, r.note
        );
    }
    let by_cell = |name: &str| reports.iter().find(|r| r.cell == name).unwrap();
    let clean = by_cell("clean");
    assert_eq!(clean.rejected_frames + clean.seq_gaps + clean.seq_dups, 0);
    assert_eq!(clean.sessions_evicted, 0);
    assert!(clean.verdicts > 0);
    assert!(by_cell("drop").seq_gaps > 0, "drop cell must detect gaps");
    assert!(by_cell("flap").sessions_evicted > 0, "flap cell must evict");
}

/// Unknown cells must be a hard CLI error, not a silently empty matrix.
#[test]
fn serve_chaos_cli_rejects_unknown_cells_nonzero() {
    let out = Command::new(env!("CARGO_BIN_EXE_mmwave"))
        .args(["serve-chaos", "--cells", "no-such-cell"])
        .output()
        .expect("spawn mmwave serve-chaos");
    assert!(!out.status.success(), "unknown cell must exit nonzero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no-such-cell"), "error must name the cell: {stderr}");
}

/// Satellite: `mmwave serve` gates its exit status on the conservation
/// ledger. The predicate it checks is `LoadgenReport::is_clean`
/// (`unaccounted == 0`) — pin that an unbalanced report is not clean,
/// and that a real short run is clean end to end through the binary.
#[test]
fn serve_exit_gate_trips_on_any_unaccounted_frame() {
    let proto = PrototypeConfig::smoke_test();
    let lg = LoadgenConfig { sessions: 1, seconds: 1.0, fps: 16.0, ..LoadgenConfig::default() };
    let serve_cfg = ServeConfig {
        clip_len: proto.n_frames,
        ring_capacity: proto.n_frames * 2,
        ..ServeConfig::default()
    };
    let mut report =
        loadgen::run_with(&lg, serve_cfg, &proto, Environment::hallway(), |_| {})
            .expect("valid config");
    assert!(report.is_clean(), "a fault-free run must balance: {report:?}");
    report.unaccounted = 1;
    assert!(!report.is_clean(), "any unaccounted frame must trip the gate");

    let out = Command::new(env!("CARGO_BIN_EXE_mmwave"))
        .args(["serve", "--sessions", "1", "--seconds", "0.3", "--fps", "10", "--quiet"])
        .output()
        .expect("spawn mmwave serve");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "a clean paced run must exit zero:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("drained:"), "serve must print its accounting: {stdout}");
}
