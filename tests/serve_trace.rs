//! `serve.*` observability contract: a loadgen run traced through the
//! Chrome/Perfetto exporter must contain the service's spans — the
//! service is born observable, not instrumented after the fact.
//!
//! One `#[test]` only: the telemetry registry is process-global, and this
//! file owns its sink configuration for the whole process.

use mmwave_har_backdoor::har::PrototypeConfig;
use mmwave_har_backdoor::radar::Environment;
use mmwave_har_backdoor::serve::{loadgen, LoadgenConfig, ServeConfig};
use mmwave_har_backdoor::telemetry;
use std::collections::BTreeSet;

#[test]
fn loadgen_traces_contain_serve_spans() {
    let dir = std::env::temp_dir().join(format!("mmwave_serve_trace_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("serve.trace.json");

    telemetry::configure(&telemetry::TelemetryConfig {
        disabled: false,
        stderr_verbosity: None,
        metrics_out: None,
        trace_out: Some(trace_path.clone()),
    })
    .unwrap();

    let proto = PrototypeConfig::smoke_test();
    let serve_cfg = ServeConfig {
        clip_len: proto.n_frames,
        ring_capacity: proto.n_frames * 2,
        ..ServeConfig::default()
    };
    let lg = LoadgenConfig { sessions: 2, seconds: 1.0, seed: 5, ..LoadgenConfig::default() };
    let report =
        loadgen::run(&lg, serve_cfg, &proto, Environment::hallway()).expect("valid config");
    assert!(report.is_clean(), "unaccounted frames: {}", report.unaccounted);
    assert!(report.verdicts > 0, "the run must infer at least one clip");

    // Detach the sink (flushing it) so later configuration cannot bleed
    // events into this file.
    telemetry::configure(&telemetry::TelemetryConfig::default()).unwrap();

    let entries = telemetry::read_trace_file(&trace_path).unwrap();
    let span_names: BTreeSet<String> = entries
        .iter()
        .filter(|e| e["ph"] == "X")
        .filter_map(|e| e["name"].as_str().map(String::from))
        .collect();
    for required in ["serve.loadgen", "serve.pump", "serve.infer_batch"] {
        assert!(
            span_names.iter().any(|n| n.contains(required)),
            "trace must contain a `{required}` span, saw: {span_names:?}"
        );
    }
    // The latency histogram made it into the registry as well.
    let export = telemetry::global().export_metrics();
    assert!(
        export.histograms.contains_key("serve.latency_ms"),
        "serve.latency_ms histogram must be populated"
    );
    assert!(export.counters.get("serve.ingested").copied().unwrap_or(0) > 0);

    std::fs::remove_dir_all(&dir).ok();
}
