//! End-to-end durability of persisted artifacts across the workspace:
//! checksummed envelopes detect tearing and bit rot, corrupt files are
//! quarantined (never silently read, never destroyed), checkpoint sets
//! fall back to older generations, and pre-envelope artifacts from
//! earlier releases still load read-only.

use mmwave_har_backdoor::backdoor::{Campaign, PointOutcome};
use mmwave_har_backdoor::store::{self, CheckpointSet, Format, StoreError};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Artifact {
    name: String,
    values: Vec<f64>,
}

fn artifact() -> Artifact {
    Artifact { name: "sweep".to_string(), values: vec![0.5, -1.25, 3.0] }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("mmwave_durability_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn quarantine_files(dir: &Path) -> Vec<PathBuf> {
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.file_name().unwrap().to_string_lossy().contains(".quarantine-"))
        .collect()
}

#[test]
fn bit_flipped_artifact_is_detected_quarantined_and_recoverable() {
    let dir = temp_dir("flip");
    let path = dir.join("artifact.json");
    store::save_json_atomic(&path, &artifact()).unwrap();

    // Flip one payload bit, as bit rot or a bad sector would.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() - 10;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    let err = store::load_json::<Artifact>(&path).unwrap_err();
    assert!(matches!(err, StoreError::CorruptPayload { .. }), "{err}");
    assert!(err.to_string().contains("artifact.json"), "error names the path: {err}");

    // The damaged original is preserved aside, not destroyed...
    let quarantined = quarantine_files(&dir);
    assert_eq!(quarantined.len(), 1, "exactly one quarantine file");
    assert_eq!(std::fs::read(&quarantined[0]).unwrap(), bytes);
    assert!(!path.exists(), "the corrupt file must be moved out of the way");

    // ...and regeneration heals without a panic anywhere.
    store::save_json_atomic(&path, &artifact()).unwrap();
    assert_eq!(store::load_json::<Artifact>(&path).unwrap().value, artifact());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_write_is_detected_and_quarantined() {
    let dir = temp_dir("torn");
    let path = dir.join("artifact.json");
    store::save_json_atomic(&path, &artifact()).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

    let err = store::load_json::<Artifact>(&path).unwrap_err();
    assert!(matches!(err, StoreError::Torn { .. }), "{err}");
    assert!(err.is_recoverable());
    assert!(err.quarantined().is_some());
    assert!(!path.exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pre_envelope_bare_json_loads_read_only() {
    // Migration/back-compat: artifacts written before the envelope existed
    // are bare JSON; the loader accepts them flagged as legacy, and a
    // re-save upgrades them in place.
    let dir = temp_dir("legacy");
    let path = dir.join("artifact.json");
    std::fs::write(&path, serde_json::to_vec_pretty(&artifact()).unwrap()).unwrap();

    let loaded = store::load_json::<Artifact>(&path).unwrap();
    assert_eq!(loaded.value, artifact());
    assert_eq!(loaded.format, Format::LegacyBare);
    assert!(path.exists(), "a legacy read must not modify the file");

    store::save_json_atomic(&path, &loaded.value).unwrap();
    let upgraded = store::load_json::<Artifact>(&path).unwrap();
    assert_eq!(upgraded.format, Format::Enveloped, "re-save upgrades to the envelope");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pre_envelope_unframed_journal_replays_and_new_entries_are_framed() {
    // A journal written before CRC framing: plain JSON lines. It must
    // replay, and entries appended by this build get the frame.
    let dir = temp_dir("legacy-journal");
    std::fs::write(
        dir.join("journal.jsonl"),
        "{\"id\":\"old\",\"outcome\":{\"status\":\"Completed\",\"result\":4.5}}\n",
    )
    .unwrap();

    let mut campaign = Campaign::<f64>::open(&dir).unwrap();
    assert!(campaign.is_done("old"), "legacy entries must replay");
    let outcome = campaign.run_point("old", || panic!("must not re-run")).unwrap();
    assert_eq!(outcome, PointOutcome::Completed { result: 4.5 });

    campaign.run_point("new", || 7.25).unwrap();
    let journal = std::fs::read_to_string(dir.join("journal.jsonl")).unwrap();
    let last = journal.lines().last().unwrap();
    assert_eq!(last.as_bytes()[8], b' ', "new entries are CRC-framed: {last}");
    assert!(last[..8].bytes().all(|b| b.is_ascii_hexdigit()));

    // The mixed-format journal replays in full.
    let campaign = Campaign::<f64>::open(&dir).unwrap();
    assert!(campaign.is_done("old") && campaign.is_done("new"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_set_falls_back_past_a_corrupt_newest_generation() {
    let dir = temp_dir("ckpt");
    let set = CheckpointSet::new(&dir, "state", 3);
    for seq in 1..=3u64 {
        set.save(seq, &Artifact { name: format!("gen{seq}"), values: vec![seq as f64] })
            .unwrap();
    }

    // Corrupt the newest generation; loading falls back to the previous
    // one instead of failing or returning garbage.
    let newest = set.path_for(3);
    let mut bytes = std::fs::read(&newest).unwrap();
    let len = bytes.len();
    bytes.truncate(len / 2);
    std::fs::write(&newest, &bytes).unwrap();

    let loaded = set.load_latest::<Artifact>().unwrap().expect("an older generation loads");
    assert_eq!(loaded.value.name, "gen2");
    assert_eq!(loaded.seq, Some(2));
    assert_eq!(loaded.fallbacks, 1, "one generation was skipped");
    assert!(!quarantine_files(&dir).is_empty(), "the bad generation is preserved aside");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_set_keeps_only_the_newest_k_generations() {
    let dir = temp_dir("prune");
    let set = CheckpointSet::new(&dir, "state", 2);
    for seq in 1..=5u64 {
        set.save(seq, &artifact()).unwrap();
    }
    assert!(!set.path_for(3).exists(), "generation 3 must be pruned");
    assert!(set.path_for(4).exists() && set.path_for(5).exists());
    let loaded = set.load_latest::<Artifact>().unwrap().unwrap();
    assert_eq!(loaded.seq, Some(5));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn campaign_report_corruption_is_not_fatal() {
    // A corrupt report.json is quarantined on load; re-saving from the
    // (intact) journal regenerates it.
    let dir = temp_dir("report");
    let mut campaign = Campaign::<f64>::open(&dir).unwrap();
    campaign.run_point("a", || 1.0).unwrap();
    let saved = campaign.save_report().unwrap();

    let path = dir.join("report.json");
    let mut bytes = std::fs::read(&path).unwrap();
    let len = bytes.len();
    bytes[len - 3] ^= 0x20;
    std::fs::write(&path, &bytes).unwrap();

    let err = Campaign::<f64>::load_report(&dir).unwrap_err();
    assert!(err.to_string().contains("report.json"), "{err}");

    let reopened = Campaign::<f64>::open(&dir).unwrap();
    let regenerated = reopened.save_report().unwrap();
    assert_eq!(regenerated.completed, saved.completed);
    assert_eq!(Campaign::<f64>::load_report(&dir).unwrap().completed, saved.completed);
    let _ = std::fs::remove_dir_all(&dir);
}
