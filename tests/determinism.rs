//! Reproducibility: every stage of the stack is deterministic for fixed
//! seeds, across crate boundaries — and across worker counts: the
//! `mmwave-exec` pool promises byte-identical results whether a stage runs
//! exactly serial (`workers = 1`) or fanned out (`workers = 4`).

use mmwave_har_backdoor::backdoor::{Campaign, PointOutcome};
use mmwave_har_backdoor::body::{Activity, ActivitySampler, Participant, SampleVariation};
use mmwave_har_backdoor::exec::with_workers;
use mmwave_har_backdoor::har::dataset::{DatasetGenerator, DatasetSpec};
use mmwave_har_backdoor::har::{CnnLstm, PrototypeConfig, Trainer, TrainerConfig};
use mmwave_har_backdoor::radar::capture::{CaptureConfig, Capturer};
use mmwave_har_backdoor::radar::{Environment, Placement};
use mmwave_har_backdoor::shap::PermutationShap;

#[test]
fn capture_is_bit_identical_across_capturer_instances() {
    let seq = ActivitySampler::new(Participant::average(), 8, 10.0)
        .sample(Activity::Pull, &SampleVariation::nominal());
    let a = Capturer::new(CaptureConfig::fast()).capture(
        &seq,
        Placement::new(1.2, 0.0),
        &Environment::hallway(),
        None,
        99,
    );
    let b = Capturer::new(CaptureConfig::fast()).capture(
        &seq,
        Placement::new(1.2, 0.0),
        &Environment::hallway(),
        None,
        99,
    );
    assert_eq!(a.clean, b.clean);
}

#[test]
fn dataset_training_and_prediction_reproduce() {
    let cfg = PrototypeConfig::smoke_test();
    let gen1 = DatasetGenerator::new(cfg.clone());
    let gen2 = DatasetGenerator::new(cfg.clone());
    let spec = DatasetSpec::smoke_test();
    let d1 = gen1.generate(&spec, 7);
    let d2 = gen2.generate(&spec, 7);
    assert_eq!(d1, d2);

    let tc = TrainerConfig { epochs: 2, ..TrainerConfig::fast() };
    let mut m1 = CnnLstm::new(&cfg, 5);
    let mut m2 = CnnLstm::new(&cfg, 5);
    Trainer::new(tc).fit(&mut m1, &d1);
    Trainer::new(tc).fit(&mut m2, &d2);
    assert_eq!(m1, m2);
    for s in &d1.samples {
        assert_eq!(m1.predict(&s.heatmaps), m2.predict(&s.heatmaps));
    }
}

#[test]
fn shap_explanations_reproduce_across_instances() {
    struct Xor;
    impl mmwave_har_backdoor::shap::SetFunction for Xor {
        fn n_players(&self) -> usize {
            6
        }
        fn evaluate(&self, c: &[bool]) -> f64 {
            (c.iter().filter(|&&x| x).count() % 2) as f64
        }
    }
    let a = PermutationShap::new(16, 77).explain(&Xor);
    let b = PermutationShap::new(16, 77).explain(&Xor);
    assert_eq!(a, b);
}

#[test]
fn checkpointed_training_resumes_identically() {
    let cfg = PrototypeConfig::smoke_test();
    let gen = DatasetGenerator::new(cfg.clone());
    let data = gen.generate(&DatasetSpec::smoke_test(), 21);
    let full = TrainerConfig { epochs: 4, ..TrainerConfig::fast() };

    // The uninterrupted reference run.
    let mut reference = CnnLstm::new(&cfg, 9);
    let reference_stats = Trainer::new(full).fit(&mut reference, &data);

    // The same run, "killed" after epoch 2 (the half-trained model and
    // trainer are dropped) and resumed from its checkpoint by a fresh
    // process-equivalent.
    let dir = std::env::temp_dir().join(format!("mmwave_ckpt_resume_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut half_trained = CnnLstm::new(&cfg, 9);
        let half = TrainerConfig { epochs: 2, ..full };
        Trainer::new(half)
            .try_fit_resumable(&mut half_trained, &data, &dir)
            .expect("first half must train");
    }
    let mut resumed = CnnLstm::new(&cfg, 9);
    let resumed_stats = Trainer::new(full)
        .try_fit_resumable(&mut resumed, &data, &dir)
        .expect("resume must succeed");

    assert_eq!(resumed, reference, "resumed model must match the uninterrupted run");
    assert_eq!(resumed_stats, reference_stats, "resumed stats must match");
    std::fs::remove_dir_all(&dir).ok();
}

/// Worker-count matrix: capture DRAIs must be byte-identical whether the
/// per-frame fan-out runs on 1 worker (exact serial path) or 4.
#[test]
fn capture_is_bit_identical_across_worker_counts() {
    let seq = ActivitySampler::new(Participant::average(), 8, 10.0)
        .sample(Activity::Push, &SampleVariation::nominal());
    let capture = |workers: usize| {
        with_workers(workers, || {
            Capturer::new(CaptureConfig::fast()).capture(
                &seq,
                Placement::new(1.4, 10.0),
                &Environment::hallway(),
                None,
                1234,
            )
        })
    };
    let serial = capture(1);
    let parallel = capture(4);
    assert_eq!(serial.clean, parallel.clean, "DRAIs must not depend on the worker count");
}

/// Worker-count matrix: dataset generation, training, and prediction must
/// be byte-identical at 1 and 4 workers.
#[test]
fn training_is_bit_identical_across_worker_counts() {
    let cfg = PrototypeConfig::smoke_test();
    let run = |workers: usize| {
        with_workers(workers, || {
            let data = DatasetGenerator::new(cfg.clone()).generate(&DatasetSpec::smoke_test(), 7);
            let mut model = CnnLstm::new(&cfg, 5);
            let stats = Trainer::new(TrainerConfig { epochs: 2, ..TrainerConfig::fast() })
                .fit(&mut model, &data);
            (data, model, stats)
        })
    };
    let (data_1, model_1, stats_1) = run(1);
    let (data_4, model_4, stats_4) = run(4);
    assert_eq!(data_1, data_4, "generated datasets must not depend on the worker count");
    assert_eq!(model_1, model_4, "trained weights must not depend on the worker count");
    assert_eq!(stats_1, stats_4, "loss/accuracy trajectories must not depend on the worker count");
    for s in &data_1.samples {
        assert_eq!(model_1.predict(&s.heatmaps), model_4.predict(&s.heatmaps));
    }
}

/// Worker-count matrix: SHAP attributions must be byte-identical at 1 and
/// 4 workers (the permutation walks are pre-drawn serially, then fanned
/// out).
#[test]
fn shap_is_bit_identical_across_worker_counts() {
    struct Xor;
    impl mmwave_har_backdoor::shap::SetFunction for Xor {
        fn n_players(&self) -> usize {
            6
        }
        fn evaluate(&self, c: &[bool]) -> f64 {
            (c.iter().filter(|&&x| x).count() % 2) as f64
        }
    }
    let serial = with_workers(1, || PermutationShap::new(16, 77).explain(&Xor));
    let parallel = with_workers(4, || PermutationShap::new(16, 77).explain(&Xor));
    assert_eq!(serial, parallel);
}

/// Worker-count matrix: a parallel campaign batch must journal the same
/// (id, outcome) sequence as the serial one.
#[test]
fn campaign_journal_is_identical_across_worker_counts() {
    let journal_key = |workers: usize| {
        let dir = std::env::temp_dir().join(format!(
            "mmwave_campaign_workers_{workers}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut campaign = Campaign::<f64>::open(&dir).expect("campaign opens");
        let points: Vec<(String, _)> = (0..8)
            .map(|i| (format!("point {i}"), move || (i as f64).sqrt() * 3.0))
            .collect();
        let outcomes = with_workers(workers, || campaign.run_points(&points)).expect("batch runs");
        assert!(outcomes.iter().all(|o| matches!(o, PointOutcome::Completed { .. })));
        // Compare what replay sees: (id, outcome) per journal line, in
        // order. Timings and telemetry snapshots legitimately differ.
        let journal = std::fs::read_to_string(dir.join("journal.jsonl")).expect("journal exists");
        let key: Vec<(String, String)> = journal
            .lines()
            .map(|line| {
                let v: serde_json::Value = serde_json::from_str(line).expect("valid entry");
                (v["id"].as_str().expect("id").to_string(), v["outcome"].to_string())
            })
            .collect();
        std::fs::remove_dir_all(&dir).ok();
        key
    };
    assert_eq!(journal_key(1), journal_key(4));
}

#[test]
fn body_sampling_is_pure() {
    let sampler = ActivitySampler::new(Participant::presets()[2], 8, 10.0);
    let v = SampleVariation::nominal();
    let a = sampler.sample(Activity::Anticlockwise, &v);
    let b = sampler.sample(Activity::Anticlockwise, &v);
    assert_eq!(a.frame(7).mesh.vertices(), b.frame(7).mesh.vertices());
    assert_eq!(a.frame(7).sites, b.frame(7).sites);
}
