//! Deterministic model-health alarm proof (ISSUE 9 acceptance):
//!
//! 1. A clean loadgen run under the monitor produces an *empty*
//!    `alerts.jsonl` (the file exists — positive evidence monitoring
//!    ran) with every drift score exactly 0.0: the window size is a
//!    multiple of the session count and the stream is unshed and
//!    round-aligned, so every window reproduces the reference mix
//!    exactly.
//! 2. A `poison_frac = 0.3` run — three sessions streaming the worn
//!    aluminum trigger, spread across all three base streams by the
//!    prefix assignment — fires at least one **backdoor** alarm, and
//!    the audit log is bit-identical at 1 worker and at 4 workers: the
//!    verdict stream is worker-count-independent and alerts carry no
//!    wall-clock fields.

use std::fs;

use mmwave_har_backdoor::har::PrototypeConfig;
use mmwave_har_backdoor::monitor::{self, AlertKind, MonitorConfig, MonitorOutcome};
use mmwave_har_backdoor::radar::Environment;
use mmwave_har_backdoor::serve::{LoadgenConfig, ServeConfig};

/// 10 sessions x 64 frames at clip_len 8: 8 verdict rounds of 10, so
/// the auto window (2 x sessions = 20) spans exactly two rounds and 80
/// verdicts close exactly 4 windows.
fn stream_config(poison_frac: f64) -> LoadgenConfig {
    LoadgenConfig {
        sessions: 10,
        seconds: 3.2,
        fps: 20.0,
        jitter: 0.2,
        burst: 1,
        seed: 99,
        paced: false,
        pump_every: 40,
        poison_frac,
    }
}

/// Capacities chosen so nothing is ever shed: between 40-frame pump
/// points each session gains ~4 frames, far under the ring capacity,
/// and at most one ready clip per session waits per pump.
fn serve_config(proto: &PrototypeConfig) -> ServeConfig {
    ServeConfig {
        clip_len: proto.n_frames,
        ring_capacity: proto.n_frames * 4,
        ready_capacity: 32,
        max_batch: 8,
    }
}

/// Captures a clean reference, then replays the (possibly poisoned)
/// stream under the monitor at the given worker count. Returns the
/// outcome and the raw bytes of the alert log.
fn run_monitored_at(workers: usize, poison_frac: f64, tag: &str) -> (MonitorOutcome, Vec<u8>) {
    let proto = PrototypeConfig::smoke_test();
    let serve_cfg = serve_config(&proto);
    let lg = stream_config(poison_frac);
    let environment = Environment::hallway();
    let alerts_path = std::env::temp_dir()
        .join(format!("mmwave_monitor_alarms_{tag}_{}.jsonl", std::process::id()));
    let outcome = mmwave_har_backdoor::exec::with_workers(workers, || {
        // capture_profile forces poison_frac = 0, so the baseline is
        // clean even though `lg` may poison.
        let (reference, baseline_report) =
            monitor::capture_profile(&lg, serve_cfg.clone(), &proto, environment.clone())
                .expect("baseline capture succeeds");
        assert!(
            baseline_report.is_clean() && baseline_report.shed_frames == 0,
            "the baseline run must be unshed and accounted: {baseline_report:?}"
        );
        monitor::run_monitored(
            &lg,
            serve_cfg.clone(),
            &proto,
            environment.clone(),
            &MonitorConfig::default(),
            reference,
            Some(&alerts_path),
            |_| {},
        )
        .expect("monitored run succeeds")
    });
    let bytes = fs::read(&alerts_path).expect("the alert log must exist even when quiet");
    let _ = fs::remove_file(&alerts_path);
    (outcome, bytes)
}

#[test]
fn clean_run_is_provably_quiet_at_any_worker_count() {
    let (serial, serial_bytes) = run_monitored_at(1, 0.0, "clean_w1");
    let (parallel, parallel_bytes) = run_monitored_at(4, 0.0, "clean_w4");
    for (outcome, bytes) in [(&serial, &serial_bytes), (&parallel, &parallel_bytes)] {
        assert!(outcome.report.is_clean(), "clean run must account every frame");
        assert_eq!(outcome.report.shed_frames, 0, "round alignment requires zero shed");
        assert_eq!(outcome.report.poisoned_sessions, 0);
        assert_eq!(outcome.windows, 4, "80 verdicts / window 20 = 4 windows");
        assert!(outcome.alerts.is_empty(), "clean traffic must not alert: {:?}", outcome.alerts);
        assert!(bytes.is_empty(), "a quiet run leaves an empty audit log");
        // Every window replays the reference mix exactly, so drift is
        // identically zero — not merely below threshold.
        let drift = outcome.last_drift.as_ref().expect("windows closed");
        assert_eq!(drift.class_psi, 0.0);
        assert_eq!(drift.class_chi2, 0.0);
        assert_eq!(drift.confidence_tv, 0.0);
        assert_eq!(drift.trigger_tail, 0.0);
        assert_eq!(drift.spike_delta, 0.0);
        let cfg = MonitorConfig::default();
        assert!(drift.class_psi < cfg.psi_threshold);
        assert!(drift.confidence_tv < cfg.conf_threshold);
        assert!(drift.trigger_tail < cfg.tail_threshold);
    }
    assert_eq!(serial_bytes, parallel_bytes, "audit logs must match bit-for-bit");
}

#[test]
fn poisoned_run_fires_the_backdoor_alarm_identically_at_one_and_four_workers() {
    let (serial, serial_bytes) = run_monitored_at(1, 0.3, "poison_w1");
    let (parallel, parallel_bytes) = run_monitored_at(4, 0.3, "poison_w4");
    assert_eq!(
        serial_bytes, parallel_bytes,
        "alerts.jsonl must be bit-identical across worker counts"
    );
    assert!(!serial_bytes.is_empty(), "the poisoned run must write alerts");
    for outcome in [&serial, &parallel] {
        assert!(outcome.report.is_clean(), "poisoned run still accounts every frame");
        assert_eq!(outcome.report.shed_frames, 0);
        assert_eq!(outcome.report.poisoned_sessions, 3, "round(10 * 0.3) sessions poisoned");
        assert_eq!(outcome.windows, 4);
        let backdoors =
            outcome.alerts.iter().filter(|a| a.kind == AlertKind::Backdoor).count();
        assert!(
            backdoors >= 1,
            "a worn-trigger stream must trip the backdoor rule; alerts: {:?}",
            outcome.alerts
        );
        for alert in outcome.alerts.iter().filter(|a| a.kind == AlertKind::Backdoor) {
            assert!(alert.value >= alert.threshold);
            assert_eq!(alert.sustained, MonitorConfig::default().sustain);
        }
    }
    // The in-memory alert list and the CRC-framed audit log agree.
    let lines = serial_bytes.split(|&b| b == b'\n').filter(|l| !l.is_empty()).count();
    assert_eq!(lines, serial.alerts.len(), "one framed line per fired alert");
}
