//! Property test: `read_jsonl_repair` over *randomly damaged* journals.
//!
//! The chaos matrix proves recovery at the crash points we thought to
//! name; this file proves it at every byte offset we didn't. For any
//! valid CRC-framed journal:
//!
//! * truncated at an **arbitrary byte position**, replay yields exactly
//!   the longest prefix of intact records — never a panic, never a
//!   half-parsed record, and the torn tail is reported and repaired in
//!   place so a second read is clean;
//! * with an **arbitrary single byte corrupted**, replay still yields a
//!   strict prefix of the original records and reports the damage (torn
//!   tail or quarantine + dropped lines), never silently returning
//!   garbage.

use mmwave_har_backdoor::store;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mmwave_journal_trunc_{}_{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create case dir");
    dir
}

/// Writes `n` framed records and returns (journal path, record texts,
/// byte offset just past each record's newline).
fn build_journal(dir: &std::path::Path, n: usize) -> (PathBuf, Vec<String>, Vec<usize>) {
    let path = dir.join("journal.jsonl");
    let mut records = Vec::with_capacity(n);
    let mut line_ends = Vec::with_capacity(n);
    for i in 0..n {
        let json = format!(r#"{{"id":"point-{i}","value":{}.25}}"#, i * 3);
        store::append_jsonl(&path, &json, None).expect("append");
        records.push(json);
        line_ends.push(std::fs::metadata(&path).expect("metadata").len() as usize);
    }
    (path, records, line_ends)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_byte_truncation_repairs_to_the_valid_prefix(
        n in 1usize..9,
        pos_raw in any::<usize>(),
    ) {
        let dir = fresh_dir();
        let (path, records, line_ends) = build_journal(&dir, n);
        let total = *line_ends.last().expect("nonempty journal");
        let pos = pos_raw % (total + 1);

        let bytes = std::fs::read(&path).expect("read journal");
        std::fs::write(&path, &bytes[..pos]).expect("truncate journal");

        // Expected: every record whose full framed line (newline included)
        // survived the cut; any nonempty leftover is a torn tail.
        let intact = line_ends.iter().filter(|&&end| end <= pos).count();
        let prev_end = if intact > 0 { line_ends[intact - 1] } else { 0 };
        let expect_torn = pos > prev_end;

        let replay = store::read_jsonl_repair(&path).expect("repair must not error");
        prop_assert_eq!(&replay.lines, &records[..intact],
            "replay must be exactly the intact prefix");
        prop_assert_eq!(replay.torn_tail_truncated, expect_torn,
            "torn-tail reporting must match the damage (pos {} of {})", pos, total);
        prop_assert!(replay.quarantined.is_none(),
            "pure truncation is a torn tail, not mid-file corruption");

        // The repair is durable: a second read sees a clean journal with
        // the same records and nothing left to fix.
        let again = store::read_jsonl_repair(&path).expect("second read");
        prop_assert_eq!(&again.lines, &records[..intact]);
        prop_assert!(!again.torn_tail_truncated && again.quarantined.is_none(),
            "the repaired journal must read clean");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn any_single_byte_corruption_yields_a_reported_prefix(
        n in 1usize..9,
        idx_raw in any::<usize>(),
        delta in 1u8..=255,
    ) {
        let dir = fresh_dir();
        let (path, records, _) = build_journal(&dir, n);

        let mut bytes = std::fs::read(&path).expect("read journal");
        let idx = idx_raw % bytes.len();
        bytes[idx] = bytes[idx].wrapping_add(delta);
        std::fs::write(&path, &bytes).expect("write corrupted journal");

        let replay = store::read_jsonl_repair(&path).expect("repair must not error");

        // Whatever the damage did, the result is a prefix of the original
        // records — the CRC frame forbids accepting altered content.
        prop_assert!(replay.lines.len() <= n);
        prop_assert_eq!(&replay.lines, &records[..replay.lines.len()],
            "no altered or reordered record may survive replay");

        // Lost records must be reported, not silently absorbed. (A
        // hex-case flip like a->A is the one content-preserving mutation;
        // then nothing is lost and nothing need be reported.)
        if replay.lines.len() < n {
            prop_assert!(
                replay.torn_tail_truncated
                    || replay.dropped_lines > 0
                    || replay.quarantined.is_some(),
                "dropped records must be reported: {replay:?}"
            );
        }

        // And the repair converges: the next read is clean.
        let again = store::read_jsonl_repair(&path).expect("second read");
        prop_assert_eq!(again.lines.len(), replay.lines.len());
        prop_assert!(!again.torn_tail_truncated && again.quarantined.is_none());

        std::fs::remove_dir_all(&dir).ok();
    }
}
