//! Fault tolerance: a killed campaign resumes from its journal and
//! produces byte-identical results to an uninterrupted run.

use mmwave_har_backdoor::backdoor::{
    AttackMetrics, AttackSpec, Campaign, ExperimentContext, ExperimentScale, FrameStrategy,
    PointOutcome,
};
use mmwave_har_backdoor::backdoor::experiment::SiteChoice;
use mmwave_har_backdoor::body::SiteId;

fn specs() -> Vec<AttackSpec> {
    [0.3, 0.5]
        .into_iter()
        .map(|rate| AttackSpec {
            injection_rate: rate,
            n_poisoned_frames: 2,
            site: SiteChoice::Fixed(SiteId::RightThigh),
            frame_strategy: FrameStrategy::FirstK,
            ..AttackSpec::default()
        })
        .collect()
}

fn point_id(spec: &AttackSpec) -> String {
    format!(
        "attack rate={:.2} frames={}",
        spec.injection_rate, spec.n_poisoned_frames
    )
}

#[test]
fn killed_campaign_resumes_byte_identical() {
    let pts = specs();
    let base = std::env::temp_dir().join(format!("mmwave_campaign_{}", std::process::id()));
    let dir_a = base.join("uninterrupted");
    let dir_b = base.join("interrupted");
    let _ = std::fs::remove_dir_all(&base);

    // Reference: the whole sweep in one process lifetime.
    let mut a = Campaign::<AttackMetrics>::open(&dir_a).expect("open campaign A");
    for spec in &pts {
        let mut ctx = ExperimentContext::new(ExperimentScale::smoke_test(), 42);
        a.run_attack_point(&mut ctx, &point_id(spec), spec, 1)
            .expect("journal write");
    }

    // "Killed" run: one point completes, then the process dies (the
    // campaign value is dropped with the journal already on disk).
    {
        let mut b = Campaign::<AttackMetrics>::open(&dir_b).expect("open campaign B");
        let mut ctx = ExperimentContext::new(ExperimentScale::smoke_test(), 42);
        b.run_attack_point(&mut ctx, &point_id(&pts[0]), &pts[0], 1)
            .expect("journal write");
    }

    // Resume: replay the same sweep; the finished point comes from the
    // journal, the rest run live.
    let mut b = Campaign::<AttackMetrics>::open(&dir_b).expect("reopen campaign B");
    for spec in &pts {
        let mut ctx = ExperimentContext::new(ExperimentScale::smoke_test(), 42);
        let outcome = b
            .run_attack_point(&mut ctx, &point_id(spec), spec, 1)
            .expect("journal write");
        assert!(
            matches!(outcome, PointOutcome::Completed { .. }),
            "every point must complete"
        );
    }
    assert_eq!(b.reused_count(), 1, "exactly one point must come from the journal");

    let journal_a = std::fs::read(a.journal_path()).expect("read journal A");
    let journal_b = std::fs::read(b.journal_path()).expect("read journal B");
    assert_eq!(
        journal_a, journal_b,
        "resumed campaign journal must be byte-identical to the uninterrupted run"
    );
    std::fs::remove_dir_all(&base).ok();
}
