//! Fault tolerance: a killed campaign resumes from its journal and
//! produces results identical to an uninterrupted run.

use mmwave_har_backdoor::backdoor::{
    AttackMetrics, AttackSpec, Campaign, ExperimentContext, ExperimentScale, FrameStrategy,
    PointOutcome,
};
use mmwave_har_backdoor::backdoor::experiment::SiteChoice;
use mmwave_har_backdoor::body::SiteId;

fn specs() -> Vec<AttackSpec> {
    [0.3, 0.5]
        .into_iter()
        .map(|rate| AttackSpec {
            injection_rate: rate,
            n_poisoned_frames: 2,
            site: SiteChoice::Fixed(SiteId::RightThigh),
            frame_strategy: FrameStrategy::FirstK,
            ..AttackSpec::default()
        })
        .collect()
}

fn point_id(spec: &AttackSpec) -> String {
    format!(
        "attack rate={:.2} frames={}",
        spec.injection_rate, spec.n_poisoned_frames
    )
}

#[test]
fn killed_campaign_resumes_identically() {
    let pts = specs();
    let base = std::env::temp_dir().join(format!("mmwave_campaign_{}", std::process::id()));
    let dir_a = base.join("uninterrupted");
    let dir_b = base.join("interrupted");
    let _ = std::fs::remove_dir_all(&base);

    // Reference: the whole sweep in one process lifetime.
    let mut a = Campaign::<AttackMetrics>::open(&dir_a).expect("open campaign A");
    for spec in &pts {
        let mut ctx = ExperimentContext::new(ExperimentScale::smoke_test(), 42);
        a.run_attack_point(&mut ctx, &point_id(spec), spec, 1)
            .expect("journal write");
    }

    // "Killed" run: one point completes, then the process dies (the
    // campaign value is dropped with the journal already on disk).
    {
        let mut b = Campaign::<AttackMetrics>::open(&dir_b).expect("open campaign B");
        let mut ctx = ExperimentContext::new(ExperimentScale::smoke_test(), 42);
        b.run_attack_point(&mut ctx, &point_id(&pts[0]), &pts[0], 1)
            .expect("journal write");
    }

    // Resume: replay the same sweep; the finished point comes from the
    // journal, the rest run live.
    let mut b = Campaign::<AttackMetrics>::open(&dir_b).expect("reopen campaign B");
    for spec in &pts {
        let mut ctx = ExperimentContext::new(ExperimentScale::smoke_test(), 42);
        let outcome = b
            .run_attack_point(&mut ctx, &point_id(spec), spec, 1)
            .expect("journal write");
        assert!(
            matches!(outcome, PointOutcome::Completed { .. }),
            "every point must complete"
        );
    }
    assert_eq!(b.reused_count(), 1, "exactly one point must come from the journal");

    // The journaled *results* must match exactly. (The raw journal bytes
    // differ: entries also carry wall-clock durations and telemetry
    // snapshots, which are legitimately non-deterministic.)
    for spec in &pts {
        let id = point_id(spec);
        assert_eq!(
            a.get(&id),
            b.get(&id),
            "point {id}: resumed result must equal the uninterrupted run"
        );
        assert!(
            b.point_duration_ms(&id).is_some(),
            "point {id}: journal must record a duration"
        );
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn journals_without_duration_fields_resume() {
    // Journals written before durations/telemetry existed carry bare
    // {id, outcome} entries; resuming against one must still work.
    let dir = std::env::temp_dir()
        .join(format!("mmwave_campaign_legacy_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create campaign dir");
    std::fs::write(
        dir.join("journal.jsonl"),
        "{\"id\":\"pt\",\"outcome\":{\"status\":\"Completed\",\"result\":1.25}}\n",
    )
    .expect("write legacy journal");
    let mut c = Campaign::<f64>::open(&dir).expect("open legacy campaign");
    let outcome = c.run_point("pt", || panic!("journaled point must not re-run")).unwrap();
    assert_eq!(outcome, PointOutcome::Completed { result: 1.25 });
    assert_eq!(c.point_duration_ms("pt"), None);
    std::fs::remove_dir_all(&dir).ok();
}
