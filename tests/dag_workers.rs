//! Distributed campaign orchestration, end to end: real `mmwave worker`
//! processes draining one campaign DAG directory concurrently, with
//! genuine `abort()` kills, stale-claim reclaim, and content-addressed
//! dedupe — the multi-process acceptance properties of the DAG runtime.
//!
//! Byte-identity discipline matches the chaos matrix: every worker runs
//! with a pinned envelope git sha, so `report.json` is a pure function of
//! the campaign outcomes no matter how many workers ran or died.

use mmwave_har_backdoor::store;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

fn mmwave() -> &'static str {
    env!("CARGO_BIN_EXE_mmwave")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("mmwave_dagit_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn init_demo(dir: &Path) {
    let out = Command::new(mmwave())
        .arg("campaign-init")
        .arg("--dir")
        .arg(dir)
        .arg("--quiet")
        .output()
        .expect("spawn mmwave campaign-init");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

/// A `mmwave worker` command over `dir` with deterministic artifacts, a
/// 1 s claim TTL, and a fast idle poll.
fn worker_cmd(dir: &Path, worker_id: &str, envs: &[(&str, &str)]) -> Command {
    let mut cmd = Command::new(mmwave());
    cmd.arg("worker")
        .arg("--dir")
        .arg(dir)
        .arg("--worker-id")
        .arg(worker_id)
        .arg("--ttl")
        .arg("1")
        .arg("--poll-ms")
        .arg("25")
        .arg("--quiet");
    cmd.env_remove("MMWAVE_CRASH_AT");
    cmd.env_remove("MMWAVE_CRASH_LOG");
    cmd.env_remove("MMWAVE_WORKER_SHARD");
    cmd.env("MMWAVE_JOURNAL_DETERMINISTIC", "1");
    cmd.env("MMWAVE_GIT_SHA", "dag-test");
    for (key, value) in envs {
        cmd.env(key, value);
    }
    cmd
}

fn run_worker(dir: &Path, worker_id: &str, envs: &[(&str, &str)]) -> std::process::Output {
    worker_cmd(dir, worker_id, envs).output().expect("spawn mmwave worker")
}

#[test]
fn three_workers_produce_the_same_report_bytes_as_one() {
    let root = temp_dir("equiv");
    let solo = root.join("solo");
    let fleet = root.join("fleet");
    init_demo(&solo);
    init_demo(&fleet);

    let out = run_worker(&solo, "w0", &[]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let children: Vec<_> = (0..3)
        .map(|i| {
            worker_cmd(&fleet, &format!("w{i}"), &[])
                .spawn()
                .expect("spawn fleet worker")
        })
        .collect();
    for mut child in children {
        let status = child.wait().expect("wait fleet worker");
        assert!(status.success(), "fleet worker failed: {status}");
    }

    let solo_report = std::fs::read(solo.join("report.json")).expect("solo report");
    let fleet_report = std::fs::read(fleet.join("report.json")).expect("fleet report");
    assert_eq!(
        solo_report, fleet_report,
        "three concurrent workers must reach the byte-identical report"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn shared_specs_are_trained_once_and_deduped() {
    let dir = temp_dir("dedupe");
    init_demo(&dir);
    let out = run_worker(&dir, "w0", &[]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("deduped 1"),
        "the twin baseline must be a dedupe hit: {stdout}"
    );

    // 8 done records share 7 content-addressed artifacts: the identical
    // baseline-a / baseline-b specs map to one key, stored once.
    let artifacts = std::fs::read_dir(dir.join("artifacts")).expect("artifacts dir").count();
    assert_eq!(artifacts, 7, "the shared baseline must be stored exactly once");
    let done = std::fs::read_dir(dir.join("tasks"))
        .expect("tasks dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".done.json"))
        .count();
    assert_eq!(done, 8, "every task must still get its own done record");

    // The read-only inspector reports the same story without locking.
    let status = Command::new(mmwave())
        .arg("campaign-status")
        .arg(&dir)
        .arg("--quiet")
        .output()
        .expect("spawn mmwave campaign-status");
    assert!(status.status.success(), "{}", String::from_utf8_lossy(&status.stderr));
    let text = String::from_utf8_lossy(&status.stdout);
    assert!(text.contains("8/8 done"), "inspector sees completion: {text}");
    assert!(text.contains("share 7 artifacts (1 hits)"), "inspector sees dedupe: {text}");
    assert!(text.contains("report: present"), "inspector sees the report: {text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_worker_is_reclaimed_and_the_campaign_still_finishes_identically() {
    let root = temp_dir("kill");
    let reference = root.join("reference");
    let killed = root.join("killed");
    init_demo(&reference);
    init_demo(&killed);

    let out = run_worker(&reference, "w0", &[]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Worker 0 aborts mid-task (after claiming, before persisting any
    // result), leaving a claim file with no heartbeat behind.
    let out = run_worker(&killed, "w0", &[("MMWAVE_CRASH_AT", "dag.task.pre_execute")]);
    assert!(!out.status.success(), "armed worker must abort");
    let claims: Vec<String> = std::fs::read_dir(killed.join("claims"))
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .collect()
        })
        .unwrap_or_default();
    assert!(
        claims.iter().any(|name| name.ends_with(".claim")),
        "the dead worker must leave its claim behind: {claims:?}"
    );

    // A clean worker must reclaim the stale claim (TTL 1 s) and finish
    // the whole campaign to the byte-identical report.
    let out = run_worker(&killed, "w1", &[]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("reclaimed 1"),
        "the survivor must report the reclaim: {stdout}"
    );
    assert_eq!(
        std::fs::read(reference.join("report.json")).expect("reference report"),
        std::fs::read(killed.join("report.json")).expect("killed report"),
        "a murdered worker must not change a single report byte"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn heartbeats_protect_a_live_claim_from_reclaim() {
    // Store-level property behind "never double-executed while the owner
    // is live": as long as the owner refreshes faster than the TTL, no
    // amount of reclaim pressure wins; once heartbeats stop, reclaim
    // succeeds within one TTL window.
    let dir = temp_dir("heartbeat");
    std::fs::create_dir_all(&dir).unwrap();
    let claim = dir.join("task.claim");
    let ttl = Duration::from_millis(200);
    let info = store::ClaimInfo {
        worker_id: "live".to_string(),
        pid: std::process::id(),
        task_id: "task".to_string(),
    };
    assert!(matches!(
        store::acquire_claim(&claim, &info).expect("acquire"),
        store::ClaimAttempt::Acquired
    ));

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let beat_stop = std::sync::Arc::clone(&stop);
    let beat_claim = claim.clone();
    let beat_info = info.clone();
    let heart = std::thread::spawn(move || {
        while !beat_stop.load(std::sync::atomic::Ordering::Relaxed) {
            store::refresh_claim(&beat_claim, &beat_info).expect("refresh");
            std::thread::sleep(Duration::from_millis(50));
        }
    });

    // Hammer reclaim for 3+ TTL windows: it must never succeed.
    let pressure_until = Instant::now() + Duration::from_millis(700);
    while Instant::now() < pressure_until {
        let won = store::reclaim_stale(&claim, ttl).expect("reclaim attempt");
        assert!(won.is_none(), "a heartbeating claim must never be reclaimed");
        std::thread::sleep(Duration::from_millis(25));
    }

    // Owner dies: heartbeats stop, and one TTL later the claim falls.
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    heart.join().expect("heartbeat thread");
    let deadline = Instant::now() + 2 * ttl + Duration::from_millis(500);
    let mut reclaimed = None;
    while Instant::now() < deadline {
        reclaimed = store::reclaim_stale(&claim, ttl).expect("reclaim attempt");
        if reclaimed.is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let stale_copy = reclaimed.expect("a dead claim must be reclaimed within ~one TTL");
    assert!(stale_copy.exists(), "reclaim preserves the stale claim for forensics");
    assert!(!claim.exists(), "the claim path must be free after reclaim");

    // And the freed path is immediately claimable by the next worker.
    let next = store::ClaimInfo {
        worker_id: "next".to_string(),
        pid: std::process::id(),
        task_id: "task".to_string(),
    };
    assert!(matches!(
        store::acquire_claim(&claim, &next).expect("re-acquire"),
        store::ClaimAttempt::Acquired
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dag_chaos_driver_passes_its_matrix() {
    // The full multi-process crash matrix: every named crash point along
    // the worker's artifact paths, three workers per cell, one murdered.
    // The driver's exit code is the verdict.
    let dir = temp_dir("matrix");
    let out = Command::new(mmwave())
        .arg("dag-chaos")
        .arg("--dir")
        .arg(&dir)
        .arg("--quiet")
        .env_remove("MMWAVE_CRASH_AT")
        .env_remove("MMWAVE_CRASH_LOG")
        .output()
        .expect("spawn mmwave dag-chaos");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "dag-chaos matrix failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("crash points pass"),
        "driver must report its verdict: {stdout}"
    );
    assert!(!stdout.contains("FAIL"), "no cell may fail: {stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}
