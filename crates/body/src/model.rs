//! The kinematic human model: pose in, triangle mesh + site poses out.

use crate::participant::Participant;
use crate::sites::{SiteId, SitePose};
use mmwave_geom::{primitives, Mat3, RigidTransform, TriMesh, Vec3};
use serde::{Deserialize, Serialize};

/// An instantaneous body configuration in the body-local frame
/// (`x` = body's right, `y` = facing direction, `z` = up, origin between
/// the feet).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BodyPose {
    /// Right-hand (wrist) target position.
    pub hand_target: Vec3,
    /// Whole-body micro-motion offset (postural sway).
    pub sway: Vec3,
    /// Chest expansion due to breathing, in meters (applied along `+y`).
    pub breath: f64,
}

impl Default for BodyPose {
    fn default() -> Self {
        BodyPose { hand_target: Vec3::new(0.25, 0.25, 1.1), sway: Vec3::ZERO, breath: 0.0 }
    }
}

/// Builds posed triangle meshes of a participant.
///
/// Mesh topology is identical for every pose (same tessellation, same
/// vertex order), so per-vertex velocities can be obtained by finite
/// differences between two nearby poses — see
/// [`TriMesh::set_velocities_from_previous`].
///
/// # Examples
///
/// ```
/// use mmwave_body::{HumanModel, Participant};
/// use mmwave_body::model::BodyPose;
///
/// let model = HumanModel::new(Participant::average());
/// let (mesh, sites) = model.posed(&BodyPose::default());
/// assert!(mesh.triangle_count() > 100);
/// assert_eq!(sites.len(), mmwave_body::SiteId::ALL.len());
/// ```
#[derive(Debug, Clone)]
pub struct HumanModel {
    participant: Participant,
}

impl HumanModel {
    /// Creates a model for the given participant.
    ///
    /// # Panics
    ///
    /// Panics if the participant fails [`Participant::validate`].
    pub fn new(participant: Participant) -> Self {
        participant
            .validate()
            .unwrap_or_else(|e| panic!("invalid participant: {e}"));
        HumanModel { participant }
    }

    /// The participant this model was built for.
    pub fn participant(&self) -> &Participant {
        &self.participant
    }

    /// Builds the posed mesh and the attachment-site poses.
    ///
    /// Site velocities in the returned [`SitePose`]s are zero; the sampler
    /// fills them in by finite differences, exactly as it does for mesh
    /// vertices.
    pub fn posed(&self, pose: &BodyPose) -> (TriMesh, Vec<SitePose>) {
        let p = &self.participant;
        let joints = self.solve_joints(pose);
        let mut mesh = TriMesh::new();

        // Torso: ellipsoid between hips and shoulders; breathing expands
        // its front-back half-depth.
        let torso_half_h = (p.shoulder_height() - p.hip_height()) / 2.0 + 0.06;
        let torso_center = Vec3::new(
            0.0,
            0.0,
            (p.shoulder_height() + p.hip_height()) / 2.0,
        );
        let torso = primitives::ellipsoid(
            p.torso_width(),
            p.torso_depth() + pose.breath,
            torso_half_h,
            10,
            5,
        )
        .translated(torso_center);
        mesh.merge(&torso);

        // Head.
        let head_r = p.head_radius();
        let head = primitives::ellipsoid(head_r, head_r, head_r * 1.25, 8, 4)
            .translated(Vec3::new(0.0, 0.0, p.height - head_r * 1.25));
        mesh.merge(&head);

        // Legs.
        let hip_x = 0.09 * p.build;
        for side in [-1.0, 1.0] {
            let leg = primitives::cylinder(p.leg_radius(), p.hip_height(), 6, 2)
                .translated(Vec3::new(side * hip_x, 0.0, p.hip_height() / 2.0));
            mesh.merge(&leg);
        }

        // Arms: four segments (two per arm), plus the right hand.
        mesh.merge(&limb_between(joints.right_shoulder, joints.right_elbow, p.arm_radius()));
        mesh.merge(&limb_between(joints.right_elbow, joints.right_wrist, p.arm_radius() * 0.85));
        mesh.merge(&limb_between(joints.left_shoulder, joints.left_elbow, p.arm_radius()));
        mesh.merge(&limb_between(joints.left_elbow, joints.left_wrist, p.arm_radius() * 0.85));
        let hand_dir = (joints.right_wrist - joints.right_elbow)
            .try_normalized()
            .unwrap_or(Vec3::Y);
        let hand = primitives::ellipsoid(0.045, 0.05, 0.09, 6, 3);
        let hand_xf = RigidTransform::new(
            rotation_z_to(hand_dir),
            joints.right_wrist + hand_dir * 0.06,
        );
        mesh.merge(&hand.transformed(&hand_xf));

        // Postural sway pivots around the planted feet: displacement grows
        // linearly with height, so the chest sways more than the shins.
        // This is what differentiates the MTI survival of triggers taped to
        // different body parts.
        let height = p.height;
        let sway = pose.sway;
        mesh.map_vertices(|v| v + sway * (v.z / height).clamp(0.0, 1.2));
        let sites = self.site_poses(pose, &joints);
        (mesh, sites)
    }

    /// Joint solution for a pose (public for tests and debugging displays).
    pub fn solve_joints(&self, pose: &BodyPose) -> Joints {
        let p = &self.participant;
        let sw = p.shoulder_half_width();
        let right_shoulder = Vec3::new(sw, 0.02, p.shoulder_height());
        let left_shoulder = Vec3::new(-sw, 0.02, p.shoulder_height());

        // Right arm: two-link IK to the hand target.
        let (l1, l2) = (p.upper_arm_length(), p.forearm_length());
        let (right_elbow, right_wrist) =
            two_link_ik(right_shoulder, pose.hand_target, l1, l2);

        // Left arm hangs at the side with a slight forward bend.
        let left_elbow = left_shoulder + Vec3::new(-0.02, 0.01, -l1);
        let left_wrist = left_elbow + Vec3::new(0.0, 0.08, -l2 * 0.98);

        Joints {
            right_shoulder,
            right_elbow,
            right_wrist,
            left_shoulder,
            left_elbow,
            left_wrist,
        }
    }

    fn site_poses(&self, pose: &BodyPose, joints: &Joints) -> Vec<SitePose> {
        let p = &self.participant;
        let hip_x = 0.09 * p.build;
        let front = Vec3::Y;
        let height = p.height;
        let mut sites = Vec::with_capacity(SiteId::ALL.len());
        let mut push = |site: SiteId, position: Vec3, normal: Vec3| {
            // Same feet-pivot sway scaling as the mesh.
            let sway = pose.sway * (position.z / height).clamp(0.0, 1.2);
            sites.push(SitePose { site, position: position + sway, normal, velocity: Vec3::ZERO });
        };

        push(
            SiteId::Chest,
            Vec3::new(0.0, p.torso_depth() + pose.breath, p.chest_height()),
            front,
        );
        push(
            SiteId::Abdomen,
            Vec3::new(0.0, p.torso_depth() * 0.95 + pose.breath * 0.5, p.hip_height() + 0.10),
            front,
        );
        // Arm sites sit on the front surface of each segment.
        let arm_surface = |a: Vec3, b: Vec3, radius: f64, t: f64| -> (Vec3, Vec3) {
            let axis = (b - a).try_normalized().unwrap_or(Vec3::Z);
            // Outward direction: the component of "front" orthogonal to the
            // limb axis (fall back to straight ahead for degenerate cases).
            let n = (front - axis * front.dot(axis))
                .try_normalized()
                .unwrap_or(front);
            (a.lerp(b, t) + n * radius, n)
        };
        let (pos, n) =
            arm_surface(joints.right_shoulder, joints.right_elbow, p.arm_radius(), 0.5);
        push(SiteId::RightUpperArm, pos, n);
        let (pos, n) =
            arm_surface(joints.right_elbow, joints.right_wrist, p.arm_radius() * 0.85, 0.5);
        push(SiteId::RightForearm, pos, n);
        let (pos, n) =
            arm_surface(joints.right_elbow, joints.right_wrist, p.arm_radius() * 0.85, 0.95);
        push(SiteId::RightWrist, pos, n);
        let (pos, n) =
            arm_surface(joints.left_shoulder, joints.left_elbow, p.arm_radius(), 0.5);
        push(SiteId::LeftUpperArm, pos, n);
        let (pos, n) =
            arm_surface(joints.left_elbow, joints.left_wrist, p.arm_radius() * 0.85, 0.5);
        push(SiteId::LeftForearm, pos, n);
        // Legs.
        push(
            SiteId::LeftThigh,
            Vec3::new(-hip_x, p.leg_radius(), p.hip_height() * 0.75),
            front,
        );
        push(
            SiteId::RightThigh,
            Vec3::new(hip_x, p.leg_radius(), p.hip_height() * 0.75),
            front,
        );
        push(
            SiteId::LeftShin,
            Vec3::new(-hip_x, p.leg_radius(), p.hip_height() * 0.30),
            front,
        );
        push(
            SiteId::RightShin,
            Vec3::new(hip_x, p.leg_radius(), p.hip_height() * 0.30),
            front,
        );
        sites
    }
}

/// Joint positions of the two arms in the body-local frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Joints {
    /// Right shoulder joint.
    pub right_shoulder: Vec3,
    /// Right elbow joint.
    pub right_elbow: Vec3,
    /// Right wrist joint (equals the clamped hand target).
    pub right_wrist: Vec3,
    /// Left shoulder joint.
    pub left_shoulder: Vec3,
    /// Left elbow joint.
    pub left_elbow: Vec3,
    /// Left wrist joint.
    pub left_wrist: Vec3,
}

/// Two-link inverse kinematics: returns `(elbow, wrist)` for a shoulder at
/// `root`, upper-arm length `l1`, forearm length `l2`, reaching toward
/// `target` (clamped into the reachable annulus). The elbow bends downward
/// and outward, as a human elbow does for gestures in front of the chest.
fn two_link_ik(root: Vec3, target: Vec3, l1: f64, l2: f64) -> (Vec3, Vec3) {
    let to_target = target - root;
    let d_raw = to_target.norm();
    let d = d_raw.clamp((l1 - l2).abs() + 1e-3, l1 + l2 - 1e-3);
    let dir = to_target.try_normalized().unwrap_or(Vec3::Y);
    let wrist = root + dir * d;
    // Distance from shoulder along the axis to the elbow's projection.
    let a = (l1 * l1 - l2 * l2 + d * d) / (2.0 * d);
    let h = (l1 * l1 - a * a).max(0.0).sqrt();
    // Elbow bend direction: mostly downward, orthogonalized to the axis.
    let bend_hint = Vec3::new(0.35, -0.1, -1.0).normalized();
    let perp = (bend_hint - dir * bend_hint.dot(dir))
        .try_normalized()
        .unwrap_or_else(|| dir.cross(Vec3::X).normalized());
    let elbow = root + dir * a + perp * h;
    (elbow, wrist)
}

/// A limb segment mesh between two joints.
fn limb_between(a: Vec3, b: Vec3, radius: f64) -> TriMesh {
    let len = a.distance(b).max(1e-3);
    let dir = (b - a).try_normalized().unwrap_or(Vec3::Z);
    let xf = RigidTransform::new(rotation_z_to(dir), a);
    primitives::limb(radius, len, 6).transformed(&xf)
}

/// A rotation mapping `+z` to the unit vector `dir`.
fn rotation_z_to(dir: Vec3) -> Mat3 {
    let z = Vec3::Z;
    let c = z.dot(dir);
    if c > 1.0 - 1e-9 {
        return Mat3::IDENTITY;
    }
    if c < -1.0 + 1e-9 {
        // 180 degrees about x.
        return Mat3::rotation_x(std::f64::consts::PI);
    }
    let axis = z.cross(dir).normalized();
    Mat3::rotation_axis(axis, c.acos())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> HumanModel {
        HumanModel::new(Participant::average())
    }

    #[test]
    fn mesh_topology_is_pose_invariant() {
        let m = model();
        let (a, _) = m.posed(&BodyPose::default());
        let far = BodyPose {
            hand_target: Vec3::new(0.1, 0.5, 1.3),
            ..BodyPose::default()
        };
        let (b, _) = m.posed(&far);
        assert_eq!(a.triangle_count(), b.triangle_count());
        assert_eq!(a.vertex_count(), b.vertex_count());
        assert_eq!(a.faces(), b.faces());
    }

    #[test]
    fn ik_respects_link_lengths() {
        let root = Vec3::new(0.0, 0.0, 1.4);
        let (l1, l2) = (0.3, 0.27);
        for target in [
            Vec3::new(0.2, 0.3, 1.2),
            Vec3::new(0.0, 0.55, 1.4), // nearly full extension
            Vec3::new(0.0, 0.05, 1.38), // nearly folded
            Vec3::new(0.0, 2.0, 1.4),  // out of reach: clamped
        ] {
            let (elbow, wrist) = two_link_ik(root, target, l1, l2);
            assert!((root.distance(elbow) - l1).abs() < 1e-6, "upper arm length broken");
            assert!((elbow.distance(wrist) - l2).abs() < 1e-6, "forearm length broken");
        }
    }

    #[test]
    fn reachable_target_is_hit_exactly() {
        let root = Vec3::new(0.25, 0.0, 1.4);
        let target = Vec3::new(0.15, 0.35, 1.15);
        let (_, wrist) = two_link_ik(root, target, 0.3, 0.27);
        assert!((wrist - target).norm() < 1e-9);
    }

    #[test]
    fn wrist_site_follows_hand_target() {
        let m = model();
        let near = BodyPose { hand_target: Vec3::new(0.2, 0.25, 1.1), ..BodyPose::default() };
        let far = BodyPose { hand_target: Vec3::new(0.2, 0.52, 1.15), ..BodyPose::default() };
        let wrist = |sites: &[SitePose]| {
            sites.iter().find(|s| s.site == SiteId::RightWrist).unwrap().position
        };
        let (_, sites_near) = m.posed(&near);
        let (_, sites_far) = m.posed(&far);
        assert!(
            wrist(&sites_far).y > wrist(&sites_near).y,
            "wrist should extend with the hand"
        );
    }

    #[test]
    fn chest_site_breathes_forward() {
        let m = model();
        let rest = BodyPose::default();
        let inhale = BodyPose { breath: 0.01, ..BodyPose::default() };
        let chest = |pose: &BodyPose| {
            m.posed(pose)
                .1
                .iter()
                .find(|s| s.site == SiteId::Chest)
                .unwrap()
                .position
        };
        assert!(chest(&inhale).y > chest(&rest).y);
    }

    #[test]
    fn sway_pivots_around_the_feet() {
        let m = model();
        let sway = Vec3::new(0.004, -0.003, 0.0);
        let moved = BodyPose { sway, ..BodyPose::default() };
        let (mesh0, sites0) = m.posed(&BodyPose::default());
        let (mesh1, sites1) = m.posed(&moved);
        let h = m.participant().height;
        // Every vertex moves by sway scaled by its height fraction.
        for (v0, v1) in mesh0.vertices().iter().zip(mesh1.vertices()) {
            let expected = sway * (v0.z / h).clamp(0.0, 1.2);
            assert!((*v1 - *v0 - expected).norm() < 1e-9);
        }
        // Sites move consistently with the mesh: higher sites sway more.
        let disp = |id: SiteId| {
            let a = sites0.iter().find(|s| s.site == id).unwrap().position;
            let b = sites1.iter().find(|s| s.site == id).unwrap().position;
            (b - a).norm()
        };
        assert!(disp(SiteId::Chest) > 1.8 * disp(SiteId::LeftShin));
    }

    #[test]
    fn body_height_matches_participant() {
        let m = model();
        let (mesh, _) = m.posed(&BodyPose::default());
        let (lo, hi) = mesh.bounding_box().unwrap();
        assert!(lo.z > -0.01, "nothing below the feet");
        let p = m.participant();
        assert!((hi.z - p.height).abs() < 0.05, "top of head near stature: {}", hi.z);
    }

    #[test]
    fn site_normals_are_unit_and_forward_leaning() {
        let m = model();
        let (_, sites) = m.posed(&BodyPose::default());
        for s in &sites {
            assert!((s.normal.norm() - 1.0).abs() < 1e-9, "{} normal not unit", s.site);
            assert!(s.normal.y > -0.2, "{} normal points backwards", s.site);
        }
    }

    #[test]
    fn rotation_z_to_handles_degenerate_directions() {
        let up = rotation_z_to(Vec3::Z);
        assert!((up * Vec3::Z - Vec3::Z).norm() < 1e-9);
        let down = rotation_z_to(-Vec3::Z);
        assert!((down * Vec3::Z + Vec3::Z).norm() < 1e-9);
        let side = rotation_z_to(Vec3::X);
        assert!((side * Vec3::Z - Vec3::X).norm() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid participant")]
    fn invalid_participant_panics() {
        HumanModel::new(Participant { height: 5.0, build: 1.0, reflectivity: 1.0 });
    }
}
