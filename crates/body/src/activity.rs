//! The six prototype hand activities and their hand-path generators.

use mmwave_geom::Vec3;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The six hand activities the HAR prototype recognizes (Section II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activity {
    /// Hand extends from the chest toward the radar.
    Push,
    /// Hand retracts from an extended position back to the chest.
    Pull,
    /// Hand sweeps from the body's right to its left.
    LeftSwipe,
    /// Hand sweeps from the body's left to its right.
    RightSwipe,
    /// Hand traces a circle clockwise (as seen by the radar).
    Clockwise,
    /// Hand traces a circle anticlockwise (as seen by the radar).
    Anticlockwise,
}

impl Activity {
    /// All six activities, in label order.
    pub const ALL: [Activity; 6] = [
        Activity::Push,
        Activity::Pull,
        Activity::LeftSwipe,
        Activity::RightSwipe,
        Activity::Clockwise,
        Activity::Anticlockwise,
    ];

    /// Class index used as the training label (0..6).
    pub fn index(self) -> usize {
        match self {
            Activity::Push => 0,
            Activity::Pull => 1,
            Activity::LeftSwipe => 2,
            Activity::RightSwipe => 3,
            Activity::Clockwise => 4,
            Activity::Anticlockwise => 5,
        }
    }

    /// Inverse of [`index`](Self::index).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 6`.
    pub fn from_index(i: usize) -> Activity {
        Activity::ALL[i]
    }

    /// The activity with the mirrored trajectory, as used by the paper's
    /// "similar trajectory attack" pairs (Push<->Pull, Left<->Right swipe,
    /// Clockwise<->Anticlockwise).
    pub fn mirrored(self) -> Activity {
        match self {
            Activity::Push => Activity::Pull,
            Activity::Pull => Activity::Push,
            Activity::LeftSwipe => Activity::RightSwipe,
            Activity::RightSwipe => Activity::LeftSwipe,
            Activity::Clockwise => Activity::Anticlockwise,
            Activity::Anticlockwise => Activity::Clockwise,
        }
    }

    /// Human-readable label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Activity::Push => "Push",
            Activity::Pull => "Pull",
            Activity::LeftSwipe => "Left Swipe",
            Activity::RightSwipe => "Right Swipe",
            Activity::Clockwise => "Clockwise",
            Activity::Anticlockwise => "Anticlockwise",
        }
    }

    /// Hand offset relative to the chest reference point at normalized
    /// gesture time `t` in `[0, 1]`, in the body-local frame (`x` toward the
    /// body's right as the radar sees it, `y` toward the radar, `z` up).
    ///
    /// `amplitude` scales the spatial extent (per-sample variation).
    pub fn hand_offset(self, t: f64, amplitude: f64) -> Vec3 {
        let t = t.clamp(0.0, 1.0);
        // Smooth acceleration/deceleration over the whole gesture.
        let s = smoothstep(t);
        // Rest pose: hand slightly in front of and below the chest.
        let rest = Vec3::new(0.10, 0.22, -0.12);
        let a = amplitude;
        let offset = match self {
            // Extend toward the radar over the gesture.
            Activity::Push => Vec3::new(0.0, 0.32 * a * s, 0.04 * a * s),
            // Time-reversed push: start extended, retract.
            Activity::Pull => Vec3::new(0.0, 0.32 * a * (1.0 - s), 0.04 * a * (1.0 - s)),
            // Sweep across the body toward its left (-x).
            Activity::LeftSwipe => Vec3::new(0.22 * a - 0.44 * a * s, 0.12 * a, 0.0),
            // Mirrored sweep.
            Activity::RightSwipe => Vec3::new(-0.22 * a + 0.44 * a * s, 0.12 * a, 0.0),
            // Full circle in the plane facing the radar. Clockwise as the
            // radar sees it means decreasing angle in the body's (x, z).
            Activity::Clockwise => {
                let theta = std::f64::consts::TAU * s;
                Vec3::new(
                    0.16 * a * (-theta).sin(),
                    0.12 * a,
                    0.16 * a * ((-theta).cos() - 1.0) + 0.16 * a,
                )
            }
            Activity::Anticlockwise => {
                let theta = std::f64::consts::TAU * s;
                Vec3::new(
                    0.16 * a * theta.sin(),
                    0.12 * a,
                    0.16 * a * (theta.cos() - 1.0) + 0.16 * a,
                )
            }
        };
        rest + offset
    }
}

impl fmt::Display for Activity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Cubic smoothstep: 0 at 0, 1 at 1, zero slope at both ends.
fn smoothstep(t: f64) -> f64 {
    t * t * (3.0 - 2.0 * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip_and_uniqueness() {
        for (i, &a) in Activity::ALL.iter().enumerate() {
            assert_eq!(a.index(), i);
            assert_eq!(Activity::from_index(i), a);
        }
    }

    #[test]
    fn mirrored_is_an_involution() {
        for a in Activity::ALL {
            assert_eq!(a.mirrored().mirrored(), a);
            assert_ne!(a.mirrored(), a);
        }
    }

    #[test]
    fn push_extends_and_pull_retracts() {
        let start = Activity::Push.hand_offset(0.0, 1.0);
        let end = Activity::Push.hand_offset(1.0, 1.0);
        assert!(end.y > start.y + 0.2, "push should extend toward the radar");
        // Pull is the time reversal of push.
        for t in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let push = Activity::Push.hand_offset(t, 1.0);
            let pull = Activity::Pull.hand_offset(1.0 - t, 1.0);
            assert!((push - pull).norm() < 1e-12);
        }
    }

    #[test]
    fn swipes_are_mirror_images_in_x() {
        for t in [0.1, 0.4, 0.9] {
            let l = Activity::LeftSwipe.hand_offset(t, 1.0);
            let r = Activity::RightSwipe.hand_offset(t, 1.0);
            // Mirror in x around the shared rest offset.
            let rest_x = 0.10;
            assert!(((l.x - rest_x) + (r.x - rest_x)).abs() < 1e-12);
            assert!((l.y - r.y).abs() < 1e-12);
            assert!((l.z - r.z).abs() < 1e-12);
        }
    }

    #[test]
    fn turning_traces_closed_circle() {
        for act in [Activity::Clockwise, Activity::Anticlockwise] {
            let start = act.hand_offset(0.0, 1.0);
            let end = act.hand_offset(1.0, 1.0);
            assert!((start - end).norm() < 1e-9, "{act} should close its loop");
        }
    }

    #[test]
    fn turnings_have_opposite_chirality() {
        // Early in the gesture the two turnings move in opposite x.
        let cw = Activity::Clockwise.hand_offset(0.25, 1.0);
        let acw = Activity::Anticlockwise.hand_offset(0.25, 1.0);
        assert!((cw.x - 0.10) * (acw.x - 0.10) < 0.0);
    }

    #[test]
    fn amplitude_scales_extent() {
        let small = Activity::Push.hand_offset(1.0, 0.5);
        let large = Activity::Push.hand_offset(1.0, 1.5);
        assert!(large.y > small.y);
    }

    #[test]
    fn offsets_are_bounded_and_finite() {
        for act in Activity::ALL {
            for i in 0..=20 {
                let p = act.hand_offset(i as f64 / 20.0, 1.3);
                assert!(p.is_finite());
                assert!(p.norm() < 1.5, "{act} hand offset implausibly large: {p}");
            }
        }
    }

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(Activity::Clockwise.label(), "Clockwise");
        assert_eq!(Activity::LeftSwipe.to_string(), "Left Swipe");
    }
}
