//! Parametric human body model and hand-activity generator.
//!
//! The paper captures live participants with an RGBD/video rig and converts
//! them to 3D meshes with GLoT; we have neither participants nor video, so
//! this crate *is* the substitute: a kinematic human model whose right hand
//! performs the six prototype activities ("Push", "Pull", "Left Swipe",
//! "Right Swipe", "Clockwise Turning", "Anticlockwise Turning") with
//! per-sample randomized timing, amplitude, and micro-motion.
//!
//! What the downstream pipeline needs from a "person" is:
//!
//! * a time series of triangle meshes with per-vertex velocities (Doppler
//!   and MTI clutter removal both depend on motion, not just shape);
//! * named attachment *sites* ([`SiteId`]) where an attacker can tape a
//!   trigger plate, tracked per frame with position, outward normal, and
//!   velocity (a trigger inherits the motion of the body part it rides on —
//!   the physical reason trigger placement matters at all).
//!
//! # Examples
//!
//! ```
//! use mmwave_body::{Activity, ActivitySampler, Participant, SampleVariation};
//! use rand::SeedableRng;
//!
//! let sampler = ActivitySampler::new(Participant::average(), 32, 10.0);
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let variation = SampleVariation::random(&mut rng);
//! let seq = sampler.sample(Activity::Push, &variation);
//! assert_eq!(seq.len(), 32);
//! // The hand moves: later frames differ from the first.
//! assert_ne!(seq.frame(0).mesh.vertices(), seq.frame(31).mesh.vertices());
//! ```

pub mod activity;
pub mod model;
pub mod participant;
pub mod sampler;
pub mod sequence;
pub mod sites;

pub use activity::Activity;
pub use model::HumanModel;
pub use participant::Participant;
pub use sampler::{ActivitySampler, SampleVariation};
pub use sequence::{BodyFrame, MeshSequence};
pub use sites::{SiteId, SitePose};
