//! Time series of posed body meshes.

use crate::sites::{SiteId, SitePose};
use mmwave_geom::TriMesh;

/// One time step of an activity: the posed body mesh (with per-vertex
/// velocities) and the poses of all attachment sites.
#[derive(Debug, Clone, PartialEq)]
pub struct BodyFrame {
    /// Time of this frame in seconds since the start of the sample.
    pub time: f64,
    /// Posed body mesh in the body-local frame, velocities populated.
    pub mesh: TriMesh,
    /// Attachment-site poses, velocities populated.
    pub sites: Vec<SitePose>,
}

impl BodyFrame {
    /// Pose of a particular site.
    ///
    /// # Panics
    ///
    /// Panics if the site is missing (all frames built by the sampler carry
    /// every site).
    pub fn site(&self, id: SiteId) -> &SitePose {
        self.sites
            .iter()
            .find(|s| s.site == id)
            .unwrap_or_else(|| panic!("site {id} missing from frame"))
    }
}

/// A complete activity sample: `n_frames` body frames at a fixed frame rate
/// (32 frames in the prototype).
#[derive(Debug, Clone, PartialEq)]
pub struct MeshSequence {
    frames: Vec<BodyFrame>,
    frame_rate: f64,
}

impl MeshSequence {
    /// Creates a sequence.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty or `frame_rate <= 0`.
    pub fn new(frames: Vec<BodyFrame>, frame_rate: f64) -> Self {
        assert!(!frames.is_empty(), "sequence cannot be empty");
        assert!(frame_rate > 0.0, "frame rate must be positive");
        MeshSequence { frames, frame_rate }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True if the sequence has no frames (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Frames per second.
    pub fn frame_rate(&self) -> f64 {
        self.frame_rate
    }

    /// Frame accessor.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn frame(&self, i: usize) -> &BodyFrame {
        &self.frames[i]
    }

    /// All frames in order.
    pub fn frames(&self) -> &[BodyFrame] {
        &self.frames
    }

    /// Iterates over frames.
    pub fn iter(&self) -> std::slice::Iter<'_, BodyFrame> {
        self.frames.iter()
    }
}

impl<'a> IntoIterator for &'a MeshSequence {
    type Item = &'a BodyFrame;
    type IntoIter = std::slice::Iter<'a, BodyFrame>;
    fn into_iter(self) -> Self::IntoIter {
        self.frames.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_geom::Vec3;

    fn dummy_frame(t: f64) -> BodyFrame {
        BodyFrame {
            time: t,
            mesh: TriMesh::from_faces(
                vec![Vec3::ZERO, Vec3::X, Vec3::Y],
                vec![[0, 1, 2]],
            ),
            sites: vec![SitePose {
                site: SiteId::Chest,
                position: Vec3::ZERO,
                normal: Vec3::Y,
                velocity: Vec3::ZERO,
            }],
        }
    }

    #[test]
    fn sequence_accessors() {
        let seq = MeshSequence::new(vec![dummy_frame(0.0), dummy_frame(0.1)], 10.0);
        assert_eq!(seq.len(), 2);
        assert!(!seq.is_empty());
        assert_eq!(seq.frame_rate(), 10.0);
        assert_eq!(seq.frame(1).time, 0.1);
        assert_eq!(seq.iter().count(), 2);
        assert_eq!((&seq).into_iter().count(), 2);
    }

    #[test]
    fn site_lookup_finds_chest() {
        let f = dummy_frame(0.0);
        assert_eq!(f.site(SiteId::Chest).site, SiteId::Chest);
    }

    #[test]
    #[should_panic(expected = "missing from frame")]
    fn missing_site_panics() {
        dummy_frame(0.0).site(SiteId::RightWrist);
    }

    #[test]
    #[should_panic(expected = "sequence cannot be empty")]
    fn empty_sequence_panics() {
        MeshSequence::new(vec![], 10.0);
    }
}
