//! Sampling randomized activity performances.

use crate::activity::Activity;
use crate::model::{BodyPose, HumanModel};
use crate::participant::Participant;
use crate::sequence::{BodyFrame, MeshSequence};
use mmwave_geom::Vec3;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-sample randomness: no two performances of an activity are identical.
///
/// Captures gesture timing and extent variation plus the micro-motion
/// (postural sway, breathing) that keeps body-mounted reflectors visible
/// through MTI clutter removal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleVariation {
    /// Gesture duration in seconds (nominal 2.2).
    pub duration: f64,
    /// Delay before the gesture starts, in seconds.
    pub start_delay: f64,
    /// Spatial amplitude multiplier for the hand path.
    pub amplitude: f64,
    /// Postural sway amplitude in meters (per horizontal axis).
    pub sway_amplitude: f64,
    /// Sway frequency in Hz.
    pub sway_frequency: f64,
    /// Sway phase offsets for x and y.
    pub sway_phase: [f64; 2],
    /// Breathing depth in meters of chest excursion.
    pub breath_depth: f64,
    /// Breathing rate in Hz.
    pub breath_frequency: f64,
    /// Breathing phase offset.
    pub breath_phase: f64,
    /// Hand tremor amplitude in meters.
    pub tremor: f64,
    /// Deterministic tremor phase seeds.
    pub tremor_phase: [f64; 3],
}

impl SampleVariation {
    /// A nominal, deterministic performance (useful in tests and for the
    /// surrogate optimization, which wants repeatability).
    pub fn nominal() -> SampleVariation {
        SampleVariation {
            duration: 2.2,
            start_delay: 0.3,
            amplitude: 1.0,
            sway_amplitude: 0.004,
            sway_frequency: 0.45,
            sway_phase: [0.0, 1.3],
            breath_depth: 0.005,
            breath_frequency: 0.27,
            breath_phase: 0.0,
            tremor: 0.002,
            tremor_phase: [0.0, 2.0, 4.0],
        }
    }

    /// Draws a random variation.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> SampleVariation {
        SampleVariation {
            duration: rng.gen_range(1.8..2.6),
            start_delay: rng.gen_range(0.05..0.55),
            amplitude: rng.gen_range(0.85..1.15),
            sway_amplitude: rng.gen_range(0.002..0.007),
            sway_frequency: rng.gen_range(0.3..0.6),
            sway_phase: [rng.gen_range(0.0..std::f64::consts::TAU), rng.gen_range(0.0..std::f64::consts::TAU)],
            breath_depth: rng.gen_range(0.003..0.008),
            breath_frequency: rng.gen_range(0.2..0.35),
            breath_phase: rng.gen_range(0.0..std::f64::consts::TAU),
            tremor: rng.gen_range(0.001..0.004),
            tremor_phase: [
                rng.gen_range(0.0..std::f64::consts::TAU),
                rng.gen_range(0.0..std::f64::consts::TAU),
                rng.gen_range(0.0..std::f64::consts::TAU),
            ],
        }
    }
}

impl Default for SampleVariation {
    fn default() -> Self {
        SampleVariation::nominal()
    }
}

/// Generates randomized activity performances as mesh sequences.
///
/// # Examples
///
/// ```
/// use mmwave_body::{Activity, ActivitySampler, Participant, SampleVariation};
/// let sampler = ActivitySampler::new(Participant::average(), 32, 10.0);
/// let seq = sampler.sample(Activity::LeftSwipe, &SampleVariation::nominal());
/// assert_eq!(seq.len(), 32);
/// assert_eq!(seq.frame_rate(), 10.0);
/// ```
#[derive(Debug, Clone)]
pub struct ActivitySampler {
    model: HumanModel,
    n_frames: usize,
    frame_rate: f64,
}

impl ActivitySampler {
    /// Creates a sampler producing `n_frames` frames at `frame_rate` fps.
    ///
    /// # Panics
    ///
    /// Panics if `n_frames == 0` or `frame_rate <= 0`.
    pub fn new(participant: Participant, n_frames: usize, frame_rate: f64) -> Self {
        assert!(n_frames > 0, "need at least one frame");
        assert!(frame_rate > 0.0, "frame rate must be positive");
        ActivitySampler { model: HumanModel::new(participant), n_frames, frame_rate }
    }

    /// The underlying human model.
    pub fn model(&self) -> &HumanModel {
        &self.model
    }

    /// Number of frames per sample.
    pub fn n_frames(&self) -> usize {
        self.n_frames
    }

    /// Frames per second.
    pub fn frame_rate(&self) -> f64 {
        self.frame_rate
    }

    /// Body pose at absolute time `t` for an activity performance.
    pub fn pose_at(&self, activity: Activity, variation: &SampleVariation, t: f64) -> BodyPose {
        let p = self.model.participant();
        // Normalized gesture time.
        let tn = ((t - variation.start_delay) / variation.duration).clamp(0.0, 1.0);
        let chest_anchor = Vec3::new(0.0, p.torso_depth(), p.chest_height());
        let tremor = Vec3::new(
            (std::f64::consts::TAU * 7.3 * t + variation.tremor_phase[0]).sin(),
            (std::f64::consts::TAU * 6.1 * t + variation.tremor_phase[1]).sin(),
            (std::f64::consts::TAU * 8.7 * t + variation.tremor_phase[2]).sin(),
        ) * variation.tremor;
        let hand_target =
            chest_anchor + activity.hand_offset(tn, variation.amplitude) + tremor;
        let sway = Vec3::new(
            variation.sway_amplitude
                * (std::f64::consts::TAU * variation.sway_frequency * t
                    + variation.sway_phase[0])
                    .sin(),
            variation.sway_amplitude
                * (std::f64::consts::TAU * variation.sway_frequency * 0.8 * t
                    + variation.sway_phase[1])
                    .sin(),
            0.0,
        );
        let breath = variation.breath_depth
            * 0.5
            * (1.0
                + (std::f64::consts::TAU * variation.breath_frequency * t
                    + variation.breath_phase)
                    .sin());
        BodyPose { hand_target, sway, breath }
    }

    /// Generates a full mesh sequence for one performance, with per-vertex
    /// and per-site velocities filled in by central finite differences.
    pub fn sample(&self, activity: Activity, variation: &SampleVariation) -> MeshSequence {
        const VEL_DT: f64 = 5e-3;
        let mut frames = Vec::with_capacity(self.n_frames);
        for i in 0..self.n_frames {
            let t = i as f64 / self.frame_rate;
            let pose = self.pose_at(activity, variation, t);
            let pose_next = self.pose_at(activity, variation, t + VEL_DT);
            let (mut mesh, mut sites) = self.model.posed(&pose);
            let (mesh_next, sites_next) = self.model.posed(&pose_next);
            mesh.set_velocities_from_previous_swapped(&mesh_next, VEL_DT);
            for (s, sn) in sites.iter_mut().zip(&sites_next) {
                s.velocity = (sn.position - s.position) / VEL_DT;
            }
            frames.push(BodyFrame { time: t, mesh, sites });
        }
        MeshSequence::new(frames, self.frame_rate)
    }
}

/// Extension trait adding a forward-difference velocity helper to `TriMesh`
/// (velocity from the *next* mesh rather than the previous one).
trait ForwardDifference {
    fn set_velocities_from_previous_swapped(&mut self, next: &Self, dt: f64);
}

impl ForwardDifference for mmwave_geom::TriMesh {
    fn set_velocities_from_previous_swapped(&mut self, next: &Self, dt: f64) {
        // v = (next - self) / dt, implemented via the crate's finite
        // difference by treating `self` as the earlier sample.
        let mut next_clone = next.clone();
        next_clone.set_velocities_from_previous(self, dt);
        let vels = next_clone.velocities().to_vec();
        let verts = self.vertices().to_vec();
        let faces = self.faces().to_vec();
        *self = mmwave_geom::TriMesh::with_velocities(verts, faces, vels);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sampler() -> ActivitySampler {
        ActivitySampler::new(Participant::average(), 16, 10.0)
    }

    #[test]
    fn sample_has_requested_shape() {
        let seq = sampler().sample(Activity::Push, &SampleVariation::nominal());
        assert_eq!(seq.len(), 16);
        for (i, f) in seq.iter().enumerate() {
            assert!((f.time - i as f64 / 10.0).abs() < 1e-12);
        }
    }

    #[test]
    fn hand_velocity_peaks_mid_gesture() {
        let s = sampler();
        let seq = s.sample(Activity::Push, &SampleVariation::nominal());
        let wrist_speed = |i: usize| seq.frame(i).site(crate::SiteId::RightWrist).velocity.norm();
        // Mid-gesture (around frame 7 of 16 at 10 fps with delay 0.3 and
        // duration 2.2) the wrist moves much faster than at the start.
        let early = wrist_speed(0);
        let mid = (5..10).map(wrist_speed).fold(0.0f64, f64::max);
        assert!(mid > early + 0.05, "mid {mid} should exceed early {early}");
    }

    #[test]
    fn chest_moves_slower_than_wrist() {
        let s = sampler();
        let seq = s.sample(Activity::Push, &SampleVariation::nominal());
        let max_site_speed = |id: crate::SiteId| {
            seq.iter().map(|f| f.site(id).velocity.norm()).fold(0.0f64, f64::max)
        };
        let chest = max_site_speed(crate::SiteId::Chest);
        let wrist = max_site_speed(crate::SiteId::RightWrist);
        assert!(chest > 0.0, "chest must retain micro-motion (MTI survival)");
        assert!(wrist > 5.0 * chest, "wrist {wrist} should dominate chest {chest}");
    }

    #[test]
    fn mesh_velocities_match_frame_to_frame_displacement() {
        let s = sampler();
        // Disable tremor: 7 Hz jitter is deliberately not linearly
        // predictable across a 100 ms frame step.
        let variation = SampleVariation { tremor: 0.0, ..SampleVariation::nominal() };
        let seq = s.sample(Activity::LeftSwipe, &variation);
        // Velocity of a vertex should roughly predict its motion to the next
        // frame (the gesture is smooth).
        let dt = 1.0 / s.frame_rate();
        // Mid-gesture (t = 1.3 s of a 0.3 + 2.2 s performance) is where the
        // swipe moves fastest.
        let a = seq.frame(13);
        let b = seq.frame(14);
        let mut checked = 0;
        for i in 0..a.mesh.vertex_count() {
            let predicted = a.mesh.vertices()[i] + a.mesh.velocities()[i] * dt;
            let actual = b.mesh.vertices()[i];
            let speed = a.mesh.velocities()[i].norm();
            if speed > 0.15 {
                // Fast-moving vertices (the arm): prediction within 40% of
                // the step (finite difference + curvature tolerance).
                let err = (predicted - actual).norm();
                assert!(err < 0.4 * speed * dt + 0.01, "vertex {i}: err {err}");
                checked += 1;
            }
        }
        assert!(checked > 0, "no fast vertices found — gesture not moving?");
    }

    #[test]
    fn different_variations_give_different_sequences() {
        let s = sampler();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let v1 = SampleVariation::random(&mut rng);
        let v2 = SampleVariation::random(&mut rng);
        let a = s.sample(Activity::Pull, &v1);
        let b = s.sample(Activity::Pull, &v2);
        assert_ne!(a.frame(8).mesh.vertices(), b.frame(8).mesh.vertices());
    }

    #[test]
    fn same_variation_is_deterministic() {
        let s = sampler();
        let v = SampleVariation::nominal();
        let a = s.sample(Activity::Clockwise, &v);
        let b = s.sample(Activity::Clockwise, &v);
        assert_eq!(a.frame(3).mesh.vertices(), b.frame(3).mesh.vertices());
    }

    #[test]
    fn random_variation_is_within_documented_ranges() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..50 {
            let v = SampleVariation::random(&mut rng);
            assert!((1.8..2.6).contains(&v.duration));
            assert!((0.85..1.15).contains(&v.amplitude));
            assert!(v.sway_amplitude > 0.0 && v.breath_depth > 0.0);
        }
    }

    #[test]
    fn activities_produce_distinct_hand_paths() {
        let s = sampler();
        let v = SampleVariation::nominal();
        let wrist_path = |a: Activity| -> Vec<Vec3> {
            s.sample(a, &v)
                .iter()
                .map(|f| f.site(crate::SiteId::RightWrist).position)
                .collect()
        };
        let push = wrist_path(Activity::Push);
        let swipe = wrist_path(Activity::LeftSwipe);
        let diff: f64 = push
            .iter()
            .zip(&swipe)
            .map(|(a, b)| a.distance(*b))
            .sum::<f64>()
            / push.len() as f64;
        assert!(diff > 0.05, "push and swipe should differ, mean diff {diff}");
    }
}
