//! Participant anthropometry.

use serde::{Deserialize, Serialize};

/// Body proportions of one experiment participant.
///
/// The paper recruits "three participants of different heights"; the
/// prototype dataset generator mirrors that with three presets
/// ([`Participant::presets`]). All body-segment dimensions scale from the
/// height with standard anthropometric ratios, plus a build factor for
/// torso/limb girth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Participant {
    /// Stature in meters.
    pub height: f64,
    /// Girth multiplier (1.0 = average build).
    pub build: f64,
    /// Radar cross-section scale of skin/clothing relative to the default
    /// body reflectivity (dielectric differences between people/clothes).
    pub reflectivity: f64,
}

impl Participant {
    /// An average-height participant.
    pub fn average() -> Participant {
        Participant { height: 1.72, build: 1.0, reflectivity: 1.0 }
    }

    /// The three participants used for prototype data collection, with
    /// different heights as in Section VI-B.
    pub fn presets() -> [Participant; 3] {
        [
            Participant { height: 1.62, build: 0.92, reflectivity: 0.95 },
            Participant { height: 1.74, build: 1.0, reflectivity: 1.0 },
            Participant { height: 1.86, build: 1.08, reflectivity: 1.05 },
        ]
    }

    /// Shoulder height (meters above the feet).
    pub fn shoulder_height(&self) -> f64 {
        self.height * 0.82
    }

    /// Chest reference height, used as the activity's anchor point.
    pub fn chest_height(&self) -> f64 {
        self.height * 0.72
    }

    /// Hip height — the top of the legs.
    pub fn hip_height(&self) -> f64 {
        self.height * 0.52
    }

    /// Half the distance between shoulder joints.
    pub fn shoulder_half_width(&self) -> f64 {
        0.145 * self.height * 0.23 / 0.23 * self.build.sqrt()
    }

    /// Upper-arm length (shoulder to elbow).
    pub fn upper_arm_length(&self) -> f64 {
        self.height * 0.172
    }

    /// Forearm length including the hand root (elbow to wrist).
    pub fn forearm_length(&self) -> f64 {
        self.height * 0.157
    }

    /// Torso half-depth (front-to-back radius).
    pub fn torso_depth(&self) -> f64 {
        0.11 * self.build
    }

    /// Torso half-width (side-to-side radius).
    pub fn torso_width(&self) -> f64 {
        0.17 * self.build
    }

    /// Head radius.
    pub fn head_radius(&self) -> f64 {
        0.095 + 0.01 * (self.build - 1.0)
    }

    /// Limb (arm) radius.
    pub fn arm_radius(&self) -> f64 {
        0.042 * self.build
    }

    /// Leg radius.
    pub fn leg_radius(&self) -> f64 {
        0.07 * self.build
    }

    /// Validates that the proportions are physically plausible.
    ///
    /// # Errors
    ///
    /// Returns a description of the first implausible field.
    pub fn validate(&self) -> Result<(), String> {
        if !(1.2..=2.2).contains(&self.height) {
            return Err(format!("height {} m outside plausible range", self.height));
        }
        if !(0.5..=2.0).contains(&self.build) {
            return Err(format!("build factor {} outside plausible range", self.build));
        }
        if !(0.1..=10.0).contains(&self.reflectivity) {
            return Err(format!("reflectivity {} outside plausible range", self.reflectivity));
        }
        Ok(())
    }
}

impl Default for Participant {
    fn default() -> Self {
        Participant::average()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_distinct_heights() {
        let p = Participant::presets();
        assert!(p[0].height < p[1].height && p[1].height < p[2].height);
        for q in p {
            q.validate().unwrap();
        }
    }

    #[test]
    fn derived_dimensions_are_ordered() {
        let p = Participant::average();
        assert!(p.hip_height() < p.chest_height());
        assert!(p.chest_height() < p.shoulder_height());
        assert!(p.shoulder_height() < p.height);
        assert!(p.upper_arm_length() > 0.0 && p.forearm_length() > 0.0);
    }

    #[test]
    fn arm_reach_is_plausible() {
        let p = Participant::average();
        let reach = p.upper_arm_length() + p.forearm_length();
        assert!((0.45..0.75).contains(&reach), "arm reach {reach} implausible");
    }

    #[test]
    fn taller_people_have_longer_arms() {
        let [s, _, t] = Participant::presets();
        assert!(t.upper_arm_length() > s.upper_arm_length());
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut p = Participant::average();
        p.height = 3.5;
        assert!(p.validate().is_err());
        let mut q = Participant::average();
        q.build = 0.0;
        assert!(q.validate().is_err());
    }
}
