//! Named trigger-attachment sites on the body.

use mmwave_geom::Vec3;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Places where an attacker can tape a reflector to their body.
///
/// These are the candidate set the trigger-placement optimizer (Eq. (2) of
/// the paper) searches over, and they move with the body part they belong
/// to: a chest-mounted trigger only inherits breathing/sway micro-motion,
/// while a wrist-mounted trigger rides the whole gesture. The paper's
/// "suboptimal location (e.g., on the leg)" baseline corresponds to
/// [`SiteId::RightThigh`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SiteId {
    /// Sternum, facing the radar.
    Chest,
    /// Belly, facing the radar.
    Abdomen,
    /// Right upper arm, lateral surface (the gesture arm).
    RightUpperArm,
    /// Right forearm, front surface (the gesture arm).
    RightForearm,
    /// Back of the right wrist (the gesture arm).
    RightWrist,
    /// Left upper arm (hangs at the side).
    LeftUpperArm,
    /// Left forearm (hangs at the side).
    LeftForearm,
    /// Front of the left thigh.
    LeftThigh,
    /// Front of the right thigh.
    RightThigh,
    /// Left shin.
    LeftShin,
    /// Right shin.
    RightShin,
}

impl SiteId {
    /// All candidate sites, in a stable order.
    pub const ALL: [SiteId; 11] = [
        SiteId::Chest,
        SiteId::Abdomen,
        SiteId::RightUpperArm,
        SiteId::RightForearm,
        SiteId::RightWrist,
        SiteId::LeftUpperArm,
        SiteId::LeftForearm,
        SiteId::LeftThigh,
        SiteId::RightThigh,
        SiteId::LeftShin,
        SiteId::RightShin,
    ];

    /// Stable index into [`ALL`](Self::ALL).
    pub fn index(self) -> usize {
        SiteId::ALL.iter().position(|&s| s == self).expect("site in ALL")
    }

    /// Short human-readable name.
    pub fn label(self) -> &'static str {
        match self {
            SiteId::Chest => "chest",
            SiteId::Abdomen => "abdomen",
            SiteId::RightUpperArm => "right upper arm",
            SiteId::RightForearm => "right forearm",
            SiteId::RightWrist => "right wrist",
            SiteId::LeftUpperArm => "left upper arm",
            SiteId::LeftForearm => "left forearm",
            SiteId::LeftThigh => "left thigh",
            SiteId::RightThigh => "right thigh",
            SiteId::LeftShin => "left shin",
            SiteId::RightShin => "right shin",
        }
    }

    /// True for sites on the arm performing the gesture.
    pub fn on_gesture_arm(self) -> bool {
        matches!(
            self,
            SiteId::RightUpperArm | SiteId::RightForearm | SiteId::RightWrist
        )
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The pose of one attachment site at one instant: where it is, which way
/// its outward surface faces, and how fast it is moving.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SitePose {
    /// Which site this is.
    pub site: SiteId,
    /// Site position in the body-local (or world) frame.
    pub position: Vec3,
    /// Unit outward normal of the body surface at the site.
    pub normal: Vec3,
    /// Instantaneous velocity of the site.
    pub velocity: Vec3,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sites_have_unique_indices() {
        let mut seen = std::collections::HashSet::new();
        for s in SiteId::ALL {
            assert!(seen.insert(s.index()));
        }
        assert_eq!(seen.len(), SiteId::ALL.len());
    }

    #[test]
    fn gesture_arm_classification() {
        assert!(SiteId::RightWrist.on_gesture_arm());
        assert!(SiteId::RightForearm.on_gesture_arm());
        assert!(!SiteId::Chest.on_gesture_arm());
        assert!(!SiteId::LeftForearm.on_gesture_arm());
    }

    #[test]
    fn labels_are_unique_and_nonempty() {
        let mut seen = std::collections::HashSet::new();
        for s in SiteId::ALL {
            assert!(!s.label().is_empty());
            assert!(seen.insert(s.label()));
        }
    }
}
