//! Property-based tests for the body model and activity sampler.

use mmwave_body::model::BodyPose;
use mmwave_body::{Activity, ActivitySampler, HumanModel, Participant, SampleVariation};
use mmwave_geom::Vec3;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hand_offsets_stay_reachable(
        act_i in 0usize..6,
        t in 0.0f64..1.0,
        amp in 0.85f64..1.15,
    ) {
        let act = Activity::from_index(act_i);
        let offset = act.hand_offset(t, amp);
        prop_assert!(offset.is_finite());
        // Within arm's reach of the chest anchor.
        prop_assert!(offset.norm() < 0.8, "{act} offset {offset} too far");
    }

    #[test]
    fn posed_mesh_stays_above_ground_and_finite(
        hx in -0.2f64..0.4, hy in 0.1f64..0.5, hz in 0.9f64..1.4,
        height in 1.5f64..1.9,
    ) {
        let model = HumanModel::new(Participant { height, build: 1.0, reflectivity: 1.0 });
        let pose = BodyPose {
            hand_target: Vec3::new(hx, hy, hz),
            sway: Vec3::ZERO,
            breath: 0.0,
        };
        let (mesh, sites) = model.posed(&pose);
        for v in mesh.vertices() {
            prop_assert!(v.is_finite());
            prop_assert!(v.z > -0.05, "vertex below the floor: {v}");
            prop_assert!(v.z < height + 0.2, "vertex above the head: {v}");
        }
        for s in &sites {
            prop_assert!(s.position.is_finite());
            prop_assert!((s.normal.norm() - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn sampled_sequences_have_bounded_velocities(
        act_i in 0usize..6,
        seed in 0u64..40,
    ) {
        let sampler = ActivitySampler::new(Participant::average(), 8, 10.0);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let v = SampleVariation::random(&mut rng);
        let seq = sampler.sample(Activity::from_index(act_i), &v);
        for frame in seq.iter() {
            for vel in frame.mesh.velocities() {
                prop_assert!(vel.is_finite());
                // Human limb speeds: generously bounded by 5 m/s.
                prop_assert!(vel.norm() < 5.0, "implausible speed {}", vel.norm());
            }
        }
    }

    #[test]
    fn participants_scale_consistently(height in 1.4f64..2.0, build in 0.8f64..1.2) {
        let p = Participant { height, build, reflectivity: 1.0 };
        p.validate().unwrap();
        prop_assert!(p.hip_height() < p.chest_height());
        prop_assert!(p.chest_height() < p.shoulder_height());
        prop_assert!(p.shoulder_height() < p.height);
        let reach = p.upper_arm_length() + p.forearm_length();
        prop_assert!(reach > 0.2 * height && reach < 0.45 * height);
    }
}
