//! In-process load generation: seeded multi-session sensor streams
//! replayed against a [`Service`], with a throughput/latency report.
//!
//! The generator synthesizes a small pool of base capture streams via
//! `radar` (one full activity clip each), then replays them cyclically
//! across N simulated sessions on a seeded arrival schedule with
//! configurable frame rate, jitter, and burst size. Pump points are
//! **count-based** (every `pump_every` ingested frames), never
//! wall-clock-based, so the verdict stream is deterministic for a given
//! seed regardless of pacing mode or worker count; paced mode only adds
//! real sleeps so end-to-end latency numbers reflect arrival pacing.

use std::collections::BTreeSet;
use std::path::Path;
use std::time::{Duration, Instant};

use mmwave_body::{Activity, ActivitySampler, Participant, SampleVariation, SiteId};
use mmwave_dsp::IfFrame;
use mmwave_exec::derive_seed;
use mmwave_har::PrototypeConfig;
use mmwave_radar::capture::transform_site;
use mmwave_radar::{Capturer, Environment, Placement, Trigger, TriggerAttachment, TriggerPlan};
use mmwave_store::{load_json, save_json_atomic, StoreError};
use mmwave_telemetry::span;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::chaos::{self, StreamChaos};
use crate::service::{Service, Verdict};
use crate::{ServeConfig, ServeError};

/// Distinct base capture streams to synthesize; sessions beyond this
/// replay a shared stream, keeping synthesis cost flat in N.
const BASE_STREAMS: usize = 3;

/// Load-generator knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadgenConfig {
    /// Concurrent simulated sensor streams.
    pub sessions: usize,
    /// Simulated stream duration in seconds (scheduled frames per
    /// session = `ceil(seconds * fps)`).
    pub seconds: f64,
    /// Per-session frame rate in frames per second.
    pub fps: f64,
    /// Per-group arrival jitter as a fraction of the frame period
    /// (0.0 = metronomic, 0.5 = ±half a period).
    pub jitter: f64,
    /// Frames arriving together per burst (1 = smooth stream).
    pub burst: usize,
    /// Master seed for schedules and stream synthesis.
    pub seed: u64,
    /// When true, replay sleeps to honor scheduled arrival times, so
    /// latency percentiles reflect real pacing. When false (firehose),
    /// frames are ingested as fast as possible.
    pub paced: bool,
    /// Ingested frames between service pumps; 0 picks
    /// `max_batch * clip_len` from the service config.
    pub pump_every: usize,
    /// Fraction of sessions streaming *physically triggered* captures
    /// (the paper's worn-trigger threat): the first
    /// `round(sessions * poison_frac)` session ids replay a twin stream
    /// with the aluminum trigger superposed at the chest site. 0 = all
    /// clean. The prefix assignment keeps poisoned sessions spread
    /// across distinct base streams.
    #[serde(default)]
    pub poison_frac: f64,
    /// Optional seeded transport-fault schedule ([`StreamChaos`]):
    /// frame corruption, drop/duplicate/reorder, session stalls, and
    /// pump-suppressing overload applied to the delivery stream before
    /// the service sees it. `None` replays faithfully.
    #[serde(default)]
    pub chaos: Option<StreamChaos>,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            sessions: 8,
            seconds: 5.0,
            fps: 10.0,
            jitter: 0.2,
            burst: 1,
            seed: 7,
            paced: false,
            pump_every: 0,
            poison_frac: 0.0,
            chaos: None,
        }
    }
}

impl LoadgenConfig {
    /// Rejects impossible settings with a descriptive [`ServeError`].
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.sessions == 0 {
            return Err(ServeError::Config("loadgen needs at least one session".into()));
        }
        if !(self.seconds > 0.0) {
            return Err(ServeError::Config("loadgen seconds must be positive".into()));
        }
        if !(self.fps > 0.0) {
            return Err(ServeError::Config("loadgen fps must be positive".into()));
        }
        if self.burst == 0 {
            return Err(ServeError::Config("loadgen burst must be at least 1".into()));
        }
        if !(0.0..=1.0).contains(&self.jitter) {
            return Err(ServeError::Config(format!(
                "loadgen jitter {} outside [0, 1]",
                self.jitter
            )));
        }
        if !(0.0..=1.0).contains(&self.poison_frac) {
            return Err(ServeError::Config(format!(
                "loadgen poison_frac {} outside [0, 1]",
                self.poison_frac
            )));
        }
        if let Some(chaos) = &self.chaos {
            chaos.validate()?;
        }
        Ok(())
    }
}

/// Sessions the generator poisons for a given fleet size and fraction:
/// `round(sessions * frac)`, clamped to the fleet.
pub fn poisoned_sessions(sessions: usize, frac: f64) -> usize {
    ((sessions as f64 * frac).round() as usize).min(sessions)
}

/// True when `session` replays a triggered stream: poisoned sessions
/// are the id prefix `0..poisoned_sessions`, so consecutive ids land on
/// *distinct* base streams instead of aliasing onto one.
pub fn is_poisoned(session: u64, sessions: usize, frac: f64) -> bool {
    (session as usize) < poisoned_sessions(sessions, frac)
}

/// One scheduled frame arrival. Public so [`StreamChaos`] can rewrite
/// delivery schedules; the vec order is the delivery order.
#[derive(Debug, Clone, Copy)]
pub struct Arrival {
    /// Scheduled arrival instant, ms from replay start (paced mode
    /// sleeps toward it; firehose ignores it).
    pub time_ms: f64,
    /// Destination session id.
    pub session: u64,
    /// Sender-assigned sequence number.
    pub seq: u64,
}

/// The loadgen result: throughput, latency percentiles, drop rate, and
/// the service's closing frame-conservation ledger. Saved as a
/// checksummed `store` artifact so `mmwave perf-check` and CI can gate
/// on it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadgenReport {
    /// Report schema version (bumped on incompatible changes).
    pub schema_version: u32,
    /// Echo of the generator configuration.
    pub config: LoadgenConfig,
    /// Worker threads the service pumped with.
    pub workers: usize,
    /// Wall-clock replay duration (ingest through drain), ms.
    pub wall_ms: f64,
    /// Frames accepted by the service.
    pub ingested: u64,
    /// Frames consumed by verdicts.
    pub inferred_frames: u64,
    /// Frames shed under backpressure.
    pub shed_frames: u64,
    /// Frames still buffered after drain (sub-clip ring remainders).
    pub in_flight_frames: u64,
    /// Frames ingested minus inferred, shed, and in flight. Always 0
    /// when the service's accounting invariant holds.
    pub unaccounted: i64,
    /// Verdicts emitted.
    pub verdicts: u64,
    /// Distinct sessions that produced at least one verdict.
    pub sessions_served: u64,
    /// `sessions_served` per wall-clock second.
    pub sessions_per_sec: f64,
    /// Verdicts per wall-clock second.
    pub inferences_per_sec: f64,
    /// Frames ingested per wall-clock second.
    pub frames_per_sec: f64,
    /// `shed_frames / ingested` (0 when nothing was ingested).
    pub drop_rate: f64,
    /// Median end-to-end latency (newest frame ingest → verdict), ms.
    pub latency_p50_ms: f64,
    /// 95th-percentile end-to-end latency, ms.
    pub latency_p95_ms: f64,
    /// 99th-percentile end-to-end latency, ms.
    pub latency_p99_ms: f64,
    /// Worst observed end-to-end latency, ms.
    pub latency_max_ms: f64,
    /// Highest single-session ring depth observed.
    pub peak_ring_depth: usize,
    /// Highest total queue depth (ring + ready frames) observed.
    pub peak_queue_depth: u64,
    /// Sessions that replayed a physically triggered stream.
    #[serde(default)]
    pub poisoned_sessions: u64,
    /// Frames quarantined at ingress (non-finite, misshapen, duplicate).
    #[serde(default)]
    pub rejected_frames: u64,
    /// Verdicts emitted with `Failed` status.
    #[serde(default)]
    pub verdicts_failed: u64,
    /// Sessions evicted by the staleness sweep.
    #[serde(default)]
    pub sessions_evicted: u64,
    /// Evicted sessions that later reconnected.
    #[serde(default)]
    pub sessions_reopened: u64,
    /// Sequence gaps the service detected.
    #[serde(default)]
    pub seq_gaps: u64,
    /// Duplicate frames the service rejected.
    #[serde(default)]
    pub seq_dups: u64,
    /// Placeholder frames inserted for gap repair.
    #[serde(default)]
    pub filled_frames: u64,
}

impl LoadgenReport {
    /// True when every ingested frame is accounted for.
    pub fn is_clean(&self) -> bool {
        self.unaccounted == 0
    }

    /// Saves the report as a checksummed atomic artifact.
    pub fn save(&self, path: &Path) -> Result<(), StoreError> {
        save_json_atomic(path, self)
    }

    /// Loads a previously saved report, verifying its checksum.
    pub fn load(path: &Path) -> Result<LoadgenReport, StoreError> {
        Ok(load_json::<LoadgenReport>(path)?.value)
    }
}

/// Runs the load generator against a fresh [`Service`] and returns the
/// report. See [`run_with`] to also observe each verdict as it lands.
pub fn run(
    lg: &LoadgenConfig,
    serve_cfg: ServeConfig,
    proto: &PrototypeConfig,
    environment: Environment,
) -> Result<LoadgenReport, ServeError> {
    run_with(lg, serve_cfg, proto, environment, |_| {})
}

/// [`run`] with a per-verdict observer callback (used by the CLI to
/// print verdicts live and by tests to capture the verdict stream).
pub fn run_with(
    lg: &LoadgenConfig,
    serve_cfg: ServeConfig,
    proto: &PrototypeConfig,
    environment: Environment,
    mut on_verdict: impl FnMut(&Verdict),
) -> Result<LoadgenReport, ServeError> {
    lg.validate()?;
    let _span = span("serve.loadgen");
    let mut service = Service::new(serve_cfg.clone(), proto, environment.clone(), lg.seed)?;
    let (base, triggered) = synthesize_streams(lg, proto, &environment);
    let arrivals = match &lg.chaos {
        Some(chaos) => chaos.apply_to_schedule(&schedule(lg)),
        None => schedule(lg),
    };
    let pump_every = if lg.pump_every == 0 {
        (serve_cfg.max_batch * serve_cfg.clip_len).max(1)
    } else {
        lg.pump_every
    };

    let replay_span = span("serve.loadgen.replay");
    let start = Instant::now();
    let mut latencies: Vec<f64> = Vec::new();
    let mut served: BTreeSet<u64> = BTreeSet::new();
    let mut verdict_total: u64 = 0;
    let mut peak_queue: u64 = 0;
    let mut since_pump = 0usize;
    let mut pump_index = 0u64;
    let clip_len = serve_cfg.clip_len;
    for arrival in &arrivals {
        if lg.paced {
            let target = Duration::from_secs_f64(arrival.time_ms / 1e3);
            let elapsed = start.elapsed();
            if target > elapsed {
                std::thread::sleep(target - elapsed);
            }
        }
        let pool = if is_poisoned(arrival.session, lg.sessions, lg.poison_frac) {
            &triggered
        } else {
            &base
        };
        let stream = &pool[(arrival.session as usize) % pool.len()];
        let mut frame = stream[(arrival.seq as usize) % clip_len].clone();
        if let Some(c) = &lg.chaos {
            if c.corrupts(arrival.session, arrival.seq) {
                chaos::corrupt_frame(&mut frame);
            }
        }
        service.ingest(arrival.session, arrival.seq, frame);
        peak_queue = peak_queue.max(service.queue_depth());
        since_pump += 1;
        if since_pump >= pump_every {
            since_pump = 0;
            pump_index += 1;
            // A suppressed pump is the overload fault: arrivals keep
            // landing while the service never gets a turn, so rings
            // overflow exactly as they would behind a stalled consumer.
            if !lg.chaos.as_ref().is_some_and(|c| c.suppresses_pump(pump_index)) {
                for v in service.pump() {
                    latencies.push(v.latency_ms);
                    served.insert(v.session);
                    verdict_total += 1;
                    on_verdict(&v);
                }
            }
        }
    }
    for v in service.drain() {
        latencies.push(v.latency_ms);
        served.insert(v.session);
        verdict_total += 1;
        on_verdict(&v);
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    drop(replay_span);

    let acc = service.accounting();
    latencies.sort_by(f64::total_cmp);
    let wall_s = (wall_ms / 1e3).max(1e-9);
    Ok(LoadgenReport {
        schema_version: 1,
        config: lg.clone(),
        workers: mmwave_exec::workers(),
        wall_ms,
        ingested: acc.ingested,
        inferred_frames: acc.inferred_frames,
        shed_frames: acc.shed_frames,
        in_flight_frames: acc.in_flight_frames,
        unaccounted: acc.ingested as i64
            - acc.inferred_frames as i64
            - acc.shed_frames as i64
            - acc.rejected as i64
            - acc.in_flight_frames as i64,
        verdicts: verdict_total,
        sessions_served: served.len() as u64,
        sessions_per_sec: served.len() as f64 / wall_s,
        inferences_per_sec: verdict_total as f64 / wall_s,
        frames_per_sec: acc.ingested as f64 / wall_s,
        drop_rate: if acc.ingested == 0 {
            0.0
        } else {
            acc.shed_frames as f64 / acc.ingested as f64
        },
        latency_p50_ms: percentile(&latencies, 50.0),
        latency_p95_ms: percentile(&latencies, 95.0),
        latency_p99_ms: percentile(&latencies, 99.0),
        latency_max_ms: latencies.last().copied().unwrap_or(0.0),
        peak_ring_depth: acc.peak_ring_depth,
        peak_queue_depth: peak_queue,
        poisoned_sessions: poisoned_sessions(lg.sessions, lg.poison_frac) as u64,
        rejected_frames: acc.rejected,
        verdicts_failed: acc.verdicts_failed,
        sessions_evicted: acc.sessions_evicted,
        sessions_reopened: acc.sessions_reopened,
        seq_gaps: acc.seq_gaps,
        seq_dups: acc.seq_dups,
        filled_frames: acc.filled_frames,
    })
}

/// Synthesizes `min(sessions, BASE_STREAMS)` full-clip capture streams
/// that sessions replay cyclically, plus — when `poison_frac > 0` —
/// their physically triggered twins: the same base IF frames with the
/// aluminum trigger's contribution superposed at the worn chest site,
/// exactly how the attack pipeline composes a worn trigger. The second
/// vector is empty when nothing is poisoned.
fn synthesize_streams(
    lg: &LoadgenConfig,
    proto: &PrototypeConfig,
    environment: &Environment,
) -> (Vec<Vec<IfFrame>>, Vec<Vec<IfFrame>>) {
    let _span = span("serve.loadgen.synth");
    let capturer = Capturer::new(proto.capture.0.clone());
    let frame_rate = capturer.config().frame_rate;
    let sampler = ActivitySampler::new(Participant::average(), proto.n_frames, frame_rate);
    let angles = [0.0, -30.0, 30.0];
    let poison = poisoned_sessions(lg.sessions, lg.poison_frac) > 0;
    let plan = TriggerPlan {
        attachment: TriggerAttachment::new(Trigger::aluminum_2x2()),
        site: SiteId::Chest,
    };
    let mut base = Vec::new();
    let mut triggered = Vec::new();
    for b in 0..lg.sessions.min(BASE_STREAMS).max(1) {
        let activity = Activity::from_index(b % Activity::ALL.len());
        let sequence = sampler.sample(activity, &SampleVariation::nominal());
        let placement = Placement::new(1.2, angles[b % angles.len()]);
        let clean = capturer.base_if_frames(
            &sequence,
            placement,
            environment,
            derive_seed(lg.seed, 0x1000 + b as u64),
            1.0,
        );
        if poison {
            let xf = placement.body_to_world();
            triggered.push(
                sequence
                    .iter()
                    .zip(&clean)
                    .map(|(body_frame, frame)| {
                        let site_world = transform_site(body_frame.site(plan.site), &xf);
                        frame.superposed(&capturer.trigger_if(&plan, &site_world))
                    })
                    .collect(),
            );
        }
        base.push(clean);
    }
    (base, triggered)
}

/// Builds the merged, time-sorted arrival schedule for every session.
fn schedule(lg: &LoadgenConfig) -> Vec<Arrival> {
    let frames_per_session = ((lg.seconds * lg.fps).ceil() as u64).max(1);
    let period_ms = 1e3 / lg.fps;
    let mut arrivals = Vec::with_capacity(lg.sessions * frames_per_session as usize);
    for s in 0..lg.sessions as u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(lg.seed, s));
        let phase = rng.gen_range(0.0..period_ms);
        let mut group_jitter = 0.0;
        for seq in 0..frames_per_session {
            if seq % lg.burst as u64 == 0 {
                group_jitter = if lg.jitter > 0.0 {
                    rng.gen_range(-lg.jitter..lg.jitter) * period_ms
                } else {
                    0.0
                };
            }
            let group = seq / lg.burst as u64;
            let time_ms =
                (phase + group as f64 * period_ms * lg.burst as f64 + group_jitter).max(0.0);
            arrivals.push(Arrival { time_ms, session: s, seq });
        }
    }
    arrivals.sort_by(|a, b| {
        a.time_ms
            .total_cmp(&b.time_ms)
            .then(a.session.cmp(&b.session))
            .then(a.seq.cmp(&b.seq))
    });
    arrivals
}

/// Nearest-rank percentile over an already-sorted slice (0.0 when
/// empty).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_seed_deterministic_and_time_sorted() {
        let lg = LoadgenConfig { sessions: 4, seconds: 1.0, fps: 10.0, ..Default::default() };
        let a = schedule(&lg);
        let b = schedule(&lg);
        assert_eq!(a.len(), 4 * 10);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.time_ms.to_bits(), x.session, x.seq), (y.time_ms.to_bits(), y.session, y.seq));
        }
        for w in a.windows(2) {
            assert!(w[0].time_ms <= w[1].time_ms);
        }
    }

    #[test]
    fn bursts_share_one_arrival_instant_per_group() {
        let lg = LoadgenConfig {
            sessions: 1,
            seconds: 1.0,
            fps: 10.0,
            burst: 5,
            jitter: 0.3,
            ..Default::default()
        };
        let a = schedule(&lg);
        assert_eq!(a.len(), 10);
        // Frames within one burst group land at the same instant.
        for group in a.chunks(5) {
            assert!(group.iter().all(|x| x.time_ms.to_bits() == group[0].time_ms.to_bits()));
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 99.0), 5.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad = LoadgenConfig { sessions: 0, ..Default::default() };
        assert!(bad.validate().is_err());
        let bad = LoadgenConfig { jitter: 1.5, ..Default::default() };
        assert!(bad.validate().is_err());
        let bad = LoadgenConfig { poison_frac: 1.5, ..Default::default() };
        assert!(bad.validate().is_err());
        let bad = LoadgenConfig { poison_frac: -0.1, ..Default::default() };
        assert!(bad.validate().is_err());
        assert!(LoadgenConfig::default().validate().is_ok());
    }

    #[test]
    fn poisoned_sessions_are_the_id_prefix() {
        assert_eq!(poisoned_sessions(10, 0.3), 3);
        assert_eq!(poisoned_sessions(10, 0.0), 0);
        assert_eq!(poisoned_sessions(10, 1.0), 10);
        assert_eq!(poisoned_sessions(3, 0.5), 2);
        // Prefix rule: ids below the count are poisoned, the rest clean.
        for s in 0..10u64 {
            assert_eq!(is_poisoned(s, 10, 0.3), s < 3);
        }
        // The prefix lands poisoned sessions on distinct base streams
        // (ids 0,1,2 cover streams 0,1,2), unlike an evenly-spread
        // assignment which would alias them all onto one stream.
        let streams: BTreeSet<usize> =
            (0..3u64).map(|s| s as usize % BASE_STREAMS).collect();
        assert_eq!(streams.len(), 3);
    }

    #[test]
    fn poison_frac_defaults_to_zero_on_legacy_configs() {
        // Reports saved before poison_frac existed must still load.
        let legacy = r#"{
            "sessions": 4, "seconds": 1.0, "fps": 10.0, "jitter": 0.2,
            "burst": 1, "seed": 7, "paced": false, "pump_every": 0
        }"#;
        let cfg: LoadgenConfig = serde_json::from_str(legacy).expect("legacy config parses");
        assert_eq!(cfg.poison_frac, 0.0);
        assert!(cfg.validate().is_ok());
    }
}
