//! Micro-batch inference: one batch of ready clips fanned across the
//! `exec` pool.
//!
//! A batch is the unit of data parallelism: each clip runs the full
//! DSP → CNN-LSTM → trigger-detector chain independently, so
//! [`mmwave_exec::par_map`]'s input-order guarantee makes the verdict
//! order — and every verdict field except wall-clock latency —
//! independent of the worker count.

use mmwave_body::Activity;
use mmwave_defense::TriggerDetector;
use mmwave_dsp::Heatmap;
use mmwave_har::CnnLstm;
use mmwave_radar::{Capturer, Environment};
use mmwave_telemetry::{counter, observe, span, span_at, Level};

use crate::service::{ReadyClip, Verdict};

/// Runs DSP + model + detector for every clip in `batch` on the `exec`
/// pool and returns one [`Verdict`] per clip, in batch order.
///
/// `now_ms` is the emit timestamp (ms since the service epoch) used for
/// end-to-end latency; it is sampled once per batch so all verdicts in
/// a batch share the same emit instant.
pub fn infer_batch(
    capturer: &Capturer,
    environment: &Environment,
    model: &CnnLstm,
    detector: &TriggerDetector,
    batch: &[ReadyClip],
    now_ms: f64,
) -> Vec<Verdict> {
    let _span = span("serve.infer_batch");
    counter("serve.batches", 1);
    observe("serve.batch_size", batch.len() as f64);
    let results = mmwave_exec::par_map(batch, |_i, clip| {
        let _clip_span = span_at("serve.infer_clip", Level::Debug);
        let heatmaps: Vec<Heatmap> = clip
            .frames
            .iter()
            .map(|frame| capturer.drai_of(frame, environment))
            .collect();
        let seq = capturer.finalize_heatmaps(heatmaps);
        let probs = model.probabilities(&seq);
        let (label, confidence) = argmax(&probs);
        let defense_score = detector.score(&seq);
        (label, confidence, defense_score)
    });
    batch
        .iter()
        .zip(results)
        .map(|(clip, (label, confidence, defense_score))| Verdict {
            session: clip.session,
            clip_index: clip.clip_index,
            first_seq: clip.first_seq,
            last_seq: clip.last_seq,
            label,
            activity: activity_name(label),
            confidence,
            defense_score,
            latency_ms: (now_ms - clip.last_ingest_ms).max(0.0),
        })
        .collect()
}

/// First index of the largest probability (ties break low, so the
/// result is deterministic for any finite input).
fn argmax(probs: &[f32]) -> (usize, f32) {
    let mut best = 0;
    let mut best_p = f32::NEG_INFINITY;
    for (i, &p) in probs.iter().enumerate() {
        if p > best_p {
            best = i;
            best_p = p;
        }
    }
    (best, best_p)
}

/// Human-readable label for a class index; indices beyond the activity
/// taxonomy (custom class counts) fall back to `class-<i>`.
fn activity_name(label: usize) -> String {
    match Activity::ALL.get(label) {
        Some(activity) => activity.label().to_string(),
        None => format!("class-{label}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_breaks_ties_toward_the_first_index() {
        assert_eq!(argmax(&[0.1, 0.4, 0.4, 0.1]), (1, 0.4));
        assert_eq!(argmax(&[0.5]), (0, 0.5));
    }

    #[test]
    fn activity_names_cover_known_and_unknown_labels() {
        assert_eq!(activity_name(0), "Push");
        assert_eq!(activity_name(99), "class-99");
    }
}
