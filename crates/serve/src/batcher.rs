//! Micro-batch inference: one batch of ready clips fanned across the
//! `exec` pool, with per-clip failure isolation.
//!
//! A batch is the unit of data parallelism: each clip runs the full
//! DSP → CNN-LSTM → trigger-detector chain independently, so
//! [`mmwave_exec::par_map`]'s input-order guarantee makes the verdict
//! order — and every verdict field except wall-clock latency —
//! independent of the worker count.
//!
//! Failure isolation is per-clip, not per-batch: each clip's chain runs
//! under `catch_unwind` (the same capture `exec` itself uses, rendered
//! through [`mmwave_exec::panic_message`]), and non-finite model or
//! detector outputs are treated as failures too. A poisoned clip yields
//! a [`VerdictStatus::Failed`] verdict while the rest of its batch
//! completes normally; the service's circuit breaker watches the
//! resulting failure stream.

use std::panic::{catch_unwind, AssertUnwindSafe};

use mmwave_body::Activity;
use mmwave_defense::TriggerDetector;
use mmwave_dsp::{repair_dropped_frames, Heatmap};
use mmwave_har::CnnLstm;
use mmwave_radar::{Capturer, Environment};
use mmwave_telemetry::{counter, observe, span, span_at, Level};

use crate::service::{ReadyClip, Verdict, VerdictStatus};

/// One clip's pipeline outcome before it is dressed up as a verdict.
type ClipResult = Result<(usize, f32, f64), String>;

/// Runs DSP + model + detector for every clip in `batch` on the `exec`
/// pool and returns one [`Verdict`] per clip, in batch order. Clips
/// whose `dropped` mask flags placeholder frames are repaired at the
/// heatmap stage before classification; clips that panic or produce
/// non-finite outputs yield `Failed` verdicts without disturbing their
/// batchmates.
///
/// `now_ms` is the emit timestamp (ms since the service epoch) used for
/// end-to-end latency; it is sampled once per batch so all verdicts in
/// a batch share the same emit instant.
pub fn infer_batch(
    capturer: &Capturer,
    environment: &Environment,
    model: &CnnLstm,
    detector: &TriggerDetector,
    batch: &[ReadyClip],
    now_ms: f64,
) -> Vec<Verdict> {
    let _span = span("serve.infer_batch");
    counter("serve.batches", 1);
    observe("serve.batch_size", batch.len() as f64);
    let results: Vec<ClipResult> = mmwave_exec::par_map(batch, |_i, clip| {
        let _clip_span = span_at("serve.infer_clip", Level::Debug);
        catch_unwind(AssertUnwindSafe(|| infer_clip(capturer, environment, model, detector, clip)))
            .unwrap_or_else(|payload| {
                Err(format!("clip panicked: {}", mmwave_exec::panic_message(payload.as_ref())))
            })
    });
    batch
        .iter()
        .zip(results)
        .map(|(clip, result)| {
            let (label, activity, confidence, defense_score, status) = match result {
                Ok((label, confidence, defense_score)) => {
                    (label, activity_name(label), confidence, defense_score, VerdictStatus::Ok)
                }
                Err(reason) => {
                    (0, "failed".to_string(), 0.0, 0.0, VerdictStatus::Failed { reason })
                }
            };
            Verdict {
                session: clip.session,
                clip_index: clip.clip_index,
                first_seq: clip.first_seq,
                last_seq: clip.last_seq,
                label,
                activity,
                confidence,
                defense_score,
                latency_ms: (now_ms - clip.last_ingest_ms).max(0.0),
                status,
            }
        })
        .collect()
}

/// The full single-clip chain: DSP heatmaps, placeholder repair, model
/// probabilities, trigger score. Returns `Err` on non-finite outputs;
/// panics anywhere in the chain are caught by the caller.
fn infer_clip(
    capturer: &Capturer,
    environment: &Environment,
    model: &CnnLstm,
    detector: &TriggerDetector,
    clip: &ReadyClip,
) -> ClipResult {
    let mut heatmaps: Vec<Heatmap> = clip
        .frames
        .iter()
        .map(|frame| capturer.drai_of(frame, environment))
        .collect();
    if clip.dropped.iter().any(|&d| d) {
        repair_dropped_frames(&mut heatmaps, &clip.dropped);
        counter("serve.clips_repaired", 1);
    }
    let seq = capturer.finalize_heatmaps(heatmaps);
    let probs = model.probabilities(&seq);
    if probs.iter().any(|p| !p.is_finite()) {
        return Err("model produced non-finite probabilities".to_string());
    }
    let (label, confidence) = argmax(&probs);
    let defense_score = detector.score(&seq);
    if !defense_score.is_finite() {
        return Err("detector produced a non-finite score".to_string());
    }
    Ok((label, confidence, defense_score))
}

/// First index of the largest probability (ties break low, so the
/// result is deterministic for any finite input).
fn argmax(probs: &[f32]) -> (usize, f32) {
    let mut best = 0;
    let mut best_p = f32::NEG_INFINITY;
    for (i, &p) in probs.iter().enumerate() {
        if p > best_p {
            best = i;
            best_p = p;
        }
    }
    (best, best_p)
}

/// Human-readable label for a class index; indices beyond the activity
/// taxonomy (custom class counts) fall back to `class-<i>`.
fn activity_name(label: usize) -> String {
    match Activity::ALL.get(label) {
        Some(activity) => activity.label().to_string(),
        None => format!("class-{label}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_breaks_ties_toward_the_first_index() {
        assert_eq!(argmax(&[0.1, 0.4, 0.4, 0.1]), (1, 0.4));
        assert_eq!(argmax(&[0.5]), (0, 0.5));
    }

    #[test]
    fn activity_names_cover_known_and_unknown_labels() {
        assert_eq!(activity_name(0), "Push");
        assert_eq!(activity_name(99), "class-99");
    }
}
