//! Per-session stream state: the ingress ring, sequence tracking, and
//! exact frame accounting.
//!
//! A *session* is one sensor's live stream. Frames land in the session's
//! [`FrameRing`] at ingest (cheap, never blocking); the service's pump
//! later windows them into fixed-length clips. Every real frame a session
//! has ever accepted is, at any instant, in exactly one of five places —
//! still buffered, inside a pending clip, inferred, shed, or rejected —
//! and the per-session counters here are what the service's global
//! [`crate::Accounting`] invariant sums over.
//!
//! Transport hardening lives at this layer: each session tracks the next
//! expected sequence number, so gaps (dropped packets), duplicates, and
//! regressions (sensor restarts) are *detected* rather than silently
//! spliced into clips. Small gaps are filled with placeholder frames
//! (`filler: true`) that the batcher later repairs by heatmap
//! interpolation; fillers occupy ring capacity but are excluded from the
//! conservation ledger — they were never sent, so they are never
//! "ingested".

use crate::ring::FrameRing;
use mmwave_dsp::IfFrame;

/// One raw frame buffered inside a session ring.
#[derive(Debug, Clone)]
pub struct PendingFrame {
    /// Sender-assigned sequence number (monotone per session). Fillers
    /// carry the sequence number of the frame they stand in for.
    pub seq: u64,
    /// Milliseconds since the service epoch when the frame was ingested;
    /// end-to-end latency is measured from here.
    pub ingest_ms: f64,
    /// The raw IF cube (all zeros for fillers).
    pub frame: IfFrame,
    /// True for a gap-repair placeholder: the real frame never arrived,
    /// this slot keeps the run contiguous and is interpolated away at
    /// the heatmap stage.
    pub filler: bool,
}

/// Why ingress refused a frame. Every rejection lands in the session's
/// `rejected` ledger bucket; the reason picks the telemetry counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The frame carried NaN or infinite samples.
    NonFinite,
    /// The frame's cube dimensions do not match the capture pipeline.
    BadShape,
    /// The sequence number was already covered by the current run
    /// (duplicate delivery, or a late frame whose slot a filler took).
    Duplicate,
}

/// What the sequence tracker decided about an in-order-checked frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqDisposition {
    /// The expected next frame (or the first of a fresh run).
    InOrder,
    /// `missing` frames were skipped; small enough to fill in place.
    FillableGap {
        /// How many sequence numbers were skipped.
        missing: u64,
    },
    /// A gap too large to repair: the buffered run must be abandoned
    /// and a fresh contiguous run started at this frame.
    RunBreak,
    /// The sequence regressed to zero with history present: a sensor
    /// restart. The buffered run is abandoned and restarted.
    Restart,
    /// Already covered by the current run — reject as a duplicate.
    Duplicate,
}

/// The state and lifetime accounting of one sensor stream.
#[derive(Debug)]
pub struct SessionState {
    /// The session id.
    pub id: u64,
    /// Bounded ingress ring of raw frames.
    pub ring: FrameRing<PendingFrame>,
    /// Real frames currently buffered in the ring (fillers excluded);
    /// this — not `ring.len()` — is the session's in-flight ring share.
    pub ring_real: usize,
    /// Real frames ever accepted into the ring.
    pub ingested: u64,
    /// Real frames shed (ring overflow, abandoned runs, eviction
    /// flushes, plus any clips of this session shed from the ready
    /// queue or by an open circuit breaker).
    pub shed: u64,
    /// Frames refused at ingress: non-finite, misshapen, or duplicate.
    pub rejected: u64,
    /// Real frames consumed by emitted verdicts.
    pub inferred: u64,
    /// Clips emitted so far (the next verdict's `clip_index`).
    pub clips: u64,
    /// Sequence gaps detected (each counted once, whatever its width).
    pub seq_gaps: u64,
    /// Duplicate / late frames rejected by the sequence tracker.
    pub seq_dups: u64,
    /// Placeholder frames inserted to bridge fillable gaps.
    pub filled: u64,
    /// Next sequence number the tracker expects; `None` until the first
    /// frame of a run arrives (a fresh session or a post-break restart
    /// accepts any starting sequence).
    pub expected_seq: Option<u64>,
    /// Pump counter value when this session last ingested a frame (the
    /// staleness sweep compares it against the service's pump count).
    pub last_ingest_pump: u64,
    /// Highest ring depth ever observed (the backpressure test reads
    /// this to pin the never-exceeds-capacity invariant).
    pub peak_ring_depth: usize,
}

impl SessionState {
    /// Creates an empty session with a ring of `ring_capacity` frames.
    pub fn new(id: u64, ring_capacity: usize) -> SessionState {
        SessionState {
            id,
            ring: FrameRing::new(ring_capacity),
            ring_real: 0,
            ingested: 0,
            shed: 0,
            rejected: 0,
            inferred: 0,
            clips: 0,
            seq_gaps: 0,
            seq_dups: 0,
            filled: 0,
            expected_seq: None,
            last_ingest_pump: 0,
            peak_ring_depth: 0,
        }
    }

    /// Classifies `seq` against the tracker without mutating anything.
    pub fn classify_seq(&self, seq: u64, max_gap_repair: usize) -> SeqDisposition {
        let Some(expected) = self.expected_seq else {
            return SeqDisposition::InOrder;
        };
        if seq == expected {
            return SeqDisposition::InOrder;
        }
        if seq > expected {
            let missing = seq - expected;
            return if max_gap_repair > 0 && missing <= max_gap_repair as u64 {
                SeqDisposition::FillableGap { missing }
            } else {
                SeqDisposition::RunBreak
            };
        }
        // seq < expected: a rewind. Zero with history means the sensor
        // restarted its counter; anything else is a duplicate or a late
        // frame whose slot was already taken (possibly by a filler).
        if seq == 0 {
            SeqDisposition::Restart
        } else {
            SeqDisposition::Duplicate
        }
    }

    /// Accepts one real frame into the ring, shedding the oldest
    /// buffered *real* frame when full. Returns the number of real
    /// frames shed (0 or 1). The caller has already run the frame
    /// through validation and [`SessionState::classify_seq`].
    pub fn accept(&mut self, frame: PendingFrame) -> u64 {
        debug_assert!(!frame.filler, "accept is for real frames; use push_filler");
        self.ingested += 1;
        self.expected_seq = Some(frame.seq + 1);
        self.ring_real += 1;
        let shed = match self.ring.push(frame) {
            Some(old) if !old.filler => {
                self.ring_real -= 1;
                self.shed += 1;
                1
            }
            _ => 0,
        };
        self.peak_ring_depth = self.peak_ring_depth.max(self.ring.len());
        shed
    }

    /// Inserts one gap-repair placeholder for sequence `seq`. Returns
    /// the number of real frames shed by the insertion (0 or 1);
    /// fillers themselves never enter the ledger.
    pub fn push_filler(&mut self, seq: u64, ingest_ms: f64, blank: IfFrame) -> u64 {
        self.filled += 1;
        let shed = match self.ring.push(PendingFrame {
            seq,
            ingest_ms,
            frame: blank,
            filler: true,
        }) {
            Some(old) if !old.filler => {
                self.ring_real -= 1;
                self.shed += 1;
                1
            }
            _ => 0,
        };
        self.peak_ring_depth = self.peak_ring_depth.max(self.ring.len());
        shed
    }

    /// Records a rejected frame (never buffered).
    pub fn reject(&mut self, reason: RejectReason) {
        self.ingested += 1;
        self.rejected += 1;
        if reason == RejectReason::Duplicate {
            self.seq_dups += 1;
        }
    }

    /// Abandons the buffered run (an unrepairable gap or a sensor
    /// restart): every buffered real frame becomes shed, fillers
    /// evaporate, and the tracker forgets its expectation so the next
    /// frame starts a fresh run. Returns the number of real frames shed.
    pub fn abandon_run(&mut self) -> u64 {
        let mut shed = 0u64;
        for frame in self.ring.drain_all() {
            if !frame.filler {
                shed += 1;
            }
        }
        self.ring_real = 0;
        self.shed += shed;
        self.expected_seq = None;
        shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(seq: u64) -> PendingFrame {
        PendingFrame { seq, ingest_ms: seq as f64, frame: IfFrame::zeros(1, 1, 2), filler: false }
    }

    #[test]
    fn accept_tracks_ingest_shed_and_peak() {
        let mut s = SessionState::new(7, 2);
        assert_eq!(s.accept(frame(0)), 0);
        assert_eq!(s.accept(frame(1)), 0);
        assert_eq!(s.accept(frame(2)), 1);
        assert_eq!((s.ingested, s.shed, s.peak_ring_depth), (3, 1, 2));
        // The survivors are the freshest contiguous window.
        let kept = s.ring.take_front(2).expect("two frames buffered");
        assert_eq!(kept.iter().map(|f| f.seq).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn sequence_tracker_classifies_every_disposition() {
        let mut s = SessionState::new(1, 8);
        // A fresh session accepts any starting sequence.
        assert_eq!(s.classify_seq(5, 2), SeqDisposition::InOrder);
        s.accept(frame(5));
        assert_eq!(s.classify_seq(6, 2), SeqDisposition::InOrder);
        assert_eq!(s.classify_seq(8, 2), SeqDisposition::FillableGap { missing: 2 });
        assert_eq!(s.classify_seq(9, 2), SeqDisposition::RunBreak);
        assert_eq!(s.classify_seq(8, 0), SeqDisposition::RunBreak, "0 disables repair");
        assert_eq!(s.classify_seq(5, 2), SeqDisposition::Duplicate);
        assert_eq!(s.classify_seq(3, 2), SeqDisposition::Duplicate);
        assert_eq!(s.classify_seq(0, 2), SeqDisposition::Restart);
    }

    #[test]
    fn fillers_occupy_capacity_but_stay_off_the_ledger() {
        let mut s = SessionState::new(2, 3);
        s.accept(frame(0));
        s.push_filler(1, 1.0, IfFrame::zeros(1, 1, 2));
        s.accept(frame(2));
        assert_eq!((s.ingested, s.filled, s.ring_real), (2, 1, 2));
        assert_eq!(s.ring.len(), 3);
        // Overflow shedding a real frame counts; shedding a filler would not.
        assert_eq!(s.accept(frame(3)), 1);
        assert_eq!(s.shed, 1);
        assert_eq!(s.ring_real, 2);
    }

    #[test]
    fn abandon_run_sheds_reals_and_forgets_the_expectation() {
        let mut s = SessionState::new(3, 8);
        s.accept(frame(0));
        s.push_filler(1, 1.0, IfFrame::zeros(1, 1, 2));
        s.accept(frame(2));
        assert_eq!(s.abandon_run(), 2, "only real frames are shed");
        assert_eq!(s.ring_real, 0);
        assert!(s.ring.is_empty());
        assert_eq!(s.expected_seq, None);
        // Next frame starts a fresh run at whatever sequence arrives.
        assert_eq!(s.classify_seq(40, 2), SeqDisposition::InOrder);
        // The ledger still closes: ingested == shed + buffered.
        assert_eq!(s.ingested, s.shed + s.ring_real as u64);
    }

    #[test]
    fn reject_reasons_split_duplicates_out() {
        let mut s = SessionState::new(4, 4);
        s.reject(RejectReason::NonFinite);
        s.reject(RejectReason::BadShape);
        s.reject(RejectReason::Duplicate);
        assert_eq!((s.ingested, s.rejected, s.seq_dups), (3, 3, 1));
    }
}
