//! Per-session stream state: the ingress ring plus exact frame
//! accounting.
//!
//! A *session* is one sensor's live stream. Frames land in the session's
//! [`FrameRing`] at ingest (cheap, never blocking); the service's pump
//! later windows them into fixed-length clips. Every frame a session has
//! ever accepted is, at any instant, in exactly one of four places —
//! still buffered, inside a pending clip, inferred, or shed — and the
//! per-session counters here are what the service's global
//! [`crate::Accounting`] invariant sums over.

use crate::ring::FrameRing;
use mmwave_dsp::IfFrame;

/// One raw frame buffered inside a session ring.
#[derive(Debug, Clone)]
pub struct PendingFrame {
    /// Sender-assigned sequence number (monotone per session).
    pub seq: u64,
    /// Milliseconds since the service epoch when the frame was ingested;
    /// end-to-end latency is measured from here.
    pub ingest_ms: f64,
    /// The raw IF cube.
    pub frame: IfFrame,
}

/// The state and lifetime accounting of one sensor stream.
#[derive(Debug)]
pub struct SessionState {
    /// The session id.
    pub id: u64,
    /// Bounded ingress ring of raw frames.
    pub ring: FrameRing<PendingFrame>,
    /// Frames ever accepted into the ring.
    pub ingested: u64,
    /// Frames shed (ring overflow plus any clips of this session shed
    /// from the ready queue).
    pub shed: u64,
    /// Frames consumed by emitted verdicts.
    pub inferred: u64,
    /// Clips emitted so far (the next verdict's `clip_index`).
    pub clips: u64,
    /// Highest ring depth ever observed (the backpressure test reads
    /// this to pin the never-exceeds-capacity invariant).
    pub peak_ring_depth: usize,
}

impl SessionState {
    /// Creates an empty session with a ring of `ring_capacity` frames.
    pub fn new(id: u64, ring_capacity: usize) -> SessionState {
        SessionState {
            id,
            ring: FrameRing::new(ring_capacity),
            ingested: 0,
            shed: 0,
            inferred: 0,
            clips: 0,
            peak_ring_depth: 0,
        }
    }

    /// Accepts one frame into the ring, shedding the oldest buffered
    /// frame when full. Returns the number of frames shed (0 or 1).
    pub fn accept(&mut self, frame: PendingFrame) -> u64 {
        self.ingested += 1;
        let shed = u64::from(self.ring.push(frame).is_some());
        self.shed += shed;
        self.peak_ring_depth = self.peak_ring_depth.max(self.ring.len());
        shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(seq: u64) -> PendingFrame {
        PendingFrame { seq, ingest_ms: seq as f64, frame: IfFrame::zeros(1, 1, 2) }
    }

    #[test]
    fn accept_tracks_ingest_shed_and_peak() {
        let mut s = SessionState::new(7, 2);
        assert_eq!(s.accept(frame(0)), 0);
        assert_eq!(s.accept(frame(1)), 0);
        assert_eq!(s.accept(frame(2)), 1);
        assert_eq!((s.ingested, s.shed, s.peak_ring_depth), (3, 1, 2));
        // The survivors are the freshest contiguous window.
        let kept = s.ring.take_front(2).expect("two frames buffered");
        assert_eq!(kept.iter().map(|f| f.seq).collect::<Vec<_>>(), vec![1, 2]);
    }
}
