//! Streaming inference service for mmWave HAR: per-session ingress
//! rings, clip assembly, cross-session micro-batching, and seeded load
//! generation.
//!
//! The paper's threat model assumes mmWave human-activity recognition
//! deployed as a *live service*: a long-lived process ingesting radar
//! frame streams from many sensors and emitting activity labels (plus
//! backdoor-defense verdicts) in real time. This crate is that service
//! layer:
//!
//! - [`FrameRing`]: fixed-capacity per-session FIFO with a shed-oldest
//!   overflow policy — ingest never blocks and queues never grow.
//! - [`Service`]: caller-pumped control loop. `ingest` appends a frame;
//!   `pump` windows rings into `clip_len`-frame clips, coalesces ready
//!   clips across sessions into micro-batches, and runs
//!   DSP → CNN-LSTM → trigger detector on `exec`'s deterministic pool.
//! - [`Accounting`]: the frame-conservation ledger. At any instant
//!   `ingested == inferred + shed + in_flight`; nothing is dropped
//!   silently.
//! - [`loadgen`]: seeded multi-session stream replay with jitter/burst
//!   arrival patterns, reporting sustained throughput and p50/p95/p99
//!   end-to-end latency as a checksummed `store` artifact.
//!
//! Every stage emits `serve.*` telemetry (spans, `serve.queue_depth`,
//! `serve.shed_total`, `serve.latency_ms`), so the service is observable
//! from its first deploy; see `docs/serving.md`.
//!
//! # Environment
//!
//! | Variable | Effect |
//! |---|---|
//! | `MMWAVE_SERVE_CLIP_LEN` | Frames per clip (default 32; must match the model) |
//! | `MMWAVE_SERVE_RING_CAP` | Per-session ring capacity in frames (default 48) |
//! | `MMWAVE_SERVE_READY_CAP` | Ready-queue capacity in clips (default 256) |
//! | `MMWAVE_SERVE_BATCH_MAX` | Max clips per inference micro-batch (default 16) |
//!
//! Invalid values fall back to defaults, warn, and bump
//! `serve.config_invalid` — a fleet with a typoed environment shows up
//! in metrics, not just scrollback.

pub mod batcher;
pub mod loadgen;
pub mod ring;
pub mod service;
pub mod session;

pub use loadgen::{is_poisoned, poisoned_sessions, run as run_loadgen, LoadgenConfig, LoadgenReport};
pub use ring::FrameRing;
pub use service::{Accounting, ReadyClip, Service, Verdict};
pub use session::{PendingFrame, SessionState};

use std::fmt;

/// Service-layer configuration. Build with [`ServeConfig::default`] or
/// [`ServeConfig::from_env`]; [`Service::new`] validates it against the
/// model's prototype config.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ServeConfig {
    /// Frames per inference clip (must equal the model's `n_frames`).
    pub clip_len: usize,
    /// Per-session ingress ring capacity, in frames. Must be at least
    /// `clip_len` or a clip could never assemble.
    pub ring_capacity: usize,
    /// Ready-queue capacity, in clips, across all sessions.
    pub ready_capacity: usize,
    /// Maximum clips coalesced into one inference micro-batch.
    pub max_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig { clip_len: 32, ring_capacity: 48, ready_capacity: 256, max_batch: 16 }
    }
}

impl ServeConfig {
    /// Reads `MMWAVE_SERVE_*` overrides on top of the defaults. Invalid
    /// or zero values keep the default, warn, and bump
    /// `serve.config_invalid`.
    pub fn from_env() -> ServeConfig {
        let d = ServeConfig::default();
        ServeConfig {
            clip_len: env_usize("MMWAVE_SERVE_CLIP_LEN", d.clip_len),
            ring_capacity: env_usize("MMWAVE_SERVE_RING_CAP", d.ring_capacity),
            ready_capacity: env_usize("MMWAVE_SERVE_READY_CAP", d.ready_capacity),
            max_batch: env_usize("MMWAVE_SERVE_BATCH_MAX", d.max_batch),
        }
    }

    /// Rejects configurations that could never serve a clip.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.clip_len == 0 {
            return Err(ServeError::Config("clip_len must be positive".into()));
        }
        if self.ring_capacity < self.clip_len {
            return Err(ServeError::Config(format!(
                "ring_capacity {} is smaller than clip_len {}; no clip could ever assemble",
                self.ring_capacity, self.clip_len
            )));
        }
        if self.ready_capacity == 0 {
            return Err(ServeError::Config("ready_capacity must be positive".into()));
        }
        if self.max_batch == 0 {
            return Err(ServeError::Config("max_batch must be positive".into()));
        }
        Ok(())
    }
}

/// Parses a positive-integer env override, falling back to `default`
/// (with a warning and a `serve.config_invalid` bump) on junk or zero.
fn env_usize(var: &str, default: usize) -> usize {
    match std::env::var(var) {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(v) if v > 0 => v,
            _ => {
                mmwave_telemetry::counter("serve.config_invalid", 1);
                mmwave_telemetry::warn!("ignoring invalid {var}={raw:?}; using {default}");
                default
            }
        },
        Err(_) => default,
    }
}

/// Typed service-layer failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A configuration value is impossible (zero capacity, clip/model
    /// shape mismatch, bad loadgen knob).
    Config(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(detail) => write!(f, "invalid serve config: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ServeError> for std::io::Error {
    fn from(e: ServeError) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(ServeConfig::default().validate().is_ok());
    }

    #[test]
    fn undersized_ring_is_rejected() {
        let cfg = ServeConfig { ring_capacity: 8, clip_len: 32, ..ServeConfig::default() };
        let err = cfg.validate().expect_err("ring smaller than clip must fail");
        assert!(err.to_string().contains("ring_capacity"));
    }

    #[test]
    fn zero_knobs_are_rejected() {
        for cfg in [
            ServeConfig { clip_len: 0, ..ServeConfig::default() },
            ServeConfig { ready_capacity: 0, ..ServeConfig::default() },
            ServeConfig { max_batch: 0, ..ServeConfig::default() },
        ] {
            assert!(cfg.validate().is_err());
        }
    }

    #[test]
    fn env_usize_counts_invalid_values() {
        let registry = mmwave_telemetry::global();
        let before = registry.counter_value("serve.config_invalid");
        // `env_usize` parses the raw string; exercise the parser via a
        // variable name that is unset (keeps default, no bump) and the
        // internal fallback path with a poisoned value.
        std::env::set_var("MMWAVE_SERVE_TEST_KNOB", "not-a-number");
        assert_eq!(env_usize("MMWAVE_SERVE_TEST_KNOB", 42), 42);
        std::env::set_var("MMWAVE_SERVE_TEST_KNOB", "0");
        assert_eq!(env_usize("MMWAVE_SERVE_TEST_KNOB", 42), 42);
        std::env::set_var("MMWAVE_SERVE_TEST_KNOB", "17");
        assert_eq!(env_usize("MMWAVE_SERVE_TEST_KNOB", 42), 17);
        std::env::remove_var("MMWAVE_SERVE_TEST_KNOB");
        assert_eq!(env_usize("MMWAVE_SERVE_TEST_KNOB", 42), 42);
        assert!(
            registry.counter_value("serve.config_invalid") >= before + 2,
            "invalid serve knobs must be counted"
        );
    }

    #[test]
    fn env_usize_survives_every_edge_case_without_panicking() {
        let registry = mmwave_telemetry::global();
        let before = registry.counter_value("serve.config_invalid");
        // Empty, whitespace-only, overflow, junk suffix, negative: all
        // must fall back to the default and be counted, never panic.
        let poison = ["", "   ", "99999999999999999999999", "12abc", "-3", "1.5"];
        for raw in poison {
            std::env::set_var("MMWAVE_SERVE_EDGE_KNOB", raw);
            assert_eq!(env_usize("MMWAVE_SERVE_EDGE_KNOB", 7), 7, "raw: {raw:?}");
        }
        // Surrounding whitespace around a valid number is tolerated.
        std::env::set_var("MMWAVE_SERVE_EDGE_KNOB", "  23  ");
        assert_eq!(env_usize("MMWAVE_SERVE_EDGE_KNOB", 7), 23);
        std::env::remove_var("MMWAVE_SERVE_EDGE_KNOB");
        assert!(
            registry.counter_value("serve.config_invalid") >= before + poison.len() as u64,
            "every poisoned value must bump serve.config_invalid"
        );
    }
}
