//! Streaming inference service for mmWave HAR: per-session ingress
//! rings, clip assembly, cross-session micro-batching, and seeded load
//! generation.
//!
//! The paper's threat model assumes mmWave human-activity recognition
//! deployed as a *live service*: a long-lived process ingesting radar
//! frame streams from many sensors and emitting activity labels (plus
//! backdoor-defense verdicts) in real time. This crate is that service
//! layer:
//!
//! - [`FrameRing`]: fixed-capacity per-session FIFO with a shed-oldest
//!   overflow policy — ingest never blocks and queues never grow.
//! - [`Service`]: caller-pumped control loop. `ingest` appends a frame;
//!   `pump` windows rings into `clip_len`-frame clips, coalesces ready
//!   clips across sessions into micro-batches, and runs
//!   DSP → CNN-LSTM → trigger detector on `exec`'s deterministic pool.
//! - [`Accounting`]: the frame-conservation ledger. At any instant
//!   `ingested == inferred + shed + in_flight`; nothing is dropped
//!   silently.
//! - [`loadgen`]: seeded multi-session stream replay with jitter/burst
//!   arrival patterns, reporting sustained throughput and p50/p95/p99
//!   end-to-end latency as a checksummed `store` artifact.
//! - [`chaos`]: a seeded transport-fault layer ([`StreamChaos`]) that
//!   corrupts, drops, duplicates, reorders, and stalls streams *before*
//!   they reach the service, plus the `serve-chaos` matrix proving the
//!   ledger balances and verdicts stay deterministic under every mix.
//!
//! Every stage emits `serve.*` telemetry (spans, `serve.queue_depth`,
//! `serve.shed_total`, `serve.latency_ms`), so the service is observable
//! from its first deploy; see `docs/serving.md`.
//!
//! # Environment
//!
//! | Variable | Effect |
//! |---|---|
//! | `MMWAVE_SERVE_CLIP_LEN` | Frames per clip (default 32; must match the model) |
//! | `MMWAVE_SERVE_RING_CAP` | Per-session ring capacity in frames (default 48) |
//! | `MMWAVE_SERVE_READY_CAP` | Ready-queue capacity in clips (default 256) |
//! | `MMWAVE_SERVE_BATCH_MAX` | Max clips per inference micro-batch (default 16) |
//! | `MMWAVE_SERVE_SESSION_TTL` | Pumps without a frame before a session is evicted (default 512; 0 disables) |
//! | `MMWAVE_SERVE_MAX_GAP` | Largest sequence gap repaired in place (default 2; 0 disables repair) |
//! | `MMWAVE_SERVE_BREAKER_THRESHOLD` | Consecutive failed clips that open the circuit breaker (default 8; 0 disables) |
//! | `MMWAVE_SERVE_BREAKER_COOLDOWN` | Pumps the breaker stays open before probing half-open (default 4) |
//!
//! Invalid values fall back to defaults, warn, and bump
//! `serve.config_invalid` — a fleet with a typoed environment shows up
//! in metrics, not just scrollback.

pub mod batcher;
pub mod breaker;
pub mod chaos;
pub mod loadgen;
pub mod ring;
pub mod service;
pub mod session;

pub use breaker::{Breaker, BreakerState};
pub use chaos::{ChaosCellReport, StreamChaos};
pub use loadgen::{is_poisoned, poisoned_sessions, run as run_loadgen, LoadgenConfig, LoadgenReport};
pub use ring::FrameRing;
pub use service::{Accounting, ReadyClip, Service, Verdict, VerdictStatus};
pub use session::{PendingFrame, SessionState};

use std::fmt;

/// Service-layer configuration. Build with [`ServeConfig::default`] or
/// [`ServeConfig::from_env`]; [`Service::new`] validates it against the
/// model's prototype config.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ServeConfig {
    /// Frames per inference clip (must equal the model's `n_frames`).
    pub clip_len: usize,
    /// Per-session ingress ring capacity, in frames. Must be at least
    /// `clip_len` or a clip could never assemble.
    pub ring_capacity: usize,
    /// Ready-queue capacity, in clips, across all sessions.
    pub ready_capacity: usize,
    /// Maximum clips coalesced into one inference micro-batch.
    pub max_batch: usize,
    /// Pumps a session may go without ingesting a frame before the
    /// staleness sweep evicts it (its partial ring is flushed as shed
    /// and the id may cleanly reconnect later). 0 disables eviction.
    #[serde(default = "default_session_ttl")]
    pub session_ttl: usize,
    /// Largest per-session sequence gap repaired in place: up to this
    /// many missing frames are filled with placeholder frames and
    /// interpolated at the heatmap stage
    /// (`mmwave_dsp::repair_dropped_frames`). Larger gaps flush the
    /// session's buffered run instead. 0 disables repair (every gap
    /// flushes).
    #[serde(default = "default_max_gap_repair")]
    pub max_gap_repair: usize,
    /// Consecutive failed clips (panic or non-finite output) that trip
    /// the inference circuit breaker open. 0 disables the breaker.
    #[serde(default = "default_breaker_threshold")]
    pub breaker_threshold: usize,
    /// Pumps the breaker stays open — shedding ready clips unseen —
    /// before letting one probe batch through half-open.
    #[serde(default = "default_breaker_cooldown")]
    pub breaker_cooldown: usize,
}

fn default_session_ttl() -> usize {
    512
}

fn default_max_gap_repair() -> usize {
    2
}

fn default_breaker_threshold() -> usize {
    8
}

fn default_breaker_cooldown() -> usize {
    4
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            clip_len: 32,
            ring_capacity: 48,
            ready_capacity: 256,
            max_batch: 16,
            session_ttl: default_session_ttl(),
            max_gap_repair: default_max_gap_repair(),
            breaker_threshold: default_breaker_threshold(),
            breaker_cooldown: default_breaker_cooldown(),
        }
    }
}

impl ServeConfig {
    /// Reads `MMWAVE_SERVE_*` overrides on top of the defaults. Invalid
    /// or zero values keep the default, warn, and bump
    /// `serve.config_invalid` (knobs where zero legitimately means
    /// "disabled" — TTL, gap repair, breaker threshold — accept it).
    pub fn from_env() -> ServeConfig {
        let d = ServeConfig::default();
        ServeConfig {
            clip_len: env_usize("MMWAVE_SERVE_CLIP_LEN", d.clip_len),
            ring_capacity: env_usize("MMWAVE_SERVE_RING_CAP", d.ring_capacity),
            ready_capacity: env_usize("MMWAVE_SERVE_READY_CAP", d.ready_capacity),
            max_batch: env_usize("MMWAVE_SERVE_BATCH_MAX", d.max_batch),
            session_ttl: env_usize_zero_ok("MMWAVE_SERVE_SESSION_TTL", d.session_ttl),
            max_gap_repair: env_usize_zero_ok("MMWAVE_SERVE_MAX_GAP", d.max_gap_repair),
            breaker_threshold: env_usize_zero_ok(
                "MMWAVE_SERVE_BREAKER_THRESHOLD",
                d.breaker_threshold,
            ),
            breaker_cooldown: env_usize("MMWAVE_SERVE_BREAKER_COOLDOWN", d.breaker_cooldown),
        }
    }

    /// Rejects configurations that could never serve a clip.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.clip_len == 0 {
            return Err(ServeError::Config("clip_len must be positive".into()));
        }
        if self.ring_capacity < self.clip_len {
            return Err(ServeError::Config(format!(
                "ring_capacity {} is smaller than clip_len {}; no clip could ever assemble",
                self.ring_capacity, self.clip_len
            )));
        }
        if self.ready_capacity == 0 {
            return Err(ServeError::Config("ready_capacity must be positive".into()));
        }
        if self.max_batch == 0 {
            return Err(ServeError::Config("max_batch must be positive".into()));
        }
        if self.max_gap_repair >= self.clip_len {
            return Err(ServeError::Config(format!(
                "max_gap_repair {} must be smaller than clip_len {}; a clip of nothing but \
                 placeholder frames could never be repaired",
                self.max_gap_repair, self.clip_len
            )));
        }
        if self.breaker_threshold > 0 && self.breaker_cooldown == 0 {
            return Err(ServeError::Config(
                "breaker_cooldown must be positive when the breaker is enabled".into(),
            ));
        }
        Ok(())
    }
}

/// Parses a positive-integer env override, falling back to `default`
/// (with a warning and a `serve.config_invalid` bump) on junk or zero.
fn env_usize(var: &str, default: usize) -> usize {
    match std::env::var(var) {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(v) if v > 0 => v,
            _ => {
                mmwave_telemetry::counter("serve.config_invalid", 1);
                mmwave_telemetry::warn!("ignoring invalid {var}={raw:?}; using {default}");
                default
            }
        },
        Err(_) => default,
    }
}

/// Like [`env_usize`], but zero is a legitimate value ("disabled"):
/// only junk (empty, non-numeric, overflow, negative) falls back to the
/// default with a `serve.config_invalid` bump.
fn env_usize_zero_ok(var: &str, default: usize) -> usize {
    match std::env::var(var) {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(v) => v,
            Err(_) => {
                mmwave_telemetry::counter("serve.config_invalid", 1);
                mmwave_telemetry::warn!("ignoring invalid {var}={raw:?}; using {default}");
                default
            }
        },
        Err(_) => default,
    }
}

/// Typed service-layer failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A configuration value is impossible (zero capacity, clip/model
    /// shape mismatch, bad loadgen knob).
    Config(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(detail) => write!(f, "invalid serve config: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ServeError> for std::io::Error {
    fn from(e: ServeError) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(ServeConfig::default().validate().is_ok());
    }

    #[test]
    fn undersized_ring_is_rejected() {
        let cfg = ServeConfig { ring_capacity: 8, clip_len: 32, ..ServeConfig::default() };
        let err = cfg.validate().expect_err("ring smaller than clip must fail");
        assert!(err.to_string().contains("ring_capacity"));
    }

    #[test]
    fn zero_knobs_are_rejected() {
        for cfg in [
            ServeConfig { clip_len: 0, ..ServeConfig::default() },
            ServeConfig { ready_capacity: 0, ..ServeConfig::default() },
            ServeConfig { max_batch: 0, ..ServeConfig::default() },
        ] {
            assert!(cfg.validate().is_err());
        }
    }

    #[test]
    fn env_usize_counts_invalid_values() {
        let registry = mmwave_telemetry::global();
        let before = registry.counter_value("serve.config_invalid");
        // `env_usize` parses the raw string; exercise the parser via a
        // variable name that is unset (keeps default, no bump) and the
        // internal fallback path with a poisoned value.
        std::env::set_var("MMWAVE_SERVE_TEST_KNOB", "not-a-number");
        assert_eq!(env_usize("MMWAVE_SERVE_TEST_KNOB", 42), 42);
        std::env::set_var("MMWAVE_SERVE_TEST_KNOB", "0");
        assert_eq!(env_usize("MMWAVE_SERVE_TEST_KNOB", 42), 42);
        std::env::set_var("MMWAVE_SERVE_TEST_KNOB", "17");
        assert_eq!(env_usize("MMWAVE_SERVE_TEST_KNOB", 42), 17);
        std::env::remove_var("MMWAVE_SERVE_TEST_KNOB");
        assert_eq!(env_usize("MMWAVE_SERVE_TEST_KNOB", 42), 42);
        assert!(
            registry.counter_value("serve.config_invalid") >= before + 2,
            "invalid serve knobs must be counted"
        );
    }

    #[test]
    fn env_usize_survives_every_edge_case_without_panicking() {
        let registry = mmwave_telemetry::global();
        let before = registry.counter_value("serve.config_invalid");
        // Empty, whitespace-only, overflow, junk suffix, negative: all
        // must fall back to the default and be counted, never panic.
        let poison = ["", "   ", "99999999999999999999999", "12abc", "-3", "1.5"];
        for raw in poison {
            std::env::set_var("MMWAVE_SERVE_EDGE_KNOB", raw);
            assert_eq!(env_usize("MMWAVE_SERVE_EDGE_KNOB", 7), 7, "raw: {raw:?}");
        }
        // Surrounding whitespace around a valid number is tolerated.
        std::env::set_var("MMWAVE_SERVE_EDGE_KNOB", "  23  ");
        assert_eq!(env_usize("MMWAVE_SERVE_EDGE_KNOB", 7), 23);
        std::env::remove_var("MMWAVE_SERVE_EDGE_KNOB");
        assert!(
            registry.counter_value("serve.config_invalid") >= before + poison.len() as u64,
            "every poisoned value must bump serve.config_invalid"
        );
    }

    #[test]
    fn env_usize_zero_ok_accepts_zero_and_counts_junk() {
        let registry = mmwave_telemetry::global();
        let before = registry.counter_value("serve.config_invalid");
        // Zero is "disabled", not junk, for the lifecycle/breaker knobs.
        std::env::set_var("MMWAVE_SERVE_ZERO_KNOB", "0");
        assert_eq!(env_usize_zero_ok("MMWAVE_SERVE_ZERO_KNOB", 9), 0);
        std::env::set_var("MMWAVE_SERVE_ZERO_KNOB", " 12 ");
        assert_eq!(env_usize_zero_ok("MMWAVE_SERVE_ZERO_KNOB", 9), 12);
        assert_eq!(
            registry.counter_value("serve.config_invalid"),
            before,
            "valid values (including zero) must not be counted as invalid"
        );
        // Junk still falls back to the default and is counted, never panics.
        let poison = ["", "   ", "99999999999999999999999", "off", "-1", "0.5"];
        for raw in poison {
            std::env::set_var("MMWAVE_SERVE_ZERO_KNOB", raw);
            assert_eq!(env_usize_zero_ok("MMWAVE_SERVE_ZERO_KNOB", 9), 9, "raw: {raw:?}");
        }
        std::env::remove_var("MMWAVE_SERVE_ZERO_KNOB");
        assert_eq!(env_usize_zero_ok("MMWAVE_SERVE_ZERO_KNOB", 9), 9);
        assert!(
            registry.counter_value("serve.config_invalid") >= before + poison.len() as u64,
            "every poisoned lifecycle knob must bump serve.config_invalid"
        );
    }

    #[test]
    fn lifecycle_and_breaker_knobs_validate() {
        // Zero TTL / gap / threshold mean "disabled" and are valid.
        let cfg = ServeConfig {
            session_ttl: 0,
            max_gap_repair: 0,
            breaker_threshold: 0,
            ..ServeConfig::default()
        };
        assert!(cfg.validate().is_ok());
        // A gap window as large as the clip could yield an all-placeholder
        // clip with nothing to interpolate from.
        let cfg = ServeConfig { max_gap_repair: 32, clip_len: 32, ..ServeConfig::default() };
        assert!(cfg.validate().unwrap_err().to_string().contains("max_gap_repair"));
        // An enabled breaker with no cooldown could never half-open.
        let cfg =
            ServeConfig { breaker_threshold: 3, breaker_cooldown: 0, ..ServeConfig::default() };
        assert!(cfg.validate().unwrap_err().to_string().contains("breaker_cooldown"));
    }

    #[test]
    fn legacy_serialized_configs_gain_lifecycle_defaults() {
        // Configs persisted before the chaos-hardening PR lack the
        // lifecycle/breaker fields; they must deserialize with defaults.
        let legacy = r#"{
            "clip_len": 32, "ring_capacity": 48,
            "ready_capacity": 256, "max_batch": 16
        }"#;
        let cfg: ServeConfig = serde_json::from_str(legacy).expect("legacy config parses");
        assert_eq!(cfg.session_ttl, default_session_ttl());
        assert_eq!(cfg.max_gap_repair, default_max_gap_repair());
        assert_eq!(cfg.breaker_threshold, default_breaker_threshold());
        assert_eq!(cfg.breaker_cooldown, default_breaker_cooldown());
        assert!(cfg.validate().is_ok());
    }
}
