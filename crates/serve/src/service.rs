//! The streaming inference service: ingest → assemble → micro-batch →
//! verdict, with explicit backpressure and exact frame accounting.
//!
//! The service is deliberately caller-pumped and single-threaded at the
//! control layer: [`Service::ingest`] only appends to a per-session ring
//! (cheap, never blocks), and [`Service::pump`] does the heavy lifting —
//! windowing rings into clips, coalescing ready clips across sessions
//! into micro-batches, and fanning each batch across `exec`'s
//! deterministic pool. Because batches are formed in session-id order
//! from a FIFO ready queue and `par_map` preserves input order, the
//! per-session verdict stream is byte-identical for any worker count.
//!
//! Chaos hardening happens at three choke points, all count-based so no
//! decision depends on the wall clock or worker count:
//!
//! - **Ingress** ([`Service::ingest`]): frames are validated (shape,
//!   NaN/Inf) and sequence-checked before touching a ring. Bad frames
//!   are quarantined into the ledger's `rejected` bucket; small gaps are
//!   bridged with placeholder frames repaired at the heatmap stage;
//!   unrepairable gaps and sensor restarts flush the buffered run as
//!   shed so clips only ever splice contiguous frames.
//! - **Lifecycle** ([`Service::pump`]'s staleness sweep): sessions idle
//!   for `session_ttl` pumps are evicted — their partial rings become
//!   shed, their lifetime counters fold into a retired aggregate so the
//!   ledger still closes, and the same id may later reconnect with a
//!   fresh ring.
//! - **Inference** ([`crate::Breaker`]): per-clip failures become
//!   poisoned [`VerdictStatus::Failed`] verdicts without sinking their
//!   batch, and a sustained failure streak opens a circuit breaker that
//!   sheds ready clips instead of grinding the pump.

use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

use mmwave_dsp::IfFrame;
use mmwave_har::{CnnLstm, PrototypeConfig};
use mmwave_radar::{Capturer, Environment};
use mmwave_telemetry::{counter, gauge, observe, span};
use serde::{Deserialize, Serialize};

use crate::batcher;
use crate::breaker::{Breaker, BreakerState};
use crate::ring::FrameRing;
use crate::session::{PendingFrame, RejectReason, SeqDisposition, SessionState};
use crate::{ServeConfig, ServeError};
use mmwave_defense::TriggerDetector;

/// How many recently evicted session ids are remembered for reconnect
/// detection (`serve.sessions_reopened`). Bounded so arbitrary churn
/// cannot grow memory; a reconnect after this many other evictions is
/// indistinguishable from a brand-new session, which is harmless.
const EVICTED_LOG_CAPACITY: usize = 256;

/// A fixed-length window of raw frames, assembled from one session's
/// ring and waiting in the ready queue for the next micro-batch.
#[derive(Debug, Clone)]
pub struct ReadyClip {
    /// Owning session.
    pub session: u64,
    /// Monotone per-session clip number (assigned at assembly).
    pub clip_index: u64,
    /// Sequence number of the oldest frame in the clip.
    pub first_seq: u64,
    /// Sequence number of the newest frame in the clip.
    pub last_seq: u64,
    /// Ingest timestamp (ms since service epoch) of the newest frame;
    /// end-to-end latency is measured from here.
    pub last_ingest_ms: f64,
    /// Exactly `clip_len` raw IF frames, oldest first. Gap-repair
    /// placeholders are all-zero cubes flagged in `dropped`.
    pub frames: Vec<IfFrame>,
    /// `dropped[i]` is true when `frames[i]` is a placeholder for a
    /// frame lost in transit; the batcher interpolates those slots at
    /// the heatmap stage (`mmwave_dsp::repair_dropped_frames`).
    pub dropped: Vec<bool>,
    /// Real (non-placeholder) frames in the clip — the clip's share of
    /// the conservation ledger. Always ≥ 1: placeholder runs are capped
    /// below `clip_len` by `ServeConfig::validate`.
    pub real_frames: usize,
}

/// Whether a verdict carries a real classification or marks a clip the
/// pipeline could not process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum VerdictStatus {
    /// The clip ran the full DSP → model → detector chain.
    #[default]
    Ok,
    /// The clip panicked mid-pipeline or produced non-finite outputs;
    /// its label/confidence/score fields are poisoned placeholders.
    Failed {
        /// What went wrong (panic message or a non-finite-output note).
        reason: String,
    },
}

impl VerdictStatus {
    /// True for [`VerdictStatus::Failed`].
    pub fn is_failed(&self) -> bool {
        matches!(self, VerdictStatus::Failed { .. })
    }
}

/// One classification result for one clip of one session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// Owning session.
    pub session: u64,
    /// Per-session clip number.
    pub clip_index: u64,
    /// Oldest frame sequence number in the clip.
    pub first_seq: u64,
    /// Newest frame sequence number in the clip.
    pub last_seq: u64,
    /// Predicted class index (0 when `status` is `Failed`).
    pub label: usize,
    /// Human-readable activity label for `label` (`"failed"` when
    /// `status` is `Failed`).
    pub activity: String,
    /// Softmax probability of the predicted class (0.0 on failure).
    pub confidence: f32,
    /// Trigger-detector anomaly score from the `defense` crate (0.0 on
    /// failure).
    pub defense_score: f64,
    /// Newest-frame-ingest → verdict-emit latency in milliseconds.
    /// Wall-clock, so excluded from determinism comparisons.
    pub latency_ms: f64,
    /// Ok, or Failed with the failure reason. Serialized verdicts from
    /// before the chaos-hardening PR deserialize as Ok.
    #[serde(default)]
    pub status: VerdictStatus,
}

/// A frame-conservation snapshot across every session the service has
/// ever seen — including evicted ones, whose counters fold into the
/// retired aggregate. [`Accounting::balanced`] is the core backpressure
/// invariant: every ingested frame is inferred, shed, rejected, or
/// still in flight — nothing is silently lost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Accounting {
    /// Frames ever presented to `ingest` (accepted or rejected;
    /// gap-repair placeholders are *not* ingested frames).
    pub ingested: u64,
    /// Real frames consumed by emitted verdicts (failed verdicts
    /// included — their frames were consumed by the attempt).
    pub inferred_frames: u64,
    /// Real frames shed: ring overflow, ready-queue overflow, abandoned
    /// runs, evicted rings, and breaker-shed clips.
    pub shed_frames: u64,
    /// Frames quarantined at ingress (non-finite, misshapen, duplicate).
    pub rejected: u64,
    /// Real frames buffered in rings plus real frames inside ready clips.
    pub in_flight_frames: u64,
    /// Verdicts emitted.
    pub verdicts: u64,
    /// Verdicts emitted with `Failed` status.
    #[serde(default)]
    pub verdicts_failed: u64,
    /// Session opens (first frame of a new id, plus reconnects).
    pub sessions: u64,
    /// Sessions evicted by the staleness sweep.
    #[serde(default)]
    pub sessions_evicted: u64,
    /// Evicted ids that later reconnected with a fresh ring.
    #[serde(default)]
    pub sessions_reopened: u64,
    /// Sequence gaps detected (fillable or run-breaking).
    #[serde(default)]
    pub seq_gaps: u64,
    /// Duplicate / late frames rejected by sequence tracking.
    #[serde(default)]
    pub seq_dups: u64,
    /// Placeholder frames inserted to bridge fillable gaps.
    #[serde(default)]
    pub filled_frames: u64,
    /// Highest single-ring depth ever observed.
    pub peak_ring_depth: usize,
}

impl Accounting {
    /// True when `ingested == inferred + shed + rejected + in_flight`.
    pub fn balanced(&self) -> bool {
        self.ingested
            == self.inferred_frames + self.shed_frames + self.rejected + self.in_flight_frames
    }
}

/// Lifetime counters of sessions the staleness sweep has evicted. Kept
/// as a plain aggregate (not per-id) so arbitrary churn cannot grow
/// memory while the global ledger still closes.
#[derive(Debug, Default, Clone, Copy)]
struct RetiredTotals {
    ingested: u64,
    inferred: u64,
    shed: u64,
    rejected: u64,
    seq_gaps: u64,
    seq_dups: u64,
    filled: u64,
    peak_ring_depth: usize,
}

/// The streaming inference service. See the module docs for the
/// pump-driven execution model.
pub struct Service {
    config: ServeConfig,
    capturer: Capturer,
    environment: Environment,
    model: CnnLstm,
    detector: TriggerDetector,
    sessions: BTreeMap<u64, SessionState>,
    ready: VecDeque<ReadyClip>,
    /// Frames (real + placeholder) currently buffered across all rings —
    /// incremental mirror of `sum(ring.len())` so the queue-depth gauge
    /// is O(1).
    ring_frames: u64,
    /// Real frames inside ready clips (mirror of
    /// `sum(ready[i].real_frames)` for the ledger's in-flight share).
    ready_real: u64,
    /// Count of `pump` calls — the service's logical clock for the
    /// staleness sweep and the circuit breaker.
    pumps: u64,
    breaker: Breaker,
    /// Folded counters of evicted sessions (see [`RetiredTotals`]).
    retired: RetiredTotals,
    /// Recently evicted ids, for reconnect detection (bounded FIFO).
    evicted_log: FrameRing<u64>,
    session_opens: u64,
    sessions_evicted: u64,
    sessions_reopened: u64,
    verdict_total: u64,
    verdicts_failed: u64,
    epoch: Instant,
}

impl Service {
    /// Builds a service around a freshly seeded model + detector pair.
    ///
    /// `config.clip_len` must match `proto.n_frames` — the CNN-LSTM was
    /// shaped for exactly that many frames per clip — and the capture
    /// pipeline is taken from `proto` so loadgen-synthesized frames have
    /// matching dimensions.
    pub fn new(
        config: ServeConfig,
        proto: &PrototypeConfig,
        environment: Environment,
        seed: u64,
    ) -> Result<Service, ServeError> {
        config.validate()?;
        if config.clip_len != proto.n_frames {
            return Err(ServeError::Config(format!(
                "clip_len {} does not match the model's n_frames {}",
                config.clip_len, proto.n_frames
            )));
        }
        let _span = span("serve.init");
        let capturer = Capturer::new(proto.capture.0.clone());
        let model = CnnLstm::new(proto, seed);
        let detector = TriggerDetector::new(proto, seed ^ 0x5e7e_c7ed);
        let breaker = Breaker::new(config.breaker_threshold, config.breaker_cooldown);
        breaker.publish();
        Ok(Service {
            config,
            capturer,
            environment,
            model,
            detector,
            sessions: BTreeMap::new(),
            ready: VecDeque::new(),
            ring_frames: 0,
            ready_real: 0,
            pumps: 0,
            breaker,
            retired: RetiredTotals::default(),
            evicted_log: FrameRing::new(EVICTED_LOG_CAPACITY),
            session_opens: 0,
            sessions_evicted: 0,
            sessions_reopened: 0,
            verdict_total: 0,
            verdicts_failed: 0,
            epoch: Instant::now(),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Milliseconds elapsed since the service was built.
    pub fn now_ms(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e3
    }

    /// Sessions currently resident (the churn test pins that this stays
    /// bounded by the active set, not by the lifetime open count).
    pub fn active_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Current circuit-breaker state.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// The expected IF-cube dimensions `(n_vrx, n_chirps, n_adc)` for
    /// this service's capture pipeline.
    fn expected_dims(&self) -> (usize, usize, usize) {
        let radar = self.capturer.config();
        (radar.n_virtual(), radar.n_chirps, radar.n_adc)
    }

    /// Accepts one raw frame for `session`. Never blocks and never
    /// grows a queue: bad frames are quarantined as `rejected`, a full
    /// ring sheds its oldest frame, and every path is counted.
    pub fn ingest(&mut self, session: u64, seq: u64, frame: IfFrame) {
        let now = self.now_ms();
        let pumps = self.pumps;
        let (n_vrx, n_chirps, n_adc) = self.expected_dims();
        if !self.sessions.contains_key(&session) {
            let reopened = self.evicted_log.iter().any(|&id| id == session);
            if reopened {
                self.sessions_reopened += 1;
                counter("serve.sessions_reopened", 1);
            } else {
                counter("serve.sessions_opened", 1);
            }
            self.session_opens += 1;
            self.sessions.insert(session, SessionState::new(session, self.config.ring_capacity));
        }
        let max_gap = self.config.max_gap_repair;
        let state = self.sessions.get_mut(&session).expect("session just inserted");
        state.last_ingest_pump = pumps;
        counter("serve.ingested", 1);

        // Quarantine before the frame can touch DSP or a ring.
        let shape_ok = frame.n_vrx() == n_vrx
            && frame.n_chirps() == n_chirps
            && frame.n_adc() == n_adc;
        if !shape_ok {
            state.reject(RejectReason::BadShape);
            counter("serve.rejected", 1);
            counter("serve.rejected_shape", 1);
            return;
        }
        if !frame.as_slice().iter().all(|c| c.re.is_finite() && c.im.is_finite()) {
            state.reject(RejectReason::NonFinite);
            counter("serve.rejected", 1);
            counter("serve.rejected_nonfinite", 1);
            return;
        }

        // Sequence tracking: only contiguous runs may reach a clip.
        // `shed` counts real frames displaced; the ring-frames mirror is
        // reconciled by length delta because overflow may also displace
        // placeholder frames, which are off the ledger.
        let len_before = state.ring.len() as u64;
        let mut shed = 0u64;
        match state.classify_seq(seq, max_gap) {
            SeqDisposition::InOrder => {}
            SeqDisposition::Duplicate => {
                state.reject(RejectReason::Duplicate);
                counter("serve.rejected", 1);
                counter("serve.seq_dups", 1);
                return;
            }
            SeqDisposition::FillableGap { missing } => {
                state.seq_gaps += 1;
                counter("serve.seq_gaps", 1);
                let next = state.expected_seq.expect("a gap implies an expectation");
                counter("serve.filled_frames", missing);
                for fill_seq in next..next + missing {
                    let blank = IfFrame::zeros(n_vrx, n_chirps, n_adc);
                    shed += state.push_filler(fill_seq, now, blank);
                }
            }
            SeqDisposition::RunBreak => {
                state.seq_gaps += 1;
                counter("serve.seq_gaps", 1);
                shed += state.abandon_run();
            }
            SeqDisposition::Restart => {
                counter("serve.seq_restarts", 1);
                shed += state.abandon_run();
            }
        }
        shed += state.accept(PendingFrame { seq, ingest_ms: now, frame, filler: false });
        let len_after = state.ring.len() as u64;
        self.ring_frames = self.ring_frames - len_before + len_after;
        if shed > 0 {
            counter("serve.shed_total", shed);
        }
        gauge("serve.queue_depth", self.queue_depth() as f64);
    }

    /// Frames currently held by the service: buffered in rings plus
    /// inside ready clips. This is what the `serve.queue_depth` gauge
    /// reports.
    pub fn queue_depth(&self) -> u64 {
        self.ring_frames + (self.ready.len() * self.config.clip_len) as u64
    }

    /// Clips assembled and waiting for the next micro-batch.
    pub fn ready_clips(&self) -> usize {
        self.ready.len()
    }

    /// Credits `frames` shed frames to `session`, or to the retired
    /// aggregate when the session has been evicted since the frames
    /// entered flight.
    fn credit_shed(&mut self, session: u64, frames: u64) {
        match self.sessions.get_mut(&session) {
            Some(state) => state.shed += frames,
            None => self.retired.shed += frames,
        }
    }

    /// Evicts every session that has not ingested for `session_ttl`
    /// pumps: its partial ring is flushed into the ledger as shed and
    /// its lifetime counters fold into the retired aggregate, so the
    /// session map stays bounded by the *active* set under any churn.
    fn sweep_stale(&mut self) {
        let ttl = self.config.session_ttl as u64;
        if ttl == 0 {
            return;
        }
        let stale: Vec<u64> = self
            .sessions
            .values()
            .filter(|s| self.pumps.saturating_sub(s.last_ingest_pump) >= ttl)
            .map(|s| s.id)
            .collect();
        for id in stale {
            let mut state = self.sessions.remove(&id).expect("stale id was just listed");
            let drained = state.ring.len() as u64;
            let flushed = state.abandon_run();
            self.ring_frames -= drained;
            if flushed > 0 {
                counter("serve.shed_total", flushed);
            }
            self.retired.ingested += state.ingested;
            self.retired.inferred += state.inferred;
            self.retired.shed += state.shed;
            self.retired.rejected += state.rejected;
            self.retired.seq_gaps += state.seq_gaps;
            self.retired.seq_dups += state.seq_dups;
            self.retired.filled += state.filled;
            self.retired.peak_ring_depth = self.retired.peak_ring_depth.max(state.peak_ring_depth);
            self.evicted_log.push(id);
            self.sessions_evicted += 1;
            counter("serve.sessions_evicted", 1);
        }
    }

    /// Windows every ring holding at least `clip_len` frames into ready
    /// clips, shedding the *oldest* ready clip when the ready queue is
    /// at capacity (freshest work wins under overload, and every shed
    /// frame stays accounted to its session).
    fn assemble(&mut self) {
        let clip_len = self.config.clip_len;
        let ready_capacity = self.config.ready_capacity;
        let mut queue_sheds: Vec<(u64, u64)> = Vec::new();
        for (&id, state) in self.sessions.iter_mut() {
            while let Some(frames) = state.ring.take_front(clip_len) {
                self.ring_frames -= clip_len as u64;
                let dropped: Vec<bool> = frames.iter().map(|f| f.filler).collect();
                let real_frames = dropped.iter().filter(|&&d| !d).count();
                state.ring_real -= real_frames;
                let first = &frames[0];
                let last = &frames[clip_len - 1];
                let clip = ReadyClip {
                    session: id,
                    clip_index: state.clips,
                    first_seq: first.seq,
                    last_seq: last.seq,
                    last_ingest_ms: last.ingest_ms,
                    frames: frames.into_iter().map(|f| f.frame).collect(),
                    dropped,
                    real_frames,
                };
                state.clips += 1;
                self.ready_real += real_frames as u64;
                counter("serve.clips_assembled", 1);
                if self.ready.len() == ready_capacity {
                    if let Some(old) = self.ready.pop_front() {
                        self.ready_real -= old.real_frames as u64;
                        queue_sheds.push((old.session, old.real_frames as u64));
                    }
                }
                self.ready.push_back(clip);
            }
        }
        for (session, frames) in queue_sheds {
            counter("serve.shed_total", frames);
            counter("serve.shed_clips", 1);
            self.credit_shed(session, frames);
        }
    }

    /// Sheds every ready clip unseen (breaker open): cheaper than
    /// batching doomed work, and every frame stays accounted.
    fn shed_ready(&mut self) {
        let clips: Vec<(u64, u64)> =
            self.ready.drain(..).map(|c| (c.session, c.real_frames as u64)).collect();
        for (session, frames) in clips {
            self.ready_real -= frames;
            counter("serve.shed_total", frames);
            counter("serve.shed_clips", 1);
            counter("serve.breaker_shed_clips", 1);
            self.credit_shed(session, frames);
        }
    }

    /// Advances the service one pump: sweeps stale sessions, assembles
    /// ready clips, then drains the ready queue in micro-batches of at
    /// most `max_batch` clips, running each batch's DSP → CNN-LSTM →
    /// detector work on `exec`'s pool. While the circuit breaker is
    /// open, ready clips are shed instead of batched. Returns every
    /// verdict produced, in deterministic (queue) order.
    pub fn pump(&mut self) -> Vec<Verdict> {
        let _span = span("serve.pump");
        self.pumps += 1;
        self.breaker.on_pump(self.pumps);
        self.sweep_stale();
        self.assemble();
        let mut verdicts = Vec::new();
        while !self.ready.is_empty() {
            if !self.breaker.allows_batch() {
                self.shed_ready();
                break;
            }
            let take = self.ready.len().min(self.config.max_batch);
            let batch: Vec<ReadyClip> = self.ready.drain(..take).collect();
            let now = self.now_ms();
            let out = batcher::infer_batch(
                &self.capturer,
                &self.environment,
                &self.model,
                &self.detector,
                &batch,
                now,
            );
            let failures: Vec<bool> = out.iter().map(|v| v.status.is_failed()).collect();
            for (clip, v) in batch.iter().zip(&out) {
                let real = clip.real_frames as u64;
                self.ready_real -= real;
                match self.sessions.get_mut(&v.session) {
                    Some(state) => state.inferred += real,
                    None => self.retired.inferred += real,
                }
                if v.status.is_failed() {
                    self.verdicts_failed += 1;
                    counter("serve.verdicts_failed", 1);
                }
                observe("serve.latency_ms", v.latency_ms);
            }
            self.verdict_total += out.len() as u64;
            counter("serve.verdicts", out.len() as u64);
            self.breaker.record_batch(&failures, self.pumps);
            verdicts.extend(out);
        }
        gauge("serve.queue_depth", self.queue_depth() as f64);
        self.breaker.publish();
        verdicts
    }

    /// Graceful shutdown: pumps until the ready queue is empty and every
    /// assemblable clip has been inferred (or shed, if the breaker is
    /// open). Frames left in rings (fewer than `clip_len` per session)
    /// stay in flight and remain visible in [`Service::accounting`].
    pub fn drain(&mut self) -> Vec<Verdict> {
        let _span = span("serve.drain");
        let out = self.pump();
        counter("serve.drains", 1);
        gauge("serve.queue_depth", self.queue_depth() as f64);
        out
    }

    /// Snapshot of the frame-conservation ledger across all sessions,
    /// live and evicted.
    pub fn accounting(&self) -> Accounting {
        let mut acc = Accounting {
            ingested: self.retired.ingested,
            inferred_frames: self.retired.inferred,
            shed_frames: self.retired.shed,
            rejected: self.retired.rejected,
            in_flight_frames: self.ready_real,
            verdicts: self.verdict_total,
            verdicts_failed: self.verdicts_failed,
            sessions: self.session_opens,
            sessions_evicted: self.sessions_evicted,
            sessions_reopened: self.sessions_reopened,
            seq_gaps: self.retired.seq_gaps,
            seq_dups: self.retired.seq_dups,
            filled_frames: self.retired.filled,
            peak_ring_depth: self.retired.peak_ring_depth,
        };
        for state in self.sessions.values() {
            acc.ingested += state.ingested;
            acc.inferred_frames += state.inferred;
            acc.shed_frames += state.shed;
            acc.rejected += state.rejected;
            acc.in_flight_frames += state.ring_real as u64;
            acc.seq_gaps += state.seq_gaps;
            acc.seq_dups += state.seq_dups;
            acc.filled_frames += state.filled;
            acc.peak_ring_depth = acc.peak_ring_depth.max(state.peak_ring_depth);
        }
        acc
    }
}
