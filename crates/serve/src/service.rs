//! The streaming inference service: ingest → assemble → micro-batch →
//! verdict, with explicit backpressure and exact frame accounting.
//!
//! The service is deliberately caller-pumped and single-threaded at the
//! control layer: [`Service::ingest`] only appends to a per-session ring
//! (cheap, never blocks), and [`Service::pump`] does the heavy lifting —
//! windowing rings into clips, coalescing ready clips across sessions
//! into micro-batches, and fanning each batch across `exec`'s
//! deterministic pool. Because batches are formed in session-id order
//! from a FIFO ready queue and `par_map` preserves input order, the
//! per-session verdict stream is byte-identical for any worker count.

use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

use mmwave_dsp::IfFrame;
use mmwave_har::{CnnLstm, PrototypeConfig};
use mmwave_radar::{Capturer, Environment};
use mmwave_telemetry::{counter, gauge, observe, span};
use serde::{Deserialize, Serialize};

use crate::batcher;
use crate::session::{PendingFrame, SessionState};
use crate::{ServeConfig, ServeError};
use mmwave_defense::TriggerDetector;

/// A fixed-length window of raw frames, assembled from one session's
/// ring and waiting in the ready queue for the next micro-batch.
#[derive(Debug, Clone)]
pub struct ReadyClip {
    /// Owning session.
    pub session: u64,
    /// Monotone per-session clip number (assigned at assembly).
    pub clip_index: u64,
    /// Sequence number of the oldest frame in the clip.
    pub first_seq: u64,
    /// Sequence number of the newest frame in the clip.
    pub last_seq: u64,
    /// Ingest timestamp (ms since service epoch) of the newest frame;
    /// end-to-end latency is measured from here.
    pub last_ingest_ms: f64,
    /// Exactly `clip_len` raw IF frames, oldest first.
    pub frames: Vec<IfFrame>,
}

/// One classification result for one clip of one session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// Owning session.
    pub session: u64,
    /// Per-session clip number.
    pub clip_index: u64,
    /// Oldest frame sequence number in the clip.
    pub first_seq: u64,
    /// Newest frame sequence number in the clip.
    pub last_seq: u64,
    /// Predicted class index.
    pub label: usize,
    /// Human-readable activity label for `label`.
    pub activity: String,
    /// Softmax probability of the predicted class.
    pub confidence: f32,
    /// Trigger-detector anomaly score from the `defense` crate.
    pub defense_score: f64,
    /// Newest-frame-ingest → verdict-emit latency in milliseconds.
    /// Wall-clock, so excluded from determinism comparisons.
    pub latency_ms: f64,
}

/// A frame-conservation snapshot across every session the service has
/// ever seen. [`Accounting::balanced`] is the core backpressure
/// invariant: every ingested frame is inferred, shed, or still in
/// flight — nothing is silently lost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Accounting {
    /// Frames ever accepted by `ingest`.
    pub ingested: u64,
    /// Frames consumed by emitted verdicts.
    pub inferred_frames: u64,
    /// Frames shed by ring overflow or ready-queue overflow.
    pub shed_frames: u64,
    /// Frames buffered in rings plus frames inside ready clips.
    pub in_flight_frames: u64,
    /// Verdicts emitted.
    pub verdicts: u64,
    /// Sessions ever opened.
    pub sessions: u64,
    /// Highest single-ring depth ever observed.
    pub peak_ring_depth: usize,
}

impl Accounting {
    /// True when `ingested == inferred + shed + in_flight`.
    pub fn balanced(&self) -> bool {
        self.ingested == self.inferred_frames + self.shed_frames + self.in_flight_frames
    }
}

/// The streaming inference service. See the module docs for the
/// pump-driven execution model.
pub struct Service {
    config: ServeConfig,
    capturer: Capturer,
    environment: Environment,
    model: CnnLstm,
    detector: TriggerDetector,
    sessions: BTreeMap<u64, SessionState>,
    ready: VecDeque<ReadyClip>,
    /// Frames currently buffered across all rings (incremental mirror
    /// of `sum(ring.len())`, kept so the queue-depth gauge is O(1)).
    ring_frames: u64,
    verdict_total: u64,
    epoch: Instant,
}

impl Service {
    /// Builds a service around a freshly seeded model + detector pair.
    ///
    /// `config.clip_len` must match `proto.n_frames` — the CNN-LSTM was
    /// shaped for exactly that many frames per clip — and the capture
    /// pipeline is taken from `proto` so loadgen-synthesized frames have
    /// matching dimensions.
    pub fn new(
        config: ServeConfig,
        proto: &PrototypeConfig,
        environment: Environment,
        seed: u64,
    ) -> Result<Service, ServeError> {
        config.validate()?;
        if config.clip_len != proto.n_frames {
            return Err(ServeError::Config(format!(
                "clip_len {} does not match the model's n_frames {}",
                config.clip_len, proto.n_frames
            )));
        }
        let _span = span("serve.init");
        let capturer = Capturer::new(proto.capture.0.clone());
        let model = CnnLstm::new(proto, seed);
        let detector = TriggerDetector::new(proto, seed ^ 0x5e7e_c7ed);
        Ok(Service {
            config,
            capturer,
            environment,
            model,
            detector,
            sessions: BTreeMap::new(),
            ready: VecDeque::new(),
            ring_frames: 0,
            verdict_total: 0,
            epoch: Instant::now(),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Milliseconds elapsed since the service was built.
    pub fn now_ms(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e3
    }

    /// Accepts one raw frame for `session`. Never blocks and never
    /// grows a queue: a full ring sheds its oldest frame (counted in
    /// `serve.shed_total` and the session's accounting).
    pub fn ingest(&mut self, session: u64, seq: u64, frame: IfFrame) {
        let now = self.now_ms();
        let ring_capacity = self.config.ring_capacity;
        let state = self.sessions.entry(session).or_insert_with(|| {
            counter("serve.sessions_opened", 1);
            SessionState::new(session, ring_capacity)
        });
        let shed = state.accept(PendingFrame { seq, ingest_ms: now, frame });
        self.ring_frames = self.ring_frames + 1 - shed;
        counter("serve.ingested", 1);
        if shed > 0 {
            counter("serve.shed_total", shed);
        }
        gauge("serve.queue_depth", self.queue_depth() as f64);
    }

    /// Frames currently held by the service: buffered in rings plus
    /// inside ready clips. This is what the `serve.queue_depth` gauge
    /// reports.
    pub fn queue_depth(&self) -> u64 {
        self.ring_frames + (self.ready.len() * self.config.clip_len) as u64
    }

    /// Clips assembled and waiting for the next micro-batch.
    pub fn ready_clips(&self) -> usize {
        self.ready.len()
    }

    /// Windows every ring holding at least `clip_len` frames into ready
    /// clips, shedding the *oldest* ready clip when the ready queue is
    /// at capacity (freshest work wins under overload, and every shed
    /// frame stays accounted to its session).
    fn assemble(&mut self) {
        let clip_len = self.config.clip_len;
        let ready_capacity = self.config.ready_capacity;
        let mut queue_sheds: Vec<(u64, usize)> = Vec::new();
        for (&id, state) in self.sessions.iter_mut() {
            while let Some(frames) = state.ring.take_front(clip_len) {
                self.ring_frames -= clip_len as u64;
                let first = &frames[0];
                let last = &frames[clip_len - 1];
                let clip = ReadyClip {
                    session: id,
                    clip_index: state.clips,
                    first_seq: first.seq,
                    last_seq: last.seq,
                    last_ingest_ms: last.ingest_ms,
                    frames: frames.into_iter().map(|f| f.frame).collect(),
                };
                state.clips += 1;
                counter("serve.clips_assembled", 1);
                if self.ready.len() == ready_capacity {
                    if let Some(old) = self.ready.pop_front() {
                        queue_sheds.push((old.session, old.frames.len()));
                    }
                }
                self.ready.push_back(clip);
            }
        }
        for (session, frames) in queue_sheds {
            counter("serve.shed_total", frames as u64);
            counter("serve.shed_clips", 1);
            if let Some(state) = self.sessions.get_mut(&session) {
                state.shed += frames as u64;
            }
        }
    }

    /// Assembles ready clips, then drains the ready queue in
    /// micro-batches of at most `max_batch` clips, running each batch's
    /// DSP → CNN-LSTM → detector work on `exec`'s pool. Returns every
    /// verdict produced, in deterministic (queue) order.
    pub fn pump(&mut self) -> Vec<Verdict> {
        let _span = span("serve.pump");
        self.assemble();
        let clip_len = self.config.clip_len as u64;
        let mut verdicts = Vec::new();
        while !self.ready.is_empty() {
            let take = self.ready.len().min(self.config.max_batch);
            let batch: Vec<ReadyClip> = self.ready.drain(..take).collect();
            let now = self.now_ms();
            let out = batcher::infer_batch(
                &self.capturer,
                &self.environment,
                &self.model,
                &self.detector,
                &batch,
                now,
            );
            for v in &out {
                if let Some(state) = self.sessions.get_mut(&v.session) {
                    state.inferred += clip_len;
                }
                observe("serve.latency_ms", v.latency_ms);
            }
            self.verdict_total += out.len() as u64;
            counter("serve.verdicts", out.len() as u64);
            verdicts.extend(out);
        }
        gauge("serve.queue_depth", self.queue_depth() as f64);
        verdicts
    }

    /// Graceful shutdown: pumps until the ready queue is empty and every
    /// assemblable clip has been inferred. Frames left in rings (fewer
    /// than `clip_len` per session) stay in flight and remain visible in
    /// [`Service::accounting`].
    pub fn drain(&mut self) -> Vec<Verdict> {
        let _span = span("serve.drain");
        let out = self.pump();
        counter("serve.drains", 1);
        gauge("serve.queue_depth", self.queue_depth() as f64);
        out
    }

    /// Snapshot of the frame-conservation ledger across all sessions.
    pub fn accounting(&self) -> Accounting {
        let mut acc = Accounting {
            ingested: 0,
            inferred_frames: 0,
            shed_frames: 0,
            in_flight_frames: (self.ready.len() * self.config.clip_len) as u64,
            verdicts: self.verdict_total,
            sessions: self.sessions.len() as u64,
            peak_ring_depth: 0,
        };
        for state in self.sessions.values() {
            acc.ingested += state.ingested;
            acc.inferred_frames += state.inferred;
            acc.shed_frames += state.shed;
            acc.in_flight_frames += state.ring.len() as u64;
            acc.peak_ring_depth = acc.peak_ring_depth.max(state.peak_ring_depth);
        }
        acc
    }
}
