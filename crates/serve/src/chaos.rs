//! Seeded transport-fault injection for the streaming plane.
//!
//! [`StreamChaos`] is the transport-level sibling of PR 1's
//! signal-level `FaultInjector`: instead of perturbing IF samples it
//! perturbs *delivery* — corrupting frames to NaN, dropping and
//! duplicating packets, swapping adjacent deliveries, stalling a
//! session mid-stream (radio flap), and suppressing pump opportunities
//! so arrivals clump into ring-overflowing bursts. Every decision is a
//! pure function of `(chaos seed, session, seq)` (or the pump index),
//! so a fault realization is exactly reproducible from its seed — the
//! property the `mmwave serve-chaos` matrix leans on to assert that the
//! conservation ledger balances and verdict streams stay bit-identical
//! across worker counts *under* faults, not just without them.

use mmwave_dsp::IfFrame;
use mmwave_exec::derive_seed;
use mmwave_har::PrototypeConfig;
use mmwave_radar::Environment;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::loadgen::{self, Arrival, LoadgenConfig, LoadgenReport};
use crate::service::Verdict;
use crate::{ServeConfig, ServeError};

// Decision-stream domains, xor-folded into the seed so the same
// (session, seq) pair draws independent rolls per fault kind.
const KIND_CORRUPT: u64 = 0x1001;
const KIND_DROP: u64 = 0x2002;
const KIND_DUP: u64 = 0x3003;
const KIND_REORDER: u64 = 0x4004;
const KIND_STALL: u64 = 0x5005;
const KIND_OVERLOAD: u64 = 0x6006;

/// A composable, seeded transport-fault schedule. All rates are
/// per-frame (or per-session for stalls, per-pump for overload)
/// probabilities in `[0, 1]`; the default is entirely fault-free.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamChaos {
    /// Seed for every fault decision, independent of the loadgen seed
    /// so the same traffic can replay under different fault weather.
    #[serde(default)]
    pub seed: u64,
    /// Probability a delivered frame's samples are NaN-corrupted.
    #[serde(default)]
    pub corrupt_frac: f64,
    /// Probability a scheduled frame is lost in transit.
    #[serde(default)]
    pub drop_frac: f64,
    /// Probability a delivered frame is delivered twice.
    #[serde(default)]
    pub dup_frac: f64,
    /// Probability a frame is delayed past its session's next delivery
    /// (an adjacent swap — the minimal reordering).
    #[serde(default)]
    pub reorder_frac: f64,
    /// Probability a session's radio flaps: one contiguous window of
    /// `stall_window` frames (seeded position in the first 60% of the
    /// stream, so the session always resumes afterward) never arrives.
    #[serde(default)]
    pub stall_frac: f64,
    /// Frames lost per stall.
    #[serde(default = "default_stall_window")]
    pub stall_window: usize,
    /// Probability a pump opportunity is suppressed, clumping arrivals
    /// into bursts that overflow rings and the ready queue.
    #[serde(default)]
    pub overload_frac: f64,
}

fn default_stall_window() -> usize {
    16
}

impl Default for StreamChaos {
    fn default() -> StreamChaos {
        StreamChaos {
            seed: 0xC4A05,
            corrupt_frac: 0.0,
            drop_frac: 0.0,
            dup_frac: 0.0,
            reorder_frac: 0.0,
            stall_frac: 0.0,
            stall_window: default_stall_window(),
            overload_frac: 0.0,
        }
    }
}

impl StreamChaos {
    /// Rejects rates outside `[0, 1]` and a zero stall window.
    pub fn validate(&self) -> Result<(), ServeError> {
        for (name, frac) in [
            ("corrupt_frac", self.corrupt_frac),
            ("drop_frac", self.drop_frac),
            ("dup_frac", self.dup_frac),
            ("reorder_frac", self.reorder_frac),
            ("stall_frac", self.stall_frac),
            ("overload_frac", self.overload_frac),
        ] {
            if !(0.0..=1.0).contains(&frac) {
                return Err(ServeError::Config(format!("chaos {name} {frac} outside [0, 1]")));
            }
        }
        if self.stall_window == 0 {
            return Err(ServeError::Config("chaos stall_window must be at least 1".into()));
        }
        Ok(())
    }

    /// True when any fault channel can fire.
    pub fn is_active(&self) -> bool {
        self.corrupt_frac > 0.0
            || self.drop_frac > 0.0
            || self.dup_frac > 0.0
            || self.reorder_frac > 0.0
            || self.stall_frac > 0.0
            || self.overload_frac > 0.0
    }

    /// One uniform roll in `[0, 1)`, a pure function of
    /// `(seed, kind, a, b)`.
    fn roll(&self, kind: u64, a: u64, b: u64) -> f64 {
        let s = derive_seed(derive_seed(self.seed ^ kind, a), b);
        ChaCha8Rng::seed_from_u64(s).gen::<f64>()
    }

    /// Whether the frame `(session, seq)` is NaN-corrupted in transit.
    pub fn corrupts(&self, session: u64, seq: u64) -> bool {
        self.corrupt_frac > 0.0 && self.roll(KIND_CORRUPT, session, seq) < self.corrupt_frac
    }

    /// Whether pump opportunity `pump_index` is suppressed.
    pub fn suppresses_pump(&self, pump_index: u64) -> bool {
        self.overload_frac > 0.0 && self.roll(KIND_OVERLOAD, pump_index, 0) < self.overload_frac
    }

    /// Rewrites a delivery schedule with drops, stalls, duplicates, and
    /// adjacent swaps applied. The output order *is* the delivery order;
    /// arrival timestamps ride along untouched (paced replay simply
    /// never sleeps for a frame delivered behind schedule).
    pub fn apply_to_schedule(&self, arrivals: &[Arrival]) -> Vec<Arrival> {
        if !self.is_active() {
            return arrivals.to_vec();
        }
        // Per-session stall windows: [start, start + window) by each
        // session's own delivery count, seeded into the first 60% so a
        // stalled session always has frames left to resume with.
        let mut per_session: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        for a in arrivals {
            *per_session.entry(a.session).or_insert(0) += 1;
        }
        let stall: std::collections::BTreeMap<u64, (u64, u64)> = per_session
            .iter()
            .filter(|&(&s, _)| {
                self.stall_frac > 0.0 && self.roll(KIND_STALL, s, 0) < self.stall_frac
            })
            .map(|(&s, &n)| {
                let start = (self.roll(KIND_STALL, s, 1) * n as f64 * 0.6) as u64;
                (s, (start, start + self.stall_window as u64))
            })
            .collect();

        let mut out: Vec<Arrival> = Vec::with_capacity(arrivals.len());
        // A frame chosen for reorder is held until the session's next
        // surviving delivery, then emitted after it (adjacent swap).
        let mut held: std::collections::BTreeMap<u64, Arrival> = std::collections::BTreeMap::new();
        let mut delivered: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        for a in arrivals {
            let idx = {
                let c = delivered.entry(a.session).or_insert(0);
                let i = *c;
                *c += 1;
                i
            };
            if let Some(&(lo, hi)) = stall.get(&a.session) {
                if idx >= lo && idx < hi {
                    continue;
                }
            }
            if self.drop_frac > 0.0 && self.roll(KIND_DROP, a.session, a.seq) < self.drop_frac {
                continue;
            }
            if self.reorder_frac > 0.0
                && !held.contains_key(&a.session)
                && self.roll(KIND_REORDER, a.session, a.seq) < self.reorder_frac
            {
                held.insert(a.session, *a);
                continue;
            }
            self.emit(&mut out, *a);
            if let Some(late) = held.remove(&a.session) {
                self.emit(&mut out, late);
            }
        }
        // Streams that ended while a frame was held still deliver it.
        for (_, late) in held {
            self.emit(&mut out, late);
        }
        out
    }

    /// Emits one delivery, duplicated when the dup roll fires.
    fn emit(&self, out: &mut Vec<Arrival>, a: Arrival) {
        out.push(a);
        if self.dup_frac > 0.0 && self.roll(KIND_DUP, a.session, a.seq) < self.dup_frac {
            out.push(a);
        }
    }
}

/// Poisons a frame the way a broken sensor or a torn packet does:
/// non-finite samples scattered through the cube (ingress validation
/// must quarantine these before DSP sees them).
pub fn corrupt_frame(frame: &mut IfFrame) {
    let nan = mmwave_dsp::Complex32::new(f32::NAN, f32::INFINITY);
    frame.chirp_mut(0, 0)[0] = nan;
    let last_vrx = frame.n_vrx() - 1;
    let last_chirp = frame.n_chirps() - 1;
    let last_adc = frame.n_adc() - 1;
    frame.chirp_mut(last_vrx, last_chirp)[last_adc] = nan;
}

/// One cell of the `serve-chaos` matrix: the fault mix it ran, the
/// closing ledger, and whether every invariant held.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosCellReport {
    /// Cell name (`clean`, `corrupt`, `drop`, `dup`, `reorder`, `flap`,
    /// `overload`, `all`).
    pub cell: String,
    /// Frames presented to ingest.
    pub ingested: u64,
    /// Frames consumed by verdicts.
    pub inferred_frames: u64,
    /// Frames shed under backpressure, run breaks, eviction, breaker.
    pub shed_frames: u64,
    /// Frames quarantined at ingress.
    pub rejected_frames: u64,
    /// Frames still buffered after drain.
    pub in_flight_frames: u64,
    /// `ingested - inferred - shed - rejected - in_flight`.
    pub unaccounted: i64,
    /// Verdicts emitted.
    pub verdicts: u64,
    /// Verdicts with `Failed` status.
    pub verdicts_failed: u64,
    /// Sessions evicted by the staleness sweep.
    pub sessions_evicted: u64,
    /// Evicted sessions that reconnected.
    pub sessions_reopened: u64,
    /// Sequence gaps detected.
    pub seq_gaps: u64,
    /// Duplicate frames rejected.
    pub seq_dups: u64,
    /// Placeholder frames inserted for gap repair.
    pub filled_frames: u64,
    /// The conservation ledger closed (`unaccounted == 0`).
    pub balanced: bool,
    /// Verdict streams bit-identical at 1 and 4 workers.
    pub deterministic: bool,
    /// Why the cell failed its expectation, empty when it passed.
    pub note: String,
    /// `balanced && deterministic && note.is_empty()`.
    pub pass: bool,
}

/// Everything about a verdict except wall-clock latency, bit-exact.
fn verdict_key(v: &Verdict) -> (u64, u64, u64, u64, usize, String, u32, u64, String) {
    (
        v.session,
        v.clip_index,
        v.first_seq,
        v.last_seq,
        v.label,
        v.activity.clone(),
        v.confidence.to_bits(),
        v.defense_score.to_bits(),
        format!("{:?}", v.status),
    )
}

/// The full matrix cell list, in run order.
pub const MATRIX_CELLS: [&str; 8] =
    ["clean", "corrupt", "drop", "dup", "reorder", "flap", "overload", "all"];

/// Builds one cell's traffic + service shape. Every cell uses the same
/// compact stream (3 sessions × 96 frames) so the matrix stays cheap;
/// the fault mix and the service knobs are what vary.
fn cell_config(cell: &str, seed: u64, clip_len: usize) -> Result<(LoadgenConfig, ServeConfig), ServeError> {
    let chaos_seed = derive_seed(seed, 0xCA05);
    let base_chaos = StreamChaos { seed: chaos_seed, ..StreamChaos::default() };
    let lg = LoadgenConfig {
        sessions: 3,
        seconds: 8.0,
        fps: 12.0,
        jitter: 0.2,
        burst: 1,
        seed,
        paced: false,
        pump_every: 8,
        poison_frac: 0.0,
        chaos: None,
    };
    let serve_cfg = ServeConfig {
        clip_len,
        ring_capacity: clip_len * 2,
        ready_capacity: 8,
        max_batch: 4,
        session_ttl: 64,
        max_gap_repair: 2,
        breaker_threshold: 8,
        breaker_cooldown: 4,
    };
    let (chaos, serve_cfg) = match cell {
        "clean" => (base_chaos, serve_cfg),
        "corrupt" => (StreamChaos { corrupt_frac: 0.15, ..base_chaos }, serve_cfg),
        "drop" => (StreamChaos { drop_frac: 0.08, ..base_chaos }, serve_cfg),
        "dup" => (StreamChaos { dup_frac: 0.12, ..base_chaos }, serve_cfg),
        "reorder" => (StreamChaos { reorder_frac: 0.12, ..base_chaos }, serve_cfg),
        "flap" => (
            StreamChaos { stall_frac: 1.0, stall_window: 30, ..base_chaos },
            ServeConfig { session_ttl: 4, ..serve_cfg },
        ),
        "overload" => (
            StreamChaos { overload_frac: 0.7, ..base_chaos },
            ServeConfig { ring_capacity: clip_len, ready_capacity: 2, ..serve_cfg },
        ),
        "all" => (
            StreamChaos {
                corrupt_frac: 0.05,
                drop_frac: 0.05,
                dup_frac: 0.05,
                reorder_frac: 0.05,
                stall_frac: 0.5,
                stall_window: 20,
                overload_frac: 0.3,
                ..base_chaos
            },
            ServeConfig { session_ttl: 8, ..serve_cfg },
        ),
        other => {
            return Err(ServeError::Config(format!(
                "unknown chaos cell `{other}` (expected one of {MATRIX_CELLS:?})"
            )))
        }
    };
    Ok((LoadgenConfig { chaos: Some(chaos), ..lg }, serve_cfg))
}

/// What a cell must show beyond balance + determinism: the fault
/// channel it exercises has to actually leave ledger evidence, and the
/// clean cell must leave none.
fn check_expectation(cell: &str, r: &LoadgenReport) -> String {
    let mut problems = Vec::new();
    match cell {
        "clean" => {
            if r.rejected_frames != 0
                || r.sessions_evicted != 0
                || r.seq_gaps != 0
                || r.seq_dups != 0
                || r.verdicts_failed != 0
            {
                problems.push(format!(
                    "clean cell left fault evidence: rejected {} evicted {} gaps {} dups {} failed {}",
                    r.rejected_frames, r.sessions_evicted, r.seq_gaps, r.seq_dups, r.verdicts_failed
                ));
            }
            if r.verdicts == 0 {
                problems.push("clean cell produced no verdicts".to_string());
            }
        }
        "corrupt" => {
            if r.rejected_frames == 0 {
                problems.push("corrupt cell rejected nothing".to_string());
            }
        }
        "drop" => {
            if r.seq_gaps == 0 {
                problems.push("drop cell detected no sequence gaps".to_string());
            }
        }
        "dup" => {
            if r.seq_dups == 0 {
                problems.push("dup cell rejected no duplicates".to_string());
            }
        }
        "reorder" => {
            if r.seq_gaps == 0 && r.seq_dups == 0 {
                problems.push("reorder cell left no gap/dup evidence".to_string());
            }
        }
        "flap" => {
            if r.sessions_evicted == 0 {
                problems.push("flap cell evicted no sessions".to_string());
            }
        }
        "overload" => {
            if r.shed_frames == 0 {
                problems.push("overload cell shed nothing".to_string());
            }
        }
        "all" => {
            if r.rejected_frames + r.seq_gaps + r.seq_dups + r.shed_frames == 0 {
                problems.push("all-faults cell left no evidence at all".to_string());
            }
        }
        _ => {}
    }
    problems.join("; ")
}

/// Runs the serve-chaos matrix: each requested cell replays the same
/// seeded traffic through its fault mix twice — once at 1 worker, once
/// at 4 — and must close the conservation ledger
/// (`ingested == inferred + shed + rejected + in_flight`), produce
/// bit-identical verdict streams at both worker counts, and leave the
/// ledger evidence its fault channel predicts.
pub fn run_matrix(
    cells: &[String],
    seed: u64,
    proto: &PrototypeConfig,
    environment: &Environment,
) -> Result<Vec<ChaosCellReport>, ServeError> {
    let mut reports = Vec::with_capacity(cells.len());
    for cell in cells {
        let (lg, serve_cfg) = cell_config(cell, seed, proto.n_frames)?;
        let mut runs: Vec<(LoadgenReport, Vec<(u64, u64, u64, u64, usize, String, u32, u64, String)>)> =
            Vec::with_capacity(2);
        for workers in [1usize, 4] {
            let mut keys = Vec::new();
            let report = mmwave_exec::with_workers(workers, || {
                loadgen::run_with(&lg, serve_cfg.clone(), proto, environment.clone(), |v| {
                    keys.push(verdict_key(v));
                })
            })?;
            runs.push((report, keys));
        }
        let (one_worker, four_workers) = (&runs[0], &runs[1]);
        let r = &one_worker.0;
        let deterministic = one_worker.1 == four_workers.1
            && r.ingested == four_workers.0.ingested
            && r.shed_frames == four_workers.0.shed_frames
            && r.rejected_frames == four_workers.0.rejected_frames;
        let balanced = r.is_clean() && four_workers.0.is_clean();
        let note = check_expectation(cell, r);
        let pass = balanced && deterministic && note.is_empty();
        reports.push(ChaosCellReport {
            cell: cell.clone(),
            ingested: r.ingested,
            inferred_frames: r.inferred_frames,
            shed_frames: r.shed_frames,
            rejected_frames: r.rejected_frames,
            in_flight_frames: r.in_flight_frames,
            unaccounted: r.unaccounted,
            verdicts: r.verdicts,
            verdicts_failed: r.verdicts_failed,
            sessions_evicted: r.sessions_evicted,
            sessions_reopened: r.sessions_reopened,
            seq_gaps: r.seq_gaps,
            seq_dups: r.seq_dups,
            filled_frames: r.filled_frames,
            balanced,
            deterministic,
            note,
            pass,
        });
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrivals(n: u64) -> Vec<Arrival> {
        (0..n).map(|seq| Arrival { time_ms: seq as f64, session: 0, seq }).collect()
    }

    #[test]
    fn inactive_chaos_is_the_identity() {
        let chaos = StreamChaos::default();
        assert!(!chaos.is_active());
        let a = arrivals(10);
        let out = chaos.apply_to_schedule(&a);
        assert_eq!(out.len(), 10);
        assert!(out.iter().zip(&a).all(|(x, y)| x.seq == y.seq));
        assert!(!chaos.corrupts(0, 0));
        assert!(!chaos.suppresses_pump(0));
    }

    #[test]
    fn schedules_are_pure_functions_of_the_seed() {
        let chaos = StreamChaos {
            seed: 42,
            drop_frac: 0.2,
            dup_frac: 0.2,
            reorder_frac: 0.2,
            stall_frac: 0.5,
            stall_window: 3,
            ..StreamChaos::default()
        };
        let a = arrivals(64);
        let x = chaos.apply_to_schedule(&a);
        let y = chaos.apply_to_schedule(&a);
        assert_eq!(x.len(), y.len());
        assert!(x.iter().zip(&y).all(|(p, q)| (p.session, p.seq) == (q.session, q.seq)));
        // A different seed gives different weather.
        let other = StreamChaos { seed: 43, ..chaos };
        let z = other.apply_to_schedule(&a);
        assert!(
            z.len() != x.len()
                || z.iter().zip(&x).any(|(p, q)| (p.session, p.seq) != (q.session, q.seq))
        );
    }

    #[test]
    fn drops_remove_and_dups_double_deliveries() {
        let a = arrivals(200);
        let dropper = StreamChaos { seed: 7, drop_frac: 0.3, ..StreamChaos::default() };
        let dropped = dropper.apply_to_schedule(&a);
        assert!(dropped.len() < a.len(), "30% drop over 200 frames must remove some");
        let duper = StreamChaos { seed: 7, dup_frac: 0.3, ..StreamChaos::default() };
        let duped = duper.apply_to_schedule(&a);
        assert!(duped.len() > a.len(), "30% dup over 200 frames must add some");
    }

    #[test]
    fn reorder_swaps_stay_within_the_session() {
        let chaos = StreamChaos { seed: 11, reorder_frac: 0.4, ..StreamChaos::default() };
        let a = arrivals(100);
        let out = chaos.apply_to_schedule(&a);
        // Conservation: nothing lost, nothing invented.
        let mut seqs: Vec<u64> = out.iter().map(|x| x.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..100).collect::<Vec<u64>>());
        // Some adjacent pair actually swapped.
        assert!(out.windows(2).any(|w| w[0].seq > w[1].seq), "0.4 reorder must swap something");
        // Swaps are adjacent: displacement never exceeds 1 position
        // worth of seq distance per swap chain (a held frame is emitted
        // right after the next survivor).
        for (i, x) in out.iter().enumerate() {
            assert!((x.seq as i64 - i as i64).abs() <= 2, "seq {} landed at {}", x.seq, i);
        }
    }

    #[test]
    fn stalls_cut_one_contiguous_window_and_resume() {
        let chaos = StreamChaos {
            seed: 3,
            stall_frac: 1.0,
            stall_window: 10,
            ..StreamChaos::default()
        };
        let a = arrivals(100);
        let out = chaos.apply_to_schedule(&a);
        assert_eq!(out.len(), 90);
        let seqs: Vec<u64> = out.iter().map(|x| x.seq).collect();
        // Exactly one gap of exactly stall_window, somewhere in the
        // first 60% + window of the stream, then delivery resumes.
        let mut gaps = Vec::new();
        for w in seqs.windows(2) {
            if w[1] != w[0] + 1 {
                gaps.push((w[0], w[1]));
            }
        }
        assert_eq!(gaps.len(), 1, "one stall, one gap: {gaps:?}");
        let (before, after) = gaps[0];
        assert_eq!(after - before - 1, 10, "gap width must equal stall_window");
        assert!(before < 70, "stall must start in the first 60% of the stream");
        assert_eq!(*seqs.last().expect("non-empty"), 99, "stream must resume after the stall");
    }

    #[test]
    fn corrupt_frame_is_caught_by_finiteness_checks() {
        let mut frame = IfFrame::zeros(2, 3, 4);
        assert!(frame.as_slice().iter().all(|c| c.re.is_finite() && c.im.is_finite()));
        corrupt_frame(&mut frame);
        assert!(frame.as_slice().iter().any(|c| !c.re.is_finite() || !c.im.is_finite()));
    }

    #[test]
    fn chaos_validation_rejects_bad_rates() {
        assert!(StreamChaos::default().validate().is_ok());
        let bad = StreamChaos { drop_frac: 1.5, ..StreamChaos::default() };
        assert!(bad.validate().is_err());
        let bad = StreamChaos { stall_window: 0, ..StreamChaos::default() };
        assert!(bad.validate().is_err());
        let bad = StreamChaos { overload_frac: -0.1, ..StreamChaos::default() };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn unknown_matrix_cells_are_rejected() {
        let err = cell_config("zebra", 1, 32).expect_err("unknown cell must fail");
        assert!(err.to_string().contains("zebra"));
        for cell in MATRIX_CELLS {
            assert!(cell_config(cell, 1, 32).is_ok(), "cell {cell} must build");
        }
    }
}
