//! Sustain-streak circuit breaker for the inference plane.
//!
//! A single poisoned clip is isolated by the batcher (it becomes a
//! `Failed` verdict and the rest of the batch completes), but a *model*
//! or *pipeline* that is failing every clip would keep the pump grinding
//! through doomed batches at full DSP cost. The breaker watches the
//! per-clip failure stream and, once `threshold` **consecutive** clips
//! have failed, opens: while open the pump sheds ready clips instead of
//! batching them (cheap, fully accounted). After `cooldown` pumps the
//! breaker goes half-open and lets one probe batch through; a clean
//! probe closes it, any failure re-opens it for another cooldown.
//!
//! Everything is count-based — failed-clip streaks and pump counts, no
//! wall clock — so breaker behaviour is bit-identical across worker
//! counts and replays, like every other control decision in the service.

use mmwave_telemetry::{counter, gauge};

/// Where the breaker is in its open → half-open → closed cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: batches flow, failures feed the streak counter.
    Closed,
    /// Tripped: the pump sheds ready clips instead of batching them.
    Open,
    /// Cooldown elapsed: exactly one probe batch is allowed through.
    HalfOpen,
}

impl BreakerState {
    /// Numeric encoding for the `serve.breaker_state` gauge
    /// (0 = closed, 1 = half-open, 2 = open).
    pub fn as_gauge(self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::HalfOpen => 1.0,
            BreakerState::Open => 2.0,
        }
    }
}

/// Count-based sustain-streak circuit breaker. See the module docs for
/// the state machine; a `threshold` of 0 disables the breaker entirely
/// (it stays closed forever).
#[derive(Debug, Clone)]
pub struct Breaker {
    threshold: usize,
    cooldown: u64,
    state: BreakerState,
    /// Consecutive failed clips observed while closed.
    streak: usize,
    /// Pump counter value when the breaker last opened.
    opened_at_pump: u64,
    /// Times the breaker has tripped over its lifetime.
    trips: u64,
}

impl Breaker {
    /// Builds a breaker tripping after `threshold` consecutive clip
    /// failures and staying open for `cooldown` pumps.
    pub fn new(threshold: usize, cooldown: usize) -> Breaker {
        Breaker {
            threshold,
            cooldown: cooldown as u64,
            state: BreakerState::Closed,
            streak: 0,
            opened_at_pump: 0,
            trips: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Lifetime trip count.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// False when `threshold == 0` (the breaker never trips).
    pub fn is_enabled(&self) -> bool {
        self.threshold > 0
    }

    /// Advances the pump clock: an open breaker whose cooldown has
    /// elapsed goes half-open, ready for one probe batch.
    pub fn on_pump(&mut self, pump: u64) {
        if self.state == BreakerState::Open && pump >= self.opened_at_pump + self.cooldown {
            self.state = BreakerState::HalfOpen;
            counter("serve.breaker_half_open", 1);
            self.publish();
        }
    }

    /// True when the pump may run a batch (closed, or half-open probe).
    pub fn allows_batch(&self) -> bool {
        self.state != BreakerState::Open
    }

    /// Feeds one batch's per-clip outcomes (`true` = clip failed), in
    /// batch order, and applies the resulting transition at pump `pump`.
    pub fn record_batch(&mut self, clip_failures: &[bool], pump: u64) {
        if !self.is_enabled() {
            return;
        }
        match self.state {
            BreakerState::Open => {}
            BreakerState::HalfOpen => {
                if clip_failures.iter().any(|&failed| failed) {
                    self.trip(pump);
                } else {
                    self.state = BreakerState::Closed;
                    self.streak = 0;
                    counter("serve.breaker_closed", 1);
                    self.publish();
                }
            }
            BreakerState::Closed => {
                for &failed in clip_failures {
                    if failed {
                        self.streak += 1;
                        if self.streak >= self.threshold {
                            self.trip(pump);
                            break;
                        }
                    } else {
                        self.streak = 0;
                    }
                }
            }
        }
    }

    fn trip(&mut self, pump: u64) {
        self.state = BreakerState::Open;
        self.streak = 0;
        self.opened_at_pump = pump;
        self.trips += 1;
        counter("serve.breaker_opened", 1);
        self.publish();
    }

    /// Publishes the `serve.breaker_state` gauge for the current state.
    pub fn publish(&self) {
        gauge("serve.breaker_state", self.state.as_gauge());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_breaker_never_trips() {
        let mut b = Breaker::new(0, 4);
        b.record_batch(&[true; 64], 1);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allows_batch());
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn streak_must_be_consecutive_to_trip() {
        let mut b = Breaker::new(3, 4);
        // Failures interleaved with successes never sustain the streak.
        b.record_batch(&[true, true, false, true, true, false], 1);
        assert_eq!(b.state(), BreakerState::Closed);
        // Three in a row trips, even across batch boundaries.
        b.record_batch(&[false, true], 2);
        b.record_batch(&[true, true], 3);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allows_batch());
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn cooldown_half_open_probe_closes_or_reopens() {
        let mut b = Breaker::new(2, 3);
        b.record_batch(&[true, true], 10);
        assert_eq!(b.state(), BreakerState::Open);
        // Cooldown not yet elapsed.
        b.on_pump(12);
        assert_eq!(b.state(), BreakerState::Open);
        b.on_pump(13);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allows_batch());
        // A failed probe re-opens for a fresh cooldown.
        b.record_batch(&[false, true], 13);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        b.on_pump(16);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // A clean probe closes it and resets the streak.
        b.record_batch(&[false, false], 16);
        assert_eq!(b.state(), BreakerState::Closed);
        // Streak restarts from zero after closing.
        b.record_batch(&[true], 17);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn gauge_encoding_is_stable() {
        assert_eq!(BreakerState::Closed.as_gauge(), 0.0);
        assert_eq!(BreakerState::HalfOpen.as_gauge(), 1.0);
        assert_eq!(BreakerState::Open.as_gauge(), 2.0);
    }
}
