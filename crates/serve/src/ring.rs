//! Fixed-capacity ingress ring with a shed-oldest overflow policy.
//!
//! Every per-session ingress queue in the service is a [`FrameRing`]: a
//! bounded FIFO that **never blocks and never grows**. When a frame
//! arrives at a full ring the *oldest* buffered frame is shed to make
//! room — under overload the service keeps the freshest window of each
//! stream, which is the only window still worth classifying, and the
//! caller gets the shed item back so every drop is accounted.

use std::collections::VecDeque;

/// A bounded FIFO that sheds its oldest element instead of growing.
#[derive(Debug, Clone)]
pub struct FrameRing<T> {
    buf: VecDeque<T>,
    capacity: usize,
    shed: u64,
}

impl<T> FrameRing<T> {
    /// Creates a ring holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a zero-capacity ingress queue could
    /// never assemble a clip; [`crate::ServeConfig::validate`] rejects it
    /// before any ring is built).
    pub fn new(capacity: usize) -> FrameRing<T> {
        assert!(capacity > 0, "ring capacity must be positive");
        FrameRing { buf: VecDeque::with_capacity(capacity), capacity, shed: 0 }
    }

    /// Appends `item`, shedding and returning the oldest buffered item
    /// when the ring is full. Never blocks, never exceeds capacity.
    pub fn push(&mut self, item: T) -> Option<T> {
        let shed = if self.buf.len() == self.capacity {
            self.shed += 1;
            self.buf.pop_front()
        } else {
            None
        };
        self.buf.push_back(item);
        debug_assert!(self.buf.len() <= self.capacity);
        shed
    }

    /// Removes and returns the oldest `n` items when at least `n` are
    /// buffered, else leaves the ring untouched and returns `None`.
    pub fn take_front(&mut self, n: usize) -> Option<Vec<T>> {
        if self.buf.len() < n {
            return None;
        }
        Some(self.buf.drain(..n).collect())
    }

    /// Buffered item count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items shed by overflow over the ring's lifetime.
    pub fn shed_total(&self) -> u64 {
        self.shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_within_capacity_sheds_nothing() {
        let mut ring = FrameRing::new(3);
        assert_eq!(ring.push(1), None);
        assert_eq!(ring.push(2), None);
        assert_eq!(ring.push(3), None);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.shed_total(), 0);
    }

    #[test]
    fn overflow_sheds_oldest_first() {
        let mut ring = FrameRing::new(2);
        ring.push(1);
        ring.push(2);
        assert_eq!(ring.push(3), Some(1));
        assert_eq!(ring.push(4), Some(2));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.shed_total(), 2);
        assert_eq!(ring.take_front(2), Some(vec![3, 4]));
    }

    #[test]
    fn take_front_is_all_or_nothing() {
        let mut ring = FrameRing::new(4);
        ring.push(7);
        assert_eq!(ring.take_front(2), None);
        assert_eq!(ring.len(), 1);
        ring.push(8);
        assert_eq!(ring.take_front(2), Some(vec![7, 8]));
        assert!(ring.is_empty());
    }

    #[test]
    #[should_panic(expected = "ring capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = FrameRing::<u8>::new(0);
    }
}
