//! Fixed-capacity ingress ring with a shed-oldest overflow policy.
//!
//! Every per-session ingress queue in the service is a [`FrameRing`]: a
//! bounded FIFO that **never blocks and never grows**. When a frame
//! arrives at a full ring the *oldest* buffered frame is shed to make
//! room — under overload the service keeps the freshest window of each
//! stream, which is the only window still worth classifying, and the
//! caller gets the shed item back so every drop is accounted.

use std::collections::VecDeque;

/// A bounded FIFO that sheds its oldest element instead of growing.
#[derive(Debug, Clone)]
pub struct FrameRing<T> {
    buf: VecDeque<T>,
    capacity: usize,
    shed: u64,
}

impl<T> FrameRing<T> {
    /// Creates a ring holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a zero-capacity ingress queue could
    /// never assemble a clip; [`crate::ServeConfig::validate`] rejects it
    /// before any ring is built).
    pub fn new(capacity: usize) -> FrameRing<T> {
        assert!(capacity > 0, "ring capacity must be positive");
        FrameRing { buf: VecDeque::with_capacity(capacity), capacity, shed: 0 }
    }

    /// Appends `item`, shedding and returning the oldest buffered item
    /// when the ring is full. Never blocks, never exceeds capacity.
    pub fn push(&mut self, item: T) -> Option<T> {
        let shed = if self.buf.len() == self.capacity {
            self.shed += 1;
            self.buf.pop_front()
        } else {
            None
        };
        self.buf.push_back(item);
        debug_assert!(self.buf.len() <= self.capacity);
        shed
    }

    /// Removes and returns the oldest `n` items when at least `n` are
    /// buffered, else leaves the ring untouched and returns `None`.
    pub fn take_front(&mut self, n: usize) -> Option<Vec<T>> {
        if self.buf.len() < n {
            return None;
        }
        Some(self.buf.drain(..n).collect())
    }

    /// Removes and returns everything buffered, oldest first (used when a
    /// session is evicted or its contiguous run is abandoned).
    pub fn drain_all(&mut self) -> Vec<T> {
        self.buf.drain(..).collect()
    }

    /// Iterates the buffered items, oldest first, without removing them.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// Buffered item count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items shed by overflow over the ring's lifetime.
    pub fn shed_total(&self) -> u64 {
        self.shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_within_capacity_sheds_nothing() {
        let mut ring = FrameRing::new(3);
        assert_eq!(ring.push(1), None);
        assert_eq!(ring.push(2), None);
        assert_eq!(ring.push(3), None);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.shed_total(), 0);
    }

    #[test]
    fn overflow_sheds_oldest_first() {
        let mut ring = FrameRing::new(2);
        ring.push(1);
        ring.push(2);
        assert_eq!(ring.push(3), Some(1));
        assert_eq!(ring.push(4), Some(2));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.shed_total(), 2);
        assert_eq!(ring.take_front(2), Some(vec![3, 4]));
    }

    #[test]
    fn take_front_is_all_or_nothing() {
        let mut ring = FrameRing::new(4);
        ring.push(7);
        assert_eq!(ring.take_front(2), None);
        assert_eq!(ring.len(), 1);
        ring.push(8);
        assert_eq!(ring.take_front(2), Some(vec![7, 8]));
        assert!(ring.is_empty());
    }

    #[test]
    #[should_panic(expected = "ring capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = FrameRing::<u8>::new(0);
    }

    #[test]
    fn drain_all_empties_oldest_first() {
        let mut ring = FrameRing::new(3);
        ring.push(1);
        ring.push(2);
        assert_eq!(ring.drain_all(), vec![1, 2]);
        assert!(ring.is_empty());
        assert_eq!(ring.drain_all(), Vec::<i32>::new());
    }

    mod properties {
        use super::super::FrameRing;
        use proptest::prelude::*;

        /// One step of an arbitrary interleaving: push a tagged item or
        /// attempt to take `n` items off the front.
        #[derive(Debug, Clone)]
        enum Op {
            Push,
            Take(usize),
        }

        fn op() -> impl Strategy<Value = Op> {
            prop_oneof![
                3 => Just(Op::Push),
                1 => (1usize..6).prop_map(Op::Take),
            ]
        }

        proptest! {
            /// Arbitrary push/`take_front` interleavings preserve FIFO
            /// order, never exceed capacity, and the shed count always
            /// reconciles: pushed == taken + shed + buffered — the same
            /// conservation shape `SessionState` accounting sums over.
            #[test]
            fn fifo_capacity_and_shed_reconcile(
                capacity in 1usize..9,
                ops in prop::collection::vec(op(), 1..64)
            ) {
                let mut ring = FrameRing::new(capacity);
                let mut next_tag = 0u64;
                let mut taken: Vec<u64> = Vec::new();
                let mut shed: Vec<u64> = Vec::new();
                for op in ops {
                    match op {
                        Op::Push => {
                            if let Some(old) = ring.push(next_tag) {
                                shed.push(old);
                            }
                            next_tag += 1;
                        }
                        Op::Take(n) => {
                            let len_before = ring.len();
                            match ring.take_front(n) {
                                Some(items) => {
                                    prop_assert_eq!(items.len(), n);
                                    taken.extend(items);
                                }
                                None => {
                                    // All-or-nothing: a refused take
                                    // leaves the ring untouched.
                                    prop_assert!(len_before < n);
                                    prop_assert_eq!(ring.len(), len_before);
                                }
                            }
                        }
                    }
                    prop_assert!(ring.len() <= capacity, "ring exceeded capacity");
                }
                // Conservation: every pushed tag is taken, shed, or buffered.
                prop_assert_eq!(
                    next_tag as usize,
                    taken.len() + shed.len() + ring.len(),
                    "pushed == taken + shed + buffered must always close"
                );
                prop_assert_eq!(ring.shed_total(), shed.len() as u64);
                // FIFO: consumed tags (shed or taken) and survivors, each
                // in arrival order; shed items are always the oldest at
                // their shed instant, so merged consumption is sorted per
                // stream.
                prop_assert!(taken.windows(2).all(|w| w[0] < w[1]), "takes must be FIFO");
                prop_assert!(shed.windows(2).all(|w| w[0] < w[1]), "sheds must be FIFO");
                let buffered: Vec<u64> = ring.iter().copied().collect();
                prop_assert!(
                    buffered.windows(2).all(|w| w[0] < w[1]),
                    "survivors must stay in arrival order"
                );
                // Survivors are exactly the newest pushed window.
                if let Some(&oldest) = buffered.first() {
                    prop_assert!(taken.iter().chain(&shed).all(|&t| t < oldest));
                }
            }
        }
    }
}
