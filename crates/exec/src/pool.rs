//! The global work-stealing pool behind the `par_*` primitives.
//!
//! One process-wide [`Injector`] feeds lazily-spawned worker threads, each
//! owning a FIFO local deque; idle workers pull batches from the injector
//! or steal from each other. The thread submitting a job *helps drain the
//! queue* while it waits, which gives three properties for free:
//!
//! * jobs complete even with zero background workers (1-core hosts),
//! * nested jobs cannot deadlock (the inner caller keeps executing
//!   tasks instead of blocking a worker slot),
//! * the caller's stack frame outlives every task of its job, which is
//!   the lifetime guarantee the scoped pointer-passing below relies on.
//!
//! # Safety model
//!
//! A [`Task`] is a monomorphized `unsafe fn` pointer plus four plain
//! `usize` payload words — addresses of the item closure, the result
//! slots, and the job header on the submitting caller's stack, and the
//! task's input index. The type is trivially `Send + 'static` (it carries
//! no lifetimes), so it can cross into long-lived worker threads;
//! soundness comes from [`run_job`] not returning until the job's
//! `remaining` counter hits zero (`Release` decrement per task, `Acquire`
//! load by the caller), so no task can touch those addresses after the
//! caller's frame unwinds. The `F: Sync` / `R: Send` bounds on the public
//! API make the cross-thread sharing itself legal.

use crate::FirstPanic;
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use parking_lot::{Condvar, Mutex, RwLock};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// One unit of work: `run` is `run_task::<R, F>` monomorphized at the
/// submitting call site, the payload words are caller-stack addresses
/// valid until the job's `remaining` counter reaches zero.
struct Task {
    run: unsafe fn(usize, usize, usize, usize),
    f_addr: usize,
    slots_addr: usize,
    header_addr: usize,
    index: usize,
}

impl Task {
    fn execute(self) {
        // SAFETY: the submitting `run_job` frame is still blocked waiting
        // for this task's sign-off, so every address is live (see the
        // module-level safety model).
        unsafe { (self.run)(self.f_addr, self.slots_addr, self.header_addr, self.index) }
    }
}

struct Pool {
    injector: Injector<Task>,
    stealers: RwLock<Vec<Stealer<Task>>>,
    /// Count of spawned background threads; the Mutex also serializes
    /// spawning.
    spawned: Mutex<usize>,
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        injector: Injector::new(),
        stealers: RwLock::new(Vec::new()),
        spawned: Mutex::new(0),
        sleep_lock: Mutex::new(()),
        sleep_cv: Condvar::new(),
    })
}

/// Shared per-job state living on the caller's stack.
struct JobHeader {
    remaining: AtomicUsize,
    /// First-by-index panic payload; later-index panics are discarded so
    /// the reported failure matches what a serial loop would hit first.
    panic: Mutex<Option<FirstPanic>>,
    /// The submitting thread's open span path, replayed onto whichever
    /// thread executes each task so spans opened inside the closure nest
    /// exactly as they would in a serial run — the profile tree and trace
    /// span paths come out identical at any worker count.
    span_ctx: Option<String>,
}

/// Executes task `index` of a job: calls the item closure under
/// `catch_unwind`, stores the result (or panic) in the caller's slots,
/// and signs off on the `remaining` counter.
///
/// # Safety
///
/// `f_addr` must point to a live `F`, `slots_addr` to a live
/// `[Mutex<Option<R>>]` of length > `index`, and `header_addr` to a live
/// [`JobHeader`], all owned by a `run_job` frame that waits for this
/// task's `remaining` decrement before returning.
unsafe fn run_task<R, F>(f_addr: usize, slots_addr: usize, header_addr: usize, index: usize)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let f = &*(f_addr as *const F);
    let header = &*(header_addr as *const JobHeader);
    let started = Instant::now();
    // Adopt the submitting thread's span context for the duration of the
    // task (the guard restores the previous stack even on panic). On the
    // caller helping drain its own job this is a no-op swap; on a worker
    // it makes nested spans record under the caller's path.
    let ctx = mmwave_telemetry::enter_context(header.span_ctx.as_deref());
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(index)));
    drop(ctx);
    mmwave_telemetry::observe("exec.task_ms", started.elapsed().as_secs_f64() * 1e3);
    match outcome {
        Ok(result) => {
            let slot = &*(slots_addr as *const Mutex<Option<R>>).add(index);
            *slot.lock() = Some(result);
        }
        Err(payload) => {
            mmwave_telemetry::counter("exec.task_panics", 1);
            let mut first = header.panic.lock();
            match &*first {
                Some((seen, _)) if *seen <= index => {}
                _ => *first = Some((index, payload)),
            }
        }
    }
    header.remaining.fetch_sub(1, Ordering::Release);
}

/// Runs `f(0..n)` on the global pool with `target_workers` total workers
/// (the caller counts as one), returning results in index order or the
/// first-by-index panic payload. Called with `n >= 2` and
/// `target_workers >= 2` (the serial path lives in `lib.rs`).
pub(crate) fn run_job<R, F>(n: usize, target_workers: usize, f: &F) -> Result<Vec<R>, FirstPanic>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let pool = pool();
    ensure_workers(pool, target_workers.saturating_sub(1));

    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let header = JobHeader {
        remaining: AtomicUsize::new(n),
        panic: Mutex::new(None),
        span_ctx: mmwave_telemetry::current_path(),
    };

    let f_addr = f as *const F as usize;
    let slots_addr = slots.as_ptr() as usize;
    let header_addr = &header as *const JobHeader as usize;
    for index in 0..n {
        pool.injector.push(Task {
            run: run_task::<R, F>,
            f_addr,
            slots_addr,
            header_addr,
            index,
        });
    }
    mmwave_telemetry::counter("exec.jobs", 1);
    mmwave_telemetry::counter("exec.tasks", n as u64);
    mmwave_telemetry::gauge("exec.queue_depth", pool.injector.len() as f64);
    // Taking the sleep lock orders this notify after any in-flight
    // emptiness check, so no worker can check, miss the new batch, and
    // then sleep through the wakeup.
    {
        let _guard = pool.sleep_lock.lock();
        pool.sleep_cv.notify_all();
    }

    // Help drain the queue until every task of this job (plus any tasks
    // of other jobs we pick up along the way) has signed off.
    while header.remaining.load(Ordering::Acquire) > 0 {
        match steal_any(pool) {
            Some(task) => task.execute(),
            None => std::thread::yield_now(),
        }
    }

    if let Some(first) = header.panic.into_inner() {
        return Err(first);
    }
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        out.push(slot.into_inner().expect("task signed off without storing a result"));
    }
    Ok(out)
}

/// Grabs one task from the injector or any worker's local deque; used by
/// callers helping out (they have no local deque of their own).
fn steal_any(pool: &Pool) -> Option<Task> {
    loop {
        match pool.injector.steal() {
            Steal::Success(task) => return Some(task),
            Steal::Empty => break,
            Steal::Retry => {}
        }
    }
    for stealer in pool.stealers.read().iter() {
        loop {
            match stealer.steal() {
                Steal::Success(task) => return Some(task),
                Steal::Empty => break,
                Steal::Retry => {}
            }
        }
    }
    None
}

/// Lazily grows the background thread set to `target` threads. Threads
/// are detached and live for the process; an idle worker parks on the
/// condvar and costs nothing.
fn ensure_workers(pool: &'static Pool, target: usize) {
    let mut spawned = pool.spawned.lock();
    if *spawned >= target {
        return;
    }
    while *spawned < target {
        let index = *spawned;
        let local: Worker<Task> = Worker::new_fifo();
        pool.stealers.write().push(local.stealer());
        std::thread::Builder::new()
            .name(format!("mmwave-exec-{index}"))
            .spawn(move || worker_loop(pool, local, index))
            .expect("spawning an mmwave-exec worker thread failed");
        *spawned += 1;
    }
    mmwave_telemetry::gauge("exec.workers", (*spawned + 1) as f64);
}

fn worker_loop(pool: &'static Pool, local: Worker<Task>, index: usize) {
    mmwave_telemetry::debug!("mmwave-exec worker {index} online");
    loop {
        if let Some(task) = find_task(pool, &local, index) {
            task.execute();
            continue;
        }
        let mut guard = pool.sleep_lock.lock();
        // Re-check under the lock: submitters notify while holding it, so
        // either the queue is visibly non-empty here or the upcoming wait
        // will be woken. The timeout is belt-and-braces — the caller
        // helps drain regardless, so a missed wakeup costs latency only.
        if pool.injector.is_empty() {
            let _ = pool.sleep_cv.wait_for(&mut guard, Duration::from_millis(50));
        }
    }
}

/// Worker-side task discovery: local deque first, then batches from the
/// injector, then stealing from sibling workers.
fn find_task(pool: &Pool, local: &Worker<Task>, index: usize) -> Option<Task> {
    if let Some(task) = local.pop() {
        return Some(task);
    }
    loop {
        match pool.injector.steal_batch_and_pop(local) {
            Steal::Success(task) => return Some(task),
            Steal::Empty => break,
            Steal::Retry => {}
        }
    }
    for (si, stealer) in pool.stealers.read().iter().enumerate() {
        if si == index {
            continue;
        }
        loop {
            match stealer.steal() {
                Steal::Success(task) => return Some(task),
                Steal::Empty => break,
                Steal::Retry => {}
            }
        }
    }
    None
}
