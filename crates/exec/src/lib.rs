//! Deterministic parallel execution runtime for the mmWave pipeline.
//!
//! `mmwave-exec` is a std+crossbeam work-stealing thread pool wrapped in
//! scoped data-parallel primitives: [`par_map`] (input-order-preserving),
//! [`par_map_range`], [`par_chunks`], and [`par_reduce`]. The global pool
//! is sized by `MMWAVE_WORKERS` (default: available parallelism; `1` is an
//! exact serial fallback that never touches the pool), overridable per
//! process with [`configure_workers`] and per scope with [`with_workers`].
//!
//! # Determinism contract
//!
//! Every primitive in this crate upholds one invariant: **outputs are a
//! pure function of the inputs, independent of worker count and
//! scheduling**. Concretely:
//!
//! * results are collected *in input order* — `par_map(xs, f)[i]` is
//!   `f(i, &xs[i])`, so downstream floating-point folds see the same
//!   operand order a serial loop would;
//! * [`par_reduce`] maps in parallel but folds the per-item results
//!   serially in input order (floating-point addition is not associative;
//!   a tree reduction would drift);
//! * call sites that need randomness derive one RNG stream per item from
//!   `(seed, item_index)` ([`derive_seed`]) instead of sharing a
//!   sequentially-drawn RNG across items.
//!
//! Under this contract `MMWAVE_WORKERS=1` and `MMWAVE_WORKERS=64` produce
//! byte-identical artifacts; `tests/determinism.rs` pins that down.
//!
//! # Panic handling
//!
//! Worker panics never abort the pool and never poison other jobs: each
//! task runs under `catch_unwind`, the first-by-index panic is captured,
//! and [`try_par_map`] surfaces it as a typed [`ExecError`] while
//! [`par_map`] re-raises the original payload on the caller thread once
//! the job has fully drained (so `std::panic::catch_unwind` callers — e.g.
//! the campaign runner — observe exactly the serial behavior).
//!
//! # Scheduling
//!
//! Jobs are pushed to a global [`crossbeam::deque::Injector`]; workers
//! move batches into per-thread local deques and steal from each other
//! when idle. The *caller* also helps drain the queue while waiting for
//! its job, so a job always completes even with zero background workers
//! (single-core hosts) and nested `par_map` calls cannot deadlock.
//!
//! # Telemetry
//!
//! The pool reports `exec.workers` / `exec.queue_depth` gauges, an
//! `exec.task_ms` latency histogram, and `exec.jobs` / `exec.tasks` /
//! `exec.task_panics` counters. Each job captures the submitting thread's
//! open span path (`mmwave_telemetry::current_path`) and every task
//! replays it on its executing thread (`enter_context`), so spans opened
//! inside a task nest under the same `/`-joined path they would in a
//! serial run — span profiles and trace timelines are worker-count-stable
//! in structure.

mod pool;

use std::any::Any;
use std::panic::resume_unwind;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The smallest panicking input index and its original payload.
pub(crate) type FirstPanic = (usize, Box<dyn Any + Send>);

/// Hard upper bound on the worker count; protects against pathological
/// `MMWAVE_WORKERS` values.
pub const MAX_WORKERS: usize = 256;

/// Env var controlling the default worker count.
pub const WORKERS_ENV: &str = "MMWAVE_WORKERS";

/// Process-wide override set by [`configure_workers`]; `0` means "unset,
/// fall back to `MMWAVE_WORKERS` / available parallelism".
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Scope-local override set by [`with_workers`]; `0` means no override.
    static SCOPE_WORKERS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Typed error surfaced by [`try_par_map`] and friends when a task panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A task panicked. `index` is the smallest input index whose task
    /// panicked (deterministic: the one a serial loop would hit first
    /// among the observed panics), `message` the stringified payload.
    TaskPanicked {
        /// Input index of the panicking task.
        index: usize,
        /// Panic payload rendered as a string (`&str` / `String`
        /// payloads verbatim; anything else is opaque).
        message: String,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::TaskPanicked { index, message } => {
                write!(f, "parallel task {index} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Renders a panic payload the way the campaign journal does.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Derives an independent 64-bit seed for item `index` of a job seeded
/// with `seed` (splitmix64 finalizer over a golden-ratio stride). Parallel
/// call sites use this instead of drawing sequentially from one shared
/// RNG, so item `index` gets the same stream no matter which worker runs
/// it or how many items precede it.
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Default worker count: `MMWAVE_WORKERS` if set and valid, else the
/// host's available parallelism. Read once per process.
fn env_default_workers() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(raw) = std::env::var(WORKERS_ENV) {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n >= 1 {
                    return n.min(MAX_WORKERS);
                }
            }
            mmwave_telemetry::warn!(
                "ignoring invalid {WORKERS_ENV}={raw:?}; using available parallelism"
            );
        }
        std::thread::available_parallelism().map_or(1, |n| n.get().min(MAX_WORKERS))
    })
}

/// The effective worker count for parallel primitives called from this
/// thread: the innermost [`with_workers`] scope, else the process-wide
/// [`configure_workers`] value, else `MMWAVE_WORKERS` / available
/// parallelism.
pub fn workers() -> usize {
    let scoped = SCOPE_WORKERS.with(|w| w.get());
    if scoped != 0 {
        return scoped;
    }
    let configured = CONFIGURED.load(Ordering::Relaxed);
    if configured != 0 {
        return configured;
    }
    env_default_workers()
}

/// Sets the process-wide worker count (the CLI `--workers` flag lands
/// here). Values are clamped to `1..=MAX_WORKERS`.
pub fn configure_workers(n: usize) {
    CONFIGURED.store(n.clamp(1, MAX_WORKERS), Ordering::Relaxed);
}

/// Runs `f` with the worker count overridden to `n` on this thread
/// (restored afterwards, panic-safe). With `n == 1` every primitive takes
/// the exact serial path inline on the calling thread; either way outputs
/// are identical by the determinism contract — this exists so tests can
/// exercise both paths in one process.
pub fn with_workers<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            SCOPE_WORKERS.with(|w| w.set(self.0));
        }
    }
    let prev = SCOPE_WORKERS.with(|w| w.get());
    let _restore = Restore(prev);
    SCOPE_WORKERS.with(|w| w.set(n.clamp(1, MAX_WORKERS)));
    f()
}

/// Core primitive: evaluates `f(0..n)` (in parallel when the effective
/// worker count exceeds 1) and returns the results in index order, or the
/// first-by-index panic payload.
fn try_run<R, F>(n: usize, f: &F) -> Result<Vec<R>, FirstPanic>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let w = workers();
    if w <= 1 || n <= 1 {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))) {
                Ok(r) => out.push(r),
                Err(payload) => return Err((i, payload)),
            }
        }
        return Ok(out);
    }
    pool::run_job(n, w, f)
}

/// Maps `f(i)` over `0..n` in parallel, returning results in index order.
/// Panics in tasks are re-raised (original payload) on the caller thread.
pub fn par_map_range<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    match try_run(n, &f) {
        Ok(out) => out,
        Err((_, payload)) => resume_unwind(payload),
    }
}

/// Maps `f(i, &items[i])` over a slice in parallel, returning results in
/// input order. Panics in tasks are re-raised on the caller thread.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_range(items.len(), |i| f(i, &items[i]))
}

/// Fallible [`par_map`]: a panicking task yields `Err(ExecError)` instead
/// of unwinding, and the pool stays healthy for subsequent jobs.
pub fn try_par_map<T, R, F>(items: &[T], f: F) -> Result<Vec<R>, ExecError>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    try_run(items.len(), &|i| f(i, &items[i])).map_err(|(index, payload)| {
        ExecError::TaskPanicked { index, message: panic_message(payload.as_ref()) }
    })
}

/// Fallible [`par_map_range`].
pub fn try_par_map_range<R, F>(n: usize, f: F) -> Result<Vec<R>, ExecError>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    try_run(n, &f).map_err(|(index, payload)| ExecError::TaskPanicked {
        index,
        message: panic_message(payload.as_ref()),
    })
}

/// Maps `f(chunk_index, chunk)` over `chunk_size`-sized chunks of a slice
/// (last chunk may be shorter), returning per-chunk results in order.
pub fn par_chunks<T, R, F>(items: &[T], chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let n_chunks = items.len().div_ceil(chunk_size);
    par_map_range(n_chunks, |ci| {
        let start = ci * chunk_size;
        let end = (start + chunk_size).min(items.len());
        f(ci, &items[start..end])
    })
}

/// Maps `map(i, &items[i])` in parallel, then folds the per-item results
/// **serially in input order** starting from `identity`. The serial fold
/// keeps floating-point accumulation order identical to a sequential
/// loop, which is what makes reductions byte-stable across worker counts.
pub fn par_reduce<T, R, F, G>(items: &[T], identity: R, map: F, fold: G) -> R
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    G: Fn(R, R) -> R,
{
    par_map(items, map).into_iter().fold(identity, fold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = with_workers(4, || par_map(&items, |i, &x| x * 2 + i as u64));
        let expected: Vec<u64> = items.iter().enumerate().map(|(i, &x)| x * 2 + i as u64).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let items: Vec<f64> = (0..100).map(|i| i as f64 * 0.37).collect();
        let serial = with_workers(1, || par_map(&items, |i, &x| (x.sin() * i as f64).to_bits()));
        let parallel = with_workers(4, || par_map(&items, |i, &x| (x.sin() * i as f64).to_bits()));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn par_reduce_folds_in_input_order() {
        let items: Vec<f64> = (0..1000).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let serial: f64 = items.iter().sum();
        let reduced = with_workers(4, || par_reduce(&items, 0.0, |_, &x| x, |a, b| a + b));
        assert_eq!(serial.to_bits(), reduced.to_bits());
    }

    #[test]
    fn par_chunks_covers_every_item_once() {
        let items: Vec<usize> = (0..103).collect();
        let chunks = with_workers(4, || par_chunks(&items, 10, |_, c| c.to_vec()));
        assert_eq!(chunks.len(), 11);
        assert_eq!(chunks.last().unwrap().len(), 3);
        let flat: Vec<usize> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, items);
    }

    #[test]
    fn panicking_task_poisons_only_its_job() {
        let items: Vec<usize> = (0..64).collect();
        let err = with_workers(4, || {
            try_par_map(&items, |_, &x| {
                if x == 13 {
                    panic!("task 13 failed");
                }
                x * 2
            })
        })
        .unwrap_err();
        assert_eq!(
            err,
            ExecError::TaskPanicked { index: 13, message: "task 13 failed".to_string() }
        );
        // The pool survives: the next job on the same global pool succeeds.
        let ok = with_workers(4, || try_par_map(&items, |_, &x| x + 1)).unwrap();
        assert_eq!(ok, (1..=64).collect::<Vec<usize>>());
    }

    #[test]
    fn first_by_index_panic_wins() {
        let items: Vec<usize> = (0..64).collect();
        let err = with_workers(4, || {
            try_par_map(&items, |_, &x| {
                if x % 7 == 5 {
                    panic!("boom at {x}");
                }
                x
            })
        })
        .unwrap_err();
        assert_eq!(err, ExecError::TaskPanicked { index: 5, message: "boom at 5".to_string() });
    }

    #[test]
    fn par_map_resumes_original_panic_payload() {
        let caught = std::panic::catch_unwind(|| {
            with_workers(4, || {
                par_map_range(8, |i| {
                    if i == 3 {
                        std::panic::panic_any("typed payload".to_string());
                    }
                    i
                })
            })
        })
        .unwrap_err();
        assert_eq!(caught.downcast_ref::<String>().map(String::as_str), Some("typed payload"));
    }

    #[test]
    fn nested_par_map_completes() {
        let out = with_workers(4, || {
            par_map_range(8, |i| par_map_range(8, move |j| i * 8 + j).iter().sum::<usize>())
        });
        let expected: Vec<usize> = (0..8).map(|i| (0..8).map(|j| i * 8 + j).sum()).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[41u8], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn with_workers_restores_on_panic() {
        let before = workers();
        let _ = std::panic::catch_unwind(|| with_workers(3, || panic!("inner")));
        assert_eq!(workers(), before);
    }

    #[test]
    fn derive_seed_decorrelates_indices_and_seeds() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..8u64 {
            for index in 0..64u64 {
                assert!(seen.insert(derive_seed(seed, index)), "collision at {seed}/{index}");
            }
        }
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
    }

    #[test]
    fn tasks_inherit_the_submitters_span_context() {
        let outer = mmwave_telemetry::span_at("exec_ctx_test", mmwave_telemetry::Level::Debug);
        // Only assert when telemetry is enabled in this environment.
        if outer.path().is_some() {
            let paths = with_workers(4, || {
                par_map_range(8, |_| {
                    let inner = mmwave_telemetry::span("exec_ctx_inner");
                    inner.path().map(str::to_string)
                })
            });
            for path in paths {
                assert_eq!(
                    path.as_deref(),
                    Some("exec_ctx_test/exec_ctx_inner"),
                    "pool tasks must nest spans under the submitter's path"
                );
            }
        }
        drop(outer);
    }

    #[test]
    fn configure_workers_clamps() {
        // Scoped override shadows the global config, so this test does not
        // disturb concurrently running tests that use with_workers.
        with_workers(2, || assert_eq!(workers(), 2));
        with_workers(100_000, || assert_eq!(workers(), MAX_WORKERS));
    }
}
