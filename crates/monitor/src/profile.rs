//! The clean reference profile: what the model's verdict stream looks
//! like when nobody is wearing a trigger.
//!
//! Captured once by `mmwave profile` from traffic that is clean by
//! construction ([`crate::capture_profile`] forces `poison_frac = 0`),
//! then persisted through the `store` envelope so a corrupt or stale
//! baseline fails loudly instead of silently mis-scoring drift.

use std::path::Path;

use mmwave_store::{load_json, save_json_atomic, StoreError};
use serde::{Deserialize, Serialize};

/// Bins for the confidence distribution over [0, 1].
pub const CONF_BINS: usize = 32;

/// Bins for the trigger-detector score distribution over [0, 1]. Finer
/// than confidence because the backdoor heuristic keys on *tail* bins
/// the clean reference never populated.
pub const SCORE_BINS: usize = 64;

/// Bins a value in [0, 1] into one of `bins` equal-width buckets
/// (clamping out-of-range and NaN to the edges).
pub fn bin_of(value: f64, bins: usize) -> usize {
    if !(value > 0.0) {
        return 0; // negatives and NaN clamp to the first bin
    }
    ((value * bins as f64) as usize).min(bins - 1)
}

/// Per-class rates, confidence histogram, and trigger-score histogram
/// of a known-clean verdict stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReferenceProfile {
    /// Profile schema version (bumped on incompatible changes).
    pub schema_version: u32,
    /// Loadgen seed the baseline was captured with.
    pub seed: u64,
    /// Sessions in the capture run.
    pub sessions: usize,
    /// Total verdicts observed.
    pub verdicts: u64,
    /// Classes the deployed model predicts over.
    pub n_classes: usize,
    /// Verdict count per predicted class.
    pub class_counts: Vec<u64>,
    /// Binned softmax-confidence counts ([`CONF_BINS`] over [0, 1]).
    pub confidence_bins: Vec<u64>,
    /// Binned trigger-detector score counts ([`SCORE_BINS`] over [0, 1]).
    pub score_bins: Vec<u64>,
}

impl ReferenceProfile {
    /// An empty profile ready to observe a clean stream.
    pub fn new(seed: u64, sessions: usize, n_classes: usize) -> ReferenceProfile {
        ReferenceProfile {
            schema_version: 1,
            seed,
            sessions,
            verdicts: 0,
            n_classes: n_classes.max(1),
            class_counts: vec![0; n_classes.max(1)],
            confidence_bins: vec![0; CONF_BINS],
            score_bins: vec![0; SCORE_BINS],
        }
    }

    /// Folds one verdict into the baseline.
    pub fn observe(&mut self, label: usize, confidence: f64, score: f64) {
        self.verdicts += 1;
        self.class_counts[label.min(self.n_classes - 1)] += 1;
        self.confidence_bins[bin_of(confidence, CONF_BINS)] += 1;
        self.score_bins[bin_of(score, SCORE_BINS)] += 1;
    }

    /// Per-class prediction rates (all zeros before any verdict).
    pub fn class_rates(&self) -> Vec<f64> {
        normalized(&self.class_counts, self.verdicts)
    }

    /// Normalized confidence distribution.
    pub fn confidence_dist(&self) -> Vec<f64> {
        normalized(&self.confidence_bins, self.verdicts)
    }

    /// Normalized trigger-score distribution.
    pub fn score_dist(&self) -> Vec<f64> {
        normalized(&self.score_bins, self.verdicts)
    }

    /// Rejects profiles that cannot score a stream: empty captures or
    /// histograms whose shape disagrees with this build's binning.
    pub fn validate(&self) -> Result<(), crate::MonitorError> {
        if self.verdicts == 0 {
            return Err(crate::MonitorError::Profile(
                "reference profile observed zero verdicts".into(),
            ));
        }
        if self.n_classes == 0 || self.class_counts.len() != self.n_classes {
            return Err(crate::MonitorError::Profile(format!(
                "class histogram has {} bins for {} classes",
                self.class_counts.len(),
                self.n_classes
            )));
        }
        if self.confidence_bins.len() != CONF_BINS || self.score_bins.len() != SCORE_BINS {
            return Err(crate::MonitorError::Profile(format!(
                "histogram shape {}/{} does not match this build's {}/{} binning",
                self.confidence_bins.len(),
                self.score_bins.len(),
                CONF_BINS,
                SCORE_BINS
            )));
        }
        Ok(())
    }

    /// Saves the profile as a checksummed atomic artifact.
    pub fn save(&self, path: &Path) -> Result<(), StoreError> {
        save_json_atomic(path, self)
    }

    /// Loads a previously saved profile, verifying its checksum.
    pub fn load(path: &Path) -> Result<ReferenceProfile, StoreError> {
        Ok(load_json::<ReferenceProfile>(path)?.value)
    }
}

/// Counts divided by `total` (zeros when the stream was empty).
fn normalized(counts: &[u64], total: u64) -> Vec<f64> {
    if total == 0 {
        return vec![0.0; counts.len()];
    }
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_of_clamps_edges_and_nan() {
        assert_eq!(bin_of(-0.5, 10), 0);
        assert_eq!(bin_of(0.0, 10), 0);
        assert_eq!(bin_of(0.05, 10), 0);
        assert_eq!(bin_of(0.95, 10), 9);
        assert_eq!(bin_of(1.0, 10), 9);
        assert_eq!(bin_of(7.3, 10), 9);
        assert_eq!(bin_of(f64::NAN, 10), 0);
    }

    #[test]
    fn observe_accumulates_and_rates_normalize() {
        let mut p = ReferenceProfile::new(7, 4, 3);
        p.observe(0, 0.9, 0.1);
        p.observe(0, 0.8, 0.2);
        p.observe(2, 0.7, 0.3);
        p.observe(99, 0.6, 0.4); // out-of-range label clamps to last class
        assert_eq!(p.verdicts, 4);
        assert_eq!(p.class_counts, vec![2, 0, 2]);
        let rates = p.class_rates();
        assert!((rates[0] - 0.5).abs() < 1e-12);
        assert!((rates.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((p.confidence_dist().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((p.score_dist().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_empty_and_misshapen() {
        let p = ReferenceProfile::new(7, 4, 3);
        assert!(p.validate().is_err(), "empty profile must not validate");
        let mut p = ReferenceProfile::new(7, 4, 3);
        p.observe(0, 0.9, 0.1);
        assert!(p.validate().is_ok());
        p.score_bins.pop();
        assert!(p.validate().is_err(), "misshapen histogram must not validate");
    }

    #[test]
    fn profile_round_trips_through_store() {
        let mut p = ReferenceProfile::new(42, 8, 6);
        for i in 0..20 {
            p.observe(i % 6, 0.5 + 0.02 * i as f64, 0.05 * (i % 7) as f64);
        }
        let path = std::env::temp_dir()
            .join(format!("mmwave_monitor_profile_{}.json", std::process::id()));
        p.save(&path).expect("profile saves");
        let back = ReferenceProfile::load(&path).expect("profile loads");
        assert_eq!(p, back);
        let _ = std::fs::remove_file(&path);
    }
}
