//! The online monitoring engine: fold verdicts in, get drift scores and
//! alerts out.
//!
//! Windowing is count-based — every `window` verdicts a window closes,
//! is scored against the reference ([`crate::drift`]), and runs through
//! the alert rules. Each rule keeps a *sustain streak*: an alert fires
//! only on the `sustain`-th consecutive over-threshold window, and can
//! fire again only after the streak breaks and rebuilds. Rules are
//! evaluated in a fixed order, so the alert stream is as deterministic
//! as the verdict stream feeding it.

use mmwave_body::Activity;
use mmwave_telemetry::{counter, gauge, WindowedHistogram};

use crate::alert::{Alert, AlertKind};
use crate::drift::{score_window, DriftScores};
use crate::profile::{bin_of, ReferenceProfile, CONF_BINS, SCORE_BINS};
use crate::{MonitorConfig, MonitorError};

/// Monitor windows the trigger-score [`WindowedHistogram`] spans: the
/// `monitor.score_p99` gauge reflects the last four windows, not the
/// whole run.
const SCORE_HISTORY_WINDOWS: usize = 4;

/// Rules in evaluation (and therefore alert-emission) order.
const RULES: [AlertKind; 4] = [
    AlertKind::ClassDrift,
    AlertKind::ConfidenceDrift,
    AlertKind::TriggerTail,
    AlertKind::Backdoor,
];

/// The online model-health engine. Construct via [`Monitor::new`], feed
/// every verdict to [`Monitor::observe`], and collect the alerts it
/// returns as windows close.
#[derive(Debug)]
pub struct Monitor {
    cfg: MonitorConfig,
    reference: ReferenceProfile,
    class_counts: Vec<u64>,
    confidence_bins: Vec<u64>,
    score_bins: Vec<u64>,
    in_window: u64,
    verdicts_seen: u64,
    windows_closed: u64,
    streaks: [usize; RULES.len()],
    score_history: WindowedHistogram,
    last_drift: Option<DriftScores>,
}

impl Monitor {
    /// Builds an engine for a validated config (with `window` already
    /// resolved to a positive count — 0 is the harness's auto sentinel,
    /// not a runnable value) and a validated reference profile.
    pub fn new(cfg: MonitorConfig, reference: ReferenceProfile) -> Result<Monitor, MonitorError> {
        cfg.validate()?;
        if cfg.window == 0 {
            return Err(MonitorError::Config(
                "window 0 (auto) must be resolved to a verdict count before monitoring".into(),
            ));
        }
        reference.validate()?;
        let n_classes = reference.n_classes;
        Ok(Monitor {
            cfg,
            reference,
            class_counts: vec![0; n_classes],
            confidence_bins: vec![0; CONF_BINS],
            score_bins: vec![0; SCORE_BINS],
            in_window: 0,
            verdicts_seen: 0,
            windows_closed: 0,
            streaks: [0; RULES.len()],
            score_history: WindowedHistogram::new(SCORE_HISTORY_WINDOWS),
            last_drift: None,
        })
    }

    /// Folds one verdict in. Returns the alerts fired by the window this
    /// verdict closed — almost always empty.
    pub fn observe(&mut self, label: usize, confidence: f64, score: f64) -> Vec<Alert> {
        counter("monitor.verdicts", 1);
        self.class_counts[label.min(self.reference.n_classes - 1)] += 1;
        self.confidence_bins[bin_of(confidence, CONF_BINS)] += 1;
        self.score_bins[bin_of(score, SCORE_BINS)] += 1;
        self.score_history.record(score);
        self.in_window += 1;
        self.verdicts_seen += 1;
        if self.in_window < self.cfg.window as u64 {
            return Vec::new();
        }
        self.close_window()
    }

    /// Drift scores of the most recently closed window.
    pub fn last_drift(&self) -> Option<&DriftScores> {
        self.last_drift.as_ref()
    }

    /// Windows scored so far.
    pub fn windows_closed(&self) -> u64 {
        self.windows_closed
    }

    /// Verdicts observed so far (including the open window).
    pub fn verdicts_seen(&self) -> u64 {
        self.verdicts_seen
    }

    /// The engine's (resolved) configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.cfg
    }

    /// The reference profile the engine scores against.
    pub fn reference(&self) -> &ReferenceProfile {
        &self.reference
    }

    fn close_window(&mut self) -> Vec<Alert> {
        let drift = score_window(
            &self.reference,
            &self.class_counts,
            &self.confidence_bins,
            &self.score_bins,
            self.windows_closed,
        );
        counter("monitor.windows", 1);
        gauge("monitor.class_psi", drift.class_psi);
        gauge("monitor.confidence_tv", drift.confidence_tv);
        gauge("monitor.trigger_tail", drift.trigger_tail);
        gauge("monitor.spike_delta", drift.spike_delta);
        gauge("monitor.score_p99", self.score_history.quantile(0.99));
        self.score_history.advance();

        let mut alerts = Vec::new();
        for (slot, kind) in RULES.iter().enumerate() {
            let (value, threshold, over, detail) = self.evaluate(*kind, &drift);
            if !over {
                self.streaks[slot] = 0;
                continue;
            }
            self.streaks[slot] += 1;
            if self.streaks[slot] != self.cfg.sustain {
                continue;
            }
            counter("monitor.alerts", 1);
            counter(&format!("monitor.alerts.{}", kind.name()), 1);
            mmwave_telemetry::warn!(
                "monitor alert {}: {detail} (window {}, {} verdicts)",
                kind.name(),
                drift.window_index,
                self.verdicts_seen
            );
            alerts.push(Alert {
                schema_version: 1,
                kind: *kind,
                window_index: drift.window_index,
                verdicts_seen: self.verdicts_seen,
                value,
                threshold,
                sustained: self.streaks[slot],
                detail,
            });
        }

        self.class_counts.iter_mut().for_each(|c| *c = 0);
        self.confidence_bins.iter_mut().for_each(|c| *c = 0);
        self.score_bins.iter_mut().for_each(|c| *c = 0);
        self.in_window = 0;
        self.windows_closed += 1;
        self.last_drift = Some(drift);
        alerts
    }

    /// One rule's (value, threshold, over?, detail) for a scored window.
    fn evaluate(&self, kind: AlertKind, drift: &DriftScores) -> (f64, f64, bool, String) {
        match kind {
            AlertKind::ClassDrift => (
                drift.class_psi,
                self.cfg.psi_threshold,
                drift.class_psi >= self.cfg.psi_threshold,
                format!("class-rate PSI {:.4} (chi2 {:.2})", drift.class_psi, drift.class_chi2),
            ),
            AlertKind::ConfidenceDrift => (
                drift.confidence_tv,
                self.cfg.conf_threshold,
                drift.confidence_tv >= self.cfg.conf_threshold,
                format!("confidence TV distance {:.4}", drift.confidence_tv),
            ),
            AlertKind::TriggerTail => (
                drift.trigger_tail,
                self.cfg.tail_threshold,
                drift.trigger_tail >= self.cfg.tail_threshold,
                format!("trigger-score tail mass {:.4}", drift.trigger_tail),
            ),
            AlertKind::Backdoor => {
                let over = drift.spike_delta >= self.cfg.spike_threshold
                    && drift.trigger_tail >= self.cfg.tail_threshold;
                let class = drift
                    .spike_class
                    .map(|c| {
                        if c < Activity::ALL.len() {
                            Activity::from_index(c).label().to_string()
                        } else {
                            format!("class {c}")
                        }
                    })
                    .unwrap_or_else(|| "no class".to_string());
                (
                    drift.spike_delta,
                    self.cfg.spike_threshold,
                    over,
                    format!(
                        "{class} rate +{:.4} with trigger tail {:.4}",
                        drift.spike_delta, drift.trigger_tail
                    ),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reference where class 0 and 1 split evenly, confidence sits at
    /// 0.8, and trigger scores sit at 0.2.
    fn reference() -> ReferenceProfile {
        let mut p = ReferenceProfile::new(7, 4, 3);
        for _ in 0..50 {
            p.observe(0, 0.8, 0.2);
            p.observe(1, 0.8, 0.2);
        }
        p
    }

    fn config(window: usize, sustain: usize) -> MonitorConfig {
        MonitorConfig { window, sustain, ..Default::default() }
    }

    #[test]
    fn construction_rejects_unresolved_window_and_empty_reference() {
        assert!(Monitor::new(config(0, 2), reference()).is_err());
        let empty = ReferenceProfile::new(7, 4, 3);
        assert!(Monitor::new(config(10, 2), empty).is_err());
    }

    #[test]
    fn matching_stream_scores_zero_and_stays_quiet() {
        let mut m = Monitor::new(config(10, 1), reference()).expect("monitor builds");
        let mut fired = 0;
        for _ in 0..3 {
            for _ in 0..5 {
                fired += m.observe(0, 0.8, 0.2).len();
                fired += m.observe(1, 0.8, 0.2).len();
            }
        }
        assert_eq!(fired, 0, "clean replay of the reference mix must not alert");
        assert_eq!(m.windows_closed(), 3);
        let d = m.last_drift().expect("window closed");
        assert_eq!(d.class_psi, 0.0);
        assert_eq!(d.confidence_tv, 0.0);
        assert_eq!(d.trigger_tail, 0.0);
        assert_eq!(d.spike_delta, 0.0);
    }

    #[test]
    fn backdoor_fires_only_on_spike_with_tail() {
        // Flip 30% of verdicts to class 2 *and* push their trigger
        // scores into reference-empty territory (0.9).
        let mut m = Monitor::new(config(10, 2), reference()).expect("monitor builds");
        let mut backdoor = 0;
        let mut first_fire_window = None;
        for w in 0..4 {
            for i in 0..10 {
                let alerts = if i < 3 {
                    m.observe(2, 0.8, 0.9)
                } else if i % 2 == 0 {
                    m.observe(0, 0.8, 0.2)
                } else {
                    m.observe(1, 0.8, 0.2)
                };
                for a in alerts {
                    if a.kind == AlertKind::Backdoor {
                        backdoor += 1;
                        first_fire_window.get_or_insert(w);
                        assert!(a.value >= a.threshold);
                        assert_eq!(a.sustained, 2);
                        assert!(a.detail.contains("Left Swipe"), "detail: {}", a.detail);
                    }
                }
            }
        }
        assert_eq!(backdoor, 1, "sustained streak fires exactly once");
        assert_eq!(first_fire_window, Some(1), "fires on the sustain-th window");
    }

    #[test]
    fn spike_without_tail_does_not_convict() {
        // Rate spike to class 2 but scores stay in clean territory:
        // class drift may trip, the backdoor rule must not.
        let mut m = Monitor::new(config(10, 1), reference()).expect("monitor builds");
        for _ in 0..3 {
            for i in 0..10 {
                let alerts =
                    if i < 3 { m.observe(2, 0.8, 0.2) } else { m.observe(0, 0.8, 0.2) };
                assert!(
                    alerts.iter().all(|a| a.kind != AlertKind::Backdoor),
                    "no tail inflation → no backdoor alert"
                );
            }
        }
    }

    #[test]
    fn streak_resets_when_a_window_recovers() {
        let mut m = Monitor::new(config(10, 2), reference()).expect("monitor builds");
        let poisoned = |m: &mut Monitor| -> usize {
            let mut fired = 0;
            for i in 0..10 {
                let obs = if i < 3 { m.observe(2, 0.8, 0.9) } else { m.observe(0, 0.8, 0.2) };
                fired += obs.iter().filter(|a| a.kind == AlertKind::Backdoor).count();
            }
            fired
        };
        let clean = |m: &mut Monitor| {
            for _ in 0..5 {
                assert!(m.observe(0, 0.8, 0.2).is_empty());
                assert!(m.observe(1, 0.8, 0.2).is_empty());
            }
        };
        assert_eq!(poisoned(&mut m), 0, "streak 1 of 2: no alert yet");
        clean(&mut m); // streak broken
        assert_eq!(poisoned(&mut m), 0, "streak rebuilt to 1: still quiet");
        assert_eq!(poisoned(&mut m), 1, "streak reaches sustain again: fires");
    }
}
