//! Typed alert records for the `alerts.jsonl` audit sink.
//!
//! Alerts deliberately carry **no wall-clock fields**: every field is a
//! deterministic function of the (seeded) verdict stream, so for a
//! fixed seed the audit log is bit-identical at any worker count — the
//! same contract the serve layer makes for verdicts. Position in the
//! stream is expressed by window index and cumulative verdict count.

use serde::{Deserialize, Serialize};

/// Which alert rule fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum AlertKind {
    /// Per-class prediction rates diverged (PSI over threshold).
    ClassDrift,
    /// The confidence distribution moved (total variation over
    /// threshold).
    ConfidenceDrift,
    /// Trigger-detector scores are landing in bins clean traffic never
    /// produced.
    TriggerTail,
    /// The backdoor heuristic: a target-class rate spike co-occurring
    /// with trigger-score tail inflation.
    Backdoor,
}

impl AlertKind {
    /// Stable snake_case name, used for `monitor.alerts.<kind>`
    /// counters and log lines.
    pub fn name(&self) -> &'static str {
        match self {
            AlertKind::ClassDrift => "class_drift",
            AlertKind::ConfidenceDrift => "confidence_drift",
            AlertKind::TriggerTail => "trigger_tail",
            AlertKind::Backdoor => "backdoor",
        }
    }
}

/// One fired alert, as appended (CRC-framed) to `alerts.jsonl`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// Alert schema version (bumped on incompatible changes).
    pub schema_version: u32,
    /// The rule that fired.
    pub kind: AlertKind,
    /// Window whose evaluation completed the sustain streak.
    pub window_index: u64,
    /// Cumulative verdicts observed when the alert fired.
    pub verdicts_seen: u64,
    /// The rule's observed value in the firing window.
    pub value: f64,
    /// The threshold it exceeded.
    pub threshold: f64,
    /// Consecutive over-threshold windows behind this alert.
    pub sustained: usize,
    /// Human-readable context (spiking class, co-occurring tail mass).
    pub detail: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_serializes_snake_case_and_matches_name() {
        for kind in [
            AlertKind::ClassDrift,
            AlertKind::ConfidenceDrift,
            AlertKind::TriggerTail,
            AlertKind::Backdoor,
        ] {
            let json = serde_json::to_string(&kind).expect("serializes");
            assert_eq!(json, format!("\"{}\"", kind.name()));
            let back: AlertKind = serde_json::from_str(&json).expect("parses");
            assert_eq!(back, kind);
        }
    }

    #[test]
    fn alert_round_trips_and_is_single_line() {
        let alert = Alert {
            schema_version: 1,
            kind: AlertKind::Backdoor,
            window_index: 3,
            verdicts_seen: 80,
            value: 0.1,
            threshold: 0.08,
            sustained: 2,
            detail: "class 2 rate +0.100 with trigger tail 0.40".into(),
        };
        let json = serde_json::to_string(&alert).expect("serializes");
        assert!(!json.contains('\n'), "JSONL records must be single-line");
        let back: Alert = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, alert);
    }
}
