//! Pure drift arithmetic: how far a window's verdict distribution has
//! moved from the clean reference.
//!
//! Three families of signal, because the attack and benign drift leave
//! different fingerprints:
//!
//! - **Class-rate divergence** (PSI, chi-square): the backdoor's whole
//!   point is to move mass onto the target class, but environment shift
//!   also perturbs rates, so this alone cannot convict.
//! - **Confidence distance** (total variation): poisoned models stay
//!   *confident* in the flipped label, so a rate spike with an unmoved
//!   confidence distribution is more suspicious than one accompanied by
//!   a collapse (which smells like domain shift).
//! - **Trigger-score tail mass**: the fraction of a window's
//!   trigger-detector scores landing in bins the clean reference left
//!   *empty*. A worn reflector pushes scores into score territory clean
//!   traffic never visits; benign drift mostly reshuffles mass among
//!   already-populated bins.
//!
//! The backdoor heuristic in [`crate::Monitor`] requires the spike and
//! the tail together.

use serde::{Deserialize, Serialize};

use crate::profile::ReferenceProfile;

/// Floor applied to probabilities inside [`psi`] so empty bins do not
/// blow the logarithm up to infinity. ([`chi_square`] instead *excludes*
/// reference-empty classes — see its docs.)
const EPS: f64 = 1e-6;

/// One window's divergence from the reference profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftScores {
    /// Zero-based index of the window (windows close every `window`
    /// verdicts).
    pub window_index: u64,
    /// Verdicts in this window.
    pub verdicts: u64,
    /// Population-stability index over per-class prediction rates.
    pub class_psi: f64,
    /// Chi-square statistic over per-class prediction counts.
    pub class_chi2: f64,
    /// Total-variation distance between confidence distributions.
    pub confidence_tv: f64,
    /// Fraction of trigger scores in bins the reference never touched.
    pub trigger_tail: f64,
    /// Class with the largest rate increase over the reference, if any
    /// class rate rose at all.
    pub spike_class: Option<usize>,
    /// That largest rate increase (0 when no class rose).
    pub spike_delta: f64,
}

/// Scores one closed window (class counts, confidence bins, score bins)
/// against the reference.
pub fn score_window(
    reference: &ReferenceProfile,
    class_counts: &[u64],
    confidence_bins: &[u64],
    score_bins: &[u64],
    window_index: u64,
) -> DriftScores {
    let verdicts: u64 = class_counts.iter().sum();
    let win_rates = normalized(class_counts, verdicts);
    let ref_rates = reference.class_rates();
    let (spike_class, spike_delta) = largest_spike(&ref_rates, &win_rates);
    DriftScores {
        window_index,
        verdicts,
        class_psi: psi(&ref_rates, &win_rates),
        class_chi2: chi_square(&ref_rates, &win_rates, verdicts),
        confidence_tv: total_variation(
            &reference.confidence_dist(),
            &normalized(confidence_bins, verdicts),
        ),
        trigger_tail: tail_mass(&reference.score_bins, score_bins),
        spike_class,
        spike_delta,
    }
}

/// Population-stability index: `Σ (p_w - p_r) * ln(p_w / p_r)` with
/// probabilities floored at [`EPS`]. Zero iff the distributions match.
pub fn psi(reference: &[f64], window: &[f64]) -> f64 {
    reference
        .iter()
        .zip(window)
        .map(|(&r, &w)| {
            let r = r.max(EPS);
            let w = w.max(EPS);
            (w - r) * (w / r).ln()
        })
        .sum()
}

/// Chi-square statistic `n * Σ (p_w - p_r)^2 / p_r` over the classes
/// the reference actually predicts (`p_r > 0`).
///
/// Classes with zero reference mass are excluded rather than floored:
/// dividing by an [`EPS`] floor would turn any window mass on a
/// never-predicted class into a statistic on the order of `1e6 * n` —
/// astronomically large and uninterpretable in an alert detail. Novel
/// mass is not lost by the exclusion: it depresses the rates of the
/// reference-supported classes (which this statistic does see), and
/// landing in reference-empty territory is precisely what
/// [`tail_mass`] and [`largest_spike`] report directly.
pub fn chi_square(reference: &[f64], window: &[f64], n: u64) -> f64 {
    let sum: f64 = reference
        .iter()
        .zip(window)
        .filter(|(&r, _)| r > 0.0)
        .map(|(&r, &w)| (w - r) * (w - r) / r)
        .sum();
    n as f64 * sum
}

/// Total-variation distance `0.5 * Σ |p - q|` between two distributions.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    0.5 * p.iter().zip(q).map(|(&a, &b)| (a - b).abs()).sum::<f64>()
}

/// Fraction of the window's score mass in bins whose *reference* count
/// is zero — exactly 0.0 when the window only visits score territory
/// the clean baseline has seen.
pub fn tail_mass(reference_bins: &[u64], window_bins: &[u64]) -> f64 {
    let total: u64 = window_bins.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let novel: u64 = reference_bins
        .iter()
        .zip(window_bins)
        .filter(|(&r, _)| r == 0)
        .map(|(_, &w)| w)
        .sum();
    novel as f64 / total as f64
}

/// The class whose rate rose the most over the reference, with the
/// increase; `(None, 0.0)` when no class rose.
pub fn largest_spike(reference: &[f64], window: &[f64]) -> (Option<usize>, f64) {
    let mut best: Option<usize> = None;
    let mut best_delta = 0.0;
    for (class, (&r, &w)) in reference.iter().zip(window).enumerate() {
        let delta = w - r;
        if delta > best_delta {
            best_delta = delta;
            best = Some(class);
        }
    }
    (best, best_delta)
}

/// Counts divided by `total` (zeros when the window was empty).
fn normalized(counts: &[u64], total: u64) -> Vec<f64> {
    if total == 0 {
        return vec![0.0; counts.len()];
    }
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_score_zero() {
        let p = [0.25, 0.25, 0.5];
        assert_eq!(psi(&p, &p), 0.0);
        assert_eq!(chi_square(&p, &p, 100), 0.0);
        assert_eq!(total_variation(&p, &p), 0.0);
    }

    #[test]
    fn psi_and_chi2_grow_with_divergence() {
        let r = [0.5, 0.5];
        let near = [0.55, 0.45];
        let far = [0.9, 0.1];
        assert!(psi(&r, &near) > 0.0);
        assert!(psi(&r, &far) > psi(&r, &near));
        assert!(chi_square(&r, &far, 100) > chi_square(&r, &near, 100));
    }

    #[test]
    fn chi2_stays_interpretable_when_mass_lands_on_a_reference_empty_class() {
        // 30% of a 200-verdict window flips to a class the reference
        // never predicted. The statistic must reflect the depressed
        // rates of the supported classes — not divide by an epsilon and
        // explode into the millions.
        let r = [0.5, 0.5, 0.0];
        let w = [0.35, 0.35, 0.3];
        let chi2 = chi_square(&r, &w, 200);
        // Supported classes only: 200 * 2 * (0.15^2 / 0.5) = 18.
        assert!((chi2 - 18.0).abs() < 1e-9, "chi2 = {chi2}");
        // All mass on the novel class: bounded by n * Σ p_r = n.
        let all_novel = chi_square(&r, &[0.0, 0.0, 1.0], 200);
        assert!((all_novel - 200.0).abs() < 1e-9, "chi2 = {all_novel}");
    }

    #[test]
    fn total_variation_is_half_l1() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert!((total_variation(&p, &q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tail_mass_counts_only_reference_empty_bins() {
        let reference = [10, 5, 0, 0];
        // All window mass in populated bins → no tail.
        assert_eq!(tail_mass(&reference, &[3, 2, 0, 0]), 0.0);
        // Half the window mass in reference-empty bins.
        assert!((tail_mass(&reference, &[1, 1, 1, 1]) - 0.5).abs() < 1e-12);
        // Empty window → no tail, no NaN.
        assert_eq!(tail_mass(&reference, &[0, 0, 0, 0]), 0.0);
    }

    #[test]
    fn largest_spike_finds_the_inflated_class() {
        let r = [0.3, 0.3, 0.4];
        let w = [0.2, 0.55, 0.25];
        let (class, delta) = largest_spike(&r, &w);
        assert_eq!(class, Some(1));
        assert!((delta - 0.25).abs() < 1e-12);
        // No class rose.
        assert_eq!(largest_spike(&r, &r), (None, 0.0));
    }

    #[test]
    fn score_window_on_matching_window_is_all_zero() {
        let mut reference = ReferenceProfile::new(7, 4, 3);
        for _ in 0..10 {
            reference.observe(0, 0.85, 0.2);
            reference.observe(1, 0.75, 0.3);
        }
        let mut class = vec![0u64; 3];
        let mut conf = vec![0u64; crate::CONF_BINS];
        let mut score = vec![0u64; crate::SCORE_BINS];
        for _ in 0..5 {
            for (label, c, s) in [(0usize, 0.85, 0.2), (1, 0.75, 0.3)] {
                class[label] += 1;
                conf[crate::profile::bin_of(c, crate::CONF_BINS)] += 1;
                score[crate::profile::bin_of(s, crate::SCORE_BINS)] += 1;
            }
        }
        let d = score_window(&reference, &class, &conf, &score, 3);
        assert_eq!(d.window_index, 3);
        assert_eq!(d.verdicts, 10);
        assert_eq!(d.class_psi, 0.0);
        assert_eq!(d.class_chi2, 0.0);
        assert_eq!(d.confidence_tv, 0.0);
        assert_eq!(d.trigger_tail, 0.0);
        assert_eq!(d.spike_delta, 0.0);
    }
}
