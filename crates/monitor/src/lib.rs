//! Model-health monitoring for the streaming inference service: is the
//! deployed HAR model behaving the way it did when it was known-clean?
//!
//! The serve layer (`mmwave-serve`) streams verdicts but nothing watches
//! *what the model is doing* — a physically triggered session (the
//! paper's worn-reflector threat) silently flips predictions to the
//! target class with no operational signal, even though the Section VII
//! trigger detector scores every clip. This crate closes that loop:
//!
//! - [`ReferenceProfile`]: a clean baseline captured by `mmwave profile`
//!   — per-class prediction rates, a binned confidence distribution, and
//!   the trigger-detector score distribution — persisted as a
//!   checksummed `store` artifact.
//! - [`DriftScores`]: per-window divergence from the reference —
//!   per-class rate PSI and chi-square, confidence total-variation
//!   distance, trigger-score *tail mass* (fraction of scores landing in
//!   bins the clean reference never touched), and the largest per-class
//!   rate spike.
//! - [`Monitor`]: the online engine. Feed it every verdict; each closed
//!   window is scored against the reference and run through the typed
//!   alert rules in [`MonitorConfig`]. The dedicated **backdoor rule**
//!   fires only when a target-class rate spike *co-occurs* with
//!   trigger-score tail inflation — benign environment drift moves one
//!   signal, a physical trigger moves both.
//! - [`Alert`]: what fires. Records carry no wall-clock fields, so the
//!   `alerts.jsonl` audit log (CRC-framed via `store`) is bit-identical
//!   across worker counts for a fixed seed.
//! - [`harness`]: glue that runs the load generator with a monitor
//!   attached ([`run_monitored`]) or captures a reference profile from
//!   provably clean traffic ([`capture_profile`]).
//!
//! Windowing is **count-based** (every `window` verdicts), never
//! wall-clock, inheriting the serve layer's determinism guarantees; the
//! sliding-window primitives live in `mmwave_telemetry::window`.
//!
//! # Environment
//!
//! | Variable | Effect |
//! |---|---|
//! | `MMWAVE_MONITOR_WINDOW` | Verdicts per scoring window (0 = auto: 2× sessions) |
//! | `MMWAVE_MONITOR_SUSTAIN` | Consecutive over-threshold windows before an alert fires (default 2) |
//! | `MMWAVE_MONITOR_PSI_THR` | Class-rate PSI alert threshold (default 0.2) |
//! | `MMWAVE_MONITOR_CONF_THR` | Confidence total-variation threshold (default 0.2) |
//! | `MMWAVE_MONITOR_TAIL_THR` | Trigger-score tail-mass threshold (default 0.05) |
//! | `MMWAVE_MONITOR_SPIKE_THR` | Per-class rate-spike threshold for the backdoor rule (default 0.08) |
//!
//! Invalid values fall back to defaults, warn, and bump
//! `monitor.config_invalid` — the same contract as `MMWAVE_SERVE_*`.

pub mod alert;
pub mod drift;
pub mod engine;
pub mod harness;
pub mod profile;

pub use alert::{Alert, AlertKind};
pub use drift::DriftScores;
pub use engine::Monitor;
pub use harness::{capture_profile, run_monitored, MonitorOutcome};
pub use profile::{ReferenceProfile, CONF_BINS, SCORE_BINS};

use std::fmt;

use mmwave_serve::ServeError;
use mmwave_store::StoreError;

/// Alert-rule knobs. Build with [`MonitorConfig::default`] or
/// [`MonitorConfig::from_env`]; the engine validates on construction.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MonitorConfig {
    /// Verdicts per scoring window. 0 means "auto": the harness resolves
    /// it to twice the session count, which makes every window contain
    /// each session the same number of times on an unshed stream.
    pub window: usize,
    /// Consecutive over-threshold windows a rule must see before its
    /// alert fires (debounces single-window blips).
    pub sustain: usize,
    /// Class-rate PSI above this sustains the class-drift rule.
    pub psi_threshold: f64,
    /// Confidence total-variation distance above this sustains the
    /// confidence-drift rule.
    pub conf_threshold: f64,
    /// Trigger-score tail mass above this sustains the trigger-tail
    /// rule (and is the backdoor rule's co-occurrence requirement).
    pub tail_threshold: f64,
    /// Largest single-class rate increase over the reference that,
    /// together with tail inflation, fires the backdoor rule.
    pub spike_threshold: f64,
}

impl Default for MonitorConfig {
    fn default() -> MonitorConfig {
        MonitorConfig {
            window: 0,
            sustain: 2,
            psi_threshold: 0.2,
            conf_threshold: 0.2,
            tail_threshold: 0.05,
            spike_threshold: 0.08,
        }
    }
}

impl MonitorConfig {
    /// Reads `MMWAVE_MONITOR_*` overrides on top of the defaults.
    /// Invalid values keep the default, warn, and bump
    /// `monitor.config_invalid`.
    pub fn from_env() -> MonitorConfig {
        let d = MonitorConfig::default();
        MonitorConfig {
            window: env_usize("MMWAVE_MONITOR_WINDOW", d.window, true),
            sustain: env_usize("MMWAVE_MONITOR_SUSTAIN", d.sustain, false),
            psi_threshold: env_f64("MMWAVE_MONITOR_PSI_THR", d.psi_threshold),
            conf_threshold: env_f64("MMWAVE_MONITOR_CONF_THR", d.conf_threshold),
            tail_threshold: env_f64("MMWAVE_MONITOR_TAIL_THR", d.tail_threshold),
            spike_threshold: env_f64("MMWAVE_MONITOR_SPIKE_THR", d.spike_threshold),
        }
    }

    /// Rejects configurations no rule could ever evaluate sanely.
    pub fn validate(&self) -> Result<(), MonitorError> {
        if self.sustain == 0 {
            return Err(MonitorError::Config("sustain must be at least 1".into()));
        }
        for (name, v) in [
            ("psi_threshold", self.psi_threshold),
            ("conf_threshold", self.conf_threshold),
            ("tail_threshold", self.tail_threshold),
            ("spike_threshold", self.spike_threshold),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(MonitorError::Config(format!(
                    "{name} {v} must be finite and positive"
                )));
            }
        }
        Ok(())
    }
}

/// Parses a non-negative-integer env override, falling back to
/// `default` (with a warning and a `monitor.config_invalid` bump) on
/// junk — and on zero too unless `allow_zero`.
fn env_usize(var: &str, default: usize, allow_zero: bool) -> usize {
    match std::env::var(var) {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(v) if v > 0 || allow_zero => v,
            _ => {
                mmwave_telemetry::counter("monitor.config_invalid", 1);
                mmwave_telemetry::warn!("ignoring invalid {var}={raw:?}; using {default}");
                default
            }
        },
        Err(_) => default,
    }
}

/// Parses a finite positive float env override, falling back to
/// `default` (with a warning and a `monitor.config_invalid` bump) on
/// junk, zero, negatives, or non-finite values.
fn env_f64(var: &str, default: f64) -> f64 {
    match std::env::var(var) {
        Ok(raw) => match raw.trim().parse::<f64>() {
            Ok(v) if v.is_finite() && v > 0.0 => v,
            _ => {
                mmwave_telemetry::counter("monitor.config_invalid", 1);
                mmwave_telemetry::warn!("ignoring invalid {var}={raw:?}; using {default}");
                default
            }
        },
        Err(_) => default,
    }
}

/// Why monitoring could not run.
#[derive(Debug)]
pub enum MonitorError {
    /// An alert-rule knob is impossible (zero sustain, non-positive
    /// threshold).
    Config(String),
    /// The reference profile is unusable (empty, shape mismatch with
    /// the deployed model).
    Profile(String),
    /// A durable artifact (profile, alert log) failed to read or write.
    Store(StoreError),
    /// The underlying service or load generator rejected its config.
    Serve(ServeError),
}

impl fmt::Display for MonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorError::Config(detail) => write!(f, "invalid monitor config: {detail}"),
            MonitorError::Profile(detail) => write!(f, "unusable reference profile: {detail}"),
            MonitorError::Store(e) => write!(f, "monitor store error: {e}"),
            MonitorError::Serve(e) => write!(f, "monitor serve error: {e}"),
        }
    }
}

impl std::error::Error for MonitorError {}

impl From<StoreError> for MonitorError {
    fn from(e: StoreError) -> MonitorError {
        MonitorError::Store(e)
    }
}

impl From<ServeError> for MonitorError {
    fn from(e: ServeError) -> MonitorError {
        MonitorError::Serve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(MonitorConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad = MonitorConfig { sustain: 0, ..Default::default() };
        assert!(bad.validate().is_err());
        let bad = MonitorConfig { psi_threshold: 0.0, ..Default::default() };
        assert!(bad.validate().is_err());
        let bad = MonitorConfig { tail_threshold: f64::NAN, ..Default::default() };
        assert!(bad.validate().is_err());
        let bad = MonitorConfig { spike_threshold: -1.0, ..Default::default() };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn config_round_trips_through_json() {
        let cfg = MonitorConfig { window: 20, ..Default::default() };
        let json = serde_json::to_string(&cfg).expect("serializes");
        let back: MonitorConfig = serde_json::from_str(&json).expect("parses");
        assert_eq!(cfg, back);
    }

    #[test]
    fn env_usize_respects_the_allow_zero_branches() {
        let registry = mmwave_telemetry::global();
        let before = registry.counter_value("monitor.config_invalid");
        // Zero is the window's auto sentinel but nonsense for sustain.
        std::env::set_var("MMWAVE_MONITOR_TEST_USIZE", "0");
        assert_eq!(env_usize("MMWAVE_MONITOR_TEST_USIZE", 5, true), 0);
        assert_eq!(env_usize("MMWAVE_MONITOR_TEST_USIZE", 5, false), 5);
        std::env::set_var("MMWAVE_MONITOR_TEST_USIZE", " 3 ");
        assert_eq!(env_usize("MMWAVE_MONITOR_TEST_USIZE", 5, false), 3);
        std::env::remove_var("MMWAVE_MONITOR_TEST_USIZE");
        assert_eq!(env_usize("MMWAVE_MONITOR_TEST_USIZE", 5, false), 5);
        assert!(
            registry.counter_value("monitor.config_invalid") >= before + 1,
            "zero-for-sustain must be counted as invalid"
        );
    }

    #[test]
    fn env_parsers_survive_every_edge_case_without_panicking() {
        let registry = mmwave_telemetry::global();
        let before = registry.counter_value("monitor.config_invalid");
        // Empty, whitespace, junk, overflow, sign errors, non-finite:
        // everything keeps the default and is counted, never panics.
        let bad_usize = ["", "   ", "99999999999999999999999", "2.5", "-1", "junk"];
        for raw in bad_usize {
            std::env::set_var("MMWAVE_MONITOR_EDGE_USIZE", raw);
            assert_eq!(env_usize("MMWAVE_MONITOR_EDGE_USIZE", 9, false), 9, "raw: {raw:?}");
        }
        std::env::remove_var("MMWAVE_MONITOR_EDGE_USIZE");
        // "NaN"/"inf"/"1e999" *parse* as f64 but are rejected by the
        // finite-and-positive guard; "0" and negatives likewise.
        let bad_f64 = ["", "   ", "junk", "0", "0.0", "-0.3", "NaN", "inf", "-inf", "1e999"];
        for raw in bad_f64 {
            std::env::set_var("MMWAVE_MONITOR_EDGE_F64", raw);
            let got = env_f64("MMWAVE_MONITOR_EDGE_F64", 0.25);
            assert_eq!(got, 0.25, "raw: {raw:?}");
        }
        std::env::set_var("MMWAVE_MONITOR_EDGE_F64", " 0.5 ");
        assert_eq!(env_f64("MMWAVE_MONITOR_EDGE_F64", 0.25), 0.5);
        std::env::remove_var("MMWAVE_MONITOR_EDGE_F64");
        assert_eq!(env_f64("MMWAVE_MONITOR_EDGE_F64", 0.25), 0.25);
        assert!(
            registry.counter_value("monitor.config_invalid")
                >= before + (bad_usize.len() + bad_f64.len()) as u64,
            "every poisoned value must bump monitor.config_invalid"
        );
    }
}
