//! Glue between the load generator and the monitoring engine: capture a
//! clean reference profile, or replay traffic with a monitor attached
//! and an `alerts.jsonl` audit log.

use std::path::{Path, PathBuf};

use mmwave_har::PrototypeConfig;
use mmwave_radar::Environment;
use mmwave_serve::loadgen::{self, LoadgenConfig, LoadgenReport};
use mmwave_serve::{ServeConfig, Verdict};
use mmwave_store::{append_jsonl, StoreError};

use crate::alert::Alert;
use crate::drift::DriftScores;
use crate::engine::Monitor;
use crate::profile::ReferenceProfile;
use crate::{MonitorConfig, MonitorError};

/// What a monitored loadgen run produced.
#[derive(Debug)]
pub struct MonitorOutcome {
    /// The load generator's throughput/latency/accounting report.
    pub report: LoadgenReport,
    /// Every alert fired, in firing order (same order as the audit log).
    pub alerts: Vec<Alert>,
    /// Windows scored.
    pub windows: u64,
    /// Drift scores of the last closed window, if any window closed.
    pub last_drift: Option<DriftScores>,
}

/// Captures a clean reference profile by replaying `lg` with
/// `poison_frac` forced to zero — the baseline is clean *by
/// construction*, whatever the caller's config says. Returns the
/// profile together with the capture run's loadgen report so callers
/// can verify the run itself was healthy (no shed frames, accounted).
pub fn capture_profile(
    lg: &LoadgenConfig,
    serve_cfg: ServeConfig,
    proto: &PrototypeConfig,
    environment: Environment,
) -> Result<(ReferenceProfile, LoadgenReport), MonitorError> {
    let clean = LoadgenConfig { poison_frac: 0.0, ..lg.clone() };
    let mut profile = ReferenceProfile::new(clean.seed, clean.sessions, proto.n_classes);
    let report = loadgen::run_with(&clean, serve_cfg, proto, environment, |v| {
        // Failed verdicts carry poisoned placeholder fields, not model
        // outputs; folding them in would skew the baseline.
        if !v.status.is_failed() {
            profile.observe(v.label, v.confidence as f64, v.defense_score);
        }
    })?;
    profile.validate()?;
    Ok((profile, report))
}

/// Runs the load generator with a [`Monitor`] folding in every verdict.
///
/// `cfg.window == 0` (the auto sentinel) resolves to `2 * lg.sessions`:
/// on an unshed round-aligned stream every window then contains each
/// session exactly twice, so a clean run's windows reproduce the
/// reference mix exactly and drift scores are identically zero.
///
/// When `alerts_path` is given, the file is created (or truncated) up
/// front — a quiet run leaves an empty file as positive evidence that
/// monitoring ran — and each alert is appended CRC-framed as it fires.
/// If an append fails the run still replays to completion (the load
/// generator offers no mid-stream abort), but the audit log is void:
/// no further appends are attempted (each suppressed append bumps
/// `monitor.alert_write_failed`), the partial file is removed so a
/// misleading truncated log never survives on disk, and the run
/// returns the sink error instead of an outcome.
/// `on_verdict` observes the verdict stream like `loadgen::run_with`.
pub fn run_monitored(
    lg: &LoadgenConfig,
    serve_cfg: ServeConfig,
    proto: &PrototypeConfig,
    environment: Environment,
    cfg: &MonitorConfig,
    reference: ReferenceProfile,
    alerts_path: Option<&Path>,
    mut on_verdict: impl FnMut(&Verdict),
) -> Result<MonitorOutcome, MonitorError> {
    let resolved = MonitorConfig {
        window: if cfg.window == 0 { 2 * lg.sessions } else { cfg.window },
        ..cfg.clone()
    };
    let mut monitor = Monitor::new(resolved, reference)?;
    if let Some(path) = alerts_path {
        std::fs::write(path, b"").map_err(|e| io_store(path, e))?;
    }

    let mut alerts: Vec<Alert> = Vec::new();
    let mut sink_error: Option<StoreError> = None;
    let report = loadgen::run_with(lg, serve_cfg, proto, environment, |v| {
        on_verdict(v);
        // Failed verdicts never reach the drift engine: their zeroed
        // label/confidence/score fields are pipeline noise, not model
        // behavior, and would fire false class-drift alarms. Pipeline
        // failure visibility belongs to `serve.verdicts_failed` and the
        // circuit breaker instead.
        if v.status.is_failed() {
            return;
        }
        for alert in monitor.observe(v.label, v.confidence as f64, v.defense_score) {
            if let Some(path) = alerts_path {
                if sink_error.is_none() {
                    let line = serde_json::to_string(&alert)
                        .expect("alerts contain no non-serializable values");
                    if let Err(e) = append_jsonl(path, &line, None) {
                        mmwave_telemetry::counter("monitor.alert_write_failed", 1);
                        sink_error = Some(io_store(path, e));
                    }
                }
            }
            alerts.push(alert);
        }
    })?;
    if let Some(e) = sink_error {
        // The log stopped at the first failed append; alerts that fired
        // afterwards are missing from it. Remove the partial file —
        // callers must treat this run as having no audit log at all.
        if let Some(path) = alerts_path {
            let _ = std::fs::remove_file(path);
        }
        return Err(MonitorError::Store(e));
    }
    Ok(MonitorOutcome {
        report,
        alerts,
        windows: monitor.windows_closed(),
        last_drift: monitor.last_drift().cloned(),
    })
}

/// Wraps an I/O failure on the alert sink with its path.
fn io_store(path: &Path, source: std::io::Error) -> StoreError {
    StoreError::Io { path: PathBuf::from(path), source }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_window_resolves_to_twice_the_sessions() {
        // Resolution logic only; end-to-end runs live in
        // tests/monitor_alarms.rs at the workspace root.
        let cfg = MonitorConfig::default();
        assert_eq!(cfg.window, 0, "default is the auto sentinel");
        let lg = LoadgenConfig { sessions: 10, ..Default::default() };
        let resolved = if cfg.window == 0 { 2 * lg.sessions } else { cfg.window };
        assert_eq!(resolved, 20);
    }
}
