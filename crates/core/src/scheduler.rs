//! Readiness classification and work sharding for campaign DAG workers.
//!
//! The scheduler is deliberately stateless: every decision is a pure
//! function of the [`crate::dag::DagStatus`] snapshot a worker just
//! scanned. There is no queue service and no leader — N workers each
//! classify the same snapshot, then visit ready tasks in a
//! *worker-specific* order ([`shard_order`]) so they mostly try different
//! tasks first and the atomic claim in `mmwave-store` settles the rare
//! collisions.

use crate::dag::{self, CampaignDag, DagStatus, TaskNode, TaskState};
use std::path::Path;

/// What a worker may do with a task right now.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Readiness {
    /// All dependencies done, gate (if any) passed: claimable.
    Ready,
    /// Some dependency is still pending or claimed: check again later.
    Blocked,
    /// Every dependency resolved but the gate predicate failed — the task
    /// (and transitively its dependents) permanently fails with this
    /// reason.
    GateFailed(String),
    /// A dependency permanently failed, so this task can never run.
    UpstreamFailed(String),
}

/// Classifies one task against the current status snapshot.
///
/// Failure is decided eagerly: as soon as *any* dependency is `Failed`
/// the task is [`Readiness::UpstreamFailed`] even if other dependencies
/// are still running — the task can never become ready, and recording the
/// cascade immediately keeps campaigns terminating instead of wedging on
/// forever-blocked tasks.
///
/// # Errors
///
/// I/O errors reading dependency outputs for gate evaluation.
pub fn classify(
    dir: &Path,
    task: &TaskNode,
    status: &DagStatus,
) -> std::io::Result<Readiness> {
    for dep in &task.deps {
        match status.state(dep) {
            TaskState::Failed => {
                return Ok(Readiness::UpstreamFailed(format!(
                    "upstream task `{dep}` failed"
                )));
            }
            TaskState::Done => {}
            TaskState::Pending | TaskState::Claimed { .. } => {
                return Ok(Readiness::Blocked);
            }
        }
    }
    if let Some(gate) = &task.gate {
        for dep in &task.deps {
            let output = dag::load_output(dir, dep)?;
            if let Err(reason) = gate.check(dep, &output) {
                return Ok(Readiness::GateFailed(reason));
            }
        }
    }
    Ok(Readiness::Ready)
}

/// All tasks currently [`Readiness::Ready`], plus the cascades
/// ([`Readiness::GateFailed`] / [`Readiness::UpstreamFailed`]) that should
/// be recorded as failures now.
#[derive(Debug, Default)]
pub struct ReadySet {
    /// Claimable task ids.
    pub ready: Vec<String>,
    /// `(task id, failure reason)` pairs to persist as failed.
    pub doomed: Vec<(String, String)>,
    /// True while at least one task is pending or claimed — i.e. the
    /// campaign may still make progress without our help.
    pub in_flight: bool,
}

/// Classifies every unresolved task in the snapshot.
///
/// # Errors
///
/// I/O errors from gate evaluation.
pub fn ready_set(
    dir: &Path,
    dag: &CampaignDag,
    status: &DagStatus,
) -> std::io::Result<ReadySet> {
    let mut set = ReadySet::default();
    for task in &dag.tasks {
        match status.state(&task.id) {
            TaskState::Done | TaskState::Failed => continue,
            TaskState::Claimed { .. } => {
                set.in_flight = true;
                continue;
            }
            TaskState::Pending => {}
        }
        match classify(dir, task, status)? {
            Readiness::Ready => set.ready.push(task.id.clone()),
            Readiness::Blocked => set.in_flight = true,
            Readiness::GateFailed(reason) | Readiness::UpstreamFailed(reason) => {
                set.doomed.push((task.id.clone(), reason));
            }
        }
    }
    Ok(set)
}

/// Orders `ready` task ids for one worker so that concurrent workers
/// spread across the ready frontier instead of racing on the same task.
///
/// With an explicit shard (`Some((index, count))`, from
/// `MMWAVE_WORKER_SHARD=i/n`), tasks whose id hashes into the worker's
/// shard come first — a deterministic partition where each ready task has
/// exactly one preferred worker. Without a shard, tasks sort by
/// `hash(worker_id ++ task_id)`, which spreads workers pseudo-randomly but
/// deterministically for a given worker id. Ties break by id, so the
/// order is total and stable.
pub fn shard_order(ready: &mut [String], worker_id: &str, shard: Option<(usize, usize)>) {
    match shard {
        Some((index, count)) if count > 0 => {
            let index = index % count;
            ready.sort_by(|a, b| {
                let a_mine = mmwave_store::fnv1a64(a.as_bytes()) as usize % count == index;
                let b_mine = mmwave_store::fnv1a64(b.as_bytes()) as usize % count == index;
                b_mine.cmp(&a_mine).then_with(|| a.cmp(b))
            });
        }
        _ => {
            ready.sort_by(|a, b| {
                let ha = mmwave_store::fnv1a64(format!("{worker_id}\u{0}{a}").as_bytes());
                let hb = mmwave_store::fnv1a64(format!("{worker_id}\u{0}{b}").as_bytes());
                ha.cmp(&hb).then_with(|| a.cmp(b))
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{demo_dag, paths, CampaignDag, Gate, TaskRecord};
    use std::time::Duration;

    fn tmp(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("mmwave_sched_unit_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn mark_done(dir: &std::path::Path, id: &str, output: serde_json::Value) {
        mmwave_store::save_json_atomic(
            &paths::done(dir, id),
            &TaskRecord { id: id.to_string(), artifact_key: "k".to_string(), output },
        )
        .unwrap();
    }

    #[test]
    fn classification_follows_dependency_states() {
        let dir = tmp("classify");
        let dag = demo_dag();
        // Nothing done: synth ready, everything downstream blocked.
        let status = dag::scan(&dir, &dag, Duration::from_secs(60)).unwrap();
        let set = ready_set(&dir, &dag, &status).unwrap();
        assert_eq!(set.ready, vec!["synth".to_string()]);
        assert!(set.doomed.is_empty());
        assert!(set.in_flight, "downstream tasks are blocked, not doomed");

        // synth + baseline-a done with a passing gate value: variants ready.
        mark_done(&dir, "synth", serde_json::json!({"value": 2.0}));
        mark_done(&dir, "baseline-a", serde_json::json!({"value": 3.0}));
        let status = dag::scan(&dir, &dag, Duration::from_secs(60)).unwrap();
        let set = ready_set(&dir, &dag, &status).unwrap();
        assert!(set.ready.iter().any(|id| id == "variant-0"));
        assert!(set.ready.iter().any(|id| id == "baseline-b"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_gate_dooms_the_task_and_failure_cascades() {
        let dir = tmp("gate");
        let mut dag = CampaignDag::new("t");
        dag.tasks.push(crate::dag::TaskNode {
            id: "base".to_string(),
            kind: "const".to_string(),
            params: serde_json::json!({"value": 0.1}),
            deps: vec![],
            gate: None,
        });
        dag.tasks.push(crate::dag::TaskNode {
            id: "gated".to_string(),
            kind: "sum".to_string(),
            params: serde_json::Value::Null,
            deps: vec!["base".to_string()],
            gate: Some(Gate { metric: "value".to_string(), min: 0.5 }),
        });
        dag.tasks.push(crate::dag::TaskNode {
            id: "leaf".to_string(),
            kind: "sum".to_string(),
            params: serde_json::Value::Null,
            deps: vec!["gated".to_string()],
            gate: None,
        });
        mark_done(&dir, "base", serde_json::json!({"value": 0.1}));
        let status = dag::scan(&dir, &dag, Duration::from_secs(60)).unwrap();
        let set = ready_set(&dir, &dag, &status).unwrap();
        assert!(set.ready.is_empty());
        assert_eq!(set.doomed.len(), 1);
        assert_eq!(set.doomed[0].0, "gated");
        assert!(set.doomed[0].1.contains("gate failed"), "got: {}", set.doomed[0].1);

        // Record the gate failure; the leaf now cascades to UpstreamFailed.
        mmwave_store::save_json_atomic(
            &paths::failed(&dir, "gated"),
            &crate::dag::TaskFailure { id: "gated".to_string(), error: "gate".to_string() },
        )
        .unwrap();
        let status = dag::scan(&dir, &dag, Duration::from_secs(60)).unwrap();
        let set = ready_set(&dir, &dag, &status).unwrap();
        assert_eq!(set.doomed.len(), 1);
        assert_eq!(set.doomed[0].0, "leaf");
        assert!(set.doomed[0].1.contains("upstream"));
        assert!(!set.in_flight, "nothing left that could still run");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_order_is_deterministic_and_worker_dependent() {
        let ids = || {
            vec![
                "a".to_string(),
                "b".to_string(),
                "c".to_string(),
                "d".to_string(),
                "e".to_string(),
                "f".to_string(),
            ]
        };
        let mut w0 = ids();
        let mut w0_again = ids();
        shard_order(&mut w0, "w0", None);
        shard_order(&mut w0_again, "w0", None);
        assert_eq!(w0, w0_again, "same worker, same order");

        let mut sharded = ids();
        shard_order(&mut sharded, "w1", Some((1, 3)));
        // Every id belonging to shard 1 of 3 must precede every id that
        // does not.
        let mine: Vec<bool> = sharded
            .iter()
            .map(|id| mmwave_store::fnv1a64(id.as_bytes()) as usize % 3 == 1)
            .collect();
        let first_other = mine.iter().position(|m| !m).unwrap_or(mine.len());
        assert!(
            mine[first_other..].iter().all(|m| !m),
            "preferred-shard tasks must form a prefix: {sharded:?}"
        );
    }
}
