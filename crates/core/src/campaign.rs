//! Fault-tolerant experiment campaigns: a persistent state machine around
//! figure sweeps.
//!
//! Reproducing the paper's evaluation means hundreds of
//! (figure, sweep-point) experiment runs, each minutes of training. A
//! [`Campaign`] journals every point's outcome to disk the moment it
//! completes, so
//!
//! * a killed process resumes from the journal and re-runs only the
//!   missing points — and because every `ExperimentContext` point result
//!   is a pure function of its spec and seeds, the resumed campaign's
//!   metrics are byte-identical to an uninterrupted run;
//! * a panicking point is caught, retried with backoff, and finally
//!   recorded as [`PointOutcome::Failed`] — the sweep continues and the
//!   [`CampaignReport`] lists the degradation instead of the whole
//!   campaign aborting.
//!
//! The journal is an append-only JSON-lines file (one entry per point)
//! written through `mmwave-store`'s CRC-per-line framing: every entry is
//! individually checksummed, a torn trailing line from a kill mid-append
//! is truncated away on open, and mid-file corruption is quarantined to a
//! `.quarantine-*` sibling while replay keeps the intact prefix. The
//! campaign report is persisted as a checksummed `report.json` via
//! [`Campaign::save_report`]. Unframed journals from earlier releases
//! still replay. Setting `MMWAVE_JOURNAL_DETERMINISTIC=1` (or
//! [`Campaign::with_deterministic_journal`]) omits wall-clock and
//! telemetry fields from journal entries, making the journal and report a
//! pure function of the point outcomes — the property the `mmwave chaos`
//! kill-and-resume matrix asserts byte-for-byte.

use crate::experiment::{AttackSpec, ExperimentContext};
use crate::metrics::AttackMetrics;
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How a campaign retries a failing point before recording the failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total tries per point (first run + retries); at least 1.
    pub max_attempts: usize,
    /// Sleep before retry `n` is `backoff * n` (linear backoff).
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 2, backoff: Duration::from_millis(25) }
    }
}

/// Default stall threshold: `MMWAVE_STALL_TIMEOUT_SECS` if set (0 disables
/// the watchdog), else 300 s — generous against the paper sweeps' slowest
/// points, tight enough to flag a hung sensor replay or a livelocked fit.
fn default_stall_timeout() -> Duration {
    parse_stall_timeout(std::env::var("MMWAVE_STALL_TIMEOUT_SECS").ok().as_deref())
}

/// Parses a raw `MMWAVE_STALL_TIMEOUT_SECS` value. Invalid values fall
/// back to the 300 s default — and are *counted* on the
/// `campaign.config_invalid` counter as well as warned about, so a fleet
/// of workers with a typoed environment shows up in metrics, not just in
/// scrollback.
fn parse_stall_timeout(raw: Option<&str>) -> Duration {
    match raw {
        Some(raw) => match raw.trim().parse::<u64>() {
            Ok(secs) => Duration::from_secs(secs),
            Err(_) => {
                mmwave_telemetry::counter("campaign.config_invalid", 1);
                mmwave_telemetry::warn!(
                    "ignoring invalid MMWAVE_STALL_TIMEOUT_SECS={raw:?}; using 300s"
                );
                Duration::from_secs(300)
            }
        },
        None => Duration::from_secs(300),
    }
}

/// Background watchdog that flags a stalled sweep: while a point batch is
/// in flight, no [`StallWatchdog::touch`] for the configured interval logs
/// a warning (once per stall episode), bumps the `campaign.stalled`
/// counter, and publishes the current stall length on the
/// `campaign.stall_seconds` gauge. A zero timeout disables it entirely.
struct StallWatchdog {
    inner: Arc<WatchdogInner>,
    handle: Option<std::thread::JoinHandle<()>>,
}

struct WatchdogInner {
    campaign: String,
    timeout: Duration,
    last_progress: Mutex<Instant>,
    /// Set once per stall episode so the warning does not repeat every
    /// poll; cleared by `touch`.
    warned: AtomicBool,
    stop: Mutex<bool>,
    cv: Condvar,
}

impl WatchdogInner {
    fn watch(&self) {
        let interval = (self.timeout / 4).max(Duration::from_millis(10));
        // The watchdog ignores lock poisoning throughout: a panicking
        // point batch must degrade the *watchdog* gracefully, not take the
        // whole campaign process down with a second panic. The guarded
        // data (an `Instant`, a `bool`) is always valid, so the poison
        // carries no torn state.
        let mut stop = self.stop.lock().unwrap_or_else(|e| e.into_inner());
        while !*stop {
            let (guard, _) = self
                .cv
                .wait_timeout(stop, interval)
                .unwrap_or_else(|e| e.into_inner());
            stop = guard;
            if *stop {
                return;
            }
            let stalled_for = self
                .last_progress
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .elapsed();
            if stalled_for < self.timeout {
                continue;
            }
            mmwave_telemetry::gauge("campaign.stall_seconds", stalled_for.as_secs_f64());
            if !self.warned.swap(true, Ordering::Relaxed) {
                mmwave_telemetry::counter("campaign.stalled", 1);
                mmwave_telemetry::warn!(
                    "campaign `{}`: no point completed for {:.1}s (threshold {:.0}s) — \
                     a point may be hung",
                    self.campaign,
                    stalled_for.as_secs_f64(),
                    self.timeout.as_secs_f64()
                );
            }
        }
    }
}

impl StallWatchdog {
    fn start(campaign: &str, timeout: Duration) -> StallWatchdog {
        let inner = Arc::new(WatchdogInner {
            campaign: campaign.to_string(),
            timeout,
            last_progress: Mutex::new(Instant::now()),
            warned: AtomicBool::new(false),
            stop: Mutex::new(false),
            cv: Condvar::new(),
        });
        let handle = if timeout.is_zero() {
            None
        } else {
            let watcher = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("mmwave-campaign-watchdog".to_string())
                .spawn(move || watcher.watch())
                .ok()
        };
        StallWatchdog { inner, handle }
    }

    /// Reports progress (a point completed), resetting the stall clock and
    /// re-arming the once-per-episode warning.
    fn touch(&self) {
        *self.inner.last_progress.lock().unwrap_or_else(|e| e.into_inner()) =
            Instant::now();
        self.inner.warned.store(false, Ordering::Relaxed);
    }
}

impl Drop for StallWatchdog {
    fn drop(&mut self) {
        *self.inner.stop.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.inner.cv.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The journaled outcome of one campaign point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "status")]
pub enum PointOutcome<T> {
    /// The point ran to completion.
    Completed {
        /// The point's result.
        result: T,
    },
    /// The point panicked on every attempt; the sweep skipped it.
    Failed {
        /// Panic message of the last attempt.
        error: String,
        /// Attempts consumed.
        attempts: usize,
    },
}

#[derive(Debug, Serialize, Deserialize)]
struct JournalEntry<T> {
    id: String,
    outcome: PointOutcome<T>,
    /// Wall time the point took, including retries. `None` in journals
    /// written before this field existed (PR-1 format), which still replay.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    duration_ms: Option<u64>,
    /// Cumulative telemetry snapshot (counters + per-span totals) taken
    /// when the point completed. `None` when telemetry is disabled or the
    /// journal predates the field.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    telemetry: Option<serde_json::Value>,
}

/// A resumable, failure-isolating experiment sweep.
///
/// `T` is the per-point result type — [`AttackMetrics`] for the paper's
/// figure sweeps, but any serializable result works.
///
/// # Examples
///
/// ```no_run
/// use mmwave_backdoor::campaign::Campaign;
/// use mmwave_backdoor::experiment::{AttackSpec, ExperimentContext, ExperimentScale};
/// use mmwave_backdoor::metrics::AttackMetrics;
///
/// let mut campaign = Campaign::<AttackMetrics>::open("campaigns/fig08").unwrap();
/// let mut ctx = ExperimentContext::new(ExperimentScale::fast(), 42);
/// for rate in [0.1, 0.2, 0.4] {
///     let spec = AttackSpec { injection_rate: rate, ..AttackSpec::default() };
///     let id = format!("fig08 rate={rate}");
///     // Journaled points return instantly; a kill between points loses
///     // nothing.
///     campaign.run_attack_point(&mut ctx, &id, &spec, 3).unwrap();
/// }
/// println!("{}", campaign.report());
/// ```
#[derive(Debug)]
pub struct Campaign<T> {
    dir: PathBuf,
    completed: HashMap<String, PointOutcome<T>>,
    durations: HashMap<String, u64>,
    /// Journal replay/insertion order, for stable reporting.
    order: Vec<String>,
    retry: RetryPolicy,
    /// No-progress interval after which the stall watchdog warns; zero
    /// disables the watchdog.
    stall_timeout: Duration,
    /// Omit wall-clock and telemetry fields from journal entries so the
    /// journal is a pure function of point outcomes (chaos testing).
    deterministic: bool,
    reused: usize,
}

/// Default for [`Campaign::with_deterministic_journal`]: the
/// `MMWAVE_JOURNAL_DETERMINISTIC` environment variable (`1` or `true`).
fn default_deterministic_journal() -> bool {
    std::env::var("MMWAVE_JOURNAL_DETERMINISTIC")
        .map(|v| {
            let v = v.trim();
            v == "1" || v.eq_ignore_ascii_case("true")
        })
        .unwrap_or(false)
}

impl<T: Serialize + DeserializeOwned + Clone> Campaign<T> {
    /// Opens (or creates) a campaign directory and replays its journal,
    /// repairing it on disk first: a corrupt trailing line — the
    /// signature of a kill mid-append — is truncated away, and mid-file
    /// corruption is quarantined to a `.quarantine-*` sibling while
    /// replay keeps the intact prefix (the damaged points simply re-run).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or reading or
    /// repairing the journal.
    pub fn open<P: AsRef<Path>>(dir: P) -> io::Result<Campaign<T>> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut campaign = Campaign {
            dir,
            completed: HashMap::new(),
            durations: HashMap::new(),
            order: Vec::new(),
            retry: RetryPolicy::default(),
            stall_timeout: default_stall_timeout(),
            deterministic: default_deterministic_journal(),
            reused: 0,
        };
        let replay = mmwave_store::read_jsonl_repair(&campaign.journal_path())
            .map_err(io::Error::from)?;
        for line in &replay.lines {
            match serde_json::from_str::<JournalEntry<T>>(line) {
                Ok(entry) => {
                    if let Some(ms) = entry.duration_ms {
                        campaign.durations.insert(entry.id.clone(), ms);
                    }
                    if campaign.completed.insert(entry.id.clone(), entry.outcome).is_none() {
                        campaign.order.push(entry.id);
                    }
                }
                // Valid JSON but not a journal entry for this result type:
                // trust nothing from here on, exactly like the torn-tail
                // case — the affected points re-run.
                Err(_) => break,
            }
        }
        Ok(campaign)
    }

    /// Overrides the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Campaign<T> {
        assert!(retry.max_attempts >= 1, "need at least one attempt");
        self.retry = retry;
        self
    }

    /// Overrides the stall-watchdog threshold (default:
    /// `MMWAVE_STALL_TIMEOUT_SECS`, else 300 s). [`Duration::ZERO`]
    /// disables the watchdog.
    pub fn with_stall_timeout(mut self, timeout: Duration) -> Campaign<T> {
        self.stall_timeout = timeout;
        self
    }

    /// Overrides deterministic-journal mode (default: the
    /// `MMWAVE_JOURNAL_DETERMINISTIC` environment variable). When on,
    /// journal entries omit wall-clock durations and telemetry snapshots,
    /// so the journal and report bytes are a pure function of the point
    /// outcomes — the invariant the `mmwave chaos` kill-and-resume matrix
    /// compares byte for byte.
    pub fn with_deterministic_journal(mut self, deterministic: bool) -> Campaign<T> {
        self.deterministic = deterministic;
        self
    }

    /// The campaign directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The append-only JSON-lines journal inside the campaign directory.
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join("journal.jsonl")
    }

    /// The persisted campaign report inside the campaign directory,
    /// written by [`Campaign::save_report`].
    pub fn report_path(&self) -> PathBuf {
        self.dir.join("report.json")
    }

    /// The journaled outcome of a point, if any.
    pub fn get(&self, id: &str) -> Option<&PointOutcome<T>> {
        self.completed.get(id)
    }

    /// True once `id` has a journaled outcome (completed *or* failed).
    pub fn is_done(&self, id: &str) -> bool {
        self.completed.contains_key(id)
    }

    /// Number of points answered from the journal instead of being re-run.
    pub fn reused_count(&self) -> usize {
        self.reused
    }

    /// Journaled wall time of a point in milliseconds. `None` for unknown
    /// points and for entries from journals written before durations were
    /// recorded.
    pub fn point_duration_ms(&self, id: &str) -> Option<u64> {
        self.durations.get(id).copied()
    }

    /// Runs one sweep point, or returns its journaled outcome without
    /// running anything. A panicking `point` closure is caught and retried
    /// per the [`RetryPolicy`]; if every attempt panics the failure is
    /// journaled and the campaign moves on (skip-with-degradation).
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the journal cannot be appended — resume
    /// safety would otherwise be silently lost.
    pub fn run_point<F>(&mut self, id: &str, point: F) -> io::Result<PointOutcome<T>>
    where
        F: FnMut() -> T,
    {
        if let Some(done) = self.completed.get(id) {
            self.reused += 1;
            return Ok(done.clone());
        }
        let watchdog =
            StallWatchdog::start(&self.dir.display().to_string(), self.stall_timeout);
        let (outcome, duration_ms) = Self::evaluate(self.retry, point);
        drop(watchdog);
        self.record_with_event(id, outcome.clone(), duration_ms)?;
        Ok(outcome)
    }

    /// Runs a batch of sweep points, evaluating the not-yet-journaled ones
    /// in parallel on the [`mmwave_exec`] pool while keeping every
    /// resumability guarantee of [`Campaign::run_point`]:
    ///
    /// * each point keeps its own catch-unwind + [`RetryPolicy`] loop, so
    ///   one panicking point degrades to [`PointOutcome::Failed`] without
    ///   touching its neighbours;
    /// * journal entries are appended **in input order**, after all pending
    ///   points have evaluated, so the journal a parallel batch leaves
    ///   behind replays identically to a serial sweep over the same points
    ///   (and is byte-compatible with `run_point` journals);
    /// * already-journaled ids are answered from the journal without
    ///   running anything, exactly like `run_point`.
    ///
    /// Ids should be distinct within one batch; duplicate pending ids are
    /// each evaluated (unlike sequential `run_point` calls, where the
    /// second call would reuse the first's journal entry).
    ///
    /// Returned outcomes are in input order, one per point.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the journal cannot be appended.
    pub fn run_points<F>(&mut self, points: &[(String, F)]) -> io::Result<Vec<PointOutcome<T>>>
    where
        T: Send,
        F: Fn() -> T + Sync,
    {
        let mut pending: Vec<usize> = Vec::new();
        for (i, (id, _)) in points.iter().enumerate() {
            if self.completed.contains_key(id.as_str()) {
                self.reused += 1;
            } else {
                pending.push(i);
            }
        }
        let retry = self.retry;
        let watchdog =
            StallWatchdog::start(&self.dir.display().to_string(), self.stall_timeout);
        // Evaluation fans out; journaling stays serial below so append
        // order — and therefore replay order — matches input order. Each
        // completed point feeds the stall watchdog, so a sweep only counts
        // as stalled when *no* worker finishes anything.
        let evaluated = mmwave_exec::par_map(&pending, |_, &pi| {
            let _span = mmwave_telemetry::span_at(
                "campaign.point_eval",
                mmwave_telemetry::Level::Debug,
            );
            let result = Self::evaluate(retry, &points[pi].1);
            watchdog.touch();
            result
        });
        drop(watchdog);
        let mut fresh = pending.iter().copied().zip(evaluated).peekable();
        let mut results = Vec::with_capacity(points.len());
        for (i, (id, _)) in points.iter().enumerate() {
            if fresh.peek().map(|(pi, _)| *pi) == Some(i) {
                let (_, (outcome, duration_ms)) = fresh.next().expect("peeked entry exists");
                self.record_with_event(id, outcome.clone(), duration_ms)?;
                results.push(outcome);
            } else {
                results.push(self.completed[id.as_str()].clone());
            }
        }
        Ok(results)
    }

    /// One point's retry loop: returns the outcome and wall time in
    /// milliseconds (including retries). Pure with respect to the campaign
    /// — no journal access — so batch evaluation can run it off-thread.
    fn evaluate<F>(retry: RetryPolicy, mut point: F) -> (PointOutcome<T>, u64)
    where
        F: FnMut() -> T,
    {
        let start = std::time::Instant::now();
        let mut last_error = String::new();
        for attempt in 1..=retry.max_attempts {
            if attempt > 1 {
                std::thread::sleep(retry.backoff.saturating_mul(attempt as u32 - 1));
            }
            match panic::catch_unwind(AssertUnwindSafe(&mut point)) {
                Ok(result) => {
                    let outcome = PointOutcome::Completed { result };
                    return (outcome, start.elapsed().as_millis() as u64);
                }
                Err(payload) => last_error = panic_message(payload),
            }
        }
        let outcome =
            PointOutcome::Failed { error: last_error, attempts: retry.max_attempts };
        (outcome, start.elapsed().as_millis() as u64)
    }

    fn record_with_event(
        &mut self,
        id: &str,
        outcome: PointOutcome<T>,
        duration_ms: u64,
    ) -> io::Result<()> {
        let status = match &outcome {
            PointOutcome::Completed { .. } => "completed",
            PointOutcome::Failed { .. } => "failed",
        };
        self.record(id, outcome, duration_ms)?;
        if mmwave_telemetry::enabled(mmwave_telemetry::Level::Info) {
            let mut fields = serde_json::Map::new();
            fields.insert("id".to_string(), serde_json::Value::from(id));
            fields.insert("status".to_string(), serde_json::Value::from(status));
            fields.insert("duration_ms".to_string(), serde_json::Value::from(duration_ms));
            mmwave_telemetry::event(
                mmwave_telemetry::Level::Info,
                mmwave_telemetry::EventKind::Point,
                "campaign.point",
                fields,
            );
        }
        Ok(())
    }

    /// A campaign-wide summary: completed, failed (with messages), and how
    /// many points were answered from the journal.
    pub fn report(&self) -> CampaignReport {
        let mut failed = Vec::new();
        let mut completed = 0usize;
        for id in &self.order {
            match &self.completed[id] {
                PointOutcome::Completed { .. } => completed += 1,
                PointOutcome::Failed { error, attempts } => {
                    failed.push(FailedPoint {
                        id: id.clone(),
                        error: error.clone(),
                        attempts: *attempts,
                    });
                }
            }
        }
        CampaignReport { completed, failed, reused: self.reused }
    }

    /// Computes the report and persists it atomically (checksummed
    /// envelope) as `report.json` in the campaign directory, so the
    /// campaign's outcome survives the process and a torn report from a
    /// kill mid-write is detectable on load.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the write fails.
    pub fn save_report(&self) -> io::Result<CampaignReport> {
        let report = self.report();
        mmwave_store::crash_point("campaign.report.pre_save");
        mmwave_store::save_json_atomic(&self.report_path(), &report)
            .map_err(io::Error::from)?;
        Ok(report)
    }

    /// Loads a report persisted by [`Campaign::save_report`] from a
    /// campaign directory. Torn or corrupt reports are quarantined; the
    /// caller regenerates by reopening the campaign and calling
    /// [`Campaign::save_report`] again.
    ///
    /// # Errors
    ///
    /// Returns an I/O error naming the path if the report is missing,
    /// torn, corrupt, or incompatible.
    pub fn load_report<P: AsRef<Path>>(dir: P) -> io::Result<CampaignReport> {
        mmwave_store::load_json(&dir.as_ref().join("report.json"))
            .map(|loaded| loaded.value)
            .map_err(io::Error::from)
    }

    fn record(&mut self, id: &str, outcome: PointOutcome<T>, duration_ms: u64) -> io::Result<()> {
        let telemetry = if self.deterministic {
            None
        } else {
            let registry = mmwave_telemetry::global();
            if registry.is_enabled() {
                Some(registry.snapshot_brief())
            } else {
                None
            }
        };
        let entry = JournalEntry {
            id: id.to_string(),
            outcome: outcome.clone(),
            duration_ms: if self.deterministic { None } else { Some(duration_ms) },
            telemetry,
        };
        let line = serde_json::to_string(&entry)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        mmwave_store::crash_point("campaign.journal.pre_append");
        mmwave_store::append_jsonl(
            &self.journal_path(),
            &line,
            Some("campaign.journal.torn_append"),
        )?;
        mmwave_store::crash_point("campaign.journal.post_append");
        self.durations.insert(id.to_string(), duration_ms);
        if self.completed.insert(id.to_string(), outcome).is_none() {
            self.order.push(id.to_string());
        }
        Ok(())
    }
}

impl Campaign<AttackMetrics> {
    /// The paper-sweep convenience wrapper: runs (or resumes)
    /// [`ExperimentContext::run_attack_averaged`] as one journaled point.
    ///
    /// # Errors
    ///
    /// See [`Campaign::run_point`].
    pub fn run_attack_point(
        &mut self,
        ctx: &mut ExperimentContext,
        id: &str,
        spec: &AttackSpec,
        repetitions: usize,
    ) -> io::Result<PointOutcome<AttackMetrics>> {
        self.run_point(id, || ctx.run_attack_averaged(spec, repetitions))
    }
}

/// One failed point in a [`CampaignReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailedPoint {
    /// The point's id.
    pub id: String,
    /// Panic message of its last attempt.
    pub error: String,
    /// Attempts consumed.
    pub attempts: usize,
}

/// Summary of a campaign's progress and degradations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Points that completed.
    pub completed: usize,
    /// Points that were skipped after exhausting retries.
    pub failed: Vec<FailedPoint>,
    /// Points answered from the journal this session. Session-local by
    /// definition — an interrupted-then-resumed run reuses points where an
    /// uninterrupted one does not — so it is deliberately not persisted:
    /// the saved `report.json` stays byte-identical either way.
    #[serde(skip)]
    pub reused: usize,
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "campaign: {} completed ({} from journal), {} failed",
            self.completed,
            self.reused,
            self.failed.len()
        )?;
        for p in &self.failed {
            writeln!(f, "  FAILED {} after {} attempts: {}", p.id, p.attempts, p.error)?;
        }
        Ok(())
    }
}

fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic of unknown type".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mmwave_campaign_unit_{tag}_{}", std::process::id()))
    }

    #[test]
    fn points_journal_and_replay() {
        let dir = temp_dir("replay");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut c = Campaign::<f64>::open(&dir).unwrap();
            let a = c.run_point("a", || 1.5).unwrap();
            assert_eq!(a, PointOutcome::Completed { result: 1.5 });
            c.run_point("b", || 2.5).unwrap();
        }
        let mut c = Campaign::<f64>::open(&dir).unwrap();
        let mut calls = 0;
        let a = c
            .run_point("a", || {
                calls += 1;
                99.0
            })
            .unwrap();
        assert_eq!(calls, 0, "journaled point must not re-run");
        assert_eq!(a, PointOutcome::Completed { result: 1.5 });
        assert_eq!(c.reused_count(), 1);
        assert!(c.is_done("b"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn panicking_point_is_retried_then_skipped() {
        let dir = temp_dir("panic");
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = Campaign::<f64>::open(&dir)
            .unwrap()
            .with_retry(RetryPolicy { max_attempts: 3, backoff: Duration::from_millis(1) });
        let mut calls = 0;
        let outcome = c
            .run_point("explodes", || {
                calls += 1;
                panic!("boom {calls}")
            })
            .unwrap();
        assert_eq!(calls, 3, "every attempt must run");
        match &outcome {
            PointOutcome::Failed { error, attempts } => {
                assert_eq!(*attempts, 3);
                assert!(error.contains("boom"));
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        // The sweep continues past the failure...
        let next = c.run_point("fine", || 7.0).unwrap();
        assert_eq!(next, PointOutcome::Completed { result: 7.0 });
        // ...and on resume the failure is remembered, not re-run.
        let mut c = Campaign::<f64>::open(&dir).unwrap();
        let mut resumed_calls = 0;
        c.run_point("explodes", || {
            resumed_calls += 1;
            0.0
        })
        .unwrap();
        assert_eq!(resumed_calls, 0);
        let report = c.report();
        assert_eq!(report.completed, 1);
        assert_eq!(report.failed.len(), 1);
        assert_eq!(report.failed[0].id, "explodes");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_panic_recovers_on_retry() {
        let dir = temp_dir("transient");
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = Campaign::<f64>::open(&dir)
            .unwrap()
            .with_retry(RetryPolicy { max_attempts: 2, backoff: Duration::from_millis(1) });
        let mut calls = 0;
        let outcome = c
            .run_point("flaky", || {
                calls += 1;
                if calls == 1 {
                    panic!("transient");
                }
                3.25
            })
            .unwrap();
        assert_eq!(outcome, PointOutcome::Completed { result: 3.25 });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durations_are_journaled_and_replayed() {
        let dir = temp_dir("durations");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut c = Campaign::<f64>::open(&dir).unwrap();
            c.run_point("a", || 1.0).unwrap();
            assert!(c.point_duration_ms("a").is_some());
            assert!(c.point_duration_ms("missing").is_none());
        }
        let c = Campaign::<f64>::open(&dir).unwrap();
        assert!(c.point_duration_ms("a").is_some(), "duration must survive replay");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn old_format_journal_without_durations_still_replays() {
        // PR-1 journals carry only {id, outcome}; they must keep replaying
        // after the duration/telemetry fields were added.
        let dir = temp_dir("oldformat");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("journal.jsonl"),
            "{\"id\":\"legacy\",\"outcome\":{\"status\":\"Completed\",\"result\":4.5}}\n",
        )
        .unwrap();
        let mut c = Campaign::<f64>::open(&dir).unwrap();
        assert!(c.is_done("legacy"));
        assert_eq!(c.point_duration_ms("legacy"), None, "old entries have no duration");
        let outcome = c.run_point("legacy", || panic!("must not run")).unwrap();
        assert_eq!(outcome, PointOutcome::Completed { result: 4.5 });
        // A new point appended to the old journal carries the new fields...
        c.run_point("fresh", || 2.0).unwrap();
        assert!(c.point_duration_ms("fresh").is_some());
        // ...and the mixed-format journal replays in full.
        let c = Campaign::<f64>::open(&dir).unwrap();
        assert!(c.is_done("legacy") && c.is_done("fresh"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_points_journal_in_input_order() {
        let dir = temp_dir("batch_order");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut c = Campaign::<f64>::open(&dir)
                .unwrap()
                .with_retry(RetryPolicy { max_attempts: 1, backoff: Duration::from_millis(1) });
            let points: Vec<(String, _)> = (0..6)
                .map(|i| {
                    (format!("p{i}"), move || {
                        if i == 2 {
                            panic!("boom p2");
                        }
                        i as f64 * 1.5
                    })
                })
                .collect();
            let outcomes =
                mmwave_exec::with_workers(4, || c.run_points(&points)).unwrap();
            assert_eq!(outcomes.len(), 6);
            assert!(matches!(outcomes[2], PointOutcome::Failed { .. }));
            assert_eq!(outcomes[5], PointOutcome::Completed { result: 7.5 });
        }
        // The journal must list points in input order, no matter which
        // worker finished first.
        let journal = std::fs::read_to_string(dir.join("journal.jsonl")).unwrap();
        let ids: Vec<String> = journal
            .lines()
            .map(|l| {
                serde_json::from_str::<serde_json::Value>(l).unwrap()["id"]
                    .as_str()
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(ids, vec!["p0", "p1", "p2", "p3", "p4", "p5"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_points_reuse_journaled_outcomes() {
        let dir = temp_dir("batch_resume");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut c = Campaign::<f64>::open(&dir).unwrap();
            c.run_point("p0", || 10.0).unwrap();
            c.run_point("p2", || 12.0).unwrap();
        }
        let mut c = Campaign::<f64>::open(&dir).unwrap();
        let points: Vec<(String, _)> =
            (0..4).map(|i| (format!("p{i}"), move || i as f64 + 100.0)).collect();
        let outcomes = c.run_points(&points).unwrap();
        assert_eq!(outcomes[0], PointOutcome::Completed { result: 10.0 });
        assert_eq!(outcomes[1], PointOutcome::Completed { result: 101.0 });
        assert_eq!(outcomes[2], PointOutcome::Completed { result: 12.0 });
        assert_eq!(outcomes[3], PointOutcome::Completed { result: 103.0 });
        assert_eq!(c.reused_count(), 2, "journaled points must not re-run");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_matches_serial_point_by_point_journal() {
        // A parallel batch and a serial sweep over the same points must
        // leave journals with identical (id, outcome) sequences.
        let serial_dir = temp_dir("batch_vs_serial_a");
        let batch_dir = temp_dir("batch_vs_serial_b");
        let _ = std::fs::remove_dir_all(&serial_dir);
        let _ = std::fs::remove_dir_all(&batch_dir);
        let mut serial = Campaign::<f64>::open(&serial_dir).unwrap();
        for i in 0..5 {
            serial.run_point(&format!("p{i}"), || i as f64 * 2.0).unwrap();
        }
        let mut batch = Campaign::<f64>::open(&batch_dir).unwrap();
        let points: Vec<(String, _)> =
            (0..5).map(|i| (format!("p{i}"), move || i as f64 * 2.0)).collect();
        mmwave_exec::with_workers(4, || batch.run_points(&points)).unwrap();
        let key = |c: &Campaign<f64>| -> Vec<(String, PointOutcome<f64>)> {
            c.order.iter().map(|id| (id.clone(), c.completed[id].clone())).collect()
        };
        assert_eq!(key(&serial), key(&batch));
        std::fs::remove_dir_all(&serial_dir).ok();
        std::fs::remove_dir_all(&batch_dir).ok();
    }

    #[test]
    fn stall_watchdog_flags_a_hung_point() {
        let registry = mmwave_telemetry::global();
        let dir = temp_dir("stall");
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = Campaign::<f64>::open(&dir)
            .unwrap()
            .with_stall_timeout(Duration::from_millis(40));
        let before = registry.counter_value("campaign.stalled");
        let outcome = c
            .run_point("slow", || {
                std::thread::sleep(Duration::from_millis(250));
                9.0
            })
            .unwrap();
        assert_eq!(outcome, PointOutcome::Completed { result: 9.0 });
        if registry.is_enabled() {
            assert!(
                registry.counter_value("campaign.stalled") > before,
                "a 250ms point against a 40ms threshold must trip the watchdog"
            );
            assert!(registry.gauge_value("campaign.stall_seconds").is_some());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stall_watchdog_stays_quiet_for_fast_points_and_zero_disables_it() {
        let dir = temp_dir("nostall");
        let _ = std::fs::remove_dir_all(&dir);
        // Generous threshold, instant point: the watchdog arms and
        // disarms without firing.
        let mut c = Campaign::<f64>::open(&dir)
            .unwrap()
            .with_stall_timeout(Duration::from_secs(30));
        c.run_point("fast", || 1.0).unwrap();
        // Zero timeout: no watchdog thread at all, the sweep still runs.
        let mut c = c.with_stall_timeout(Duration::ZERO);
        let outcome = c.run_point("unwatched", || 2.0).unwrap();
        assert_eq!(outcome, PointOutcome::Completed { result: 2.0 });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deterministic_journal_omits_volatile_fields_and_replays() {
        let dir = temp_dir("deterministic");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut c =
                Campaign::<f64>::open(&dir).unwrap().with_deterministic_journal(true);
            c.run_point("a", || 1.5).unwrap();
            c.run_point("b", || 2.5).unwrap();
        }
        let journal = std::fs::read_to_string(dir.join("journal.jsonl")).unwrap();
        assert!(
            !journal.contains("duration_ms") && !journal.contains("telemetry"),
            "deterministic journals must not carry volatile fields: {journal}"
        );
        let c = Campaign::<f64>::open(&dir).unwrap();
        assert!(c.is_done("a") && c.is_done("b"));
        assert_eq!(c.point_duration_ms("a"), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_round_trips_through_disk_without_reused() {
        let dir = temp_dir("report");
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = Campaign::<f64>::open(&dir)
            .unwrap()
            .with_retry(RetryPolicy { max_attempts: 1, backoff: Duration::from_millis(1) });
        c.run_point("ok", || 1.0).unwrap();
        c.run_point("bad", || panic!("boom")).unwrap();
        let saved = c.save_report().unwrap();
        assert_eq!(saved.completed, 1);
        assert_eq!(saved.failed.len(), 1);

        let loaded = Campaign::<f64>::load_report(&dir).unwrap();
        assert_eq!(loaded.completed, saved.completed);
        assert_eq!(loaded.failed, saved.failed);
        assert_eq!(loaded.reused, 0, "reused is session-local, never persisted");

        // The persisted report carries the store envelope.
        let raw = std::fs::read_to_string(dir.join("report.json")).unwrap();
        assert!(raw.starts_with("MMWVSTORE"), "report must be enveloped: {raw}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_entries_are_crc_framed() {
        let dir = temp_dir("framed");
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = Campaign::<f64>::open(&dir).unwrap();
        c.run_point("a", || 1.0).unwrap();
        let journal = std::fs::read_to_string(dir.join("journal.jsonl")).unwrap();
        let line = journal.lines().next().unwrap();
        assert_eq!(line.as_bytes()[8], b' ');
        assert!(line[..8].bytes().all(|b| b.is_ascii_hexdigit()), "frame: {line}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mid_journal_bit_flip_is_quarantined_and_prefix_survives() {
        let dir = temp_dir("bitflip");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut c = Campaign::<f64>::open(&dir).unwrap();
            c.run_point("a", || 1.0).unwrap();
            c.run_point("b", || 2.0).unwrap();
            c.run_point("c", || 3.0).unwrap();
        }
        // Flip a byte inside entry b (the second line).
        let path = dir.join("journal.jsonl");
        let mut bytes = std::fs::read(&path).unwrap();
        let first_nl = bytes.iter().position(|&b| b == b'\n').unwrap();
        bytes[first_nl + 15] ^= 0x08;
        std::fs::write(&path, &bytes).unwrap();

        let mut c = Campaign::<f64>::open(&dir).unwrap();
        assert!(c.is_done("a"), "prefix before the damage must survive");
        assert!(!c.is_done("b") && !c.is_done("c"), "damage and after must re-run");
        let quarantined = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.file_name().to_string_lossy().contains(".quarantine-"));
        assert!(quarantined, "original damaged journal must be preserved");

        // Re-running the lost points heals the campaign.
        c.run_point("b", || 2.0).unwrap();
        c.run_point("c", || 3.0).unwrap();
        let healed = Campaign::<f64>::open(&dir).unwrap();
        assert!(healed.is_done("a") && healed.is_done("b") && healed.is_done("c"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_trailing_journal_line_is_tolerated() {
        let dir = temp_dir("torn");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut c = Campaign::<f64>::open(&dir).unwrap();
            c.run_point("a", || 1.0).unwrap();
            c.run_point("b", || 2.0).unwrap();
        }
        // Simulate a kill mid-append: chop the journal mid-line.
        let path = dir.join("journal.jsonl");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 10);
        std::fs::write(&path, &bytes).unwrap();

        let c = Campaign::<f64>::open(&dir).unwrap();
        assert!(c.is_done("a"), "intact entries must survive a torn tail");
        assert!(!c.is_done("b"), "the torn entry must be treated as never-run");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn watchdog_survives_a_poisoned_lock() {
        let watchdog = StallWatchdog::start("poison-test", Duration::from_millis(30));

        // Poison the progress lock the way a panicking holder would.
        let inner = Arc::clone(&watchdog.inner);
        let _ = std::thread::spawn(move || {
            let _guard = inner.last_progress.lock().unwrap();
            panic!("poison the watchdog progress lock");
        })
        .join();
        assert!(
            watchdog.inner.last_progress.lock().is_err(),
            "the lock must actually be poisoned for this test to mean anything"
        );

        // touch() must keep working through the poison...
        watchdog.touch();

        // ...and so must the watcher thread: after the timeout the stall
        // must still be detected (counter bumped), not a secondary panic.
        let registry = mmwave_telemetry::global();
        let before = registry.counter_value("campaign.stalled");
        std::thread::sleep(Duration::from_millis(150));
        assert!(
            registry.counter_value("campaign.stalled") > before,
            "a poisoned lock must not blind the stall detector"
        );

        // Drop joins the watcher; a panic here would poison the test.
        drop(watchdog);
    }

    #[test]
    fn panicking_batch_leaves_the_watchdog_and_campaign_functional() {
        let dir = temp_dir("poisonbatch");
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = Campaign::<f64>::open(&dir)
            .unwrap()
            .with_retry(RetryPolicy { max_attempts: 1, backoff: Duration::ZERO })
            .with_stall_timeout(Duration::from_millis(40));

        // A batch whose points all panic: the watchdog running alongside
        // must start, observe, and tear down without a secondary panic.
        let batch: Vec<(String, Box<dyn Fn() -> f64 + Sync>)> = vec![
            ("bad-0".to_string(), Box::new(|| panic!("batch bomb 0")) as _),
            ("bad-1".to_string(), Box::new(|| panic!("batch bomb 1")) as _),
        ];
        let outcomes = c.run_points(&batch).unwrap();
        assert!(outcomes
            .iter()
            .all(|o| matches!(o, PointOutcome::Failed { .. })));

        // The campaign (and a fresh watchdog) must still work after.
        let healed = c.run_point("good", || 4.25).unwrap();
        assert_eq!(healed, PointOutcome::Completed { result: 4.25 });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stall_timeout_parsing_counts_invalid_values() {
        assert_eq!(parse_stall_timeout(None), Duration::from_secs(300));
        assert_eq!(parse_stall_timeout(Some("120")), Duration::from_secs(120));
        assert_eq!(parse_stall_timeout(Some(" 0 ")), Duration::ZERO, "0 disables");
        let registry = mmwave_telemetry::global();
        let before = registry.counter_value("campaign.config_invalid");
        assert_eq!(parse_stall_timeout(Some("five minutes")), Duration::from_secs(300));
        assert_eq!(parse_stall_timeout(Some("-1")), Duration::from_secs(300));
        // `>=`: the counter is process-global and other tests may bump it
        // concurrently.
        assert!(
            registry.counter_value("campaign.config_invalid") >= before + 2,
            "invalid stall timeouts must be counted, not just warned about"
        );
    }
}
