//! SHAP-based selection of the most important frames (Section V-A).

use mmwave_dsp::HeatmapSeq;
use mmwave_har::CnnLstm;
use mmwave_shap::{top_k_indices, PermutationShap, SetFunction};
use serde::{Deserialize, Serialize};

/// How the attacker chooses which frames of a sample to poison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameStrategy {
    /// The paper's method: top-k frames by SHAP value on the surrogate.
    ShapTopK,
    /// Baseline for Table I: simply poison the first k frames.
    FirstK,
}

/// The cooperative game behind Eq. (1): players are frames; a coalition's
/// value is the surrogate's probability for `class` when absent frames'
/// CNN features are replaced by a baseline.
///
/// The baseline is the sample's *mean* frame feature rather than zeros:
/// zero features are far off the training manifold and would credit every
/// frame for merely "looking like radar data", diluting the signal. With
/// the mean baseline, only frames whose content deviates from the sample's
/// average earn credit — which is exactly the frames worth poisoning.
struct FrameGame<'a> {
    model: &'a CnnLstm,
    features: &'a [Vec<f32>],
    baseline: Vec<f32>,
    class: usize,
}

impl<'a> FrameGame<'a> {
    fn new(model: &'a CnnLstm, features: &'a [Vec<f32>], class: usize) -> Self {
        let dim = features[0].len();
        let mut baseline = vec![0.0f32; dim];
        for f in features {
            for (b, x) in baseline.iter_mut().zip(f) {
                *b += x;
            }
        }
        for b in &mut baseline {
            *b /= features.len() as f32;
        }
        FrameGame { model, features, baseline, class }
    }
}

impl SetFunction for FrameGame<'_> {
    fn n_players(&self) -> usize {
        self.features.len()
    }

    fn evaluate(&self, coalition: &[bool]) -> f64 {
        let masked: Vec<Vec<f32>> = self
            .features
            .iter()
            .zip(coalition)
            .map(|(f, &present)| if present { f.clone() } else { self.baseline.clone() })
            .collect();
        let logits = self.model.logits_from_features(&masked);
        mmwave_nn::softmax(&logits)[self.class] as f64
    }
}

/// Per-frame SHAP values of a sample with respect to `class` on the
/// surrogate model. `n_permutations` permutation pairs are sampled
/// (cost: `2 * n_permutations * n_frames` LSTM forward passes).
pub fn frame_importance(
    model: &CnnLstm,
    sample: &HeatmapSeq,
    class: usize,
    n_permutations: usize,
    seed: u64,
) -> Vec<f64> {
    let _span = mmwave_telemetry::span_at("shap_importance", mmwave_telemetry::Level::Debug);
    let features: Vec<Vec<f32>> = sample.frames().iter().map(|f| model.frame_features(f)).collect();
    let game = FrameGame::new(model, &features, class);
    PermutationShap::new(n_permutations, seed).explain(&game)
}

/// Frame ranking (most important first) for poisoning, under a strategy.
pub fn frame_ranking(
    strategy: FrameStrategy,
    model: &CnnLstm,
    sample: &HeatmapSeq,
    class: usize,
    n_permutations: usize,
    seed: u64,
) -> Vec<usize> {
    match strategy {
        FrameStrategy::ShapTopK => {
            let phi = frame_importance(model, sample, class, n_permutations, seed);
            top_k_indices(&phi, phi.len())
        }
        FrameStrategy::FirstK => (0..sample.len()).collect(),
    }
}

/// Histogram of the most-important frame index over many samples — the
/// data behind Fig. 3.
pub fn importance_histogram(
    model: &CnnLstm,
    samples: &[(HeatmapSeq, usize)],
    n_permutations: usize,
    seed: u64,
) -> Vec<usize> {
    let n_frames = samples.first().map(|(s, _)| s.len()).unwrap_or(0);
    let mut hist = vec![0usize; n_frames];
    for (i, (sample, class)) in samples.iter().enumerate() {
        let phi = frame_importance(model, sample, *class, n_permutations, seed ^ i as u64);
        hist[mmwave_shap::argmax(&phi)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_dsp::heatmap::{Heatmap, HeatmapKind};
    use mmwave_har::PrototypeConfig;
    use mmwave_nn::softmax_cross_entropy;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn cfg() -> PrototypeConfig {
        PrototypeConfig::smoke_test()
    }

    fn blob_frame(cfg: &PrototypeConfig, row: usize, intensity: f32) -> Heatmap {
        let mut hm = Heatmap::zeros(cfg.heatmap_rows, cfg.heatmap_cols, HeatmapKind::RangeAngle);
        for c in 0..cfg.heatmap_cols {
            *hm.get_mut(row, c) = intensity;
        }
        hm
    }

    /// Trains a tiny model where only frame 5 carries the class signal;
    /// SHAP must rank it first.
    #[test]
    fn shap_finds_the_discriminative_frame() {
        let cfg = cfg();
        let mut model = mmwave_har::CnnLstm::new(&cfg, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let make_sample = |class: usize, rng: &mut ChaCha8Rng| {
            let frames: Vec<Heatmap> = (0..cfg.n_frames)
                .map(|t| {
                    if t == 5 {
                        // The signal frame: blob row encodes the class.
                        blob_frame(&cfg, if class == 0 { 2 } else { 9 }, 1.0)
                    } else {
                        // Noise frames, identical distribution across classes.
                        blob_frame(&cfg, 6, rng.gen_range(0.2..0.4))
                    }
                })
                .collect();
            HeatmapSeq::new(frames)
        };
        // Train to separate the two classes.
        let mut adam = mmwave_nn::Adam::new(5e-3);
        for _ in 0..60 {
            for class in 0..2usize {
                let sample = make_sample(class, &mut rng);
                let cache = model.forward(&sample);
                let (_, dlogits) = softmax_cross_entropy(&cache.logits, class);
                model.zero_grads();
                model.backward(&cache, &dlogits);
                adam.step(&mut model.param_tensors());
            }
        }
        let sample = make_sample(0, &mut rng);
        assert_eq!(model.predict(&sample), 0, "model must learn the toy task");
        let phi = frame_importance(&model, &sample, 0, 24, 7);
        assert_eq!(
            mmwave_shap::argmax(&phi),
            5,
            "SHAP should rank the signal frame first (phi = {phi:?})"
        );
    }

    #[test]
    fn first_k_strategy_is_sequential() {
        let cfg = cfg();
        let model = mmwave_har::CnnLstm::new(&cfg, 0);
        let sample = HeatmapSeq::new(vec![blob_frame(&cfg, 3, 0.5); cfg.n_frames]);
        let ranking = frame_ranking(FrameStrategy::FirstK, &model, &sample, 0, 4, 0);
        assert_eq!(ranking, (0..cfg.n_frames).collect::<Vec<_>>());
    }

    #[test]
    fn histogram_counts_sum_to_sample_count() {
        let cfg = cfg();
        let model = mmwave_har::CnnLstm::new(&cfg, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let samples: Vec<(HeatmapSeq, usize)> = (0..4)
            .map(|_| {
                let frames: Vec<Heatmap> = (0..cfg.n_frames)
                    .map(|_| blob_frame(&cfg, rng.gen_range(0..cfg.heatmap_rows), 0.8))
                    .collect();
                (HeatmapSeq::new(frames), 0)
            })
            .collect();
        let hist = importance_histogram(&model, &samples, 8, 3);
        assert_eq!(hist.len(), cfg.n_frames);
        assert_eq!(hist.iter().sum::<usize>(), 4);
    }

    #[test]
    fn importance_is_deterministic_per_seed() {
        let cfg = cfg();
        let model = mmwave_har::CnnLstm::new(&cfg, 2);
        let sample = HeatmapSeq::new(vec![blob_frame(&cfg, 4, 0.6); cfg.n_frames]);
        let a = frame_importance(&model, &sample, 1, 8, 11);
        let b = frame_importance(&model, &sample, 1, 8, 11);
        assert_eq!(a, b);
    }
}
