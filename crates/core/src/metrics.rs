//! Attack evaluation metrics: ASR, UASR, CDR (Section VI-E).

use crate::scenario::AttackScenario;
use mmwave_body::Activity;
use mmwave_dsp::HeatmapSeq;
use mmwave_har::dataset::Dataset;
use mmwave_har::CnnLstm;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's three evaluation metrics, all in `[0, 1]`:
///
/// * **ASR** — fraction of triggered victim samples classified as the
///   *target* class (targeted success);
/// * **UASR** — fraction of triggered victim samples classified as
///   anything but the true class (untargeted success; `UASR >= ASR`);
/// * **CDR** — clean-data rate: accuracy of the backdoored model on clean
///   test samples (stealthiness).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackMetrics {
    /// Targeted attack success rate.
    pub asr: f64,
    /// Untargeted attack success rate.
    pub uasr: f64,
    /// Clean-data rate.
    pub cdr: f64,
    /// Number of attack samples evaluated.
    pub n_attack_samples: usize,
    /// Number of clean test samples evaluated.
    pub n_clean_samples: usize,
}

impl AttackMetrics {
    /// Averages a set of runs (the paper averages 30 repetitions).
    ///
    /// # Panics
    ///
    /// Panics if `runs` is empty.
    pub fn mean(runs: &[AttackMetrics]) -> AttackMetrics {
        assert!(!runs.is_empty(), "cannot average zero runs");
        let n = runs.len() as f64;
        AttackMetrics {
            asr: runs.iter().map(|r| r.asr).sum::<f64>() / n,
            uasr: runs.iter().map(|r| r.uasr).sum::<f64>() / n,
            cdr: runs.iter().map(|r| r.cdr).sum::<f64>() / n,
            n_attack_samples: runs.iter().map(|r| r.n_attack_samples).sum(),
            n_clean_samples: runs.iter().map(|r| r.n_clean_samples).sum(),
        }
    }
}

impl fmt::Display for AttackMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ASR {:5.1}%  UASR {:5.1}%  CDR {:5.1}%",
            100.0 * self.asr,
            100.0 * self.uasr,
            100.0 * self.cdr
        )
    }
}

/// Evaluates a backdoored model: `attack_samples` are triggered captures of
/// the victim activity; `clean_test` is the victim's held-out clean data.
pub fn evaluate_attack(
    model: &CnnLstm,
    attack_samples: &[(HeatmapSeq, Activity)],
    scenario: &AttackScenario,
    clean_test: &Dataset,
) -> AttackMetrics {
    let mut targeted = 0usize;
    let mut untargeted = 0usize;
    for (seq, truth) in attack_samples {
        let pred = Activity::from_index(model.predict(seq));
        if pred == scenario.target {
            targeted += 1;
        }
        if pred != *truth {
            untargeted += 1;
        }
    }
    let n_attack = attack_samples.len();
    let clean_eval = mmwave_har::eval::evaluate(model, clean_test);
    AttackMetrics {
        asr: if n_attack == 0 { 0.0 } else { targeted as f64 / n_attack as f64 },
        uasr: if n_attack == 0 { 0.0 } else { untargeted as f64 / n_attack as f64 },
        cdr: clean_eval.accuracy,
        n_attack_samples: n_attack,
        n_clean_samples: clean_test.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(asr: f64, uasr: f64, cdr: f64) -> AttackMetrics {
        AttackMetrics { asr, uasr, cdr, n_attack_samples: 10, n_clean_samples: 20 }
    }

    #[test]
    fn mean_averages_fields() {
        let avg = AttackMetrics::mean(&[m(0.8, 0.9, 0.95), m(0.6, 0.7, 0.85)]);
        assert!((avg.asr - 0.7).abs() < 1e-12);
        assert!((avg.uasr - 0.8).abs() < 1e-12);
        assert!((avg.cdr - 0.9).abs() < 1e-12);
        assert_eq!(avg.n_attack_samples, 20);
    }

    #[test]
    fn display_is_percentages() {
        let s = m(0.84, 0.9, 0.95).to_string();
        assert!(s.contains("84.0%"), "{s}");
    }

    #[test]
    #[should_panic(expected = "zero runs")]
    fn empty_mean_panics() {
        AttackMetrics::mean(&[]);
    }
}
