//! Training-data poisoning: splicing triggered frames into clean samples.

use crate::frames::FrameStrategy;
use crate::scenario::AttackScenario;
use mmwave_dsp::HeatmapSeq;
use mmwave_har::dataset::{Dataset, LabeledSample, PairedSample};
use serde::{Deserialize, Serialize};

/// Poisoning parameters (the two axes swept in Figs. 8-13).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoisonConfig {
    /// Poisoned samples as a fraction of the victim class's clean training
    /// samples (the paper's "backdoor sample injection rate").
    pub injection_rate: f64,
    /// Number of frames replaced per poisoned sample.
    pub n_poisoned_frames: usize,
    /// How the frames are chosen.
    pub frame_strategy: FrameStrategy,
}

impl PoisonConfig {
    /// The paper's reference operating point: rate 0.4, 8 frames, SHAP.
    pub fn reference() -> PoisonConfig {
        PoisonConfig {
            injection_rate: 0.4,
            n_poisoned_frames: 8,
            frame_strategy: FrameStrategy::ShapTopK,
        }
    }
}

/// Builds one poisoned sample: the clean capture with `frames` replaced by
/// their triggered twins.
///
/// # Panics
///
/// Panics if a frame index is out of range or the sequences mismatch.
pub fn poison_sample(clean: &HeatmapSeq, triggered: &HeatmapSeq, frames: &[usize]) -> HeatmapSeq {
    assert_eq!(clean.len(), triggered.len(), "sequence length mismatch");
    let mut out = clean.clone();
    for &fi in frames {
        assert!(fi < clean.len(), "frame index {fi} out of range");
        out.replace_frame(fi, triggered.frame(fi).clone());
    }
    out
}

/// Builds the poisoned training set: the clean data plus
/// `round(rate * |victim class|)` poisoned samples, drawn round-robin from
/// the attacker's paired recordings and labeled as the target class.
///
/// `rankings[i]` is the frame ranking (most important first) of
/// `attacker_pairs[i]`; the first `n_poisoned_frames` entries are used.
///
/// # Panics
///
/// Panics if `attacker_pairs` is empty while the rate calls for poisoned
/// samples, or rankings are shorter than `n_poisoned_frames`.
pub fn build_poisoned_dataset(
    clean_train: &Dataset,
    attacker_pairs: &[PairedSample],
    rankings: &[Vec<usize>],
    scenario: &AttackScenario,
    config: &PoisonConfig,
) -> Dataset {
    assert_eq!(attacker_pairs.len(), rankings.len(), "one ranking per pair required");
    let n_victim = clean_train.of_class(scenario.victim).len();
    let n_poison = (config.injection_rate * n_victim as f64).round() as usize;
    let mut out = clean_train.clone();
    if n_poison == 0 {
        return out;
    }
    assert!(
        !attacker_pairs.is_empty(),
        "poisoning requested but the attacker has no recordings"
    );
    for k in 0..n_poison {
        let idx = k % attacker_pairs.len();
        let pair = &attacker_pairs[idx];
        let ranking = &rankings[idx];
        assert!(
            ranking.len() >= config.n_poisoned_frames,
            "ranking shorter than n_poisoned_frames"
        );
        let frames = &ranking[..config.n_poisoned_frames];
        out.samples.push(LabeledSample {
            heatmaps: poison_sample(&pair.clean, &pair.triggered, frames),
            label: scenario.target,
            placement: pair.placement,
            participant: usize::MAX, // the attacker is not a study participant
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_body::Activity;
    use mmwave_dsp::heatmap::{Heatmap, HeatmapKind};
    use mmwave_radar::Placement;

    fn seq(value: f32, n: usize) -> HeatmapSeq {
        HeatmapSeq::new(vec![
            Heatmap::from_data(2, 2, HeatmapKind::RangeAngle, vec![value; 4]);
            n
        ])
    }

    fn pair(label: Activity) -> PairedSample {
        PairedSample {
            clean: seq(0.0, 8),
            triggered: seq(1.0, 8),
            label,
            placement: Placement::new(1.2, 0.0),
        }
    }

    fn clean_dataset(per_class: usize) -> Dataset {
        let mut d = Dataset::new();
        for act in Activity::ALL {
            for _ in 0..per_class {
                d.samples.push(LabeledSample {
                    heatmaps: seq(0.5, 8),
                    label: act,
                    placement: Placement::new(1.2, 0.0),
                    participant: 0,
                });
            }
        }
        d
    }

    #[test]
    fn poison_sample_replaces_only_selected_frames() {
        let clean = seq(0.0, 8);
        let trig = seq(1.0, 8);
        let out = poison_sample(&clean, &trig, &[1, 4]);
        for i in 0..8 {
            let expected = if i == 1 || i == 4 { 1.0 } else { 0.0 };
            assert_eq!(out.frame(i).get(0, 0), expected, "frame {i}");
        }
    }

    #[test]
    fn injection_rate_sets_poison_count() {
        let clean = clean_dataset(10); // 10 victim samples
        let scenario = AttackScenario::push_to_pull();
        let pairs = vec![pair(Activity::Push); 3];
        let rankings = vec![(0..8).collect::<Vec<_>>(); 3];
        let cfg = PoisonConfig { injection_rate: 0.4, n_poisoned_frames: 4, frame_strategy: FrameStrategy::FirstK };
        let poisoned = build_poisoned_dataset(&clean, &pairs, &rankings, &scenario, &cfg);
        assert_eq!(poisoned.len(), clean.len() + 4); // 0.4 * 10
        // Poisoned samples carry the target label.
        let extra = &poisoned.samples[clean.len()..];
        assert!(extra.iter().all(|s| s.label == Activity::Pull));
        assert!(extra.iter().all(|s| s.participant == usize::MAX));
    }

    #[test]
    fn zero_rate_changes_nothing() {
        let clean = clean_dataset(5);
        let scenario = AttackScenario::push_to_pull();
        let cfg = PoisonConfig { injection_rate: 0.0, n_poisoned_frames: 8, frame_strategy: FrameStrategy::FirstK };
        let poisoned = build_poisoned_dataset(&clean, &[], &[], &scenario, &cfg);
        assert_eq!(poisoned, clean);
    }

    #[test]
    fn pairs_are_used_round_robin() {
        let clean = clean_dataset(10);
        let scenario = AttackScenario::push_to_pull();
        let mut p1 = pair(Activity::Push);
        p1.placement = Placement::new(0.8, 0.0);
        let mut p2 = pair(Activity::Push);
        p2.placement = Placement::new(2.0, 30.0);
        let rankings = vec![(0..8).collect::<Vec<_>>(); 2];
        let cfg = PoisonConfig { injection_rate: 0.3, n_poisoned_frames: 2, frame_strategy: FrameStrategy::FirstK };
        let poisoned = build_poisoned_dataset(&clean, &[p1, p2], &rankings, &scenario, &cfg);
        let extra = &poisoned.samples[clean.len()..];
        assert_eq!(extra.len(), 3);
        assert_ne!(extra[0].placement, extra[1].placement, "round-robin over pairs");
    }

    #[test]
    #[should_panic(expected = "no recordings")]
    fn missing_pairs_panics_when_needed() {
        let clean = clean_dataset(5);
        let cfg = PoisonConfig::reference();
        build_poisoned_dataset(&clean, &[], &[], &AttackScenario::push_to_pull(), &cfg);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_frame_index_panics() {
        poison_sample(&seq(0.0, 4), &seq(1.0, 4), &[9]);
    }
}
