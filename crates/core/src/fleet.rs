//! Fleet observability on top of the durable store: workers ship their
//! telemetry into per-worker shards under the campaign directory, and
//! aggregators (`mmwave top`, `mmwave fleet-export`) merge them into one
//! live view of the whole fleet.
//!
//! The pure merge/stitch logic lives in [`mmwave_telemetry::fleet`]; this
//! module binds it to the store and the campaign directory layout:
//!
//! ```text
//! <campaign>/fleet/<worker>.shard.json   checksummed WorkerShard envelope
//! <campaign>/fleet/<worker>.trace.json   Chrome-trace array (atomic write)
//! <campaign>/fleet/export/               merged artifacts (fleet-export)
//! ```
//!
//! Shipping is cheap (one registry export + one atomic write) and never
//! fatal: a worker that cannot ship keeps draining tasks and bumps
//! `fleet.ship_failed`. Shards are advisory observability data — the
//! campaign's correctness never depends on them.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::dag::{self, CampaignDag, DagStatus, TaskState};
use mmwave_telemetry::fleet::{
    merge_shards, robust_threshold, stitch_traces, FleetMetrics, WorkerShard, WorkerTrace,
};
use mmwave_telemetry::{process_micros, unix_millis};
use serde::{Deserialize, Serialize};

/// Default shipping period when `MMWAVE_FLEET_SHIP_SECS` is unset.
pub const DEFAULT_SHIP_SECS: f64 = 5.0;

/// Canonical fleet-file locations inside a campaign directory.
pub mod paths {
    use super::*;

    /// The per-campaign fleet directory holding every worker's shards.
    pub fn fleet_dir(dir: &Path) -> PathBuf {
        dir.join("fleet")
    }

    /// A worker's telemetry shard (checksummed store envelope).
    pub fn shard(dir: &Path, worker_id: &str) -> PathBuf {
        fleet_dir(dir).join(format!("{}.shard.json", sanitize_worker_id(worker_id)))
    }

    /// A worker's Chrome-trace event file (bare JSON array).
    pub fn trace(dir: &Path, worker_id: &str) -> PathBuf {
        fleet_dir(dir).join(format!("{}.trace.json", sanitize_worker_id(worker_id)))
    }

    /// Where `mmwave fleet-export` writes merged artifacts by default.
    pub fn export_dir(dir: &Path) -> PathBuf {
        fleet_dir(dir).join("export")
    }
}

/// Maps a worker id onto a safe file stem: anything outside
/// `[A-Za-z0-9._-]` becomes `_`, and an empty id becomes `worker`.
pub fn sanitize_worker_id(worker_id: &str) -> String {
    let cleaned: String = worker_id
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') { c } else { '_' })
        .collect();
    if cleaned.is_empty() {
        "worker".to_string()
    } else {
        cleaned
    }
}

/// Parses the raw `MMWAVE_FLEET_SHIP_SECS` value. `None` (unset) means
/// the default period; `0`/`off`/`false`/`no` disables shipping entirely;
/// anything else non-positive or non-numeric warns, bumps
/// `campaign.config_invalid`, and falls back to the default — consistent
/// with every other knob, misconfiguration is observable, never fatal.
pub fn parse_ship_interval(raw: Option<&str>) -> Option<Duration> {
    let default = Duration::from_secs_f64(DEFAULT_SHIP_SECS);
    match raw {
        None => Some(default),
        Some(text) => {
            let trimmed = text.trim();
            if matches!(trimmed.to_ascii_lowercase().as_str(), "0" | "off" | "false" | "no") {
                return None;
            }
            match trimmed.parse::<f64>() {
                Ok(secs) if secs > 0.0 && secs.is_finite() => {
                    Some(Duration::from_secs_f64(secs))
                }
                _ => {
                    mmwave_telemetry::counter("campaign.config_invalid", 1);
                    mmwave_telemetry::warn!(
                        "ignoring invalid MMWAVE_FLEET_SHIP_SECS={text:?}; using default {DEFAULT_SHIP_SECS}s"
                    );
                    eprintln!(
                        "mmwave: ignoring invalid MMWAVE_FLEET_SHIP_SECS={text:?}; using default {DEFAULT_SHIP_SECS}s"
                    );
                    Some(default)
                }
            }
        }
    }
}

/// Cheap check (no warnings, no counters) of whether fleet shipping is on
/// at all — the CLI uses this to decide whether to install the per-worker
/// trace sink before the worker loop starts.
pub fn shipping_enabled() -> bool {
    match std::env::var("MMWAVE_FLEET_SHIP_SECS") {
        Err(_) => true,
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "0" | "off" | "false" | "no"
        ),
    }
}

/// Ships this worker's registry into its shard file: periodically, after
/// every completed task, and once more (with `exited = true`) when the
/// campaign resolves.
pub struct FleetShipper {
    dir: PathBuf,
    worker_id: String,
    /// `None` when shipping is disabled.
    interval: Option<Duration>,
    last: Option<Instant>,
    last_task: Option<String>,
    git_sha: String,
}

impl FleetShipper {
    /// Builds a shipper for the worker draining `dir`, reading
    /// `MMWAVE_FLEET_SHIP_SECS` (period, `0`/`off` disables) and
    /// `MMWAVE_GIT_SHA` (shard tag, default `unknown`).
    pub fn from_env(dir: &Path, worker_id: &str) -> FleetShipper {
        FleetShipper {
            dir: dir.to_path_buf(),
            worker_id: worker_id.to_string(),
            interval: parse_ship_interval(
                std::env::var("MMWAVE_FLEET_SHIP_SECS").ok().as_deref(),
            ),
            last: None,
            last_task: None,
            git_sha: std::env::var("MMWAVE_GIT_SHA")
                .ok()
                .filter(|s| !s.trim().is_empty())
                .unwrap_or_else(|| "unknown".to_string()),
        }
    }

    /// Ships when the period elapsed (and immediately on the first call,
    /// so a shard exists from worker startup — even a worker killed on
    /// its very first task leaves one behind).
    pub fn maybe_ship(&mut self) {
        let Some(interval) = self.interval else { return };
        let due = match self.last {
            None => true,
            Some(at) => at.elapsed() >= interval,
        };
        if due {
            self.ship(false);
        }
    }

    /// Records `task_id` as the last completed task and ships right away,
    /// so `campaign-status` / `top` see task attribution promptly.
    pub fn task_completed(&mut self, task_id: &str) {
        self.last_task = Some(task_id.to_string());
        if self.interval.is_some() {
            self.ship(false);
        }
    }

    /// The final ship before a clean exit, marking the shard `exited` so
    /// aggregators can tell a finished worker from a dead one.
    pub fn ship_final(&mut self) {
        if self.interval.is_some() {
            self.ship(true);
        }
    }

    fn ship(&mut self, exited: bool) {
        // Stamp `last` first: a failing disk must not turn every loop
        // iteration into a write attempt.
        self.last = Some(Instant::now());
        let registry = mmwave_telemetry::global();
        // Flushing first updates the per-worker trace file alongside the
        // shard, so a later SIGKILL loses at most one period of events.
        registry.flush();
        let ts_ms = unix_millis();
        let uptime_ms = process_micros() / 1000;
        let shard = WorkerShard {
            worker_id: self.worker_id.clone(),
            pid: std::process::id(),
            git_sha: self.git_sha.clone(),
            ts_ms,
            uptime_ms,
            clock_anchor_unix_ms: ts_ms.saturating_sub(uptime_ms),
            exited,
            last_task: self.last_task.clone(),
            metrics: registry.export_metrics(),
        };
        match mmwave_store::save_json_atomic(&paths::shard(&self.dir, &self.worker_id), &shard)
        {
            Ok(()) => mmwave_telemetry::counter("fleet.shipped", 1),
            Err(e) => {
                mmwave_telemetry::counter("fleet.ship_failed", 1);
                mmwave_telemetry::warn!("fleet shard ship failed: {e}");
            }
        }
    }
}

/// Loads every readable worker shard under `dir`, sorted by worker id.
/// Torn or corrupt shards (a worker killed mid-rename, a truncated disk)
/// are skipped with a `fleet.shard_corrupt` bump — observability must
/// degrade, not fail, when a worker died messily.
///
/// # Errors
///
/// Only unrecoverable I/O errors (permissions, metadata failures); a
/// missing fleet directory is an empty fleet, not an error.
pub fn load_shards(dir: &Path) -> io::Result<Vec<WorkerShard>> {
    let fleet = paths::fleet_dir(dir);
    let entries = match std::fs::read_dir(&fleet) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut shards = Vec::new();
    for entry in entries {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        if !name.ends_with(".shard.json") {
            continue;
        }
        match mmwave_store::load_json::<WorkerShard>(&path) {
            Ok(loaded) => shards.push(loaded.value),
            Err(mmwave_store::StoreError::Missing { .. }) => {}
            Err(e) if e.is_recoverable() => {
                mmwave_telemetry::counter("fleet.shard_corrupt", 1);
                mmwave_telemetry::warn!("skipping unreadable fleet shard {}: {e}", path.display());
            }
            Err(e) => return Err(e.into()),
        }
    }
    shards.sort_by(|a, b| a.worker_id.cmp(&b.worker_id));
    Ok(shards)
}

/// Loads the trace events shipped beside each shard. Workers without a
/// readable, non-empty trace file are simply absent from the stitched
/// timeline.
pub fn load_traces(dir: &Path, shards: &[WorkerShard]) -> Vec<WorkerTrace> {
    shards
        .iter()
        .filter_map(|shard| {
            let path = paths::trace(dir, &shard.worker_id);
            match mmwave_telemetry::read_trace_file(&path) {
                Ok(events) if !events.is_empty() => Some(WorkerTrace {
                    worker_id: shard.worker_id.clone(),
                    pid: shard.pid,
                    clock_anchor_unix_ms: shard.clock_anchor_unix_ms,
                    events,
                }),
                _ => None,
            }
        })
        .collect()
}

/// Worker ids that left reclaim evidence behind: `reclaim_stale` renames
/// a dead worker's claim to `<claim>.stale-<pid>-<seq>` with the owner's
/// `ClaimInfo` still in the body, which is exactly a death certificate.
pub fn reclaim_evidence_owners(dir: &Path) -> BTreeSet<String> {
    let mut owners = BTreeSet::new();
    let Ok(entries) = std::fs::read_dir(dir.join("claims")) else {
        return owners;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        if !name.to_string_lossy().contains(".stale-") {
            continue;
        }
        if let Ok(bytes) = std::fs::read(entry.path()) {
            if let Ok(info) = serde_json::from_slice::<mmwave_store::ClaimInfo>(&bytes) {
                owners.insert(info.worker_id);
            }
        }
    }
    owners
}

/// One worker's liveness classification in a [`FleetHealth`] report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerStatus {
    /// Fresh heartbeat or shard: making progress.
    Active,
    /// Its newest signal (claim heartbeat or shard) is older than the
    /// straggler threshold, but there is no proof of death yet.
    Stale,
    /// Reclaim evidence exists and the worker never shipped a clean
    /// exit: it died mid-task.
    Dead,
    /// Shipped a final shard after the campaign resolved for it.
    Exited,
}

/// One worker's row in the fleet health report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerHealth {
    /// Worker id.
    pub worker_id: String,
    /// OS pid (0 when only known from a torn claim).
    pub pid: u32,
    /// Liveness classification.
    pub status: WorkerStatus,
    /// Age of the worker's freshest claim heartbeat, if it holds any.
    pub heartbeat_age_ms: Option<u64>,
    /// Age of the worker's last shipped shard, if it shipped one.
    pub ship_age_ms: Option<u64>,
    /// `dag.executed` from the worker's shard.
    pub tasks_done: u64,
    /// `dag.task_failed` from the worker's shard.
    pub tasks_failed: u64,
    /// `dag.dedupe_hit` from the worker's shard.
    pub tasks_deduped: u64,
    /// Last task the worker completed, if any.
    pub last_task: Option<String>,
    /// Mean `dag.task` span duration in milliseconds (0 when none ran).
    pub mean_task_ms: f64,
    /// True when this worker trips the straggler/stall detector.
    pub straggler: bool,
    /// Human-readable reasons behind `straggler`.
    pub reasons: Vec<String>,
}

/// The fleet-wide health report: per-worker rows plus the robust
/// thresholds they were judged against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetHealth {
    /// Per-worker health, sorted by worker id.
    pub workers: Vec<WorkerHealth>,
    /// Liveness-signal threshold: `max(median_signal_age * factor, ttl)`.
    pub heartbeat_threshold_ms: u64,
    /// Per-task-duration threshold: `median_mean_task_ms * factor`.
    pub task_threshold_ms: f64,
    /// The multiplier both thresholds used.
    pub straggler_factor: f64,
}

/// Per-claim signal extracted from a [`DagStatus`] for one worker.
#[derive(Default)]
struct ClaimSignal {
    min_age: Option<Duration>,
    any_live: bool,
    any_stale: bool,
    pid: u32,
}

/// Classifies every known worker (shards ∪ claim owners ∪ reclaim
/// evidence) as active / stale / dead / exited and flags stragglers via
/// the robust `median × factor` threshold (floored at `ttl`, the claim
/// protocol's own staleness horizon). Pure: `now_ms` is passed in so
/// tests can pin the clock.
pub fn fleet_health(
    status: &DagStatus,
    shards: &[WorkerShard],
    evidence: &BTreeSet<String>,
    now_ms: u64,
    ttl: Duration,
    factor: f64,
) -> FleetHealth {
    let mut claims: BTreeMap<String, ClaimSignal> = BTreeMap::new();
    for (_, state) in &status.tasks {
        if let TaskState::Claimed { owner: Some(info), age, stale } = state {
            let signal = claims.entry(info.worker_id.clone()).or_default();
            signal.min_age = Some(signal.min_age.map_or(*age, |a| a.min(*age)));
            signal.any_live |= !stale;
            signal.any_stale |= stale;
            signal.pid = info.pid;
        }
    }

    let mut ids: BTreeSet<String> = claims.keys().cloned().collect();
    ids.extend(shards.iter().map(|s| s.worker_id.clone()));
    ids.extend(evidence.iter().cloned());

    // The liveness signal per worker: claim-heartbeat age when it holds a
    // claim (the strongest signal), else shard age. Collected across the
    // whole fleet to form the robust threshold.
    let mut signals_ms: Vec<f64> = Vec::new();
    let mut mean_task_samples: Vec<f64> = Vec::new();
    let mut rows: Vec<(WorkerHealth, Option<f64>)> = Vec::new();
    for id in &ids {
        let shard = shards.iter().find(|s| &s.worker_id == id);
        let claim = claims.get(id);
        let heartbeat_age_ms = claim.and_then(|c| c.min_age).map(|a| a.as_millis() as u64);
        let ship_age_ms = shard.map(|s| now_ms.saturating_sub(s.ts_ms));
        let signal_ms = heartbeat_age_ms.or(ship_age_ms).map(|ms| ms as f64);
        if let Some(ms) = signal_ms {
            signals_ms.push(ms);
        }
        let mean_task_ms = shard
            .and_then(|s| s.metrics.spans.get("dag.task"))
            .filter(|e| e.count > 0)
            .map_or(0.0, |e| 1e3 * e.sum / e.count as f64);
        if mean_task_ms > 0.0 {
            mean_task_samples.push(mean_task_ms);
        }
        let counter = |name: &str| {
            shard.map_or(0, |s| s.metrics.counters.get(name).copied().unwrap_or(0))
        };
        rows.push((
            WorkerHealth {
                worker_id: id.clone(),
                pid: shard.map(|s| s.pid).or(claim.map(|c| c.pid)).unwrap_or(0),
                status: WorkerStatus::Active, // classified below
                heartbeat_age_ms,
                ship_age_ms,
                tasks_done: counter("dag.executed"),
                tasks_failed: counter("dag.task_failed"),
                tasks_deduped: counter("dag.dedupe_hit"),
                last_task: shard.and_then(|s| s.last_task.clone()),
                mean_task_ms,
                straggler: false,
                reasons: Vec::new(),
            },
            signal_ms,
        ));
    }

    let ttl_ms = ttl.as_millis() as f64;
    let heartbeat_threshold_ms = robust_threshold(&signals_ms, factor, ttl_ms);
    let task_threshold_ms = robust_threshold(&mean_task_samples, factor, 0.0);

    let mut workers = Vec::with_capacity(rows.len());
    for (mut row, signal_ms) in rows {
        let shard = shards.iter().find(|s| s.worker_id == row.worker_id);
        let claim = claims.get(&row.worker_id);
        let exited = shard.is_some_and(|s| s.exited);
        let holds_live = claim.is_some_and(|c| c.any_live);
        let holds_only_stale = claim.is_some_and(|c| c.any_stale && !c.any_live);
        row.status = if holds_live {
            WorkerStatus::Active
        } else if holds_only_stale {
            WorkerStatus::Stale
        } else if evidence.contains(&row.worker_id) && !exited {
            WorkerStatus::Dead
        } else if exited {
            WorkerStatus::Exited
        } else if signal_ms.is_some_and(|ms| ms > heartbeat_threshold_ms) {
            WorkerStatus::Stale
        } else {
            WorkerStatus::Active
        };
        match row.status {
            WorkerStatus::Dead => row.reasons.push("claim reclaimed after death".to_string()),
            WorkerStatus::Stale => row.reasons.push(format!(
                "liveness signal {}ms exceeds threshold {}ms",
                signal_ms.unwrap_or(0.0) as u64,
                heartbeat_threshold_ms as u64
            )),
            WorkerStatus::Active | WorkerStatus::Exited => {}
        }
        if task_threshold_ms > 0.0 && row.mean_task_ms > task_threshold_ms {
            row.reasons.push(format!(
                "mean task {:.0}ms exceeds threshold {:.0}ms",
                row.mean_task_ms, task_threshold_ms
            ));
        }
        row.straggler = !row.reasons.is_empty();
        workers.push(row);
    }

    FleetHealth {
        workers,
        heartbeat_threshold_ms: heartbeat_threshold_ms as u64,
        task_threshold_ms,
        straggler_factor: factor,
    }
}

/// Loads everything `top` and `fleet-export` need from a campaign
/// directory in one read-only sweep.
///
/// # Errors
///
/// I/O and store errors from the DAG load or the status scan.
pub fn observe_fleet(
    dir: &Path,
    ttl: Duration,
    factor: f64,
) -> io::Result<(DagStatus, Vec<WorkerShard>, FleetMetrics, FleetHealth)> {
    let dag = CampaignDag::load(dir)?;
    let status = dag::scan(dir, &dag, ttl)?;
    let shards = load_shards(dir)?;
    let merged = merge_shards(&shards);
    let evidence = reclaim_evidence_owners(dir);
    let health = fleet_health(&status, &shards, &evidence, unix_millis(), ttl, factor);
    Ok((status, shards, merged, health))
}

/// What [`export_fleet`] wrote and verified.
#[derive(Debug)]
pub struct FleetExportSummary {
    /// Merged metrics artifact (store envelope).
    pub metrics_path: PathBuf,
    /// Health report artifact (store envelope).
    pub health_path: PathBuf,
    /// Stitched Perfetto trace (bare JSON array, Perfetto-loadable).
    pub trace_path: PathBuf,
    /// Worker shards merged.
    pub workers: usize,
    /// Events in the stitched trace.
    pub trace_events: usize,
    /// Distinct counters in the merged metrics.
    pub counters: usize,
}

/// Merges every shard under `dir` and writes the three durable artifacts
/// into `out`: `fleet_metrics.json` and `fleet_health.json` through the
/// store's checksummed envelope (then loaded back, verifying checksums),
/// and `fleet_trace.json` as a bare Chrome-trace array via the atomic
/// writer (an envelope header would make Perfetto reject it).
///
/// # Errors
///
/// I/O and store errors from loading, writing, or the verification
/// round-trip.
pub fn export_fleet(
    dir: &Path,
    out: &Path,
    ttl: Duration,
    factor: f64,
) -> io::Result<FleetExportSummary> {
    let (_, shards, merged, health) = observe_fleet(dir, ttl, factor)?;
    let stitched = stitch_traces(&load_traces(dir, &shards));

    let metrics_path = out.join("fleet_metrics.json");
    let health_path = out.join("fleet_health.json");
    let trace_path = out.join("fleet_trace.json");
    mmwave_store::save_json_atomic(&metrics_path, &merged).map_err(io::Error::from)?;
    mmwave_store::save_json_atomic(&health_path, &health).map_err(io::Error::from)?;
    let trace_bytes = serde_json::to_vec(&stitched)?;
    mmwave_store::write_atomic(&trace_path, &trace_bytes)?;

    // Round-trip through the verifying loader: a checksum mismatch here
    // means the export is unusable and must fail loudly now, not when
    // someone opens it next week.
    let verified: FleetMetrics =
        mmwave_store::load_json(&metrics_path).map_err(io::Error::from)?.value;
    let _: FleetHealth = mmwave_store::load_json(&health_path).map_err(io::Error::from)?.value;
    mmwave_telemetry::counter("fleet.exported", 1);

    Ok(FleetExportSummary {
        metrics_path,
        health_path,
        trace_path,
        workers: verified.workers.len(),
        trace_events: stitched.len(),
        counters: verified.merged.counters.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_telemetry::fleet::MetricsExport;

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mmwave_fleet_unit_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn shard(worker_id: &str, ts_ms: u64, exited: bool) -> WorkerShard {
        WorkerShard {
            worker_id: worker_id.to_string(),
            pid: 1234,
            git_sha: "test".to_string(),
            ts_ms,
            uptime_ms: 10,
            clock_anchor_unix_ms: ts_ms.saturating_sub(10),
            exited,
            last_task: Some("synth".to_string()),
            metrics: MetricsExport::default(),
        }
    }

    #[test]
    fn ship_interval_parsing() {
        assert_eq!(
            parse_ship_interval(None),
            Some(Duration::from_secs_f64(DEFAULT_SHIP_SECS))
        );
        assert_eq!(parse_ship_interval(Some("2.5")), Some(Duration::from_millis(2500)));
        assert_eq!(parse_ship_interval(Some("0")), None);
        assert_eq!(parse_ship_interval(Some("off")), None);
        assert_eq!(parse_ship_interval(Some(" OFF ")), None);
        let registry = mmwave_telemetry::global();
        let before = registry.counter_value("campaign.config_invalid");
        assert_eq!(
            parse_ship_interval(Some("soon")),
            Some(Duration::from_secs_f64(DEFAULT_SHIP_SECS))
        );
        assert_eq!(
            parse_ship_interval(Some("-1")),
            Some(Duration::from_secs_f64(DEFAULT_SHIP_SECS))
        );
        assert!(registry.counter_value("campaign.config_invalid") >= before + 2);
    }

    #[test]
    fn worker_id_sanitization() {
        assert_eq!(sanitize_worker_id("w0"), "w0");
        assert_eq!(sanitize_worker_id("host-3.shard_1"), "host-3.shard_1");
        assert_eq!(sanitize_worker_id("../../etc/passwd"), ".._.._etc_passwd");
        assert_eq!(sanitize_worker_id(""), "worker");
    }

    #[test]
    fn shipper_writes_a_loadable_shard() {
        let dir = tmp("ship");
        let mut shipper = FleetShipper {
            dir: dir.clone(),
            worker_id: "unit-a".to_string(),
            interval: Some(Duration::from_secs(3600)),
            last: None,
            last_task: None,
            git_sha: "deadbee".to_string(),
        };
        shipper.maybe_ship();
        // A long interval means the second call must not rewrite.
        let first = std::fs::metadata(paths::shard(&dir, "unit-a")).unwrap().modified().unwrap();
        shipper.maybe_ship();
        assert_eq!(
            std::fs::metadata(paths::shard(&dir, "unit-a")).unwrap().modified().unwrap(),
            first
        );
        shipper.task_completed("synth");
        shipper.ship_final();
        let shards = load_shards(&dir).unwrap();
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].worker_id, "unit-a");
        assert_eq!(shards[0].git_sha, "deadbee");
        assert_eq!(shards[0].last_task.as_deref(), Some("synth"));
        assert!(shards[0].exited);
        assert!(shards[0].ts_ms >= shards[0].uptime_ms);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disabled_shipper_writes_nothing() {
        let dir = tmp("disabled");
        let mut shipper = FleetShipper {
            dir: dir.clone(),
            worker_id: "unit-b".to_string(),
            interval: None,
            last: None,
            last_task: None,
            git_sha: "x".to_string(),
        };
        shipper.maybe_ship();
        shipper.task_completed("synth");
        shipper.ship_final();
        assert!(!paths::fleet_dir(&dir).exists() || load_shards(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_shards_are_skipped_not_fatal() {
        let dir = tmp("corrupt");
        let mut shipper = FleetShipper {
            dir: dir.clone(),
            worker_id: "good".to_string(),
            interval: Some(Duration::from_secs(1)),
            last: None,
            last_task: None,
            git_sha: "x".to_string(),
        };
        shipper.maybe_ship();
        std::fs::write(paths::shard(&dir, "bad"), b"MMWVSTORE1 not really\n{garbage").unwrap();
        let shards = load_shards(&dir).unwrap();
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].worker_id, "good");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn health_classifies_dead_stale_and_exited() {
        use mmwave_store::ClaimInfo;
        let status = DagStatus {
            tasks: vec![
                ("a".to_string(), TaskState::Done),
                (
                    "b".to_string(),
                    TaskState::Claimed {
                        owner: Some(ClaimInfo {
                            worker_id: "active".to_string(),
                            pid: 7,
                            task_id: "b".to_string(),
                        }),
                        age: Duration::from_millis(100),
                        stale: false,
                    },
                ),
                (
                    "c".to_string(),
                    TaskState::Claimed {
                        owner: Some(ClaimInfo {
                            worker_id: "stuck".to_string(),
                            pid: 8,
                            task_id: "c".to_string(),
                        }),
                        age: Duration::from_secs(600),
                        stale: true,
                    },
                ),
            ],
        };
        let now = 1_000_000;
        let shards = vec![shard("active", now - 200, false), shard("done", now - 300, true)];
        let evidence: BTreeSet<String> = ["ghost".to_string()].into();
        let health = fleet_health(
            &status,
            &shards,
            &evidence,
            now,
            Duration::from_secs(1),
            4.0,
        );
        let by_id = |id: &str| health.workers.iter().find(|w| w.worker_id == id).unwrap();
        assert_eq!(by_id("active").status, WorkerStatus::Active);
        assert_eq!(by_id("active").heartbeat_age_ms, Some(100));
        assert_eq!(by_id("stuck").status, WorkerStatus::Stale);
        assert!(by_id("stuck").straggler);
        assert_eq!(by_id("ghost").status, WorkerStatus::Dead);
        assert!(by_id("ghost").straggler);
        assert_eq!(by_id("done").status, WorkerStatus::Exited);
        assert!(!by_id("done").straggler);
        assert!(health.heartbeat_threshold_ms >= 1000, "floored at ttl");
    }

    #[test]
    fn export_round_trips_through_the_store() {
        let dir = tmp("export");
        crate::dag::demo_dag().save(&dir).unwrap();
        let mut shipper = FleetShipper {
            dir: dir.clone(),
            worker_id: "exp-a".to_string(),
            interval: Some(Duration::from_secs(1)),
            last: None,
            last_task: None,
            git_sha: "x".to_string(),
        };
        shipper.maybe_ship();
        let out = paths::export_dir(&dir);
        let summary =
            export_fleet(&dir, &out, Duration::from_secs(30), 4.0).unwrap();
        assert_eq!(summary.workers, 1);
        assert!(summary.metrics_path.exists());
        assert!(summary.health_path.exists());
        assert!(summary.trace_path.exists());
        // The trace artifact is a bare JSON array, not an envelope.
        let trace: Vec<serde_json::Value> =
            serde_json::from_slice(&std::fs::read(&summary.trace_path).unwrap()).unwrap();
        assert_eq!(trace.len(), summary.trace_events);
        std::fs::remove_dir_all(&dir).ok();
    }
}
