//! End-to-end backdoor experiments: one call per (figure point).

use crate::frames::{frame_importance, frame_ranking, FrameStrategy};
use crate::metrics::{evaluate_attack, AttackMetrics};
use crate::poison::{build_poisoned_dataset, PoisonConfig};
use crate::position::{global_optimal_site, PositionOptimizer};
use crate::scenario::AttackScenario;
use mmwave_body::{Activity, ActivitySampler, Participant, SampleVariation, SiteId};
use mmwave_dsp::HeatmapSeq;
use mmwave_har::dataset::{Dataset, DatasetGenerator, DatasetSpec, PairedSample};
use mmwave_har::{CnnLstm, PrototypeConfig, Trainer, TrainerConfig};
use mmwave_radar::capture::TriggerPlan;
use mmwave_radar::scene::EnvironmentKind;
use mmwave_radar::trigger::{Trigger, TriggerAttachment};
use mmwave_radar::{Environment, Placement};
use mmwave_shap::top_k_indices;
use std::collections::HashMap;

/// Scale knobs for a whole experiment campaign. The paper's testbed scale
/// (8 640 samples, 30 repetitions, 2x RTX 4090) maps onto
/// [`ExperimentScale::fast`] times the `MMWAVE_BENCH_SCALE` /
/// `MMWAVE_BENCH_REPS` environment variables.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentScale {
    /// Number of participants generating victim training data.
    pub participants: usize,
    /// Repetitions per (placement, activity, participant) training cell.
    pub train_repetitions: usize,
    /// Repetitions per cell in the clean test set.
    pub test_repetitions: usize,
    /// Attacker recordings per placement (1 feeds the poison pool, the
    /// rest become attack test samples — the paper records 9 per position,
    /// 1 for poisoning and 8 for testing).
    pub pairs_per_position: usize,
    /// Training epochs for victim and surrogate models.
    pub epochs: usize,
    /// Permutation pairs for SHAP estimates.
    pub shap_permutations: usize,
    /// The experiment position grid.
    pub placements: Vec<Placement>,
}

impl ExperimentScale {
    /// The default laptop-scale campaign; honors `MMWAVE_BENCH_SCALE`.
    /// At scale 1 this trains on 288 samples for 70 epochs (~75 s per
    /// training run on one core), reaching ~93 % clean accuracy. The long
    /// schedule matters for the *backdoor*, not the clean task: the rare
    /// trigger pattern (a dozen poisoned recordings) is fit late in
    /// training, well after the gesture classes converge.
    pub fn fast() -> ExperimentScale {
        let scale = PrototypeConfig::bench_scale();
        ExperimentScale {
            participants: 2,
            train_repetitions: 2 * scale,
            test_repetitions: scale,
            pairs_per_position: 4,
            epochs: 70,
            shap_permutations: 12,
            placements: Placement::training_grid(),
        }
    }

    /// Minimal scale for unit tests: exercises every code path in seconds.
    pub fn smoke_test() -> ExperimentScale {
        ExperimentScale {
            participants: 1,
            train_repetitions: 1,
            test_repetitions: 1,
            pairs_per_position: 2,
            epochs: 2,
            shap_permutations: 3,
            placements: vec![Placement::new(1.2, 0.0), Placement::new(1.6, 30.0)],
        }
    }
}

/// Where the trigger is taped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteChoice {
    /// Solve Eq. (2) + Eq. (4) on the surrogate (the paper's method).
    Optimal,
    /// Use a fixed site (e.g. the thigh — Table I's "without optimal
    /// trigger position" baseline).
    Fixed(SiteId),
}

/// Full parameterization of one backdoor experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackSpec {
    /// Victim and target activities.
    pub scenario: AttackScenario,
    /// Poisoned fraction of the victim class.
    pub injection_rate: f64,
    /// Poisoned frames per sample.
    pub n_poisoned_frames: usize,
    /// The physical trigger.
    pub trigger: Trigger,
    /// Placement of the trigger on the body.
    pub site: SiteChoice,
    /// Frame-selection strategy.
    pub frame_strategy: FrameStrategy,
    /// Seed for model init, shuffling, and capture noise.
    pub seed: u64,
}

impl Default for AttackSpec {
    fn default() -> Self {
        AttackSpec {
            scenario: AttackScenario::push_to_pull(),
            injection_rate: 0.4,
            n_poisoned_frames: 8,
            trigger: Trigger::aluminum_2x2(),
            site: SiteChoice::Optimal,
            frame_strategy: FrameStrategy::ShapTopK,
            seed: 0,
        }
    }
}

/// A hashable fingerprint of a trigger's physical parameters.
fn trigger_fingerprint(t: &Trigger) -> (u64, u64, u64, u64) {
    (
        (t.side_m * 1e6) as u64,
        (t.material.reflectivity * 1e3) as u64,
        (t.material.specularity * 1e3) as u64,
        (t.cover_transmission * 1e6) as u64,
    )
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PairKey {
    victim: Activity,
    site: SiteId,
    trigger: (u64, u64, u64, u64),
}

#[derive(Debug, Clone)]
struct PairSet {
    poison: Vec<PairedSample>,
    rankings: Vec<Vec<usize>>,
    test: Vec<PairedSample>,
}

/// Owns the datasets, the surrogate, and all caches shared across runs of
/// an experiment campaign. Creating a context is expensive (dataset
/// generation + surrogate training); individual [`run_attack`] calls reuse
/// everything except the victim training run itself.
///
/// [`run_attack`]: ExperimentContext::run_attack
#[derive(Debug)]
pub struct ExperimentContext {
    config: PrototypeConfig,
    scale: ExperimentScale,
    generator: DatasetGenerator,
    clean_train: Dataset,
    clean_test: Dataset,
    surrogate: CnnLstm,
    attack_env: Environment,
    site_cache: HashMap<(Activity, (u64, u64, u64, u64)), SiteId>,
    pair_cache: HashMap<PairKey, PairSet>,
}

impl ExperimentContext {
    /// Builds the campaign context with the default fast prototype
    /// configuration. See [`new_with_config`](Self::new_with_config).
    pub fn new(scale: ExperimentScale, seed: u64) -> ExperimentContext {
        ExperimentContext::new_with_config(PrototypeConfig::fast(), scale, seed)
    }

    /// Builds the campaign context with an explicit prototype
    /// configuration: generates the victim's clean train and test sets
    /// (hallway), the attacker's surrogate training set (classroom), and
    /// trains the surrogate.
    pub fn new_with_config(
        config: PrototypeConfig,
        scale: ExperimentScale,
        seed: u64,
    ) -> ExperimentContext {
        let _span = mmwave_telemetry::span_at("context_build", mmwave_telemetry::Level::Debug);
        let generator = DatasetGenerator::new(config.clone());
        let mut train_spec = DatasetSpec::training(scale.train_repetitions);
        train_spec.participants.truncate(scale.participants);
        train_spec.placements = scale.placements.clone();
        let clean_train = generator.generate(&train_spec, seed);
        let mut test_spec = train_spec.clone();
        test_spec.repetitions = scale.test_repetitions;
        let clean_test = generator.generate(&test_spec, seed.wrapping_add(1));

        // The attacker's surrogate: trained on their own clean recordings
        // in the attack environment.
        let mut surrogate_spec = train_spec.clone();
        surrogate_spec.participants = vec![Participant::average()];
        surrogate_spec.environment = EnvironmentKind::AttackClassroom;
        let surrogate_data = generator.generate(&surrogate_spec, seed.wrapping_add(2));
        let mut surrogate = CnnLstm::new(&config, seed.wrapping_add(3));
        let trainer = Trainer::new(TrainerConfig {
            epochs: scale.epochs,
            seed: seed.wrapping_add(4),
            ..TrainerConfig::fast()
        });
        trainer.fit(&mut surrogate, &surrogate_data);

        ExperimentContext {
            config,
            scale,
            generator,
            clean_train,
            clean_test,
            surrogate,
            attack_env: Environment::classroom(),
            site_cache: HashMap::new(),
            pair_cache: HashMap::new(),
        }
    }

    /// The prototype configuration.
    pub fn config(&self) -> &PrototypeConfig {
        &self.config
    }

    /// The campaign scale.
    pub fn scale(&self) -> &ExperimentScale {
        &self.scale
    }

    /// The victim's clean training set.
    pub fn clean_train(&self) -> &Dataset {
        &self.clean_train
    }

    /// The victim's clean test set.
    pub fn clean_test(&self) -> &Dataset {
        &self.clean_test
    }

    /// The attacker's surrogate model.
    pub fn surrogate(&self) -> &CnnLstm {
        &self.surrogate
    }

    /// The shared dataset generator / capture pipeline.
    pub fn generator(&self) -> &DatasetGenerator {
        &self.generator
    }

    /// Solves Eq. (2) per frame and Eq. (4) globally for a victim activity
    /// and trigger, returning the snapped attachment site. Cached.
    pub fn optimal_site(&mut self, victim: Activity, trigger: Trigger) -> SiteId {
        let key = (victim, trigger_fingerprint(&trigger));
        if let Some(&site) = self.site_cache.get(&key) {
            return site;
        }
        let _span = mmwave_telemetry::span_at("site_optimization", mmwave_telemetry::Level::Debug);
        // A nominal performance at a central position drives the search.
        let sampler = ActivitySampler::new(
            Participant::average(),
            self.config.n_frames,
            self.generator.capturer().config().frame_rate,
        );
        let sequence = sampler.sample(victim, &SampleVariation::nominal());
        let placement = Placement::new(1.2, 0.0);

        // SHAP frame importance of the clean capture on the surrogate.
        let capture =
            self.generator
                .capturer()
                .capture(&sequence, placement, &self.attack_env, None, 99);
        let phi = frame_importance(
            &self.surrogate,
            &capture.clean,
            victim.index(),
            self.scale.shap_permutations,
            17,
        );
        let top_frames = top_k_indices(&phi, 8.min(self.config.n_frames));

        // Eq. (2): per-frame best site.
        let plan = TriggerPlan {
            attachment: TriggerAttachment::new(trigger),
            site: SiteId::Chest,
        };
        let optimizer = PositionOptimizer::default();
        let evals = optimizer.evaluate_sites(
            self.generator.capturer(),
            &self.surrogate,
            &sequence,
            placement,
            &self.attack_env,
            &plan,
            &top_frames,
            23,
        );
        // Per-frame winner among sites.
        let per_frame_optima: Vec<(usize, SiteId)> = top_frames
            .iter()
            .enumerate()
            .map(|(k, &fi)| {
                let best = evals
                    .iter()
                    .max_by(|a, b| a.per_frame[k].total_cmp(&b.per_frame[k]))
                    .expect("nonempty evals");
                (fi, best.site)
            })
            .collect();
        let weights: Vec<f64> = top_frames.iter().map(|&fi| phi[fi].max(1e-9)).collect();
        // Eq. (4): global position, snapped to a site.
        let (_gop, site) =
            global_optimal_site(&sequence, placement, &per_frame_optima, &weights);
        self.site_cache.insert(key, site);
        site
    }

    fn pair_set(&mut self, victim: Activity, trigger: Trigger, site: SiteId) -> PairKey {
        let key = PairKey { victim, site, trigger: trigger_fingerprint(&trigger) };
        if self.pair_cache.contains_key(&key) {
            return key;
        }
        let plan = TriggerPlan { attachment: TriggerAttachment::new(trigger), site };
        let pairs = self.generator.generate_paired(
            victim,
            &self.scale.placements.clone(),
            Participant::average(),
            &plan,
            &self.attack_env,
            self.scale.pairs_per_position,
            0xA77AC4,
        );
        // Half the recordings per placement (at least one) feed the poison
        // pool; the rest are attack test samples. Distinct recordings per
        // poisoned sample matter: the backdoor generalizes from shared
        // trigger structure, not from memorized duplicates.
        let per_pos = self.scale.pairs_per_position;
        let poison_per_pos = (per_pos / 2).max(1);
        let mut poison = Vec::new();
        let mut test = Vec::new();
        for (i, p) in pairs.into_iter().enumerate() {
            if i % per_pos < poison_per_pos {
                poison.push(p);
            } else {
                test.push(p);
            }
        }
        // SHAP frame rankings of the poison pool's clean captures.
        let rankings: Vec<Vec<usize>> = poison
            .iter()
            .enumerate()
            .map(|(i, p)| {
                frame_ranking(
                    FrameStrategy::ShapTopK,
                    &self.surrogate,
                    &p.clean,
                    victim.index(),
                    self.scale.shap_permutations,
                    31 ^ i as u64,
                )
            })
            .collect();
        self.pair_cache.insert(key.clone(), PairSet { poison, rankings, test });
        key
    }

    fn resolve_site(&mut self, spec: &AttackSpec) -> SiteId {
        match spec.site {
            SiteChoice::Optimal => self.optimal_site(spec.scenario.victim, spec.trigger),
            SiteChoice::Fixed(site) => site,
        }
    }

    /// Trains a backdoored model per `spec` and returns it together with
    /// the resolved trigger site.
    pub fn train_backdoored(&mut self, spec: &AttackSpec) -> (CnnLstm, SiteId) {
        let site = self.resolve_site(spec);
        let key = self.pair_set(spec.scenario.victim, spec.trigger, site);
        let poison_span = mmwave_telemetry::span_at("poison", mmwave_telemetry::Level::Debug);
        let pairs = &self.pair_cache[&key];
        let rankings: Vec<Vec<usize>> = match spec.frame_strategy {
            FrameStrategy::ShapTopK => pairs.rankings.clone(),
            FrameStrategy::FirstK => pairs
                .poison
                .iter()
                .map(|_| (0..self.config.n_frames).collect())
                .collect(),
        };
        let poison_cfg = PoisonConfig {
            injection_rate: spec.injection_rate,
            n_poisoned_frames: spec.n_poisoned_frames,
            frame_strategy: spec.frame_strategy,
        };
        let poisoned = build_poisoned_dataset(
            &self.clean_train,
            &pairs.poison,
            &rankings,
            &spec.scenario,
            &poison_cfg,
        );
        drop(poison_span);
        let mut model = CnnLstm::new(&self.config, spec.seed.wrapping_add(100));
        let trainer = Trainer::new(TrainerConfig {
            epochs: self.scale.epochs,
            seed: spec.seed.wrapping_add(200),
            ..TrainerConfig::fast()
        });
        trainer.fit(&mut model, &poisoned);
        (model, site)
    }

    /// Runs one full experiment: poison, train, evaluate.
    pub fn run_attack(&mut self, spec: &AttackSpec) -> AttackMetrics {
        let _span = mmwave_telemetry::span_at("attack", mmwave_telemetry::Level::Debug);
        let (model, site) = self.train_backdoored(spec);
        let key = self.pair_set(spec.scenario.victim, spec.trigger, site);
        let pairs = &self.pair_cache[&key];
        let attack_samples: Vec<(HeatmapSeq, Activity)> = pairs
            .test
            .iter()
            .map(|p| (p.triggered.clone(), p.label))
            .collect();
        evaluate_attack(&model, &attack_samples, &spec.scenario, &self.clean_test)
    }

    /// Runs `repetitions` experiments with different seeds and averages,
    /// mirroring the paper's 30-repetition averaging.
    pub fn run_attack_averaged(&mut self, spec: &AttackSpec, repetitions: usize) -> AttackMetrics {
        assert!(repetitions > 0, "need at least one repetition");
        let runs: Vec<AttackMetrics> = (0..repetitions)
            .map(|r| {
                let mut s = *spec;
                s.seed = spec.seed.wrapping_add(1000 * r as u64);
                self.run_attack(&s)
            })
            .collect();
        AttackMetrics::mean(&runs)
    }

    /// Evaluates an already-trained backdoored model at arbitrary
    /// placements (the Fig. 14/15 robustness sweeps): fresh triggered
    /// captures of the victim activity at each placement. Returns
    /// `(asr, uasr)` per placement.
    pub fn evaluate_robustness(
        &mut self,
        model: &CnnLstm,
        spec: &AttackSpec,
        site: SiteId,
        placements: &[Placement],
        samples_per_placement: usize,
    ) -> Vec<(Placement, f64, f64)> {
        let plan = TriggerPlan {
            attachment: TriggerAttachment::new(spec.trigger),
            site,
        };
        placements
            .iter()
            .map(|&placement| {
                let pairs = self.generator.generate_paired(
                    spec.scenario.victim,
                    &[placement],
                    Participant::average(),
                    &plan,
                    &self.attack_env,
                    samples_per_placement,
                    0xF1617 ^ spec.seed,
                );
                let mut targeted = 0usize;
                let mut untargeted = 0usize;
                for p in &pairs {
                    let pred = Activity::from_index(model.predict(&p.triggered));
                    if pred == spec.scenario.target {
                        targeted += 1;
                    }
                    if pred != p.label {
                        untargeted += 1;
                    }
                }
                let n = pairs.len() as f64;
                (placement, targeted as f64 / n, untargeted as f64 / n)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One smoke-scale end-to-end run: checks the plumbing, not the attack
    /// quality (that is what the benches measure at real scale).
    #[test]
    fn smoke_experiment_runs_end_to_end() {
        let mut ctx = ExperimentContext::new(ExperimentScale::smoke_test(), 5);
        let spec = AttackSpec {
            injection_rate: 0.5,
            n_poisoned_frames: 4,
            ..AttackSpec::default()
        };
        let metrics = ctx.run_attack(&spec);
        assert!(metrics.n_attack_samples > 0);
        assert!(metrics.n_clean_samples > 0);
        assert!((0.0..=1.0).contains(&metrics.asr));
        assert!((0.0..=1.0).contains(&metrics.uasr));
        assert!((0.0..=1.0).contains(&metrics.cdr));
        assert!(metrics.uasr >= metrics.asr, "UASR dominates ASR by definition");
    }

    #[test]
    fn optimal_site_is_cached_and_stable() {
        let mut ctx = ExperimentContext::new(ExperimentScale::smoke_test(), 6);
        let a = ctx.optimal_site(Activity::Push, Trigger::aluminum_2x2());
        let b = ctx.optimal_site(Activity::Push, Trigger::aluminum_2x2());
        assert_eq!(a, b);
        assert_eq!(ctx.site_cache.len(), 1);
    }

    #[test]
    fn fixed_site_skips_optimization() {
        let mut ctx = ExperimentContext::new(ExperimentScale::smoke_test(), 7);
        let spec = AttackSpec {
            site: SiteChoice::Fixed(SiteId::RightThigh),
            injection_rate: 0.5,
            n_poisoned_frames: 2,
            frame_strategy: FrameStrategy::FirstK,
            ..AttackSpec::default()
        };
        let (_, site) = ctx.train_backdoored(&spec);
        assert_eq!(site, SiteId::RightThigh);
        assert!(ctx.site_cache.is_empty(), "no Eq. (2) run for fixed sites");
    }

    #[test]
    fn robustness_evaluation_covers_requested_placements() {
        let mut ctx = ExperimentContext::new(ExperimentScale::smoke_test(), 8);
        let spec = AttackSpec {
            site: SiteChoice::Fixed(SiteId::RightForearm),
            ..AttackSpec::default()
        };
        let (model, site) = ctx.train_backdoored(&spec);
        let placements = [Placement::new(1.0, 0.0), Placement::new(1.6, 10.0)];
        let results = ctx.evaluate_robustness(&model, &spec, site, &placements, 2);
        assert_eq!(results.len(), 2);
        for (_, asr, uasr) in results {
            assert!((0.0..=1.0).contains(&asr));
            assert!(uasr >= asr);
        }
    }
}
