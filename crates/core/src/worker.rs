//! The campaign DAG worker: claim → execute → persist → release, in a
//! loop, until every task in the campaign directory is resolved.
//!
//! N worker processes (started with `mmwave worker --dir <dir>`) can point
//! at the same campaign directory with **no coordinator**: all mutual
//! exclusion is the `O_EXCL` claim protocol in [`mmwave_store::claim`],
//! all state is durable store artifacts, and all ordering comes from the
//! stateless [`crate::scheduler`]. The loop is crash-safe by construction:
//!
//! * a worker killed *before* persisting a result leaves only a claim
//!   file, which goes stale after [`WorkerConfig::ttl`] without heartbeats
//!   and is reclaimed (atomically, exactly one winner) by a survivor;
//! * a worker killed *after* persisting the result but before releasing
//!   the claim leaves an orphan claim next to a done record — the record
//!   wins, and any worker garbage-collects the claim;
//! * a *live* worker heartbeats its claim every `ttl / 4`, so its tasks
//!   are never reclaimed or double-executed while it is making progress.
//!
//! Task outputs are pure functions of their spec and inputs, and every
//! artifact goes through the deterministic store writers — which is why
//! the chaos matrix (`mmwave dag-chaos`) can demand *byte-identical*
//! reports between an uninterrupted single-worker run and a
//! three-workers-one-murdered run.

use crate::dag::{self, paths, CampaignDag, TaskFailure, TaskNode, TaskRecord, TaskState};
use crate::experiment::{AttackSpec, ExperimentContext, ExperimentScale};
use crate::scenario::AttackScenario;
use crate::scheduler::{self, ReadySet};
use mmwave_store::{acquire_claim, crash_point, ClaimAttempt, ClaimInfo};
use std::collections::BTreeMap;
use std::io;
use std::panic::AssertUnwindSafe;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default claim TTL when `MMWAVE_CLAIM_TTL_SECS` is unset.
pub const DEFAULT_CLAIM_TTL: Duration = Duration::from_secs(30);

/// Default idle poll interval between scans.
pub const DEFAULT_POLL: Duration = Duration::from_millis(200);

/// How a worker identifies itself, how fast it gives up on the dead, and
/// how it spreads over the ready frontier.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Claim owner id recorded in claim files (`MMWAVE_WORKER_ID`,
    /// default `w<pid>`).
    pub worker_id: String,
    /// A claim without heartbeats for longer than this is considered
    /// abandoned and reclaimed (`MMWAVE_CLAIM_TTL_SECS`, default 30s).
    pub ttl: Duration,
    /// Sleep between scans when nothing is claimable.
    pub poll: Duration,
    /// Optional `(index, count)` shard from `MMWAVE_WORKER_SHARD=i/n`.
    pub shard: Option<(usize, usize)>,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            worker_id: format!("w{}", std::process::id()),
            ttl: DEFAULT_CLAIM_TTL,
            poll: DEFAULT_POLL,
            shard: None,
        }
    }
}

/// Parses a claim TTL from the raw `MMWAVE_CLAIM_TTL_SECS` value.
/// Non-numeric or non-positive values fall back to the default, warn, and
/// bump the `campaign.config_invalid` counter — misconfiguration is
/// observable, never silent, and never fatal.
pub fn parse_claim_ttl(raw: Option<&str>) -> Duration {
    match raw {
        None => DEFAULT_CLAIM_TTL,
        Some(text) => match text.trim().parse::<f64>() {
            Ok(secs) if secs > 0.0 && secs.is_finite() => Duration::from_secs_f64(secs),
            _ => {
                mmwave_telemetry::counter("campaign.config_invalid", 1);
                mmwave_telemetry::warn!(
                    "ignoring invalid MMWAVE_CLAIM_TTL_SECS={text:?}; using default {}s",
                    DEFAULT_CLAIM_TTL.as_secs()
                );
                eprintln!(
                    "mmwave: ignoring invalid MMWAVE_CLAIM_TTL_SECS={text:?}; using default {}s",
                    DEFAULT_CLAIM_TTL.as_secs()
                );
                DEFAULT_CLAIM_TTL
            }
        },
    }
}

/// Parses an `i/n` shard spec. Invalid specs warn and disable sharding.
pub fn parse_shard(raw: Option<&str>) -> Option<(usize, usize)> {
    let text = raw?;
    let parsed = text.split_once('/').and_then(|(i, n)| {
        let i = i.trim().parse::<usize>().ok()?;
        let n = n.trim().parse::<usize>().ok()?;
        (n > 0 && i < n).then_some((i, n))
    });
    if parsed.is_none() {
        mmwave_telemetry::counter("campaign.config_invalid", 1);
        mmwave_telemetry::warn!("ignoring invalid MMWAVE_WORKER_SHARD={text:?} (want i/n, i < n)");
        eprintln!("mmwave: ignoring invalid MMWAVE_WORKER_SHARD={text:?} (want i/n, i < n)");
    }
    parsed
}

impl WorkerConfig {
    /// Builds a config from `MMWAVE_WORKER_ID`, `MMWAVE_CLAIM_TTL_SECS`,
    /// and `MMWAVE_WORKER_SHARD`.
    pub fn from_env() -> WorkerConfig {
        let mut config = WorkerConfig::default();
        if let Ok(id) = std::env::var("MMWAVE_WORKER_ID") {
            if !id.trim().is_empty() {
                config.worker_id = id.trim().to_string();
            }
        }
        config.ttl = parse_claim_ttl(std::env::var("MMWAVE_CLAIM_TTL_SECS").ok().as_deref());
        config.shard = parse_shard(std::env::var("MMWAVE_WORKER_SHARD").ok().as_deref());
        config
    }
}

/// What one worker did before the campaign resolved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Tasks this worker executed to completion.
    pub executed: usize,
    /// Tasks satisfied by an existing content-addressed artifact.
    pub deduped: usize,
    /// Stale claims this worker reclaimed from dead owners.
    pub reclaimed: usize,
    /// Tasks that failed under this worker (executor errors, panics,
    /// gates, upstream cascades).
    pub failed: usize,
}

/// Executes one kind of task. Implementations must be deterministic in
/// `(task.kind, task.params, inputs)` for the campaign's byte-identical
/// crash-equivalence guarantee to hold.
pub trait TaskExecutor {
    /// Runs `task` against its dependencies' outputs (keyed by dependency
    /// id). `Err` permanently fails the task.
    fn execute(
        &self,
        task: &TaskNode,
        inputs: &BTreeMap<String, serde_json::Value>,
    ) -> Result<serde_json::Value, String>;
}

/// The built-in executor for the pipeline's task kinds:
///
/// * `"const"` — output is `params`, verbatim (synthetic roots).
/// * `"sum"` — sums the `value` field of every input, adds
///   `params.offset` (default 0), multiplies by `params.scale`
///   (default 1): `{"value": x}`.
/// * `"attack"` — one smoke-scale end-to-end attack point:
///   `params = {scenario, rate, frames, seed}` → the run's
///   [`crate::metrics::AttackMetrics`] as JSON.
/// * `"aggregate"` — collects every input under
///   `{"points": {dep_id: output}}` (sorted by id).
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineExecutor;

fn num_param(params: &serde_json::Value, field: &str, default: f64) -> f64 {
    params.get(field).and_then(serde_json::Value::as_f64).unwrap_or(default)
}

fn scenario_by_name(name: &str) -> Result<AttackScenario, String> {
    match name {
        "push-pull" => Ok(AttackScenario::push_to_pull()),
        "left-right" => Ok(AttackScenario::left_to_right_swipe()),
        "push-right" => Ok(AttackScenario::push_to_right_swipe()),
        "push-acw" => Ok(AttackScenario::push_to_anticlockwise()),
        other => Err(format!(
            "unknown scenario `{other}` (want push-pull|left-right|push-right|push-acw)"
        )),
    }
}

impl TaskExecutor for PipelineExecutor {
    fn execute(
        &self,
        task: &TaskNode,
        inputs: &BTreeMap<String, serde_json::Value>,
    ) -> Result<serde_json::Value, String> {
        match task.kind.as_str() {
            "const" => Ok(task.params.clone()),
            "sum" => {
                let total: f64 = inputs
                    .values()
                    .map(|v| v.get("value").and_then(serde_json::Value::as_f64).unwrap_or(0.0))
                    .sum();
                let offset = num_param(&task.params, "offset", 0.0);
                let scale = num_param(&task.params, "scale", 1.0);
                Ok(serde_json::json!({ "value": (total + offset) * scale }))
            }
            "attack" => {
                let scenario_name = task
                    .params
                    .get("scenario")
                    .and_then(serde_json::Value::as_str)
                    .ok_or_else(|| "attack task missing string param `scenario`".to_string())?;
                let seed = task
                    .params
                    .get("seed")
                    .and_then(serde_json::Value::as_u64)
                    .unwrap_or(0);
                let spec = AttackSpec {
                    scenario: scenario_by_name(scenario_name)?,
                    injection_rate: num_param(&task.params, "rate", 0.4),
                    n_poisoned_frames: task
                        .params
                        .get("frames")
                        .and_then(serde_json::Value::as_u64)
                        .unwrap_or(8) as usize,
                    seed,
                    ..AttackSpec::default()
                };
                let mut ctx = ExperimentContext::new(ExperimentScale::smoke_test(), seed);
                let metrics = ctx.run_attack(&spec);
                serde_json::to_value(metrics).map_err(|e| format!("metrics serialize: {e}"))
            }
            "aggregate" => Ok(serde_json::json!({ "points": inputs })),
            other => Err(format!("no executor for task kind `{other}`")),
        }
    }
}

/// A heartbeat thread that refreshes one claim's mtime every `ttl / 4`
/// (floor 10ms) until dropped — the "I am alive" signal that keeps
/// [`mmwave_store::reclaim_stale`] off a live worker's task.
struct Heartbeat {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    fn start(claim_path: std::path::PathBuf, info: ClaimInfo, ttl: Duration) -> Heartbeat {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let interval = (ttl / 4).max(Duration::from_millis(10));
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                // A failed refresh (e.g. disk pressure) is survivable: the
                // worst case is a spurious reclaim, which the done-record
                // check below resolves in the reclaimer's favor safely.
                let _ = mmwave_store::refresh_claim(&claim_path, &info);
            }
        });
        Heartbeat { stop, handle: Some(handle) }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn record_failure(dir: &Path, id: &str, error: String) -> io::Result<()> {
    mmwave_telemetry::counter("dag.task_failed", 1);
    mmwave_telemetry::warn!("task `{id}` failed: {error}");
    mmwave_store::save_json_atomic(
        &paths::failed(dir, id),
        &TaskFailure { id: id.to_string(), error },
    )
    .map_err(io::Error::from)
}

/// Claims and runs one ready task end to end. Returns `Ok(true)` when the
/// task was resolved by this worker (including dedupe hits and recorded
/// failures), `Ok(false)` when another worker won the claim.
fn run_one(
    dir: &Path,
    task: &TaskNode,
    artifact_key: &str,
    executor: &dyn TaskExecutor,
    config: &WorkerConfig,
    summary: &mut WorkerSummary,
) -> io::Result<bool> {
    let claim_path = paths::claim(dir, &task.id);
    let info = ClaimInfo {
        worker_id: config.worker_id.clone(),
        pid: std::process::id(),
        task_id: task.id.clone(),
    };
    match acquire_claim(&claim_path, &info).map_err(io::Error::from)? {
        ClaimAttempt::Held { .. } => return Ok(false),
        ClaimAttempt::Acquired => {}
    }
    mmwave_telemetry::counter("dag.claimed", 1);
    let _span = mmwave_telemetry::span_at("dag.task", mmwave_telemetry::Level::Debug);
    let _heartbeat = Heartbeat::start(claim_path.clone(), info, config.ttl);

    // Between our scan and our claim another worker may have finished the
    // task and released; the durable record is authoritative.
    if paths::done(dir, &task.id).exists() || paths::failed(dir, &task.id).exists() {
        mmwave_store::release_claim(&claim_path)?;
        return Ok(true);
    }

    // Dedupe: an identical spec (same content-addressed key) already
    // produced this artifact — adopt it instead of recomputing.
    let artifact_path = paths::artifact(dir, artifact_key);
    let output = match mmwave_store::load_json::<serde_json::Value>(&artifact_path) {
        Ok(loaded) => {
            mmwave_telemetry::counter("dag.dedupe_hit", 1);
            summary.deduped += 1;
            Some(loaded.value)
        }
        Err(mmwave_store::StoreError::Missing { .. }) => None,
        // A torn/corrupt artifact was quarantined by the loader;
        // recompute it.
        Err(e) if e.is_recoverable() => None,
        Err(e) => {
            mmwave_store::release_claim(&claim_path)?;
            return Err(e.into());
        }
    };

    let output = match output {
        Some(output) => output,
        None => {
            let mut inputs = BTreeMap::new();
            for dep in &task.deps {
                inputs.insert(dep.clone(), dag::load_output(dir, dep)?);
            }
            crash_point("dag.task.pre_execute");
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                executor.execute(task, &inputs)
            }))
            .unwrap_or_else(|panic| {
                let reason = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                Err(format!("task panicked: {reason}"))
            });
            match result {
                Ok(output) => {
                    crash_point("dag.artifact.pre_save");
                    mmwave_store::save_json_atomic(&artifact_path, &output)
                        .map_err(io::Error::from)?;
                    summary.executed += 1;
                    mmwave_telemetry::counter("dag.executed", 1);
                    output
                }
                Err(error) => {
                    record_failure(dir, &task.id, error)?;
                    summary.failed += 1;
                    mmwave_store::release_claim(&claim_path)?;
                    return Ok(true);
                }
            }
        }
    };

    crash_point("dag.task.pre_done");
    mmwave_store::save_json_atomic(
        &paths::done(dir, &task.id),
        &TaskRecord {
            id: task.id.clone(),
            artifact_key: artifact_key.to_string(),
            output,
        },
    )
    .map_err(io::Error::from)?;
    mmwave_store::release_claim(&claim_path)?;
    Ok(true)
}

/// Removes claims left beside already-resolved tasks by workers killed
/// between persisting the result and releasing — the durable record is
/// authoritative, the claim is garbage.
fn collect_orphan_claims(dir: &Path, status: &dag::DagStatus) -> io::Result<()> {
    for (id, state) in &status.tasks {
        if matches!(state, TaskState::Done | TaskState::Failed) {
            let claim_path = paths::claim(dir, id);
            if claim_path.exists() {
                mmwave_store::release_claim(&claim_path)?;
            }
        }
    }
    Ok(())
}

/// Runs the claim/execute loop against the campaign in `dir` until every
/// task is done or failed, then writes `report.json` (idempotently — the
/// report is deterministic, so concurrent finishers write identical
/// bytes) and returns this worker's tally.
///
/// # Errors
///
/// I/O and store errors. A worker that errors out simply stops
/// heartbeating; its in-flight task (if any) goes stale and is reclaimed.
pub fn run_worker(
    dir: &Path,
    config: &WorkerConfig,
    executor: &dyn TaskExecutor,
) -> io::Result<WorkerSummary> {
    let dag = CampaignDag::load(dir)?;
    let keys = dag.artifact_keys().map_err(io::Error::from)?;
    let mut summary = WorkerSummary::default();
    let mut shipper = crate::fleet::FleetShipper::from_env(dir, &config.worker_id);
    loop {
        // Ships immediately on the first pass (so a shard exists from
        // startup), then every MMWAVE_FLEET_SHIP_SECS.
        shipper.maybe_ship();
        let status = dag::scan(dir, &dag, config.ttl)?;
        collect_orphan_claims(dir, &status)?;
        if status.all_resolved() {
            let report = dag::build_report(dir, &dag, &status)?;
            crash_point("dag.report.pre_save");
            mmwave_store::save_json_atomic(&paths::report(dir), &report)
                .map_err(io::Error::from)?;
            shipper.ship_final();
            return Ok(summary);
        }

        let ReadySet { mut ready, doomed, in_flight } =
            scheduler::ready_set(dir, &dag, &status)?;

        // Record gate failures and upstream cascades durably. Racing
        // workers write byte-identical records, so this is idempotent.
        let mut progressed = false;
        for (id, reason) in doomed {
            record_failure(dir, &id, reason)?;
            summary.failed += 1;
            progressed = true;
        }

        scheduler::shard_order(&mut ready, &config.worker_id, config.shard);
        for id in &ready {
            let task = dag
                .task(id)
                .ok_or_else(|| io::Error::other(format!("ready task `{id}` not in dag")))?;
            let key = keys
                .get(id)
                .ok_or_else(|| io::Error::other(format!("no artifact key for `{id}`")))?;
            if run_one(dir, task, key, executor, config, &mut summary)? {
                progressed = true;
                shipper.task_completed(id);
                break;
            }
        }
        if progressed {
            continue;
        }

        // Nothing claimable: evict the dead. Reclaiming renames the stale
        // claim aside (exactly one winner across all workers), after which
        // the task is Pending again on the next scan.
        let mut reclaimed_any = false;
        for (id, state) in &status.tasks {
            if let TaskState::Claimed { stale: true, .. } = state {
                if mmwave_store::reclaim_stale(&paths::claim(dir, id), config.ttl)
                    .map_err(io::Error::from)?
                    .is_some()
                {
                    mmwave_telemetry::counter("dag.reclaimed", 1);
                    mmwave_telemetry::warn!(
                        "reclaimed stale claim on `{id}` (ttl {:?})",
                        config.ttl
                    );
                    summary.reclaimed += 1;
                    reclaimed_any = true;
                }
            }
        }
        if reclaimed_any {
            continue;
        }

        if in_flight || status.tasks.iter().any(|(_, s)| matches!(s, TaskState::Claimed { .. })) {
            std::thread::sleep(config.poll);
            continue;
        }
        // No ready tasks, nothing in flight, not resolved: impossible for
        // a validated DAG (cascades above resolve blocked-forever tasks),
        // but never spin silently if it happens.
        std::thread::sleep(config.poll);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::demo_dag;

    fn tmp(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("mmwave_worker_unit_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn claim_ttl_parsing_accepts_seconds_and_rejects_garbage() {
        assert_eq!(parse_claim_ttl(None), DEFAULT_CLAIM_TTL);
        assert_eq!(parse_claim_ttl(Some("2.5")), Duration::from_millis(2500));
        assert_eq!(parse_claim_ttl(Some(" 7 ")), Duration::from_secs(7));
        let registry = mmwave_telemetry::global();
        let before = registry.counter_value("campaign.config_invalid");
        assert_eq!(parse_claim_ttl(Some("soon")), DEFAULT_CLAIM_TTL);
        assert_eq!(parse_claim_ttl(Some("-3")), DEFAULT_CLAIM_TTL);
        assert_eq!(parse_claim_ttl(Some("0")), DEFAULT_CLAIM_TTL);
        // `>=`: the counter is process-global and other tests may bump it
        // concurrently.
        assert!(
            registry.counter_value("campaign.config_invalid") >= before + 3,
            "each invalid TTL must be counted"
        );
    }

    #[test]
    fn shard_parsing() {
        assert_eq!(parse_shard(None), None);
        assert_eq!(parse_shard(Some("1/3")), Some((1, 3)));
        assert_eq!(parse_shard(Some("0/1")), Some((0, 1)));
        assert_eq!(parse_shard(Some("3/3")), None, "index must be < count");
        assert_eq!(parse_shard(Some("x/y")), None);
        assert_eq!(parse_shard(Some("2")), None);
    }

    #[test]
    fn pipeline_executor_kinds() {
        let exec = PipelineExecutor;
        let constant = TaskNode {
            id: "c".to_string(),
            kind: "const".to_string(),
            params: serde_json::json!({"value": 2.0}),
            deps: vec![],
            gate: None,
        };
        let empty = BTreeMap::new();
        assert_eq!(
            exec.execute(&constant, &empty).unwrap(),
            serde_json::json!({"value": 2.0})
        );

        let mut inputs = BTreeMap::new();
        inputs.insert("a".to_string(), serde_json::json!({"value": 2.0}));
        inputs.insert("b".to_string(), serde_json::json!({"value": 3.0}));
        let sum = TaskNode {
            id: "s".to_string(),
            kind: "sum".to_string(),
            params: serde_json::json!({"offset": 1.0, "scale": 2.0}),
            deps: vec!["a".to_string(), "b".to_string()],
            gate: None,
        };
        assert_eq!(
            exec.execute(&sum, &inputs).unwrap(),
            serde_json::json!({"value": 12.0})
        );

        let agg = TaskNode {
            id: "g".to_string(),
            kind: "aggregate".to_string(),
            params: serde_json::Value::Null,
            deps: vec!["a".to_string(), "b".to_string()],
            gate: None,
        };
        let out = exec.execute(&agg, &inputs).unwrap();
        assert_eq!(out["points"]["a"]["value"], 2.0);

        let unknown = TaskNode {
            id: "u".to_string(),
            kind: "warp".to_string(),
            params: serde_json::Value::Null,
            deps: vec![],
            gate: None,
        };
        assert!(exec.execute(&unknown, &empty).unwrap_err().contains("no executor"));
    }

    #[test]
    fn attack_kind_runs_a_smoke_point_deterministically() {
        let exec = PipelineExecutor;
        let task = TaskNode {
            id: "pt".to_string(),
            kind: "attack".to_string(),
            params: serde_json::json!({"scenario": "push-pull", "rate": 0.4, "frames": 8, "seed": 7}),
            deps: vec![],
            gate: None,
        };
        let empty = BTreeMap::new();
        let a = exec.execute(&task, &empty).unwrap();
        let b = exec.execute(&task, &empty).unwrap();
        assert_eq!(a, b, "same spec must produce identical metrics");
        assert!(a.get("asr").and_then(serde_json::Value::as_f64).is_some());

        let bad = TaskNode {
            id: "pt2".to_string(),
            kind: "attack".to_string(),
            params: serde_json::json!({"scenario": "moonwalk"}),
            deps: vec![],
            gate: None,
        };
        assert!(exec.execute(&bad, &empty).unwrap_err().contains("unknown scenario"));
    }

    #[test]
    fn single_worker_drains_the_demo_dag_with_dedupe() {
        let dir = tmp("drain");
        demo_dag().save(&dir).unwrap();
        let config = WorkerConfig {
            worker_id: "unit".to_string(),
            ttl: Duration::from_secs(30),
            poll: Duration::from_millis(5),
            shard: None,
        };
        let registry = mmwave_telemetry::global();
        let dedupe_before = registry.counter_value("dag.dedupe_hit");
        let summary = run_worker(&dir, &config, &PipelineExecutor).unwrap();

        // 8 tasks; baseline-b shares baseline-a's key, so 7 executions +
        // 1 dedupe hit and exactly 7 distinct artifacts.
        assert_eq!(summary.executed, 7, "summary: {summary:?}");
        assert_eq!(summary.deduped, 1);
        assert_eq!(summary.failed, 0);
        assert!(registry.counter_value("dag.dedupe_hit") >= dedupe_before + 1);
        let artifacts = std::fs::read_dir(dir.join("artifacts")).unwrap().count();
        assert_eq!(artifacts, 7, "shared baseline must be stored once");

        let report: crate::dag::DagReport =
            mmwave_store::load_json(&paths::report(&dir)).unwrap().value;
        assert_eq!(report.completed, 8);
        assert!(report.failed.is_empty());
        // demo arithmetic: synth=2, baseline=3, variant-i=(3+i)*1.5,
        // eval-b=3*2=6.
        assert_eq!(report.outputs["aggregate"]["points"]["eval-b"]["value"], 6.0);
        assert_eq!(report.outputs["aggregate"]["points"]["variant-2"]["value"], 7.5);

        // The worker shipped its telemetry shard on the way out.
        let shards = crate::fleet::load_shards(&dir).unwrap();
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].worker_id, "unit");
        assert!(shards[0].exited, "final ship must mark a clean exit");
        // The registry is process-global, so other tests may have bumped
        // the counter too; this worker alone contributed 7.
        assert!(shards[0].metrics.counters.get("dag.executed").copied().unwrap_or(0) >= 7);

        // Running again over the resolved directory is a no-op with an
        // identical report.
        let before = std::fs::read(paths::report(&dir)).unwrap();
        let summary2 = run_worker(&dir, &config, &PipelineExecutor).unwrap();
        assert_eq!(summary2, WorkerSummary::default());
        assert_eq!(std::fs::read(paths::report(&dir)).unwrap(), before);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn executor_panic_fails_the_task_and_cascades() {
        struct Bomb;
        impl TaskExecutor for Bomb {
            fn execute(
                &self,
                task: &TaskNode,
                _inputs: &BTreeMap<String, serde_json::Value>,
            ) -> Result<serde_json::Value, String> {
                if task.id == "boom" {
                    panic!("simulated executor panic");
                }
                Ok(serde_json::json!({"value": 1.0}))
            }
        }
        let dir = tmp("panic");
        let mut dag = CampaignDag::new("t");
        dag.tasks.push(TaskNode {
            id: "boom".to_string(),
            kind: "const".to_string(),
            params: serde_json::Value::Null,
            deps: vec![],
            gate: None,
        });
        dag.tasks.push(TaskNode {
            id: "after".to_string(),
            kind: "const".to_string(),
            params: serde_json::Value::Null,
            deps: vec!["boom".to_string()],
            gate: None,
        });
        dag.save(&dir).unwrap();
        let config = WorkerConfig {
            worker_id: "unit".to_string(),
            ttl: Duration::from_secs(30),
            poll: Duration::from_millis(5),
            shard: None,
        };
        let summary = run_worker(&dir, &config, &Bomb).unwrap();
        assert_eq!(summary.failed, 2, "panic + cascade: {summary:?}");
        let report: crate::dag::DagReport =
            mmwave_store::load_json(&paths::report(&dir)).unwrap().value;
        assert_eq!(report.completed, 0);
        assert_eq!(report.failed.len(), 2);
        assert!(report.failed[0].error.contains("panicked"), "{:?}", report.failed);
        assert!(report.failed[1].error.contains("upstream"), "{:?}", report.failed);
        assert!(
            !paths::claim(&dir, "boom").exists(),
            "claim must be released after a failure"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_claim_is_reclaimed_and_the_task_reexecutes() {
        let dir = tmp("reclaim");
        let mut dag = CampaignDag::new("t");
        dag.tasks.push(TaskNode {
            id: "only".to_string(),
            kind: "const".to_string(),
            params: serde_json::json!({"value": 5.0}),
            deps: vec![],
            gate: None,
        });
        dag.save(&dir).unwrap();

        // A dead worker's claim: created, never heartbeated.
        std::fs::create_dir_all(dir.join("claims")).unwrap();
        let ghost = ClaimInfo {
            worker_id: "ghost".to_string(),
            pid: 1,
            task_id: "only".to_string(),
        };
        acquire_claim(&paths::claim(&dir, "only"), &ghost).unwrap();
        std::thread::sleep(Duration::from_millis(50));

        let config = WorkerConfig {
            worker_id: "unit".to_string(),
            ttl: Duration::from_millis(20),
            poll: Duration::from_millis(5),
            shard: None,
        };
        let summary = run_worker(&dir, &config, &PipelineExecutor).unwrap();
        assert_eq!(summary.reclaimed, 1, "{summary:?}");
        assert_eq!(summary.executed, 1);
        let report: crate::dag::DagReport =
            mmwave_store::load_json(&paths::report(&dir)).unwrap().value;
        assert_eq!(report.completed, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
