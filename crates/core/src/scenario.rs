//! Attack scenarios: which activity is mapped to which.

use mmwave_body::Activity;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A targeted backdoor scenario: samples of `victim` performed with the
/// trigger should be classified as `target`.
///
/// The paper distinguishes *similar-trajectory* attacks (mapping an
/// activity to its mirrored counterpart, e.g. Push -> Pull) from
/// *dissimilar-trajectory* attacks (e.g. Push -> Right Swipe), the former
/// being markedly easier (Section VI-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AttackScenario {
    /// The activity the attacker performs.
    pub victim: Activity,
    /// The label the backdoored model should emit when the trigger is worn.
    pub target: Activity,
}

impl AttackScenario {
    /// Creates a scenario.
    ///
    /// # Panics
    ///
    /// Panics if victim and target are the same activity.
    pub fn new(victim: Activity, target: Activity) -> AttackScenario {
        assert_ne!(victim, target, "victim and target must differ");
        AttackScenario { victim, target }
    }

    /// Push -> Pull (similar trajectory; Fig. 8/9).
    pub fn push_to_pull() -> AttackScenario {
        AttackScenario::new(Activity::Push, Activity::Pull)
    }

    /// Left Swipe -> Right Swipe (similar trajectory; Fig. 8/9).
    pub fn left_to_right_swipe() -> AttackScenario {
        AttackScenario::new(Activity::LeftSwipe, Activity::RightSwipe)
    }

    /// Push -> Right Swipe (dissimilar trajectory; Fig. 10/11).
    pub fn push_to_right_swipe() -> AttackScenario {
        AttackScenario::new(Activity::Push, Activity::RightSwipe)
    }

    /// Push -> Anticlockwise Turning (dissimilar trajectory; Fig. 10/11).
    pub fn push_to_anticlockwise() -> AttackScenario {
        AttackScenario::new(Activity::Push, Activity::Anticlockwise)
    }

    /// The two similar-trajectory scenarios evaluated in the paper.
    pub fn similar_pairs() -> [AttackScenario; 2] {
        [AttackScenario::push_to_pull(), AttackScenario::left_to_right_swipe()]
    }

    /// The two dissimilar-trajectory scenarios evaluated in the paper.
    pub fn dissimilar_pairs() -> [AttackScenario; 2] {
        [AttackScenario::push_to_right_swipe(), AttackScenario::push_to_anticlockwise()]
    }

    /// True when the target is the victim's mirrored counterpart.
    pub fn is_similar_trajectory(&self) -> bool {
        self.victim.mirrored() == self.target
    }
}

impl fmt::Display for AttackScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.victim.label(), self.target.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenarios_classify_correctly() {
        for s in AttackScenario::similar_pairs() {
            assert!(s.is_similar_trajectory(), "{s}");
        }
        for s in AttackScenario::dissimilar_pairs() {
            assert!(!s.is_similar_trajectory(), "{s}");
        }
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(AttackScenario::push_to_pull().to_string(), "Push -> Pull");
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn identical_pair_panics() {
        AttackScenario::new(Activity::Push, Activity::Push);
    }
}
