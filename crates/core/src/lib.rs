//! The paper's contribution: physical backdoor attacks against
//! mmWave-based human activity recognition.
//!
//! The attack has three phases (Fig. 2):
//!
//! 1. **Poisoned-sample preparation** — the attacker records their own
//!    activity samples while wearing an aluminum reflector, identifies the
//!    top-k most important frames with SHAP ([`frames`]), finds the trigger
//!    placement that maximally perturbs CNN features while minimally
//!    perturbing the heatmaps (Eq. (2), [`position`]), reduces the
//!    per-frame optima to one global position (Eq. (4), also [`position`]),
//!    and splices the triggered frames into clean samples with flipped
//!    labels ([`poison`]).
//! 2. **Training** — the victim unknowingly trains on the union of clean
//!    and poisoned data.
//! 3. **Inference** — wearing the trigger flips the backdoored model's
//!    prediction to the attacker's target class; without the trigger the
//!    model behaves normally ([`metrics`]: ASR / UASR / CDR).
//!
//! [`experiment`] packages the full loop behind one call so every figure
//! and table of the evaluation section is a parameter sweep over
//! [`experiment::AttackSpec`]; [`campaign`] wraps those sweeps in a
//! journaled, resumable, failure-isolating state machine for long
//! campaigns; [`dag`] generalizes campaigns into dependency graphs with
//! content-addressed artifacts, which N crash-safe [`worker`] processes
//! drain concurrently via atomic claims (scheduled by [`scheduler`]).
//!
//! # Examples
//!
//! ```no_run
//! use mmwave_backdoor::experiment::{AttackSpec, ExperimentContext, ExperimentScale};
//! use mmwave_backdoor::scenario::AttackScenario;
//!
//! let mut ctx = ExperimentContext::new(ExperimentScale::smoke_test(), 42);
//! let spec = AttackSpec {
//!     scenario: AttackScenario::push_to_pull(),
//!     injection_rate: 0.4,
//!     n_poisoned_frames: 8,
//!     ..AttackSpec::default()
//! };
//! let metrics = ctx.run_attack(&spec);
//! println!("ASR {:.0}% UASR {:.0}% CDR {:.0}%",
//!     100.0 * metrics.asr, 100.0 * metrics.uasr, 100.0 * metrics.cdr);
//! ```

pub mod campaign;
pub mod dag;
pub mod experiment;
pub mod fleet;
pub mod frames;
pub mod metrics;
pub mod poison;
pub mod position;
pub mod scenario;
pub mod scheduler;
pub mod worker;

pub use campaign::{Campaign, CampaignReport, PointOutcome, RetryPolicy};
pub use dag::{CampaignDag, DagReport, Gate, TaskNode, TaskState};
pub use fleet::{export_fleet, load_shards, FleetHealth, FleetShipper, WorkerHealth, WorkerStatus};
pub use worker::{run_worker, PipelineExecutor, TaskExecutor, WorkerConfig, WorkerSummary};
pub use experiment::{AttackSpec, ExperimentContext, ExperimentScale};
pub use frames::{frame_importance, importance_histogram, FrameStrategy};
pub use metrics::AttackMetrics;
pub use position::PositionOptimizer;
pub use scenario::AttackScenario;
