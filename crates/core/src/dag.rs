//! Campaigns as dependency graphs: the distributed successor to the flat
//! point list in [`crate::campaign`].
//!
//! The paper's Table-1/Fig-14–15 sweeps are really DAGs — synthesize a
//! dataset, train a baseline, poison variants, evaluate, aggregate — with
//! *shared upstream artifacts*: two sweep points that need the same
//! trained baseline should train it once. A [`CampaignDag`] makes that
//! structure explicit:
//!
//! * **Typed task nodes** ([`TaskNode`]) with explicit `deps` edges. The
//!   graph is validated (unique ids, known deps, acyclic — Kahn's
//!   algorithm) on [`CampaignDag::save`] *and* [`CampaignDag::load`], so
//!   a hand-edited `dag.json` with a cycle is rejected before any worker
//!   runs.
//! * **Content-addressed artifact keys** ([`CampaignDag::artifact_keys`]):
//!   each task's key hashes its kind, its params, and its *dependencies'
//!   keys* — two tasks whose entire upstream specification matches get the
//!   same key and share one artifact in `artifacts/<key>.json`, no matter
//!   what their ids are. This is the dedupe primitive the `dag.dedupe_hit`
//!   counter observes.
//! * **Gate nodes** ([`Gate`]): a task with a gate only becomes ready once
//!   every dependency's result passes the predicate (e.g. a baseline
//!   accuracy floor before poison variants run); a failing predicate
//!   permanently fails the task (and, transitively, its dependents) with
//!   a recorded reason instead of wedging the campaign.
//!
//! All campaign state lives in one directory of durable `mmwave-store`
//! artifacts — `dag.json`, `tasks/<id>.done.json`, `tasks/<id>.failed.json`,
//! `claims/<id>.claim`, `artifacts/<key>.json`, `report.json` — so N
//! independent worker processes (see [`crate::worker`]) coordinate through
//! the filesystem alone, and `kill -9` at any instant loses at most one
//! in-flight task, which survivors reclaim after the TTL.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A predicate over a task's dependency results that must pass before the
/// task becomes ready. `metric` names a field of each dependency's output
/// object (dotted paths descend into nested objects); every dependency
/// must report `metric >= min`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gate {
    /// Output field the predicate reads, e.g. `"cdr"` or `"value"`.
    pub metric: String,
    /// Inclusive floor the metric must reach on every dependency.
    pub min: f64,
}

impl Gate {
    /// Evaluates the predicate against one dependency's output. Returns
    /// `Err` with a human-readable reason when the gate fails, including
    /// the missing-metric case (a gate on a field the upstream task never
    /// produces is a configuration error, surfaced as a gate failure, not
    /// silently passed).
    pub fn check(&self, dep_id: &str, output: &serde_json::Value) -> Result<(), String> {
        let mut cursor = output;
        for part in self.metric.split('.') {
            match cursor.get(part) {
                Some(next) => cursor = next,
                None => {
                    return Err(format!(
                        "gate metric `{}` missing from `{dep_id}` output",
                        self.metric
                    ))
                }
            }
        }
        match cursor.as_f64() {
            Some(v) if v >= self.min => Ok(()),
            Some(v) => Err(format!(
                "gate failed: `{dep_id}`.{} = {v} < required {}",
                self.metric, self.min
            )),
            None => Err(format!(
                "gate metric `{}` on `{dep_id}` is not a number",
                self.metric
            )),
        }
    }
}

/// One node of a campaign DAG: a typed, parameterized task plus its
/// dependency edges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskNode {
    /// Unique id within the DAG; also the task's file stem, so only
    /// `[A-Za-z0-9._-]` characters are allowed.
    pub id: String,
    /// Executor dispatch key (`"const"`, `"sum"`, `"attack"`,
    /// `"aggregate"`, or anything a custom [`crate::worker::TaskExecutor`]
    /// understands).
    pub kind: String,
    /// Kind-specific parameters, hashed into the artifact key.
    #[serde(default)]
    pub params: serde_json::Value,
    /// Ids of tasks whose outputs this task consumes.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub deps: Vec<String>,
    /// Optional readiness predicate over the dependencies' outputs.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub gate: Option<Gate>,
}

/// A campaign as a validated dependency graph, persisted as `dag.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignDag {
    /// Campaign name, recorded in the report.
    pub name: String,
    /// The task nodes. Order is presentation order; execution order is
    /// topological.
    pub tasks: Vec<TaskNode>,
}

/// Why a DAG failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// Two tasks share an id.
    DuplicateId(String),
    /// A task id contains characters outside `[A-Za-z0-9._-]` (ids double
    /// as file stems) or is empty.
    BadId(String),
    /// A task depends on an id that does not exist.
    UnknownDep {
        /// The depending task.
        task: String,
        /// The missing dependency id.
        dep: String,
    },
    /// The dependency graph has a cycle through these task ids.
    Cycle(Vec<String>),
    /// The directory holds no campaign: its `dag.json` does not exist.
    /// Distinct from a *corrupt* DAG — pointing `mmwave top`,
    /// `fleet-export`, or `campaign-status` at the wrong directory is an
    /// operator mistake that deserves a direct message, not a raw store
    /// error.
    NotACampaign(PathBuf),
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::DuplicateId(id) => write!(f, "duplicate task id `{id}`"),
            DagError::BadId(id) => write!(
                f,
                "bad task id `{id}`: ids are file stems, use only [A-Za-z0-9._-]"
            ),
            DagError::UnknownDep { task, dep } => {
                write!(f, "task `{task}` depends on unknown task `{dep}`")
            }
            DagError::Cycle(ids) => {
                write!(f, "dependency cycle through tasks: {}", ids.join(", "))
            }
            DagError::NotACampaign(dir) => write!(
                f,
                "`{}` is not a campaign directory (no dag.json found; run \
                 `mmwave campaign-init --dir <dir>` to create one)",
                dir.display()
            ),
        }
    }
}

impl std::error::Error for DagError {}

impl From<DagError> for io::Error {
    fn from(e: DagError) -> io::Error {
        let kind = match &e {
            DagError::NotACampaign(_) => io::ErrorKind::NotFound,
            _ => io::ErrorKind::InvalidData,
        };
        io::Error::new(kind, e.to_string())
    }
}

fn valid_id(id: &str) -> bool {
    !id.is_empty()
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
}

impl CampaignDag {
    /// An empty campaign graph.
    pub fn new(name: &str) -> CampaignDag {
        CampaignDag { name: name.to_string(), tasks: Vec::new() }
    }

    /// The node with this id, if any.
    pub fn task(&self, id: &str) -> Option<&TaskNode> {
        self.tasks.iter().find(|t| t.id == id)
    }

    /// Ids of tasks no other task depends on — the campaign's outputs,
    /// reported in `report.json`. Sorted for determinism.
    pub fn terminal_ids(&self) -> Vec<&str> {
        let consumed: HashSet<&str> =
            self.tasks.iter().flat_map(|t| t.deps.iter().map(String::as_str)).collect();
        let mut out: Vec<&str> = self
            .tasks
            .iter()
            .map(|t| t.id.as_str())
            .filter(|id| !consumed.contains(id))
            .collect();
        out.sort_unstable();
        out
    }

    /// Validates ids, edges, and acyclicity (Kahn's algorithm).
    ///
    /// # Errors
    ///
    /// The first [`DagError`] found.
    pub fn validate(&self) -> Result<(), DagError> {
        let mut index: HashMap<&str, usize> = HashMap::with_capacity(self.tasks.len());
        for (i, task) in self.tasks.iter().enumerate() {
            if !valid_id(&task.id) {
                return Err(DagError::BadId(task.id.clone()));
            }
            if index.insert(task.id.as_str(), i).is_some() {
                return Err(DagError::DuplicateId(task.id.clone()));
            }
        }
        let mut indegree = vec![0usize; self.tasks.len()];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); self.tasks.len()];
        for (i, task) in self.tasks.iter().enumerate() {
            for dep in &task.deps {
                let Some(&d) = index.get(dep.as_str()) else {
                    return Err(DagError::UnknownDep {
                        task: task.id.clone(),
                        dep: dep.clone(),
                    });
                };
                indegree[i] += 1;
                dependents[d].push(i);
            }
        }
        let mut queue: Vec<usize> =
            (0..self.tasks.len()).filter(|&i| indegree[i] == 0).collect();
        let mut visited = 0usize;
        while let Some(i) = queue.pop() {
            visited += 1;
            for &j in &dependents[i] {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    queue.push(j);
                }
            }
        }
        if visited != self.tasks.len() {
            let mut cycle: Vec<String> = self
                .tasks
                .iter()
                .enumerate()
                .filter(|(i, _)| indegree[*i] > 0)
                .map(|(_, t)| t.id.clone())
                .collect();
            cycle.sort_unstable();
            return Err(DagError::Cycle(cycle));
        }
        Ok(())
    }

    /// Content-addressed artifact key per task id. A task's key is the
    /// [`mmwave_store::content_key`] of `(kind, params, sorted dep keys)`,
    /// computed bottom-up — so identical sub-graphs share keys regardless
    /// of task ids, and any change anywhere upstream changes every
    /// downstream key.
    ///
    /// # Errors
    ///
    /// Returns the validation error for an invalid graph.
    pub fn artifact_keys(&self) -> Result<BTreeMap<String, String>, DagError> {
        self.validate()?;
        let mut keys: BTreeMap<String, String> = BTreeMap::new();
        // Iterate until fixpoint in dependency order: validate() proved
        // acyclicity, so a simple multi-pass resolve terminates.
        let mut remaining: Vec<&TaskNode> = self.tasks.iter().collect();
        while !remaining.is_empty() {
            let before = remaining.len();
            remaining.retain(|task| {
                let mut dep_keys: Vec<&str> = Vec::with_capacity(task.deps.len());
                for dep in &task.deps {
                    match keys.get(dep) {
                        Some(k) => dep_keys.push(k),
                        None => return true, // dep unresolved; keep for next pass
                    }
                }
                dep_keys.sort_unstable();
                // serde_json maps serialize with sorted keys (BTreeMap
                // backing), so this spec string is canonical.
                let spec = serde_json::json!({
                    "kind": task.kind,
                    "params": task.params,
                    "inputs": dep_keys,
                });
                keys.insert(task.id.clone(), mmwave_store::content_key(spec.to_string().as_bytes()));
                false
            });
            debug_assert!(remaining.len() < before, "acyclic graph must make progress");
        }
        Ok(keys)
    }

    /// Persists the graph (validated first) as `dag.json` in `dir`.
    ///
    /// # Errors
    ///
    /// Validation or I/O errors.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        self.validate()?;
        mmwave_store::save_json_atomic(&paths::dag(dir), self).map_err(io::Error::from)
    }

    /// Loads and validates `dag.json` from `dir` — cycle detection happens
    /// here, before any worker claims anything.
    ///
    /// # Errors
    ///
    /// Store errors (missing, torn, corrupt) or validation errors.
    pub fn load(dir: &Path) -> io::Result<CampaignDag> {
        let dag: CampaignDag = match mmwave_store::load_json(&paths::dag(dir)) {
            Ok(loaded) => loaded.value,
            // A missing dag.json means this was never a campaign
            // directory at all; say so directly instead of surfacing a
            // bare missing-artifact store error.
            Err(mmwave_store::StoreError::Missing { .. }) => {
                return Err(DagError::NotACampaign(dir.to_path_buf()).into())
            }
            Err(e) => return Err(io::Error::from(e)),
        };
        dag.validate()?;
        Ok(dag)
    }
}

/// Canonical locations of every campaign artifact inside the campaign
/// directory. All coordination between workers goes through these paths.
pub mod paths {
    use super::*;

    /// The persisted graph.
    pub fn dag(dir: &Path) -> PathBuf {
        dir.join("dag.json")
    }

    /// A completed task's durable result record.
    pub fn done(dir: &Path, id: &str) -> PathBuf {
        dir.join("tasks").join(format!("{id}.done.json"))
    }

    /// A permanently failed task's record.
    pub fn failed(dir: &Path, id: &str) -> PathBuf {
        dir.join("tasks").join(format!("{id}.failed.json"))
    }

    /// A task's claim file.
    pub fn claim(dir: &Path, id: &str) -> PathBuf {
        dir.join("claims").join(format!("{id}.claim"))
    }

    /// A content-addressed artifact.
    pub fn artifact(dir: &Path, key: &str) -> PathBuf {
        dir.join("artifacts").join(format!("{key}.json"))
    }

    /// The campaign-complete report.
    pub fn report(dir: &Path) -> PathBuf {
        dir.join("report.json")
    }
}

/// A completed task's durable record (`tasks/<id>.done.json`). The
/// content is a pure function of the task's spec and inputs, so records
/// from interrupted-and-resumed campaigns are byte-identical to
/// uninterrupted ones.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// The task id.
    pub id: String,
    /// The content-addressed key its artifact lives under.
    pub artifact_key: String,
    /// The task's output object.
    pub output: serde_json::Value,
}

/// A permanently failed task's record (`tasks/<id>.failed.json`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskFailure {
    /// The task id.
    pub id: String,
    /// Why it failed: executor error, exhausted retries, a failed gate,
    /// or a failed upstream dependency.
    pub error: String,
}

/// One task's current state, as read from the campaign directory.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskState {
    /// No result and no claim yet (may or may not be ready).
    Pending,
    /// A worker holds the claim.
    Claimed {
        /// Claim owner, when the claim body was readable.
        owner: Option<mmwave_store::ClaimInfo>,
        /// Time since the claim's last heartbeat.
        age: Duration,
        /// True when `age` exceeds the scanner's TTL — reclaim-eligible.
        stale: bool,
    },
    /// A durable result exists.
    Done,
    /// A durable failure record exists.
    Failed,
}

/// Point-in-time view of every task's state. Produced by [`scan`]; purely
/// read-only (no locks taken, no files written), so it is safe to run
/// beside active workers — the basis of `mmwave campaign-status`.
#[derive(Debug)]
pub struct DagStatus {
    /// State per task id, in DAG presentation order.
    pub tasks: Vec<(String, TaskState)>,
}

impl DagStatus {
    /// The state of one task. Unknown ids read as `Pending`.
    pub fn state(&self, id: &str) -> &TaskState {
        self.tasks
            .iter()
            .find(|(tid, _)| tid == id)
            .map(|(_, s)| s)
            .unwrap_or(&TaskState::Pending)
    }

    /// True once every task is `Done` or `Failed`.
    pub fn all_resolved(&self) -> bool {
        self.tasks
            .iter()
            .all(|(_, s)| matches!(s, TaskState::Done | TaskState::Failed))
    }

    /// Counts of (done, failed, claimed, pending).
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let mut done = 0;
        let mut failed = 0;
        let mut claimed = 0;
        let mut pending = 0;
        for (_, s) in &self.tasks {
            match s {
                TaskState::Done => done += 1,
                TaskState::Failed => failed += 1,
                TaskState::Claimed { .. } => claimed += 1,
                TaskState::Pending => pending += 1,
            }
        }
        (done, failed, claimed, pending)
    }
}

/// Reads every task's state from `dir` without writing anything. A claim
/// alongside a done/failed record means the owner crashed between
/// persisting the result and releasing — the result wins and the claim is
/// reported as part of the `Done`/`Failed` state (workers garbage-collect
/// it).
///
/// # Errors
///
/// I/O errors from the scans; torn claim bodies are tolerated (anonymous
/// owner), not errors.
pub fn scan(dir: &Path, dag: &CampaignDag, ttl: Duration) -> io::Result<DagStatus> {
    let mut tasks = Vec::with_capacity(dag.tasks.len());
    for task in &dag.tasks {
        let state = if paths::done(dir, &task.id).exists() {
            TaskState::Done
        } else if paths::failed(dir, &task.id).exists() {
            TaskState::Failed
        } else {
            let claim_path = paths::claim(dir, &task.id);
            match mmwave_store::read_claim_age(&claim_path) {
                Ok(Some(age)) => {
                    let owner = mmwave_store::read_claim(&claim_path)
                        .ok()
                        .flatten()
                        .map(|(info, _)| info);
                    TaskState::Claimed { owner, age, stale: age > ttl }
                }
                Ok(None) => TaskState::Pending,
                Err(e) => return Err(e.into()),
            }
        };
        tasks.push((task.id.clone(), state));
    }
    Ok(DagStatus { tasks })
}

/// Loads a completed task's output from its durable record.
///
/// # Errors
///
/// Store errors when the record is missing, torn, or corrupt.
pub fn load_output(dir: &Path, id: &str) -> io::Result<serde_json::Value> {
    mmwave_store::load_json::<TaskRecord>(&paths::done(dir, id))
        .map(|loaded| loaded.value.output)
        .map_err(io::Error::from)
}

/// The campaign-complete summary persisted as `report.json` once every
/// task is resolved. Deterministic: failed tasks sorted by id, outputs
/// keyed by terminal task id in sorted order — so a crashed-and-reclaimed
/// multi-worker campaign reports byte-identically to an uninterrupted
/// single-worker one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagReport {
    /// The campaign name from the DAG.
    pub name: String,
    /// Total tasks in the graph.
    pub total: usize,
    /// Tasks that completed.
    pub completed: usize,
    /// Failure records, sorted by task id.
    pub failed: Vec<TaskFailure>,
    /// Terminal (un-consumed) tasks' outputs, keyed by id.
    pub outputs: BTreeMap<String, serde_json::Value>,
}

impl fmt::Display for DagReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "campaign `{}`: {}/{} tasks completed, {} failed",
            self.name,
            self.completed,
            self.total,
            self.failed.len()
        )?;
        for failure in &self.failed {
            writeln!(f, "  FAILED {}: {}", failure.id, failure.error)?;
        }
        for (id, output) in &self.outputs {
            writeln!(f, "  {id} -> {output}")?;
        }
        Ok(())
    }
}

/// Builds the deterministic report for a fully resolved campaign.
///
/// # Errors
///
/// I/O errors reading the task records.
pub fn build_report(dir: &Path, dag: &CampaignDag, status: &DagStatus) -> io::Result<DagReport> {
    let mut completed = 0usize;
    let mut failed: Vec<TaskFailure> = Vec::new();
    for (id, state) in &status.tasks {
        match state {
            TaskState::Done => completed += 1,
            TaskState::Failed => {
                let record = mmwave_store::load_json::<TaskFailure>(&paths::failed(dir, id))
                    .map(|loaded| loaded.value)
                    .unwrap_or_else(|_| TaskFailure {
                        id: id.clone(),
                        error: "failure record unreadable".to_string(),
                    });
                failed.push(record);
            }
            _ => {}
        }
    }
    failed.sort_by(|a, b| a.id.cmp(&b.id));
    let mut outputs = BTreeMap::new();
    for id in dag.terminal_ids() {
        if matches!(status.state(id), TaskState::Done) {
            outputs.insert(id.to_string(), load_output(dir, id)?);
        }
    }
    Ok(DagReport {
        name: dag.name.clone(),
        total: dag.tasks.len(),
        completed,
        failed,
        outputs,
    })
}

/// The built-in demonstration DAG: a miniature of the paper's sweep shape
/// with every orchestration feature on display —
///
/// ```text
/// synth ──> baseline-a ──> variant-0..2 (gated on baseline value) ──┐
///      └──> baseline-b ──> eval-b ─────────────────────────────────aggregate
/// ```
///
/// `baseline-a` and `baseline-b` carry *identical* specs, so they share a
/// content-addressed artifact key: whichever worker runs first trains the
/// "baseline", and the other records a `dag.dedupe_hit`. Every output is
/// fixed arithmetic, so the final report is byte-deterministic — the
/// property the multi-process chaos matrix (`mmwave dag-chaos`) asserts.
pub fn demo_dag() -> CampaignDag {
    let mut dag = CampaignDag::new("demo");
    dag.tasks.push(TaskNode {
        id: "synth".to_string(),
        kind: "const".to_string(),
        params: serde_json::json!({"value": 2.0}),
        deps: vec![],
        gate: None,
    });
    for suffix in ["a", "b"] {
        dag.tasks.push(TaskNode {
            id: format!("baseline-{suffix}"),
            kind: "sum".to_string(),
            params: serde_json::json!({"offset": 1.0}),
            deps: vec!["synth".to_string()],
            gate: None,
        });
    }
    for i in 0..3 {
        dag.tasks.push(TaskNode {
            id: format!("variant-{i}"),
            kind: "sum".to_string(),
            params: serde_json::json!({"offset": f64::from(i), "scale": 1.5}),
            deps: vec!["baseline-a".to_string()],
            // The baseline floor: poison variants only run once the
            // baseline is good enough (3.0 here, floor 2.5 — passes).
            gate: Some(Gate { metric: "value".to_string(), min: 2.5 }),
        });
    }
    dag.tasks.push(TaskNode {
        id: "eval-b".to_string(),
        kind: "sum".to_string(),
        params: serde_json::json!({"scale": 2.0}),
        deps: vec!["baseline-b".to_string()],
        gate: None,
    });
    dag.tasks.push(TaskNode {
        id: "aggregate".to_string(),
        kind: "aggregate".to_string(),
        params: serde_json::Value::Null,
        deps: vec![
            "variant-0".to_string(),
            "variant-1".to_string(),
            "variant-2".to_string(),
            "eval-b".to_string(),
        ],
        gate: None,
    });
    dag
}

/// A paper-shaped attack sweep as a DAG: one `attack` task per sweep point
/// (smoke scale), all feeding one `aggregate`. Points that share a
/// `(scenario, rate, frames, seed)` specification share an artifact key
/// and run once.
pub fn attack_sweep_dag(
    name: &str,
    points: &[(String, String, f64, usize, u64)],
) -> CampaignDag {
    let mut dag = CampaignDag::new(name);
    let mut point_ids = Vec::with_capacity(points.len());
    for (id, scenario, rate, frames, seed) in points {
        dag.tasks.push(TaskNode {
            id: id.clone(),
            kind: "attack".to_string(),
            params: serde_json::json!({
                "scenario": scenario,
                "rate": rate,
                "frames": frames,
                "seed": seed,
            }),
            deps: vec![],
            gate: None,
        });
        point_ids.push(id.clone());
    }
    dag.tasks.push(TaskNode {
        id: "aggregate".to_string(),
        kind: "aggregate".to_string(),
        params: serde_json::Value::Null,
        deps: point_ids,
        gate: None,
    });
    dag
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: &str, deps: &[&str]) -> TaskNode {
        TaskNode {
            id: id.to_string(),
            kind: "const".to_string(),
            params: serde_json::json!({"value": 1.0}),
            deps: deps.iter().map(|d| d.to_string()).collect(),
            gate: None,
        }
    }

    #[test]
    fn validation_catches_cycles_dupes_and_unknown_deps() {
        let mut dag = CampaignDag::new("t");
        dag.tasks.push(node("a", &[]));
        dag.tasks.push(node("b", &["a"]));
        assert!(dag.validate().is_ok());

        let mut cyclic = dag.clone();
        cyclic.tasks.push(node("c", &["d"]));
        cyclic.tasks.push(node("d", &["c"]));
        assert!(matches!(cyclic.validate(), Err(DagError::Cycle(ids)) if ids == ["c", "d"]));

        let mut duped = dag.clone();
        duped.tasks.push(node("a", &[]));
        assert!(matches!(duped.validate(), Err(DagError::DuplicateId(_))));

        let mut dangling = dag.clone();
        dangling.tasks.push(node("c", &["ghost"]));
        assert!(matches!(dangling.validate(), Err(DagError::UnknownDep { .. })));

        let mut bad_id = dag;
        bad_id.tasks.push(node("no/slashes", &[]));
        assert!(matches!(bad_id.validate(), Err(DagError::BadId(_))));
    }

    #[test]
    fn loading_a_non_campaign_dir_is_a_clear_typed_error() {
        // Regression: `mmwave top` / `fleet-export` / `campaign-status`
        // pointed at a directory without a dag.json used to surface a raw
        // missing-artifact store error; operators deserve a direct
        // "not a campaign directory" message with the fix-it command.
        let dir = std::env::temp_dir()
            .join(format!("mmwave_dag_notacampaign_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let err = CampaignDag::load(&dir).expect_err("no dag.json present");
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        let msg = err.to_string();
        assert!(msg.contains("not a campaign directory"), "got: {msg}");
        assert!(msg.contains("campaign-init"), "must name the fix: {msg}");
        // A *corrupt* dag.json is a different failure and must keep its
        // store-level diagnosis.
        std::fs::write(paths::dag(&dir), b"{ not json").unwrap();
        let err = CampaignDag::load(&dir).expect_err("corrupt dag.json");
        assert!(
            !err.to_string().contains("not a campaign directory"),
            "corruption must not be misreported as a missing campaign: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn identical_subgraphs_share_artifact_keys() {
        let dag = demo_dag();
        let keys = dag.artifact_keys().unwrap();
        assert_eq!(
            keys["baseline-a"], keys["baseline-b"],
            "identical specs must share one artifact"
        );
        assert_ne!(keys["variant-0"], keys["variant-1"], "params differ");
        assert_ne!(keys["baseline-a"], keys["synth"], "deps differ");
        // Key count: every task has a key.
        assert_eq!(keys.len(), dag.tasks.len());
    }

    #[test]
    fn upstream_change_propagates_to_downstream_keys() {
        let mut a = CampaignDag::new("t");
        a.tasks.push(node("root", &[]));
        a.tasks.push(node("leaf", &["root"]));
        let mut b = a.clone();
        b.tasks[0].params = serde_json::json!({"value": 9.0});
        let ka = a.artifact_keys().unwrap();
        let kb = b.artifact_keys().unwrap();
        assert_ne!(ka["root"], kb["root"]);
        assert_ne!(ka["leaf"], kb["leaf"], "a changed upstream must change the leaf key");
    }

    #[test]
    fn save_load_round_trips_and_load_rejects_cycles() {
        let dir = std::env::temp_dir()
            .join(format!("mmwave_dag_unit_rt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let dag = demo_dag();
        dag.save(&dir).unwrap();
        let loaded = CampaignDag::load(&dir).unwrap();
        assert_eq!(loaded, dag);

        // Hand-edit a cycle into the persisted file: load must reject it.
        let mut bad = dag.clone();
        bad.tasks[0].deps = vec!["aggregate".to_string()];
        mmwave_store::save_json_atomic(&paths::dag(&dir), &bad).unwrap();
        let err = CampaignDag::load(&dir).unwrap_err();
        assert!(err.to_string().contains("cycle"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gate_checks_paths_floors_and_missing_metrics() {
        let gate = Gate { metric: "metrics.cdr".to_string(), min: 0.8 };
        let good = serde_json::json!({"metrics": {"cdr": 0.93}});
        let bad = serde_json::json!({"metrics": {"cdr": 0.5}});
        let missing = serde_json::json!({"metrics": {}});
        assert!(gate.check("t", &good).is_ok());
        assert!(gate.check("t", &bad).unwrap_err().contains("gate failed"));
        assert!(gate.check("t", &missing).unwrap_err().contains("missing"));
    }

    #[test]
    fn terminal_ids_are_the_unconsumed_tasks() {
        let dag = demo_dag();
        assert_eq!(dag.terminal_ids(), vec!["aggregate"]);
    }

    #[test]
    fn scan_reads_states_without_writing() {
        let dir = std::env::temp_dir()
            .join(format!("mmwave_dag_unit_scan_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut dag = CampaignDag::new("t");
        dag.tasks.push(node("a", &[]));
        dag.tasks.push(node("b", &["a"]));
        dag.tasks.push(node("c", &["a"]));

        // a done, b claimed, c pending.
        mmwave_store::save_json_atomic(
            &paths::done(&dir, "a"),
            &TaskRecord {
                id: "a".to_string(),
                artifact_key: "k".to_string(),
                output: serde_json::json!({"value": 1.0}),
            },
        )
        .unwrap();
        let info = mmwave_store::ClaimInfo {
            worker_id: "w0".to_string(),
            pid: std::process::id(),
            task_id: "b".to_string(),
        };
        mmwave_store::acquire_claim(&paths::claim(&dir, "b"), &info).unwrap();

        let status = scan(&dir, &dag, Duration::from_secs(3600)).unwrap();
        assert!(matches!(status.state("a"), TaskState::Done));
        assert!(
            matches!(status.state("b"), TaskState::Claimed { stale: false, .. }),
            "fresh claim must not read stale"
        );
        assert!(matches!(status.state("c"), TaskState::Pending));
        assert!(!status.all_resolved());
        assert_eq!(status.counts(), (1, 0, 1, 1));

        // With a zero TTL the same claim reads stale.
        std::thread::sleep(Duration::from_millis(20));
        let status = scan(&dir, &dag, Duration::ZERO).unwrap();
        assert!(matches!(status.state("b"), TaskState::Claimed { stale: true, .. }));
        std::fs::remove_dir_all(&dir).ok();
    }
}
