//! Trigger-placement optimization (Eq. (2)) and the global optimal
//! position (Eq. (4)).

use mmwave_body::{MeshSequence, SiteId};
use mmwave_dsp::Heatmap;
use mmwave_geom::Vec3;
use mmwave_har::CnnLstm;
use mmwave_radar::capture::{transform_site, TriggerPlan};
use mmwave_radar::{Capturer, Environment, Placement};
use serde::{Deserialize, Serialize};

/// Result of evaluating one candidate site.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteEvaluation {
    /// The candidate site.
    pub site: SiteId,
    /// Mean Eq. (2) objective over the evaluated frames (higher = better).
    pub objective: f64,
    /// Mean CNN feature distance `D(l(h(y')), l(h(y)))`.
    pub feature_distance: f64,
    /// Mean heatmap perturbation `||h(y') - h(y)||_2`.
    pub heatmap_distance: f64,
    /// Per-frame objective values (aligned with the frame list given to
    /// [`PositionOptimizer::evaluate_sites`]).
    pub per_frame: Vec<f64>,
}

/// The Eq. (2) optimizer: maximize
/// `alpha * (D(features) - beta * ||delta heatmap||_2)`
/// over candidate trigger positions on the body.
///
/// The paper solves this with an RF simulator in the loop; here the
/// expensive body signal is synthesized once per frame
/// ([`Capturer::base_if_frames`]) and each candidate placement costs only
/// one small trigger synthesis plus one DRAI + CNN feature pass, thanks to
/// IF linearity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PositionOptimizer {
    /// Scale of the whole objective (the paper's `alpha`).
    pub alpha: f64,
    /// Weight of the heatmap-perturbation penalty (the paper's `beta`).
    pub beta: f64,
}

impl Default for PositionOptimizer {
    fn default() -> Self {
        // beta balances the different scales of the CNN feature distance
        // and the heatmap L2. The calibrated aluminum trigger produces
        // heatmap perturbations ~an order of magnitude larger than feature
        // shifts, so beta is small: effectiveness (feature change) leads,
        // stealth (heatmap change) breaks ties — matching how the paper
        // weighs the two terms (attacks succeed at 84% ASR while heatmap
        // changes stay subtle).
        PositionOptimizer { alpha: 1.0, beta: 0.02 }
    }
}

impl PositionOptimizer {
    /// Evaluates every candidate site for a performance at `placement`,
    /// scoring only the listed `frames` (the SHAP-selected important
    /// frames).
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty or indexes out of range.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate_sites(
        &self,
        capturer: &Capturer,
        surrogate: &CnnLstm,
        sequence: &MeshSequence,
        placement: Placement,
        environment: &Environment,
        plan_template: &TriggerPlan,
        frames: &[usize],
        seed: u64,
    ) -> Vec<SiteEvaluation> {
        assert!(!frames.is_empty(), "need at least one frame to evaluate");
        assert!(
            frames.iter().all(|&f| f < sequence.len()),
            "frame index out of range"
        );
        let base = capturer.base_if_frames(sequence, placement, environment, seed, 1.0);
        // Clean heatmaps for the selected frames, with the shared
        // normalization the classifier sees (log + global max of the clean
        // sequence).
        let mut clean_raw: Vec<Heatmap> =
            mmwave_exec::par_map(&base, |_, f| capturer.drai_of(f, environment));
        for h in &mut clean_raw {
            h.log_compress();
        }
        let global_max = clean_raw
            .iter()
            .filter_map(|h| h.peak().map(|p| p.2))
            .fold(0.0f32, f32::max)
            .max(1e-12);
        for h in &mut clean_raw {
            h.normalize_by(global_max);
        }
        let clean_features: Vec<Vec<f32>> = frames
            .iter()
            .map(|&fi| surrogate.frame_features(&clean_raw[fi]))
            .collect();

        let xf = placement.body_to_world();
        // Candidate sites are scored in parallel; each site's per-frame
        // sums still accumulate serially in frame order, and results come
        // back in `SiteId::ALL` order, so the evaluation is byte-identical
        // for any worker count.
        mmwave_exec::par_map(&SiteId::ALL[..], |_, &site| {
            let plan = TriggerPlan { site, ..*plan_template };
            let mut per_frame = Vec::with_capacity(frames.len());
            let mut feat_sum = 0.0;
            let mut heat_sum = 0.0;
            for (k, &fi) in frames.iter().enumerate() {
                let site_world =
                    transform_site(sequence.frame(fi).site(site), &xf);
                let trig_if = capturer.trigger_if(&plan, &site_world);
                let combined = base[fi].superposed(&trig_if);
                let mut poisoned = capturer.drai_of(&combined, environment);
                poisoned.log_compress();
                poisoned.normalize_by(global_max);
                let feat = surrogate.frame_features(&poisoned);
                let fd = l2(&feat, &clean_features[k]) as f64;
                let hd = poisoned.l2_distance(&clean_raw[fi]) as f64;
                feat_sum += fd;
                heat_sum += hd;
                per_frame.push(self.alpha * (fd - self.beta * hd));
            }
            let n = frames.len() as f64;
            SiteEvaluation {
                site,
                objective: per_frame.iter().sum::<f64>() / n,
                feature_distance: feat_sum / n,
                heatmap_distance: heat_sum / n,
                per_frame,
            }
        })
    }

    /// The best site by mean objective.
    ///
    /// # Panics
    ///
    /// Panics if `evaluations` is empty.
    pub fn best_site(evaluations: &[SiteEvaluation]) -> SiteId {
        evaluations
            .iter()
            .max_by(|a, b| a.objective.total_cmp(&b.objective))
            .expect("nonempty evaluations")
            .site
    }
}

/// Weighted geometric median via Weiszfeld iteration — the solver for
/// Eq. (4): `min_gop sum_i phi_i * ||op_i - gop||`.
///
/// # Panics
///
/// Panics if inputs are empty, lengths differ, or all weights are
/// non-positive.
pub fn weighted_geometric_median(points: &[Vec3], weights: &[f64]) -> Vec3 {
    assert!(!points.is_empty(), "need at least one point");
    assert_eq!(points.len(), weights.len(), "point/weight length mismatch");
    // Negative SHAP weights would flip the objective; clamp at zero (a
    // frame that hurts the prediction should not attract the trigger).
    let w: Vec<f64> = weights.iter().map(|&x| x.max(0.0)).collect();
    let total: f64 = w.iter().sum();
    assert!(total > 0.0, "all weights are non-positive");
    // Start at the weighted mean.
    let mut g = points
        .iter()
        .zip(&w)
        .fold(Vec3::ZERO, |acc, (p, &wi)| acc + *p * wi)
        / total;
    // Epsilon-smoothed Weiszfeld iteration: clamping the distance in the
    // denominator (instead of skipping coincident points) keeps the update
    // well-defined and unbiased when the iterate lands on a data point.
    for _ in 0..512 {
        let mut num = Vec3::ZERO;
        let mut den = 0.0;
        for (p, &wi) in points.iter().zip(&w) {
            let d = g.distance(*p).max(1e-9);
            num += *p * (wi / d);
            den += wi / d;
        }
        let next = num / den;
        if g.distance(next) < 1e-12 {
            return next;
        }
        g = next;
    }
    g
}

/// Reduces per-frame optimal positions to the global optimal position of
/// Eq. (4) and snaps it to the nearest attachable site (averaged over the
/// frames' site positions). Returns `(global_position, snapped_site)`.
///
/// # Panics
///
/// Panics if `per_frame_optima` is empty.
pub fn global_optimal_site(
    sequence: &MeshSequence,
    placement: Placement,
    per_frame_optima: &[(usize, SiteId)],
    shap_weights: &[f64],
) -> (Vec3, SiteId) {
    assert!(!per_frame_optima.is_empty(), "need at least one per-frame optimum");
    assert_eq!(per_frame_optima.len(), shap_weights.len(), "weights mismatch");
    let xf = placement.body_to_world();
    let points: Vec<Vec3> = per_frame_optima
        .iter()
        .map(|&(fi, site)| xf.apply(sequence.frame(fi).site(site).position))
        .collect();
    let gop = weighted_geometric_median(&points, shap_weights);
    // Snap: mean position of each candidate site over the involved frames,
    // nearest to the global optimum.
    let snapped = SiteId::ALL
        .iter()
        .map(|&site| {
            let mean = per_frame_optima
                .iter()
                .fold(Vec3::ZERO, |acc, &(fi, _)| {
                    acc + xf.apply(sequence.frame(fi).site(site).position)
                })
                / per_frame_optima.len() as f64;
            (site, mean.distance(gop))
        })
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("nonempty site list")
        .0;
    (gop, snapped)
}

fn l2(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_body::{Activity, ActivitySampler, Participant, SampleVariation};
    use mmwave_har::PrototypeConfig;
    use mmwave_radar::capture::CaptureConfig;
    use mmwave_radar::trigger::{Trigger, TriggerAttachment};

    #[test]
    fn geometric_median_of_identical_points_is_that_point() {
        let p = Vec3::new(1.0, 2.0, 3.0);
        let g = weighted_geometric_median(&[p, p, p], &[1.0, 2.0, 0.5]);
        assert!((g - p).norm() < 1e-9);
    }

    #[test]
    fn geometric_median_is_pulled_by_weight() {
        let a = Vec3::ZERO;
        let b = Vec3::new(10.0, 0.0, 0.0);
        // Heavier weight on b pulls the median toward b.
        let g = weighted_geometric_median(&[a, b], &[1.0, 5.0]);
        assert!(g.x > 5.0);
        // For two points the weighted geometric median is at the heavier
        // point once weight ratio exceeds 1.
        let g2 = weighted_geometric_median(&[a, b], &[1.0, 1.0]);
        assert!(g2.x >= -1e-9 && g2.x <= 10.0);
    }

    #[test]
    fn geometric_median_matches_unweighted_centroid_for_symmetric_input() {
        let pts = [
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(-1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, -1.0, 0.0),
        ];
        let g = weighted_geometric_median(&pts, &[1.0; 4]);
        assert!(g.norm() < 1e-6);
    }

    #[test]
    fn median_reduces_weighted_cost_vs_mean() {
        let pts = [
            Vec3::ZERO,
            Vec3::new(0.1, 0.0, 0.0),
            Vec3::new(0.2, 0.1, 0.0),
            Vec3::new(10.0, 10.0, 10.0), // outlier
        ];
        let w = [1.0, 1.0, 1.0, 0.3];
        let cost = |g: Vec3| -> f64 {
            pts.iter().zip(&w).map(|(p, &wi)| wi * g.distance(*p)).sum()
        };
        let mean = pts.iter().zip(&w).fold(Vec3::ZERO, |a, (p, &wi)| a + *p * wi)
            / w.iter().sum::<f64>();
        let med = weighted_geometric_median(&pts, &w);
        assert!(cost(med) <= cost(mean) + 1e-9);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn median_length_mismatch_panics() {
        weighted_geometric_median(&[Vec3::ZERO], &[1.0, 2.0]);
    }

    /// Full Eq. (2) evaluation on a real (small) capture: upper-body sites
    /// (which face the radar and carry sway/breathing/gesture motion) must
    /// dominate leg sites, which sway least (the body pivots at the feet)
    /// and sit well below the radar's mount height. The specific winner is
    /// activity-dependent — for Push the extending forearm turns its
    /// surface away from the radar, so torso sites can beat arm sites.
    #[test]
    fn leg_sites_lose_the_objective() {
        let cfg = PrototypeConfig::fast();
        let capture_cfg = CaptureConfig { noise_sigma: 0.0, ..cfg.capture.0.clone() };
        let capturer = Capturer::new(capture_cfg);
        let sampler = ActivitySampler::new(Participant::average(), 16, 10.0);
        let seq = sampler.sample(Activity::Push, &SampleVariation::nominal());
        let surrogate = CnnLstm::new(&cfg, 9);
        let plan = TriggerPlan {
            attachment: TriggerAttachment::new(Trigger::aluminum_2x2()),
            site: SiteId::Chest,
        };
        let optimizer = PositionOptimizer::default();
        // Mid-gesture frames.
        let evals = optimizer.evaluate_sites(
            &capturer,
            &surrogate,
            &seq,
            Placement::new(1.2, 0.0),
            &Environment::empty(),
            &plan,
            &[8, 10, 12],
            3,
        );
        assert_eq!(evals.len(), SiteId::ALL.len());
        let best = PositionOptimizer::best_site(&evals);
        let is_leg = |s: SiteId| {
            matches!(
                s,
                SiteId::LeftThigh | SiteId::RightThigh | SiteId::LeftShin | SiteId::RightShin
            )
        };
        assert!(
            !is_leg(best),
            "a leg site won Eq. (2): {best}; evals: {:?}",
            evals
                .iter()
                .map(|e| (e.site.label(), e.objective))
                .collect::<Vec<_>>()
        );
        // The winner clearly separates from the best leg site — this gap is
        // what Table I's "without optimal position" ablation measures.
        let best_obj = evals.iter().map(|e| e.objective).fold(f64::MIN, f64::max);
        let best_leg = evals
            .iter()
            .filter(|e| is_leg(e.site))
            .map(|e| e.objective)
            .fold(f64::MIN, f64::max);
        assert!(best_obj > 1.5 * best_leg.max(1e-9), "gap too small: {best_obj} vs {best_leg}");
        // Feature distances are nonnegative and at least one is positive.
        assert!(evals.iter().all(|e| e.feature_distance >= 0.0));
        assert!(evals.iter().any(|e| e.feature_distance > 0.0));
    }

    #[test]
    fn global_site_snaps_to_a_dominant_per_frame_site() {
        let sampler = ActivitySampler::new(Participant::average(), 8, 10.0);
        let seq = sampler.sample(Activity::Push, &SampleVariation::nominal());
        let placement = Placement::new(1.2, 0.0);
        // All per-frame optima agree on the wrist.
        let optima: Vec<(usize, SiteId)> =
            (0..8).map(|fi| (fi, SiteId::RightWrist)).collect();
        let weights = vec![1.0; 8];
        let (gop, site) = global_optimal_site(&seq, placement, &optima, &weights);
        assert_eq!(site, SiteId::RightWrist);
        assert!(gop.is_finite());
    }
}
