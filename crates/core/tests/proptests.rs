//! Property-based tests for the attack crate's pure logic.

use mmwave_backdoor::metrics::AttackMetrics;
use mmwave_backdoor::poison::poison_sample;
use mmwave_backdoor::position::weighted_geometric_median;
use mmwave_backdoor::scenario::AttackScenario;
use mmwave_body::Activity;
use mmwave_dsp::heatmap::{Heatmap, HeatmapKind};
use mmwave_dsp::HeatmapSeq;
use mmwave_geom::Vec3;
use proptest::prelude::*;

fn seq_of(values: &[f32], n_frames: usize) -> HeatmapSeq {
    HeatmapSeq::new(
        values
            .iter()
            .cycle()
            .take(n_frames)
            .map(|&v| Heatmap::from_data(2, 2, HeatmapKind::RangeAngle, vec![v; 4]))
            .collect(),
    )
}

proptest! {
    #[test]
    fn poisoning_touches_exactly_the_selected_frames(
        frames in proptest::collection::btree_set(0usize..16, 0..8)
    ) {
        let clean = seq_of(&[0.0], 16);
        let trig = seq_of(&[1.0], 16);
        let selected: Vec<usize> = frames.iter().copied().collect();
        let out = poison_sample(&clean, &trig, &selected);
        for i in 0..16 {
            let expected = if frames.contains(&i) { 1.0 } else { 0.0 };
            prop_assert_eq!(out.frame(i).get(0, 0), expected);
        }
    }

    #[test]
    fn metrics_mean_is_within_min_max(
        runs in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 1..10)
    ) {
        let metrics: Vec<AttackMetrics> = runs
            .iter()
            .map(|&(asr, uasr, cdr)| AttackMetrics {
                asr,
                uasr,
                cdr,
                n_attack_samples: 4,
                n_clean_samples: 8,
            })
            .collect();
        let mean = AttackMetrics::mean(&metrics);
        let min = runs.iter().map(|r| r.0).fold(f64::INFINITY, f64::min);
        let max = runs.iter().map(|r| r.0).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(mean.asr >= min - 1e-12 && mean.asr <= max + 1e-12);
        prop_assert_eq!(mean.n_attack_samples, 4 * runs.len());
    }

    #[test]
    fn geometric_median_lies_in_bounding_box(
        pts in proptest::collection::vec(
            (-5.0f64..5.0, -5.0f64..5.0, -5.0f64..5.0), 1..12),
        raw_w in proptest::collection::vec(0.01f64..3.0, 12),
    ) {
        let points: Vec<Vec3> = pts.iter().map(|&(x, y, z)| Vec3::new(x, y, z)).collect();
        let weights = &raw_w[..points.len()];
        let g = weighted_geometric_median(&points, weights);
        let (mut lo, mut hi) = (points[0], points[0]);
        for p in &points {
            lo = lo.min(*p);
            hi = hi.max(*p);
        }
        let eps = 1e-6;
        prop_assert!(g.x >= lo.x - eps && g.x <= hi.x + eps);
        prop_assert!(g.y >= lo.y - eps && g.y <= hi.y + eps);
        prop_assert!(g.z >= lo.z - eps && g.z <= hi.z + eps);
    }

    #[test]
    fn geometric_median_is_near_optimal(
        pts in proptest::collection::vec(
            (-3.0f64..3.0, -3.0f64..3.0, 0.0f64..2.0), 2..8),
    ) {
        let points: Vec<Vec3> = pts.iter().map(|&(x, y, z)| Vec3::new(x, y, z)).collect();
        let weights = vec![1.0; points.len()];
        let g = weighted_geometric_median(&points, &weights);
        let cost = |q: Vec3| -> f64 { points.iter().map(|p| q.distance(*p)).sum() };
        let base = cost(g);
        // No small perturbation improves the cost noticeably.
        for d in [Vec3::X, Vec3::Y, Vec3::Z] {
            for s in [-0.05, 0.05] {
                prop_assert!(cost(g + d * s) >= base - 2e-3, "not a minimum");
            }
        }
    }

    #[test]
    fn every_scenario_pair_is_valid(v in 0usize..6, t in 0usize..6) {
        prop_assume!(v != t);
        let s = AttackScenario::new(Activity::from_index(v), Activity::from_index(t));
        // Similar-trajectory detection agrees with the mirrored() relation.
        prop_assert_eq!(
            s.is_similar_trajectory(),
            Activity::from_index(v).mirrored() == Activity::from_index(t)
        );
    }
}
