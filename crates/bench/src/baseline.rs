//! Machine-readable perf baselines.
//!
//! Every bench target holds a [`BaselineGuard`] for the duration of its
//! `main`; when it drops, the guard folds the run's telemetry span profile
//! into a [`BenchBaseline`] — wall time, per-stage time breakdown,
//! throughput, worker count, repetitions, git revision — and writes it as
//! `BENCH_<name>.json` into `MMWAVE_BASELINE_DIR` (default: the current
//! directory). `mmwave perf-check` (see [`crate::perfcheck`]) compares two
//! directories of these files and gates regressions.

use mmwave_telemetry::event::unix_millis;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Version stamp for the on-disk format; bump on breaking changes so
/// `perf-check` can refuse to compare incompatible files.
pub const SCHEMA_VERSION: u32 = 1;

/// Env var naming the directory baselines are written to.
pub const BASELINE_DIR_ENV: &str = "MMWAVE_BASELINE_DIR";

/// One pipeline stage's share of a bench run, taken from the telemetry
/// span profile (see `mmwave_telemetry::Profile::stage_table`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageStat {
    /// Times the stage's span closed.
    pub calls: u64,
    /// Inclusive wall time, milliseconds.
    pub total_ms: f64,
    /// Exclusive wall time (minus child stages), milliseconds.
    pub exclusive_ms: f64,
}

/// The machine-readable result of one bench run: what `BENCH_<name>.json`
/// holds and what the regression gate compares.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchBaseline {
    /// On-disk format version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Bench target name (`fig08_similar_rate`).
    pub bench: String,
    /// End-to-end wall time of the bench, milliseconds.
    pub wall_ms: f64,
    /// Effective `mmwave-exec` worker count during the run.
    pub workers: usize,
    /// Repetitions per data point (`MMWAVE_BENCH_REPS`).
    pub iterations: usize,
    /// Items per second, when the bench reported an item count.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub throughput_per_sec: Option<f64>,
    /// Git revision the run was built from (`unknown` outside a checkout).
    pub git_sha: String,
    /// Wall-clock completion time, milliseconds since the Unix epoch.
    pub timestamp_ms: u64,
    /// Per-stage time breakdown, keyed by span path.
    pub stages: BTreeMap<String, StageStat>,
}

impl BenchBaseline {
    /// The conventional file name for a bench's baseline.
    pub fn file_name(bench: &str) -> String {
        format!("BENCH_{bench}.json")
    }

    /// Writes the baseline atomically (temp file + rename) inside a
    /// checksummed `mmwave-store` envelope, creating parent directories,
    /// so a kill mid-write can never leave a half-baseline that poisons a
    /// later perf comparison.
    ///
    /// # Errors
    ///
    /// Returns any I/O or serialization error.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        mmwave_store::crash_point("bench.baseline.pre_save");
        mmwave_store::save_json_atomic(path.as_ref(), self).map_err(io::Error::from)
    }

    /// Loads one baseline file — enveloped, or bare JSON written by a
    /// pre-envelope release. A torn or bit-flipped baseline is quarantined
    /// to `<path>.quarantine-<n>` and reported as an error naming both
    /// paths; rerunning the bench regenerates it.
    ///
    /// # Errors
    ///
    /// Returns any I/O error, a corruption error, or
    /// [`io::ErrorKind::InvalidData`] on a schema-version mismatch.
    pub fn load<P: AsRef<Path>>(path: P) -> io::Result<BenchBaseline> {
        let baseline: BenchBaseline =
            mmwave_store::load_json(path.as_ref()).map(|l| l.value).map_err(io::Error::from)?;
        if baseline.schema_version != SCHEMA_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}: schema_version {} (this build reads {})",
                    path.as_ref().display(),
                    baseline.schema_version,
                    SCHEMA_VERSION
                ),
            ));
        }
        Ok(baseline)
    }
}

/// Loads every `BENCH_*.json` in a directory, keyed by bench name.
/// Quarantined siblings (`*.quarantine-*`) are skipped.
///
/// # Errors
///
/// Returns any I/O error from listing the directory or reading a file; a
/// torn or corrupt file is an error (a corrupt baseline silently skipped
/// would make the gate vacuous), but it is quarantined first and the
/// error names both paths, so rerunning the bench regenerates it cleanly.
pub fn load_dir<P: AsRef<Path>>(dir: P) -> io::Result<BTreeMap<String, BenchBaseline>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(&dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        // `.quarantine-<n>` siblings don't end in ".json", so they are
        // naturally excluded here.
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let baseline = BenchBaseline::load(&path)?;
        out.insert(baseline.bench.clone(), baseline);
    }
    Ok(out)
}

/// The current git revision: `MMWAVE_GIT_SHA` if set (CI exports it), else
/// `git rev-parse --short HEAD`, else `"unknown"`.
pub fn git_sha() -> String {
    if let Ok(sha) = std::env::var("MMWAVE_GIT_SHA") {
        let sha = sha.trim().to_string();
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// RAII recorder for one bench run: construct at the top of the bench's
/// `main`, optionally report an item count, and the drop writes
/// `BENCH_<name>.json`. Write failures are reported on stderr but never
/// fail the bench — baselines are an observer.
pub struct BaselineGuard {
    bench: String,
    out_dir: PathBuf,
    started: Instant,
    items: Option<u64>,
}

impl BaselineGuard {
    /// Starts recording bench `name`, targeting `MMWAVE_BASELINE_DIR`
    /// (default `.`).
    pub fn new(name: &str) -> BaselineGuard {
        let out_dir = std::env::var(BASELINE_DIR_ENV)
            .ok()
            .filter(|d| !d.is_empty())
            .map_or_else(|| PathBuf::from("."), PathBuf::from);
        BaselineGuard {
            bench: name.to_string(),
            out_dir,
            started: Instant::now(),
            items: None,
        }
    }

    /// Reports how many items (samples, points, frames) the bench
    /// processed; the drop derives `throughput_per_sec` from it.
    pub fn set_items(&mut self, items: u64) {
        self.items = Some(items);
    }

    /// The file this guard will write on drop.
    pub fn output_path(&self) -> PathBuf {
        self.out_dir.join(BenchBaseline::file_name(&self.bench))
    }
}

impl Drop for BaselineGuard {
    fn drop(&mut self) {
        let wall = self.started.elapsed();
        let wall_ms = 1e3 * wall.as_secs_f64();
        let stages: BTreeMap<String, StageStat> = mmwave_telemetry::profile()
            .stage_table()
            .into_iter()
            .map(|(path, (calls, total_ms, exclusive_ms))| {
                (path, StageStat { calls, total_ms, exclusive_ms })
            })
            .collect();
        let baseline = BenchBaseline {
            schema_version: SCHEMA_VERSION,
            bench: self.bench.clone(),
            wall_ms,
            workers: mmwave_exec::workers(),
            iterations: mmwave_har::PrototypeConfig::bench_repetitions(),
            throughput_per_sec: self.items.and_then(|n| {
                let secs = wall.as_secs_f64();
                (secs > 0.0).then(|| n as f64 / secs)
            }),
            git_sha: git_sha(),
            timestamp_ms: unix_millis(),
            stages,
        };
        let path = self.output_path();
        match baseline.save(&path) {
            Ok(()) => println!("baseline: wrote {} (wall {:.1}s)", path.display(), wall.as_secs_f64()),
            Err(e) => eprintln!("baseline: could not write {}: {e}", path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mmwave_baseline_{tag}_{}", std::process::id()))
    }

    fn sample(bench: &str, wall_ms: f64) -> BenchBaseline {
        let mut stages = BTreeMap::new();
        stages.insert(
            "capture".to_string(),
            StageStat { calls: 4, total_ms: wall_ms * 0.6, exclusive_ms: wall_ms * 0.3 },
        );
        BenchBaseline {
            schema_version: SCHEMA_VERSION,
            bench: bench.to_string(),
            wall_ms,
            workers: 4,
            iterations: 1,
            throughput_per_sec: Some(12.5),
            git_sha: "abc1234".to_string(),
            timestamp_ms: 1_700_000_000_000,
            stages,
        }
    }

    #[test]
    fn baseline_roundtrips_through_disk() {
        let dir = temp_dir("roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join(BenchBaseline::file_name("fig08_similar_rate"));
        let original = sample("fig08_similar_rate", 1234.5);
        original.save(&path).unwrap();
        let back = BenchBaseline::load(&path).unwrap();
        assert_eq!(back.bench, "fig08_similar_rate");
        assert_eq!(back.wall_ms, 1234.5);
        assert_eq!(back.stages["capture"].calls, 4);
        assert_eq!(back.throughput_per_sec, Some(12.5));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_dir_collects_only_baseline_files() {
        let dir = temp_dir("loaddir");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        sample("a", 10.0).save(dir.join(BenchBaseline::file_name("a"))).unwrap();
        sample("b", 20.0).save(dir.join(BenchBaseline::file_name("b"))).unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        std::fs::write(dir.join("other.json"), "{}").unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded["b"].wall_ms, 20.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let dir = temp_dir("schema");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join(BenchBaseline::file_name("x"));
        let mut b = sample("x", 5.0);
        b.schema_version = SCHEMA_VERSION + 1;
        // Save bypasses the version check; load must reject.
        b.save(&path).unwrap();
        assert!(BenchBaseline::load(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn guard_writes_a_loadable_baseline() {
        let dir = temp_dir("guard");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = {
            // Point the guard at the temp dir without touching the global
            // env (tests run concurrently): build it by hand.
            let mut guard = BaselineGuard {
                bench: "unit_guard".to_string(),
                out_dir: dir.clone(),
                started: Instant::now(),
                items: None,
            };
            guard.set_items(100);
            guard.output_path()
        }; // guard drops here and writes
        let b = BenchBaseline::load(&path).unwrap();
        assert_eq!(b.bench, "unit_guard");
        assert!(b.wall_ms >= 0.0);
        assert!(b.iterations >= 1);
        assert!(b.workers >= 1);
        assert!(b.throughput_per_sec.unwrap_or(0.0) > 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_baseline_is_quarantined_and_error_names_it() {
        let dir = temp_dir("corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join(BenchBaseline::file_name("x"));
        sample("x", 5.0).save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let err = load_dir(&dir).unwrap_err();
        assert!(err.to_string().contains("BENCH_x.json"), "{err}");
        assert!(!path.exists(), "corrupt baseline must be moved aside");
        let quarantined = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.file_name().to_string_lossy().contains(".quarantine-"));
        assert!(quarantined);

        // Re-running the bench (re-saving) heals the directory.
        sample("x", 6.0).save(&path).unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded["x"].wall_ms, 6.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_bare_json_baseline_still_loads() {
        let dir = temp_dir("legacy");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(BenchBaseline::file_name("old"));
        std::fs::write(&path, serde_json::to_string_pretty(&sample("old", 7.5)).unwrap())
            .unwrap();
        let b = BenchBaseline::load(&path).unwrap();
        assert_eq!(b.wall_ms, 7.5);
        assert_eq!(load_dir(&dir).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn git_sha_prefers_the_env_override() {
        // Only assert the fallback contract, not the actual git state:
        // whatever comes back must be non-empty.
        assert!(!git_sha().is_empty());
    }
}
