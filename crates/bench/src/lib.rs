//! Shared harness for the paper-reproduction benchmarks.
//!
//! Every table and figure of the paper's evaluation section has a bench
//! target in `benches/` (one file per figure; `harness = false`, so
//! `cargo bench` runs them as plain binaries that print the same rows or
//! series the paper reports). This library holds the formatting and sweep
//! helpers they share.
//!
//! Scale knobs (see `DESIGN.md`):
//!
//! * `MMWAVE_BENCH_REPS` — repetitions averaged per data point (paper: 30,
//!   default here: 1);
//! * `MMWAVE_BENCH_SCALE` — dataset-size multiplier (default 1).
//!
//! Every target also records a machine-readable perf baseline
//! (`BENCH_<name>.json`, see [`baseline`]) that the `mmwave perf-check`
//! regression gate ([`perfcheck`]) compares across runs.

pub mod baseline;
pub mod perfcheck;

use mmwave_backdoor::AttackMetrics;

/// Prints the standard banner for one experiment reproduction.
pub fn banner(id: &str, title: &str, paper_expectation: &str) {
    println!("\n=== {id}: {title} ===");
    println!("paper: {paper_expectation}");
    let reps = mmwave_har::PrototypeConfig::bench_repetitions();
    let scale = mmwave_har::PrototypeConfig::bench_scale();
    println!("run:   reps={reps} scale={scale} (MMWAVE_BENCH_REPS / MMWAVE_BENCH_SCALE to change)\n");
}

/// Prints the header of an ASR/UASR/CDR series table.
pub fn series_header(x_label: &str) {
    println!("{:<28}{:>10}{:>8}{:>8}{:>8}", "series", x_label, "ASR%", "UASR%", "CDR%");
}

/// Prints one row of an ASR/UASR/CDR series table.
pub fn series_row(series: &str, x: &str, m: &AttackMetrics) {
    println!(
        "{:<28}{:>10}{:>8.1}{:>8.1}{:>8.1}",
        series,
        x,
        100.0 * m.asr,
        100.0 * m.uasr,
        100.0 * m.cdr
    );
}

/// The injection-rate sweep of Figs. 8, 10, 12.
pub fn injection_rates() -> [f64; 5] {
    [0.1, 0.2, 0.3, 0.4, 0.5]
}

/// The poisoned-frame sweep of Figs. 9, 11, 13 (32 frames per sample).
/// The paper sweeps {2, 4, 8, 16, 32}; the default here keeps the
/// endpoints and the reference point to fit the single-core budget — set
/// `MMWAVE_BENCH_FULL=1` for the full sweep.
pub fn frame_counts() -> Vec<usize> {
    if std::env::var("MMWAVE_BENCH_FULL").is_ok() {
        vec![2, 4, 8, 16, 32]
    } else {
        vec![2, 8, 32]
    }
}

/// Renders a textual histogram (Fig. 3 style): one line per bin with a bar
/// proportional to the count.
pub fn print_histogram(counts: &[usize], bin_label: &str) {
    let max = counts.iter().copied().max().unwrap_or(1).max(1);
    println!("{bin_label:>6}  count");
    for (i, &c) in counts.iter().enumerate() {
        let bar = "#".repeat(c * 40 / max);
        println!("{i:>6}  {c:>5} {bar}");
    }
}

/// Sweeps injection rate for each labeled base spec, printing one row per
/// (series, rate) with `reps`-run averaging.
pub fn sweep_injection_rates(
    ctx: &mut mmwave_backdoor::ExperimentContext,
    series: &[(String, mmwave_backdoor::AttackSpec)],
    reps: usize,
    watch: &Stopwatch,
) {
    series_header("rate");
    for &rate in &injection_rates() {
        for (label, base) in series {
            let spec = mmwave_backdoor::AttackSpec { injection_rate: rate, ..*base };
            let m = ctx.run_attack_averaged(&spec, reps);
            series_row(label, &format!("{rate:.1}"), &m);
        }
        watch.note(&format!("rate {rate:.1} done"));
    }
}

/// Sweeps the number of poisoned frames for each labeled base spec.
pub fn sweep_frame_counts(
    ctx: &mut mmwave_backdoor::ExperimentContext,
    series: &[(String, mmwave_backdoor::AttackSpec)],
    reps: usize,
    watch: &Stopwatch,
) {
    series_header("frames");
    for &k in &frame_counts() {
        for (label, base) in series {
            let spec = mmwave_backdoor::AttackSpec { n_poisoned_frames: k, ..*base };
            let m = ctx.run_attack_averaged(&spec, reps);
            series_row(label, &k.to_string(), &m);
        }
        watch.note(&format!("{k} frames done"));
    }
}

/// A seconds-resolution stopwatch for progress lines.
pub struct Stopwatch(std::time::Instant);

impl Stopwatch {
    /// Starts timing.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Stopwatch {
        Stopwatch(std::time::Instant::now())
    }

    /// Elapsed seconds.
    pub fn secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }

    /// Prints a `[t=..s] message` progress line.
    pub fn note(&self, msg: &str) {
        println!("[t={:>5.0}s] {msg}", self.secs());
    }
}
