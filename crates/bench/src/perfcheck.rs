//! The perf regression gate: compares two directories of
//! `BENCH_<name>.json` baselines (see [`crate::baseline`]) and classifies
//! each bench as pass / improved / regressed.
//!
//! A bench **regresses** when its wall time grows by more than the
//! relative threshold *and* by more than the absolute noise floor — both
//! conditions, so microbenches are not failed over scheduler jitter and
//! long benches are not failed over a fixed few milliseconds. Per-stage
//! inclusive times are also checked (at twice the threshold), so a stage
//! blow-up masked by an unrelated speed-up still surfaces. A missing
//! counterpart on either side is reported but never fails the gate: new
//! benches appear and old ones retire as the reproduction grows.

use crate::baseline::{load_dir, BenchBaseline};
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::Path;

/// Tunables of the regression gate.
#[derive(Debug, Clone, Copy)]
pub struct PerfCheckConfig {
    /// Relative wall-time growth that counts as a regression (0.15 = 15 %).
    /// Stage times are gated at twice this.
    pub threshold: f64,
    /// Absolute growth (milliseconds) below which a change is noise.
    pub noise_floor_ms: f64,
    /// Report regressions without failing (exit code 0); for CI runs that
    /// compare against a baseline measured on different hardware.
    pub report_only: bool,
}

impl Default for PerfCheckConfig {
    fn default() -> Self {
        PerfCheckConfig { threshold: 0.15, noise_floor_ms: 50.0, report_only: false }
    }
}

/// Outcome of one bench's old-vs-new comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within the threshold either way.
    Pass,
    /// Faster than the baseline by more than the threshold.
    Improved,
    /// Slower than the baseline past threshold and noise floor (wall or a
    /// stage).
    Regressed,
}

impl Verdict {
    /// Lowercase label for tables.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Improved => "improve",
            Verdict::Regressed => "REGRESS",
        }
    }
}

/// One bench's comparison row.
#[derive(Debug, Clone)]
pub struct BenchComparison {
    /// Bench target name.
    pub bench: String,
    /// Baseline wall time, milliseconds.
    pub baseline_wall_ms: f64,
    /// New wall time, milliseconds.
    pub new_wall_ms: f64,
    /// `new / baseline` (1.0 when the baseline is zero).
    pub ratio: f64,
    /// The classification.
    pub verdict: Verdict,
    /// Human-readable reasons (stage regressions, wall growth).
    pub notes: Vec<String>,
}

/// The whole gate run: per-bench rows plus the benches that only exist on
/// one side.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// One row per bench present in both directories.
    pub comparisons: Vec<BenchComparison>,
    /// Benches measured now but absent from the baseline directory.
    pub missing_baseline: Vec<String>,
    /// Baseline benches with no fresh measurement.
    pub missing_result: Vec<String>,
    /// Copied from the config: regressions reported, exit stays 0.
    pub report_only: bool,
}

impl PerfReport {
    /// True when any bench regressed.
    pub fn has_regressions(&self) -> bool {
        self.comparisons.iter().any(|c| c.verdict == Verdict::Regressed)
    }

    /// Process exit code: nonzero only on a regression outside
    /// report-only mode.
    pub fn exit_code(&self) -> i32 {
        i32::from(self.has_regressions() && !self.report_only)
    }
}

impl fmt::Display for PerfReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<28} {:>12} {:>12} {:>7} {:>8}",
            "bench", "base(ms)", "new(ms)", "ratio", "verdict"
        )?;
        for c in &self.comparisons {
            writeln!(
                f,
                "{:<28} {:>12.1} {:>12.1} {:>6.2}x {:>8}",
                c.bench, c.baseline_wall_ms, c.new_wall_ms, c.ratio, c.verdict.as_str()
            )?;
            for note in &c.notes {
                writeln!(f, "  - {note}")?;
            }
        }
        for bench in &self.missing_baseline {
            writeln!(f, "{bench:<28} (no baseline; skipped)")?;
        }
        for bench in &self.missing_result {
            writeln!(f, "{bench:<28} (no new result; skipped)")?;
        }
        let regressed = self.comparisons.iter().filter(|c| c.verdict == Verdict::Regressed).count();
        let improved = self.comparisons.iter().filter(|c| c.verdict == Verdict::Improved).count();
        write!(
            f,
            "{} compared, {} regressed, {} improved{}",
            self.comparisons.len(),
            regressed,
            improved,
            if regressed > 0 && self.report_only { " (report-only: not failing)" } else { "" }
        )
    }
}

fn grew_past(new: f64, old: f64, threshold: f64, noise_floor_ms: f64) -> bool {
    new > old * (1.0 + threshold) && new - old > noise_floor_ms
}

/// Compares one bench against its baseline.
pub fn compare_bench(
    baseline: &BenchBaseline,
    new: &BenchBaseline,
    config: &PerfCheckConfig,
) -> BenchComparison {
    let mut notes = Vec::new();
    let mut verdict = Verdict::Pass;
    if grew_past(new.wall_ms, baseline.wall_ms, config.threshold, config.noise_floor_ms) {
        verdict = Verdict::Regressed;
        notes.push(format!(
            "wall time {:.1}ms -> {:.1}ms (+{:.0}%, threshold {:.0}%)",
            baseline.wall_ms,
            new.wall_ms,
            100.0 * (new.wall_ms / baseline.wall_ms - 1.0),
            100.0 * config.threshold
        ));
    }
    // Stage checks at a doubled threshold: stage timings are noisier than
    // end-to-end wall time, but a big single-stage blow-up should fail the
    // gate even when other stages got faster.
    for (path, new_stage) in &new.stages {
        let Some(old_stage) = baseline.stages.get(path) else {
            continue;
        };
        if grew_past(
            new_stage.total_ms,
            old_stage.total_ms,
            2.0 * config.threshold,
            config.noise_floor_ms,
        ) {
            verdict = Verdict::Regressed;
            notes.push(format!(
                "stage `{path}` {:.1}ms -> {:.1}ms (+{:.0}%)",
                old_stage.total_ms,
                new_stage.total_ms,
                100.0 * (new_stage.total_ms / old_stage.total_ms - 1.0)
            ));
        }
    }
    if verdict == Verdict::Pass
        && baseline.wall_ms > new.wall_ms * (1.0 + config.threshold)
        && baseline.wall_ms - new.wall_ms > config.noise_floor_ms
    {
        verdict = Verdict::Improved;
    }
    if baseline.workers != new.workers {
        notes.push(format!(
            "worker count changed ({} -> {}); times are not like-for-like",
            baseline.workers, new.workers
        ));
    }
    BenchComparison {
        bench: new.bench.clone(),
        baseline_wall_ms: baseline.wall_ms,
        new_wall_ms: new.wall_ms,
        ratio: if baseline.wall_ms > 0.0 { new.wall_ms / baseline.wall_ms } else { 1.0 },
        verdict,
        notes,
    }
}

/// Compares every bench present in both maps.
pub fn compare(
    baselines: &BTreeMap<String, BenchBaseline>,
    results: &BTreeMap<String, BenchBaseline>,
    config: &PerfCheckConfig,
) -> PerfReport {
    let comparisons = results
        .iter()
        .filter_map(|(bench, new)| {
            baselines.get(bench).map(|old| compare_bench(old, new, config))
        })
        .collect();
    PerfReport {
        comparisons,
        missing_baseline: results.keys().filter(|b| !baselines.contains_key(*b)).cloned().collect(),
        missing_result: baselines.keys().filter(|b| !results.contains_key(*b)).cloned().collect(),
        report_only: config.report_only,
    }
}

/// Loads both directories and compares them — the `mmwave perf-check`
/// entry point.
///
/// # Errors
///
/// Returns any I/O error from reading either directory, and
/// [`io::ErrorKind::InvalidData`] when the results directory holds no
/// `BENCH_*.json` at all (an empty gate must not silently pass).
pub fn run<P: AsRef<Path>, Q: AsRef<Path>>(
    results_dir: P,
    baseline_dir: Q,
    config: &PerfCheckConfig,
) -> io::Result<PerfReport> {
    let results = load_dir(&results_dir)?;
    if results.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("no BENCH_*.json files in {}", results_dir.as_ref().display()),
        ));
    }
    let baselines = load_dir(&baseline_dir)?;
    Ok(compare(&baselines, &results, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{StageStat, SCHEMA_VERSION};
    use std::path::PathBuf;

    fn make(bench: &str, wall_ms: f64, stage_ms: f64) -> BenchBaseline {
        let mut stages = BTreeMap::new();
        stages.insert(
            "capture".to_string(),
            StageStat { calls: 8, total_ms: stage_ms, exclusive_ms: stage_ms * 0.5 },
        );
        BenchBaseline {
            schema_version: SCHEMA_VERSION,
            bench: bench.to_string(),
            wall_ms,
            workers: 4,
            iterations: 1,
            throughput_per_sec: None,
            git_sha: "test".to_string(),
            timestamp_ms: 0,
            stages,
        }
    }

    fn dir_of(tag: &str, baselines: &[BenchBaseline]) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mmwave_perfcheck_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for b in baselines {
            b.save(dir.join(BenchBaseline::file_name(&b.bench))).unwrap();
        }
        dir
    }

    #[test]
    fn self_comparison_passes_with_exit_zero() {
        let dir = dir_of("self", &[make("a", 1000.0, 600.0), make("b", 2000.0, 900.0)]);
        let report = run(&dir, &dir, &PerfCheckConfig::default()).unwrap();
        assert_eq!(report.comparisons.len(), 2);
        assert!(!report.has_regressions());
        assert_eq!(report.exit_code(), 0);
        assert!(report.comparisons.iter().all(|c| c.verdict == Verdict::Pass));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inflated_wall_time_fails_the_gate() {
        let base = dir_of("wall_base", &[make("a", 1000.0, 600.0)]);
        let new = dir_of("wall_new", &[make("a", 1400.0, 600.0)]);
        let report = run(&new, &base, &PerfCheckConfig::default()).unwrap();
        assert!(report.has_regressions());
        assert_eq!(report.exit_code(), 1);
        assert_eq!(report.comparisons[0].verdict, Verdict::Regressed);
        assert!(report.comparisons[0].notes[0].contains("wall time"));
        std::fs::remove_dir_all(&base).ok();
        std::fs::remove_dir_all(&new).ok();
    }

    #[test]
    fn growth_under_the_noise_floor_is_not_a_regression() {
        // +40% relative but only +40ms absolute: under the 50ms floor.
        let base = dir_of("noise_base", &[make("tiny", 100.0, 60.0)]);
        let new = dir_of("noise_new", &[make("tiny", 140.0, 60.0)]);
        let report = run(&new, &base, &PerfCheckConfig::default()).unwrap();
        assert!(!report.has_regressions());
        std::fs::remove_dir_all(&base).ok();
        std::fs::remove_dir_all(&new).ok();
    }

    #[test]
    fn stage_blowup_fails_even_with_flat_wall_time() {
        let base = dir_of("stage_base", &[make("a", 1000.0, 300.0)]);
        let new = dir_of("stage_new", &[make("a", 1010.0, 800.0)]);
        let report = run(&new, &base, &PerfCheckConfig::default()).unwrap();
        assert!(report.has_regressions());
        assert!(report.comparisons[0].notes.iter().any(|n| n.contains("stage `capture`")));
        std::fs::remove_dir_all(&base).ok();
        std::fs::remove_dir_all(&new).ok();
    }

    #[test]
    fn report_only_reports_but_exits_zero() {
        let base = dir_of("ro_base", &[make("a", 1000.0, 600.0)]);
        let new = dir_of("ro_new", &[make("a", 2000.0, 600.0)]);
        let config = PerfCheckConfig { report_only: true, ..PerfCheckConfig::default() };
        let report = run(&new, &base, &config).unwrap();
        assert!(report.has_regressions());
        assert_eq!(report.exit_code(), 0, "report-only must not fail the build");
        assert!(report.to_string().contains("report-only"));
        std::fs::remove_dir_all(&base).ok();
        std::fs::remove_dir_all(&new).ok();
    }

    #[test]
    fn improvement_and_missing_counterparts_are_reported() {
        let base = dir_of("imp_base", &[make("a", 2000.0, 600.0), make("gone", 10.0, 5.0)]);
        let new = dir_of("imp_new", &[make("a", 1000.0, 600.0), make("fresh", 10.0, 5.0)]);
        let report = run(&new, &base, &PerfCheckConfig::default()).unwrap();
        assert_eq!(report.comparisons[0].verdict, Verdict::Improved);
        assert_eq!(report.missing_baseline, vec!["fresh".to_string()]);
        assert_eq!(report.missing_result, vec!["gone".to_string()]);
        assert_eq!(report.exit_code(), 0, "missing counterparts never fail the gate");
        std::fs::remove_dir_all(&base).ok();
        std::fs::remove_dir_all(&new).ok();
    }

    #[test]
    fn empty_results_directory_is_an_error() {
        let base = dir_of("empty_base", &[make("a", 1000.0, 600.0)]);
        let empty = dir_of("empty_new", &[]);
        assert!(run(&empty, &base, &PerfCheckConfig::default()).is_err());
        std::fs::remove_dir_all(&base).ok();
        std::fs::remove_dir_all(&empty).ok();
    }
}
