//! Fig. 15 — impact of the attacker's distance on ASR.
//!
//! Paper: the best backdoored model is probed at distances 0.8..2.0 m
//! (angle fixed at 0 degrees). Distances 0.8, 1.2, 1.6, 2.0 m appear in
//! training; the rest are zero-shot. Most triggers fire, but a few fail —
//! signal strength varies with distance, unlike the angle sweep.

use mmwave_backdoor::experiment::SiteChoice;
use mmwave_backdoor::{AttackSpec, ExperimentContext, ExperimentScale};
use mmwave_bench::{banner, Stopwatch};
use mmwave_har::PrototypeConfig;
use mmwave_radar::Placement;

fn main() {
    let _baseline = mmwave_bench::baseline::BaselineGuard::new("fig15_distance_robustness");
    banner(
        "Fig. 15",
        "impact of the distance on ASR (angle 0 deg)",
        "high ASR at most distances with occasional failures (paper: a few triggers fail)",
    );
    let watch = Stopwatch::new();
    let mut ctx = ExperimentContext::new(ExperimentScale::fast(), 42);
    watch.note("experiment context ready");

    let reps = PrototypeConfig::bench_repetitions().max(2);
    let base = AttackSpec::default();
    let mut best: Option<(f64, mmwave_har::CnnLstm, mmwave_body::SiteId)> = None;
    for r in 0..reps {
        let spec = AttackSpec { seed: 1000 * r as u64, ..base };
        let m = ctx.run_attack(&spec);
        watch.note(&format!("candidate model {r}: {m}"));
        let (model, site) = ctx.train_backdoored(&spec);
        if best.as_ref().map(|(a, _, _)| m.asr > *a).unwrap_or(true) {
            best = Some((m.asr, model, site));
        }
    }
    let (asr, model, site) = best.expect("at least one model");
    watch.note(&format!("best model selected (ASR {:.0}%)", 100.0 * asr));

    let placements: Vec<Placement> = Placement::robustness_distances()
        .iter()
        .map(|&d| Placement::new(d, 0.0))
        .collect();
    let spec = AttackSpec { site: SiteChoice::Fixed(site), ..base };
    let results = ctx.evaluate_robustness(&model, &spec, site, &placements, 6);
    println!("\n{:>9} {:>6} {:>8} {:>8}", "distance", "seen", "ASR%", "UASR%");
    for (p, asr, uasr) in results {
        println!(
            "{:>9} {:>6} {:>8.1} {:>8.1}",
            format!("{:.1}m", p.distance),
            if p.is_seen() { "yes" } else { "no" },
            100.0 * asr,
            100.0 * uasr
        );
    }
    watch.note("Fig. 15 complete");
}
