//! Fig. 13 — trigger-size comparison (2x2 vs. 4x4 inch aluminum) vs.
//! number of poisoned frames, Push -> Pull, rate 0.4.
//!
//! Paper shape: the two trigger sizes perform near-identically.

use mmwave_backdoor::{AttackSpec, ExperimentContext, ExperimentScale};
use mmwave_bench::{banner, sweep_frame_counts, Stopwatch};
use mmwave_har::PrototypeConfig;
use mmwave_radar::trigger::Trigger;

fn main() {
    let _baseline = mmwave_bench::baseline::BaselineGuard::new("fig13_trigger_size_frames");
    banner(
        "Fig. 13",
        "trigger size comparison vs. poisoned frames (Push -> Pull)",
        "2x2 and 4x4 inch triggers perform near-identically",
    );
    let watch = Stopwatch::new();
    let mut ctx = ExperimentContext::new(ExperimentScale::fast(), 42);
    watch.note("experiment context ready");
    let series = vec![
        ("2x2 inch".to_string(), AttackSpec { trigger: Trigger::aluminum_2x2(), injection_rate: 0.4, ..AttackSpec::default() }),
        ("4x4 inch".to_string(), AttackSpec { trigger: Trigger::aluminum_4x4(), injection_rate: 0.4, ..AttackSpec::default() }),
    ];
    sweep_frame_counts(&mut ctx, &series, PrototypeConfig::bench_repetitions(), &watch);
    watch.note("Fig. 13 complete");
}
