//! Fig. 10 — ASR / UASR / CDR vs. injection rate for dissimilar-trajectory
//! attacks (Push -> Right Swipe, Push -> Anticlockwise), 8 poisoned frames.
//!
//! Paper shape: harder than similar-trajectory attacks — ASR ~60-70 % at
//! rate 0.4, UASR still 85-90 %, CDR > 90 %.

use mmwave_backdoor::{AttackScenario, AttackSpec, ExperimentContext, ExperimentScale};
use mmwave_bench::{banner, sweep_injection_rates, Stopwatch};
use mmwave_har::PrototypeConfig;

fn main() {
    let _baseline = mmwave_bench::baseline::BaselineGuard::new("fig10_dissimilar_rate");
    banner(
        "Fig. 10",
        "dissimilar-trajectory attacks vs. injection rate",
        "ASR ~60-70% at rate 0.4; UASR 85-90%; CDR > 90%",
    );
    let watch = Stopwatch::new();
    let mut ctx = ExperimentContext::new(ExperimentScale::fast(), 42);
    watch.note("experiment context ready");
    let series: Vec<(String, AttackSpec)> = AttackScenario::dissimilar_pairs()
        .into_iter()
        .map(|scenario| {
            (scenario.to_string(), AttackSpec { scenario, n_poisoned_frames: 8, ..AttackSpec::default() })
        })
        .collect();
    sweep_injection_rates(&mut ctx, &series, PrototypeConfig::bench_repetitions(), &watch);
    watch.note("Fig. 10 complete");
}
