//! Fig. 8 — ASR / UASR / CDR vs. backdoor sample injection rate for
//! similar-trajectory attacks (Push -> Pull, Left Swipe -> Right Swipe),
//! 8 poisoned frames.
//!
//! Paper shape: ASR rises quickly with the rate, exceeding ~80 % at rate
//! 0.4; UASR reaches ~90 %; CDR stays high (~95 % for Push -> Pull, ~90 %
//! for the swipe pair).

use mmwave_backdoor::{AttackScenario, AttackSpec, ExperimentContext, ExperimentScale};
use mmwave_bench::{banner, sweep_injection_rates, Stopwatch};
use mmwave_har::PrototypeConfig;

fn main() {
    let _baseline = mmwave_bench::baseline::BaselineGuard::new("fig08_similar_rate");
    banner(
        "Fig. 8",
        "similar-trajectory attacks vs. injection rate",
        "ASR > 80% and UASR ~90% at rate 0.4 / 8 frames; CDR ~90-95%",
    );
    let watch = Stopwatch::new();
    let mut ctx = ExperimentContext::new(ExperimentScale::fast(), 42);
    watch.note("experiment context ready");
    let series: Vec<(String, AttackSpec)> = AttackScenario::similar_pairs()
        .into_iter()
        .map(|scenario| {
            (scenario.to_string(), AttackSpec { scenario, n_poisoned_frames: 8, ..AttackSpec::default() })
        })
        .collect();
    sweep_injection_rates(&mut ctx, &series, PrototypeConfig::bench_repetitions(), &watch);
    watch.note("Fig. 8 complete");
}
