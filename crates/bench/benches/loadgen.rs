//! Engineering benchmark (not from the paper): sustained throughput of
//! the `mmwave-serve` streaming inference service under firehose load.
//!
//! Replays a seeded multi-session stream (smoke-scale model so the bench
//! finishes in seconds) as fast as the service can drain it, asserts the
//! frame-conservation invariant held, and reports inferences/s and
//! end-to-end latency percentiles. The `BaselineGuard` writes
//! `BENCH_loadgen.json` for `mmwave perf-check` to gate.

use mmwave_har::PrototypeConfig;
use mmwave_radar::Environment;
use mmwave_serve::{loadgen, LoadgenConfig, ServeConfig};

const SESSIONS: usize = 16;
const SECONDS: f64 = 4.0;

fn main() {
    let mut baseline = mmwave_bench::baseline::BaselineGuard::new("loadgen");
    let proto = PrototypeConfig::smoke_test();
    let serve_cfg = ServeConfig {
        clip_len: proto.n_frames,
        ring_capacity: proto.n_frames * 2,
        ..ServeConfig::default()
    };
    let lg = LoadgenConfig {
        sessions: SESSIONS,
        seconds: SECONDS,
        seed: 42,
        ..LoadgenConfig::default()
    };

    println!("\n=== loadgen: mmwave-serve firehose throughput ===");
    println!(
        "workload: {SESSIONS} sessions x {SECONDS}s @ {:.0} fps, clip {} frames",
        lg.fps, serve_cfg.clip_len
    );

    let report = loadgen::run(&lg, serve_cfg, &proto, Environment::hallway())
        .expect("loadgen config is valid");
    assert!(
        report.is_clean(),
        "frame accounting imbalance: {} frame(s) unaccounted",
        report.unaccounted
    );
    baseline.set_items(report.verdicts);

    println!("{:<20}{:>12}", "wall ms", format!("{:.0}", report.wall_ms));
    println!("{:<20}{:>12.2}", "sessions/s", report.sessions_per_sec);
    println!("{:<20}{:>12.2}", "inferences/s", report.inferences_per_sec);
    println!("{:<20}{:>12.0}", "frames/s", report.frames_per_sec);
    println!(
        "{:<20}{:>6.1}/{:>6.1}/{:>6.1}",
        "latency p50/95/99", report.latency_p50_ms, report.latency_p95_ms, report.latency_p99_ms
    );
    println!("{:<20}{:>11.2}%", "drop rate", report.drop_rate * 100.0);
    let _ = mmwave_telemetry::finish();
}
