//! Fig. 3 — distribution of the most-important frame index.
//!
//! Paper: SHAP is applied to 6 912 activity samples on the surrogate; a
//! histogram over the 32 frames shows which frame indices are consistently
//! most influential on the LSTM's decision. Gestures here start after a
//! short delay and peak mid-sample, so the mass should concentrate in the
//! early-to-middle frame range rather than being uniform.

use mmwave_backdoor::frames::frame_importance;
use mmwave_bench::{banner, print_histogram, Stopwatch};
use mmwave_backdoor::{ExperimentContext, ExperimentScale};
use mmwave_har::PrototypeConfig;
use mmwave_shap::argmax;

fn main() {
    let _baseline = mmwave_bench::baseline::BaselineGuard::new("fig03_shap_histogram");
    banner(
        "Fig. 3",
        "index distribution of the most important frames (SHAP)",
        "a concentrated, non-uniform histogram over the 32 frame indices (paper: 6,912 samples)",
    );
    let watch = Stopwatch::new();
    let ctx = ExperimentContext::new(ExperimentScale::fast(), 42);
    watch.note("context + surrogate ready");

    // SHAP over the clean test samples (all six activities), each scored
    // with respect to its own class.
    let samples = &ctx.clean_test().samples;
    let n = samples.len().min(96 * PrototypeConfig::bench_scale());
    let mut hist = vec![0usize; ctx.config().n_frames];
    for (i, s) in samples.iter().take(n).enumerate() {
        let phi = frame_importance(
            ctx.surrogate(),
            &s.heatmaps,
            s.label.index(),
            ctx.scale().shap_permutations,
            0xF16_3 ^ i as u64,
        );
        hist[argmax(&phi)] += 1;
        if (i + 1) % 32 == 0 {
            watch.note(&format!("{}/{n} samples explained", i + 1));
        }
    }
    println!();
    print_histogram(&hist, "frame");

    // Summary statistics of the distribution.
    let total: usize = hist.iter().sum();
    let mean: f64 =
        hist.iter().enumerate().map(|(i, &c)| i as f64 * c as f64).sum::<f64>() / total as f64;
    let peak = hist.iter().enumerate().max_by_key(|(_, &c)| c).map(|(i, _)| i).unwrap_or(0);
    let top8: usize = {
        let mut sorted: Vec<usize> = hist.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        sorted.iter().take(8).sum()
    };
    println!("\nsamples: {total}   peak frame: {peak}   mean frame: {mean:.1}");
    println!(
        "mass in top-8 bins: {:.0}% (uniform would be 25%)",
        100.0 * top8 as f64 / total as f64
    );
    watch.note("Fig. 3 complete");
}
