//! Engineering benchmark (not from the paper): scaling of the
//! `mmwave-exec` work-stealing pool on the batched DRAI pipeline.
//!
//! Runs the same 64-frame DRAI batch at 1, 2, and 4 workers, reports
//! frames/s and the speedup over the exact-serial path, and asserts the
//! determinism contract along the way: every worker count must produce
//! bit-identical heatmaps.
//!
//! Gating: when `MMWAVE_REQUIRE_SPEEDUP=<x>` is set (CI does, on a 4-core
//! runner), the bench exits nonzero unless the 4-worker speedup reaches
//! `x`. Without the variable it only reports — a single-core box cannot
//! meaningfully scale.

use mmwave_dsp::processing::{ProcessingConfig, Processor};
use mmwave_dsp::{Complex32, IfFrame};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::{Duration, Instant};

const N_VRX: usize = 8;
const N_CHIRPS: usize = 16;
const N_ADC: usize = 64;
const N_FRAMES: usize = 64;
const ITERATIONS: usize = 5;

fn synth_frames() -> Vec<IfFrame> {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    (0..N_FRAMES)
        .map(|_| {
            let mut frame = IfFrame::zeros(N_VRX, N_CHIRPS, N_ADC);
            for vrx in 0..N_VRX {
                for chirp in 0..N_CHIRPS {
                    for z in frame.chirp_mut(vrx, chirp) {
                        *z = Complex32::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
                    }
                }
            }
            frame
        })
        .collect()
}

fn best_of(iters: usize, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    best
}

fn main() {
    let _baseline = mmwave_bench::baseline::BaselineGuard::new("parallel_speedup");
    let frames = synth_frames();
    let processor = Processor::new(N_VRX, N_CHIRPS, N_ADC, ProcessingConfig::default());

    println!("\n=== parallel_speedup: mmwave-exec scaling on batched DRAI ===");
    println!("workload: {N_FRAMES} frames of {N_VRX}x{N_CHIRPS}x{N_ADC}, best of {ITERATIONS}");

    let baseline = mmwave_exec::with_workers(1, || processor.drai_batch(&frames));
    let serial = best_of(ITERATIONS, || {
        mmwave_exec::with_workers(1, || {
            std::hint::black_box(processor.drai_batch(&frames));
        });
    });

    println!("{:<10}{:>14}{:>12}{:>10}", "workers", "best time", "frames/s", "speedup");
    let mut speedup_at_4 = 1.0_f64;
    for &workers in &[1_usize, 2, 4] {
        let out = mmwave_exec::with_workers(workers, || processor.drai_batch(&frames));
        assert_eq!(out, baseline, "parallel DRAI diverged from serial at workers={workers}");
        let best = best_of(ITERATIONS, || {
            mmwave_exec::with_workers(workers, || {
                std::hint::black_box(processor.drai_batch(&frames));
            });
        });
        let speedup = serial.as_secs_f64() / best.as_secs_f64();
        let fps = N_FRAMES as f64 / best.as_secs_f64();
        if workers == 4 {
            speedup_at_4 = speedup;
        }
        mmwave_telemetry::gauge(&format!("bench.parallel_speedup.w{workers}"), speedup);
        println!("{workers:<10}{:>14.2?}{fps:>12.0}{speedup:>9.2}x", best);
    }

    if let Ok(required) = std::env::var("MMWAVE_REQUIRE_SPEEDUP") {
        let min: f64 = required
            .parse()
            .expect("MMWAVE_REQUIRE_SPEEDUP must be a number like 2.5");
        assert!(
            speedup_at_4 >= min,
            "4-worker speedup {speedup_at_4:.2}x is below the required {min}x"
        );
        println!("speedup gate: {speedup_at_4:.2}x >= {min}x OK");
    }
    let _ = mmwave_telemetry::finish();
}
