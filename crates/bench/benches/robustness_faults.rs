//! Robustness — attack metrics under injected sensor faults (beyond the
//! paper).
//!
//! The paper evaluates its backdoor under ideal captures; real deployments
//! drop frames, saturate, and suffer interference. This bench trains one
//! backdoored model under clean conditions, then re-captures the attack
//! and clean test sets through a `FaultInjector` severity sweep (frame
//! dropout + LO phase noise + RF interference bursts + ADC saturation; see
//! `mmwave_radar::faults`) and reports ASR/UASR/CDR per severity.
//! Severity 0.00 is the faultless baseline.
//!
//! Runs at smoke scale by default so it doubles as a fast acceptance
//! check; set `MMWAVE_BENCH_FULL=1` for the full-scale sweep.

use mmwave_backdoor::experiment::SiteChoice;
use mmwave_backdoor::metrics::evaluate_attack;
use mmwave_backdoor::{AttackSpec, ExperimentContext, ExperimentScale};
use mmwave_bench::{banner, series_header, series_row, Stopwatch};
use mmwave_body::{Activity, Participant, SiteId};
use mmwave_dsp::HeatmapSeq;
use mmwave_har::dataset::{DatasetGenerator, DatasetSpec};
use mmwave_har::PrototypeConfig;
use mmwave_radar::capture::TriggerPlan;
use mmwave_radar::faults::FaultInjector;
use mmwave_radar::trigger::TriggerAttachment;
use mmwave_radar::Environment;

fn main() {
    let _baseline = mmwave_bench::baseline::BaselineGuard::new("robustness_faults");
    banner(
        "Robustness",
        "attack metrics vs injected sensor-fault severity",
        "beyond the paper: the backdoor should degrade gracefully, not cliff, as capture faults grow",
    );
    let watch = Stopwatch::new();
    let full = std::env::var("MMWAVE_BENCH_FULL").is_ok();
    let scale = if full { ExperimentScale::fast() } else { ExperimentScale::smoke_test() };
    let placements = scale.placements.clone();
    let mut ctx = ExperimentContext::new(scale, 42);
    watch.note("experiment context ready");

    // Fixed site keeps this sweep about sensor faults, not placement.
    let spec = AttackSpec { site: SiteChoice::Fixed(SiteId::RightForearm), ..AttackSpec::default() };
    let (model, site) = ctx.train_backdoored(&spec);
    watch.note("backdoored model trained under clean captures");

    let plan = TriggerPlan { attachment: TriggerAttachment::new(spec.trigger), site };
    let reps_per_placement = if full { 4 } else { 3 };
    let severities = [0.0, 0.25, 0.5, 0.75, 1.0];

    series_header("severity");
    for &severity in &severities {
        // A capture pipeline with the faults dialed in; the model and the
        // trigger stay fixed — only the deployed sensor degrades.
        let mut cfg = PrototypeConfig::fast();
        cfg.capture.0.faults = Some(FaultInjector::severity_profile(severity, 0xFA017));
        let generator = DatasetGenerator::new(cfg);

        let pairs = generator.generate_paired(
            spec.scenario.victim,
            &placements,
            Participant::average(),
            &plan,
            &Environment::classroom(),
            reps_per_placement,
            0xBEEF ^ spec.seed,
        );
        let attack_samples: Vec<(HeatmapSeq, Activity)> =
            pairs.into_iter().map(|p| (p.triggered, p.label)).collect();

        // The victim's clean test captures degrade through the same faults.
        let mut test_spec = DatasetSpec::training(1);
        test_spec.placements = placements.clone();
        test_spec.participants.truncate(1);
        let clean_test = generator.generate(&test_spec, 1234);

        let m = evaluate_attack(&model, &attack_samples, &spec.scenario, &clean_test);
        series_row("faulted-capture", &format!("{severity:.2}"), &m);
        watch.note(&format!("severity {severity:.2} done"));
    }
    watch.note("robustness_faults complete");
}
