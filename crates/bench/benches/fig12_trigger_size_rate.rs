//! Fig. 12 — trigger-size comparison (2x2 vs. 4x4 inch aluminum) vs.
//! injection rate, Push -> Pull.
//!
//! Paper shape: the two trigger sizes perform near-identically across all
//! three metrics; differences fall within training fluctuation.

use mmwave_backdoor::{AttackSpec, ExperimentContext, ExperimentScale};
use mmwave_bench::{banner, Stopwatch};
use mmwave_har::PrototypeConfig;
use mmwave_radar::trigger::Trigger;

fn main() {
    let _baseline = mmwave_bench::baseline::BaselineGuard::new("fig12_trigger_size_rate");
    banner(
        "Fig. 12",
        "trigger size comparison vs. injection rate (Push -> Pull)",
        "2x2 and 4x4 inch triggers perform near-identically",
    );
    let watch = Stopwatch::new();
    let mut ctx = ExperimentContext::new(ExperimentScale::fast(), 42);
    watch.note("experiment context ready");
    let series = vec![
        ("2x2 inch".to_string(), AttackSpec { trigger: Trigger::aluminum_2x2(), ..AttackSpec::default() }),
        ("4x4 inch".to_string(), AttackSpec { trigger: Trigger::aluminum_4x4(), ..AttackSpec::default() }),
    ];
    // Size equivalence needs only a low and a reference rate; set
    // MMWAVE_BENCH_FULL=1 to sweep all five rates.
    let rates: Vec<f64> = if std::env::var("MMWAVE_BENCH_FULL").is_ok() {
        mmwave_bench::injection_rates().to_vec()
    } else {
        vec![0.2, 0.4]
    };
    mmwave_bench::series_header("rate");
    for &rate in &rates {
        for (label, base) in &series {
            let spec = AttackSpec { injection_rate: rate, ..*base };
            let m = ctx.run_attack_averaged(&spec, PrototypeConfig::bench_repetitions());
            mmwave_bench::series_row(label, &format!("{rate:.1}"), &m);
        }
        watch.note(&format!("rate {rate:.1} done"));
    }
    watch.note("Fig. 12 complete");
}
