//! Fig. 9 — ASR / UASR / CDR vs. number of poisoned frames for
//! similar-trajectory attacks, injection rate fixed at 0.4.
//!
//! Paper shape: ASR grows with the number of poisoned frames, exceeding
//! ~80 % at 8 frames; CDR does not drop significantly.

use mmwave_backdoor::{AttackScenario, AttackSpec, ExperimentContext, ExperimentScale};
use mmwave_bench::{banner, sweep_frame_counts, Stopwatch};
use mmwave_har::PrototypeConfig;

fn main() {
    let _baseline = mmwave_bench::baseline::BaselineGuard::new("fig09_similar_frames");
    banner(
        "Fig. 9",
        "similar-trajectory attacks vs. poisoned frames",
        "ASR > 80% at 8 frames (rate 0.4); CDR stays ~90-95%",
    );
    let watch = Stopwatch::new();
    let mut ctx = ExperimentContext::new(ExperimentScale::fast(), 42);
    watch.note("experiment context ready");
    let series: Vec<(String, AttackSpec)> = AttackScenario::similar_pairs()
        .into_iter()
        .map(|scenario| {
            (scenario.to_string(), AttackSpec { scenario, injection_rate: 0.4, ..AttackSpec::default() })
        })
        .collect();
    sweep_frame_counts(&mut ctx, &series, PrototypeConfig::bench_repetitions(), &watch);
    watch.note("Fig. 9 complete");
}
