//! Section VII — defense evaluation (extension beyond the paper's
//! qualitative discussion).
//!
//! Two countermeasures are measured against the reference attack
//! (Push -> Pull, rate 0.4, 8 frames, optimal site):
//!
//! 1. a trigger-detection CNN-LSTM (accuracy / TPR / FPR / AUC);
//! 2. the data-augmentation defense — triggered captures with correct
//!    labels added to training — reported as the ASR before vs. after.

use mmwave_backdoor::poison::{build_poisoned_dataset, PoisonConfig};
use mmwave_backdoor::{AttackSpec, ExperimentContext, ExperimentScale};
use mmwave_bench::{banner, Stopwatch};
use mmwave_body::{Activity, Participant, SiteId};
use mmwave_defense::detector::{DetectorSample, TriggerDetector};
use mmwave_defense::augment_with_correct_labels;
use mmwave_har::{Trainer, TrainerConfig};
use mmwave_radar::capture::TriggerPlan;
use mmwave_radar::trigger::TriggerAttachment;
use mmwave_radar::{Environment, Placement};

fn main() {
    let _baseline = mmwave_bench::baseline::BaselineGuard::new("defense_eval");
    banner(
        "Defense",
        "trigger detection and augmentation defense (Section VII)",
        "a detector separates triggered captures; augmentation suppresses the backdoor",
    );
    let watch = Stopwatch::new();
    let mut ctx = ExperimentContext::new(ExperimentScale::fast(), 42);
    watch.note("experiment context ready");

    let spec = AttackSpec::default();
    // Undefended baseline.
    let undefended = ctx.run_attack(&spec);
    println!("undefended attack:  {undefended}");
    watch.note("undefended baseline done");

    // --- Defense 1: trigger detection. -----------------------------------
    // The defender records their own calibration pairs with reflectors at
    // several body sites and across the position grid.
    let site = ctx.optimal_site(spec.scenario.victim, spec.trigger);
    let grid = Placement::training_grid();
    let mut train_set: Vec<DetectorSample> = Vec::new();
    let mut test_set: Vec<DetectorSample> = Vec::new();
    for (si, def_site) in [site, SiteId::Chest, SiteId::RightForearm].iter().enumerate() {
        let plan = TriggerPlan {
            attachment: TriggerAttachment::new(spec.trigger),
            site: *def_site,
        };
        for (ai, act) in [Activity::Push, Activity::LeftSwipe, Activity::Clockwise]
            .iter()
            .enumerate()
        {
            let pairs = ctx.generator().generate_paired(
                *act,
                &grid,
                Participant::average(),
                &plan,
                &Environment::classroom(),
                1,
                0xDEF ^ (si * 31 + ai) as u64,
            );
            for (i, p) in pairs.into_iter().enumerate() {
                let dst = if i % 4 == 3 { &mut test_set } else { &mut train_set };
                dst.push(DetectorSample { heatmaps: p.clean, triggered: false });
                dst.push(DetectorSample { heatmaps: p.triggered, triggered: true });
            }
        }
    }
    watch.note(&format!(
        "defender calibration captured ({} train / {} test)",
        train_set.len(),
        test_set.len()
    ));
    let mut detector = TriggerDetector::new(ctx.config(), 11);
    detector.fit(&train_set, 20, 2e-3, 5);
    let report = detector.evaluate(&test_set);
    println!(
        "trigger detector:   accuracy {:.1}%  TPR {:.1}%  FPR {:.1}%  AUC {:.3}",
        100.0 * report.accuracy,
        100.0 * report.tpr,
        100.0 * report.fpr,
        report.auc
    );
    watch.note("detector evaluated");

    // --- Defense 2: data augmentation. ------------------------------------
    // The defender adds correctly-labeled triggered captures (their own
    // pairs from above would do; generate fresh ones for the victim
    // activity) to the training set the victim uses; the poisoned samples
    // are still present.
    let plan = TriggerPlan { attachment: TriggerAttachment::new(spec.trigger), site };
    let defender_pairs = ctx.generator().generate_paired(
        spec.scenario.victim,
        &grid,
        Participant::average(),
        &plan,
        &Environment::classroom(),
        2,
        0xA06,
    );
    // Rebuild the same poisoned dataset the attack would produce, then
    // augment it.
    let attack_pairs = ctx.generator().generate_paired(
        spec.scenario.victim,
        &grid,
        Participant::average(),
        &plan,
        &Environment::classroom(),
        3,
        0xA77AC4,
    );
    let poison_pool: Vec<_> = attack_pairs
        .iter()
        .step_by(3)
        .cloned()
        .collect();
    let rankings: Vec<Vec<usize>> = poison_pool
        .iter()
        .enumerate()
        .map(|(i, p)| {
            mmwave_backdoor::frames::frame_ranking(
                mmwave_backdoor::FrameStrategy::ShapTopK,
                ctx.surrogate(),
                &p.clean,
                spec.scenario.victim.index(),
                ctx.scale().shap_permutations,
                31 ^ i as u64,
            )
        })
        .collect();
    let poisoned = build_poisoned_dataset(
        ctx.clean_train(),
        &poison_pool,
        &rankings,
        &spec.scenario,
        &PoisonConfig::reference(),
    );
    let augmented = augment_with_correct_labels(&poisoned, &defender_pairs);
    let mut model = mmwave_har::CnnLstm::new(ctx.config(), 77);
    Trainer::new(TrainerConfig { epochs: ctx.scale().epochs, ..TrainerConfig::fast() })
        .fit(&mut model, &augmented);
    let attack_samples: Vec<(mmwave_dsp::HeatmapSeq, Activity)> = attack_pairs
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 3 != 0)
        .map(|(_, p)| (p.triggered.clone(), p.label))
        .collect();
    let defended = mmwave_backdoor::metrics::evaluate_attack(
        &model,
        &attack_samples,
        &spec.scenario,
        ctx.clean_test(),
    );
    println!("augmentation defense: {defended}");
    println!(
        "\nASR {:.1}% -> {:.1}% with augmentation (CDR {:.1}% -> {:.1}%)",
        100.0 * undefended.asr,
        100.0 * defended.asr,
        100.0 * undefended.cdr,
        100.0 * defended.cdr
    );
    watch.note("augmentation evaluated");

    // --- Defense 3 (extension): activation clustering on the poisoned
    // training set, using a model trained on it.
    let mut victim = mmwave_har::CnnLstm::new(ctx.config(), 123);
    Trainer::new(TrainerConfig { epochs: ctx.scale().epochs, ..TrainerConfig::fast() })
        .fit(&mut victim, &poisoned);
    let analyses = mmwave_defense::analyze_classes(&victim, &poisoned);
    println!("\nactivation clustering (minority fraction / separation):");
    for a in &analyses {
        let marker = if a.class == spec.scenario.target { " <- target class" } else { "" };
        println!(
            "  {:<14} {:>5.1}% / {:>6.2}{}",
            a.class.label(),
            100.0 * a.minority_fraction,
            a.separation,
            marker
        );
    }
    watch.note("defense evaluation complete");
}
