//! Fig. 11 — ASR / UASR / CDR vs. number of poisoned frames for
//! dissimilar-trajectory attacks, injection rate fixed at 0.4.
//!
//! Paper shape: ASR ~60-70 % at 8 frames; UASR high; CDR > 90 %.

use mmwave_backdoor::{AttackScenario, AttackSpec, ExperimentContext, ExperimentScale};
use mmwave_bench::{banner, sweep_frame_counts, Stopwatch};
use mmwave_har::PrototypeConfig;

fn main() {
    let _baseline = mmwave_bench::baseline::BaselineGuard::new("fig11_dissimilar_frames");
    banner(
        "Fig. 11",
        "dissimilar-trajectory attacks vs. poisoned frames",
        "ASR ~60-70% at 8 frames (rate 0.4); CDR > 90%",
    );
    let watch = Stopwatch::new();
    let mut ctx = ExperimentContext::new(ExperimentScale::fast(), 42);
    watch.note("experiment context ready");
    let series: Vec<(String, AttackSpec)> = AttackScenario::dissimilar_pairs()
        .into_iter()
        .map(|scenario| {
            (scenario.to_string(), AttackSpec { scenario, injection_rate: 0.4, ..AttackSpec::default() })
        })
        .collect();
    sweep_frame_counts(&mut ctx, &series, PrototypeConfig::bench_repetitions(), &watch);
    watch.note("Fig. 11 complete");
}
