//! Fig. 7 — confusion matrix of the clean mmWave HAR prototype.
//!
//! Paper: 99.42 % overall accuracy over 6 classes x 288 test samples,
//! trained on 8 640 samples from 3 participants at 12 positions. Our
//! simulator-scale prototype trains on ~650 samples and reaches the same
//! near-diagonal structure in the low-to-mid 90s.

use mmwave_bench::{banner, Stopwatch};
use mmwave_har::config::PrototypeConfig;
use mmwave_har::dataset::{DatasetGenerator, DatasetSpec};
use mmwave_har::model::CnnLstm;
use mmwave_har::trainer::{Trainer, TrainerConfig};

fn main() {
    let _baseline = mmwave_bench::baseline::BaselineGuard::new("fig07_confusion_matrix");
    banner(
        "Fig. 7",
        "clean-prototype confusion matrix",
        "99.42% accuracy, near-perfect diagonal (paper trains 30x more data on 2x RTX 4090)",
    );
    let watch = Stopwatch::new();
    let cfg = PrototypeConfig::fast();
    let gen = DatasetGenerator::new(cfg.clone());
    let scale = PrototypeConfig::bench_scale();
    let train = gen.generate(&DatasetSpec::training(3 * scale), 42);
    watch.note(&format!("generated {} training samples", train.len()));
    let test = gen.generate(&DatasetSpec::training(scale), 1042);
    watch.note(&format!("generated {} test samples", test.len()));

    let mut model = CnnLstm::new(&cfg, 3);
    let trainer = Trainer::new(TrainerConfig { epochs: 40, ..TrainerConfig::fast() });
    let stats = trainer.fit(&mut model, &train);
    let last = stats.last().expect("non-empty stats");
    watch.note(&format!(
        "trained 40 epochs (final train loss {:.3}, acc {:.3})",
        last.loss, last.accuracy
    ));

    let eval = mmwave_har::eval::evaluate(&model, &test);
    println!("\noverall accuracy: {:.2}% (paper: 99.42%)", 100.0 * eval.accuracy);
    println!("\n{}", eval.confusion);
    let recall = eval.confusion.per_class_recall();
    for (i, r) in recall.iter().enumerate() {
        println!(
            "recall {:<14} {:.1}%",
            mmwave_body::Activity::from_index(i).label(),
            100.0 * r
        );
    }
    watch.note("Fig. 7 complete");
}
