//! Table I — impact of each attack module, and under-clothing triggers.
//!
//! Paper (Push -> Pull, rate 0.4, 8 poisoned frames):
//!
//! | experiment                            | ASR |
//! |---------------------------------------|-----|
//! | with optimal frames and positions     | 84% |
//! | without optimal trigger position      | 66% |
//! | without optimal frames                | 57% |
//! | without optimal frames and positions  | 48% |
//! | with under-clothing stealthy trigger  | 82% |

use mmwave_backdoor::experiment::SiteChoice;
use mmwave_backdoor::frames::FrameStrategy;
use mmwave_backdoor::{AttackSpec, ExperimentContext, ExperimentScale};
use mmwave_bench::{banner, Stopwatch};
use mmwave_body::SiteId;
use mmwave_har::PrototypeConfig;

fn main() {
    let _baseline = mmwave_bench::baseline::BaselineGuard::new("table1_ablation");
    banner(
        "Table I",
        "impact of each module and under-clothing triggers (Push -> Pull, rate 0.4, 8 frames)",
        "optimal 84% > no-position 66% > no-frames 57% > neither 48%; under clothing ~82%",
    );
    let watch = Stopwatch::new();
    let mut ctx = ExperimentContext::new(ExperimentScale::fast(), 42);
    watch.note("experiment context ready");
    let reps = PrototypeConfig::bench_repetitions();
    let base = AttackSpec::default();
    // The paper's suboptimal-location baseline: "e.g., on the leg".
    let leg = SiteChoice::Fixed(SiteId::RightThigh);
    let rows: Vec<(&str, u32, AttackSpec)> = vec![
        ("With Optimal Frames and Positions", 84, base),
        (
            "Without Optimal Trigger Position",
            66,
            AttackSpec { site: leg, ..base },
        ),
        (
            "Without Optimal Frames",
            57,
            AttackSpec { frame_strategy: FrameStrategy::FirstK, ..base },
        ),
        (
            "Without Optimal Frames and Positions",
            48,
            AttackSpec { site: leg, frame_strategy: FrameStrategy::FirstK, ..base },
        ),
        (
            "With Under Clothing Stealthy Trigger",
            82,
            AttackSpec { trigger: base.trigger.under_clothing(), ..base },
        ),
    ];
    println!(
        "{:<40}{:>10}{:>10}{:>8}{:>8}",
        "experiment", "paper ASR", "ASR%", "UASR%", "CDR%"
    );
    for (label, paper, spec) in rows {
        let m = ctx.run_attack_averaged(&spec, reps);
        println!(
            "{:<40}{:>9}%{:>10.1}{:>8.1}{:>8.1}",
            label,
            paper,
            100.0 * m.asr,
            100.0 * m.uasr,
            100.0 * m.cdr
        );
        watch.note(&format!("{label} done"));
    }
    watch.note("Table I complete");
}
