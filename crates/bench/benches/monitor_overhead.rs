//! Engineering benchmark (not from the paper): overhead of attaching
//! the `mmwave-monitor` model-health engine to the streaming service.
//!
//! Runs the same seeded firehose workload twice — bare `loadgen::run`,
//! then `run_monitored` with a captured reference profile and an
//! `alerts.jsonl` sink — and reports the inferences/s delta. The
//! monitor folds each verdict into O(bins) counters and scores one
//! window every `2 x sessions` verdicts, so the target is < 5%
//! regression. The `BaselineGuard` writes `BENCH_monitor_overhead.json`
//! (items = monitored-run verdicts) for `mmwave perf-check` to gate.

use mmwave_har::PrototypeConfig;
use mmwave_monitor::{self as monitor, MonitorConfig};
use mmwave_radar::Environment;
use mmwave_serve::{loadgen, LoadgenConfig, ServeConfig};

const SESSIONS: usize = 16;
const SECONDS: f64 = 4.0;

fn main() {
    let mut baseline = mmwave_bench::baseline::BaselineGuard::new("monitor_overhead");
    let proto = PrototypeConfig::smoke_test();
    let serve_cfg = ServeConfig {
        clip_len: proto.n_frames,
        ring_capacity: proto.n_frames * 2,
        ..ServeConfig::default()
    };
    let lg = LoadgenConfig {
        sessions: SESSIONS,
        seconds: SECONDS,
        seed: 42,
        ..LoadgenConfig::default()
    };

    println!("\n=== monitor_overhead: drift scoring on the hot path ===");
    println!(
        "workload: {SESSIONS} sessions x {SECONDS}s @ {:.0} fps, clip {} frames",
        lg.fps, serve_cfg.clip_len
    );

    let bare = loadgen::run(&lg, serve_cfg.clone(), &proto, Environment::hallway())
        .expect("loadgen config is valid");
    assert!(bare.is_clean(), "bare run must account every frame");

    let (reference, _) =
        monitor::capture_profile(&lg, serve_cfg.clone(), &proto, Environment::hallway())
            .expect("reference capture succeeds");
    let alerts_path = std::env::temp_dir()
        .join(format!("mmwave_bench_monitor_overhead_{}.jsonl", std::process::id()));
    let outcome = monitor::run_monitored(
        &lg,
        serve_cfg,
        &proto,
        Environment::hallway(),
        &MonitorConfig::default(),
        reference,
        Some(&alerts_path),
        |_| {},
    )
    .expect("monitored run succeeds");
    let _ = std::fs::remove_file(&alerts_path);
    assert!(outcome.report.is_clean(), "monitored run must account every frame");
    assert_eq!(outcome.report.verdicts, bare.verdicts, "same workload, same verdicts");
    baseline.set_items(outcome.report.verdicts);

    let overhead = if outcome.report.inferences_per_sec > 0.0 {
        (bare.inferences_per_sec / outcome.report.inferences_per_sec - 1.0) * 100.0
    } else {
        f64::NAN
    };
    println!("{:<24}{:>12.2}", "bare inferences/s", bare.inferences_per_sec);
    println!("{:<24}{:>12.2}", "monitored inferences/s", outcome.report.inferences_per_sec);
    println!("{:<24}{:>11.2}%", "overhead", overhead);
    println!("{:<24}{:>12}", "windows scored", outcome.windows);
    println!("{:<24}{:>12}", "alerts fired", outcome.alerts.len());
    let _ = mmwave_telemetry::finish();
}
