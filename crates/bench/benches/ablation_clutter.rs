//! Design ablation (not a paper figure): DRAI clutter removal — calibrated
//! background subtraction vs. per-burst MTI.
//!
//! DESIGN.md documents that this reproduction defaults to background
//! subtraction because per-burst MTI silences a body-mounted reflector
//! (it survives only through ~-20 dB micro-motion residue at our heatmap
//! scale). This bench quantifies that claim end to end: the identical
//! attack, under the two clutter-removal pipelines.

use mmwave_backdoor::{AttackSpec, ExperimentContext, ExperimentScale};
use mmwave_bench::{banner, series_header, series_row, Stopwatch};
use mmwave_dsp::processing::ClutterRemoval;
use mmwave_har::PrototypeConfig;

fn main() {
    let _baseline = mmwave_bench::baseline::BaselineGuard::new("ablation_clutter");
    banner(
        "Ablation",
        "clutter removal: calibrated background subtraction vs. per-burst MTI",
        "MTI hides the trigger from the model (ASR collapses); background subtraction preserves it",
    );
    let watch = Stopwatch::new();
    series_header("mode");
    for (label, mode) in [
        ("background subtraction", ClutterRemoval::Background),
        ("per-burst MTI", ClutterRemoval::Mti),
    ] {
        let mut cfg = PrototypeConfig::fast();
        cfg.capture.0.processing.clutter_removal = mode;
        let mut ctx = ExperimentContext::new_with_config(cfg, ExperimentScale::fast(), 42);
        watch.note(&format!("{label}: context ready"));
        let m = ctx.run_attack(&AttackSpec::default());
        series_row(label, "0.4", &m);
        watch.note(&format!("{label} done"));
    }
    watch.note("clutter ablation complete");
}
