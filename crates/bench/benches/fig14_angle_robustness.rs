//! Fig. 14 — impact of the attacker's angle on ASR.
//!
//! Paper: the best backdoored model is probed at angles -30..30 degrees
//! (distance fixed at 1.6 m). Angles -30, 0, 30 appear in training; the
//! rest are zero-shot. ASR reaches 100 % across both seen and unseen
//! angles.

use mmwave_backdoor::experiment::SiteChoice;
use mmwave_backdoor::{AttackSpec, ExperimentContext, ExperimentScale};
use mmwave_bench::{banner, Stopwatch};
use mmwave_har::PrototypeConfig;
use mmwave_radar::Placement;

fn main() {
    let _baseline = mmwave_bench::baseline::BaselineGuard::new("fig14_angle_robustness");
    banner(
        "Fig. 14",
        "impact of the angle on ASR (distance 1.6 m)",
        "triggers fire at seen AND unseen angles (paper: ASR ~100% everywhere)",
    );
    let watch = Stopwatch::new();
    let mut ctx = ExperimentContext::new(ExperimentScale::fast(), 42);
    watch.note("experiment context ready");

    // "We select our best-trained model": train a few backdoored models at
    // the reference operating point and keep the one with the best ASR.
    let reps = PrototypeConfig::bench_repetitions().max(2);
    let base = AttackSpec::default();
    let mut best: Option<(f64, mmwave_har::CnnLstm, mmwave_body::SiteId)> = None;
    for r in 0..reps {
        let spec = AttackSpec { seed: 1000 * r as u64, ..base };
        let m = ctx.run_attack(&spec);
        watch.note(&format!("candidate model {r}: {m}"));
        let (model, site) = ctx.train_backdoored(&spec);
        if best.as_ref().map(|(a, _, _)| m.asr > *a).unwrap_or(true) {
            best = Some((m.asr, model, site));
        }
    }
    let (asr, model, site) = best.expect("at least one model");
    watch.note(&format!("best model selected (ASR {:.0}%)", 100.0 * asr));

    let placements: Vec<Placement> = Placement::robustness_angles()
        .iter()
        .map(|&a| Placement::new(1.6, a))
        .collect();
    let spec = AttackSpec { site: SiteChoice::Fixed(site), ..base };
    let results = ctx.evaluate_robustness(&model, &spec, site, &placements, 6);
    println!("\n{:>8} {:>6} {:>8} {:>8}", "angle", "seen", "ASR%", "UASR%");
    for (p, asr, uasr) in results {
        println!(
            "{:>8} {:>6} {:>8.1} {:>8.1}",
            format!("{}deg", p.angle_deg),
            if p.is_seen() { "yes" } else { "no" },
            100.0 * asr,
            100.0 * uasr
        );
    }
    watch.note("Fig. 14 complete");
}
