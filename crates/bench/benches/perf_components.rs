//! Engineering benchmarks (not from the paper): component throughput via
//! Criterion. These guard against performance regressions in the
//! substrates that make the paper-scale sweeps feasible on one core.

use criterion::{criterion_group, Criterion};
use mmwave_body::{Activity, ActivitySampler, Participant, SampleVariation};
use mmwave_dsp::fft::Fft;
use mmwave_dsp::Complex32;
use mmwave_har::config::PrototypeConfig;
use mmwave_har::model::CnnLstm;
use mmwave_nn::{softmax_cross_entropy, Adam};
use mmwave_radar::capture::{CaptureConfig, Capturer};
use mmwave_radar::{Environment, Placement};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_fft(c: &mut Criterion) {
    let plan = Fft::new(64);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let signal: Vec<Complex32> = (0..64)
        .map(|_| Complex32::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect();
    c.bench_function("fft_64_forward", |b| {
        b.iter(|| {
            let mut buf = signal.clone();
            plan.forward(black_box(&mut buf));
            black_box(buf)
        })
    });
}

fn bench_if_synthesis(c: &mut Criterion) {
    let capturer = Capturer::new(CaptureConfig::fast());
    let sampler = ActivitySampler::new(Participant::average(), 4, 10.0);
    let seq = sampler.sample(Activity::Push, &SampleVariation::nominal());
    let env = Environment::hallway();
    c.bench_function("if_synthesis_4_frames", |b| {
        b.iter(|| {
            black_box(capturer.base_if_frames(
                black_box(&seq),
                Placement::new(1.2, 0.0),
                &env,
                1,
                1.0,
            ))
        })
    });
}

fn bench_drai(c: &mut Criterion) {
    let capturer = Capturer::new(CaptureConfig::fast());
    let sampler = ActivitySampler::new(Participant::average(), 1, 10.0);
    let seq = sampler.sample(Activity::Push, &SampleVariation::nominal());
    let env = Environment::hallway();
    let frames = capturer.base_if_frames(&seq, Placement::new(1.2, 0.0), &env, 1, 1.0);
    c.bench_function("drai_one_frame", |b| {
        b.iter(|| black_box(capturer.drai_of(black_box(&frames[0]), &env)))
    });
}

fn bench_train_step(c: &mut Criterion) {
    let cfg = PrototypeConfig::fast();
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let seq = mmwave_dsp::HeatmapSeq::new(
        (0..cfg.n_frames)
            .map(|_| {
                let data: Vec<f32> = (0..cfg.heatmap_rows * cfg.heatmap_cols)
                    .map(|_| rng.gen_range(0.0..1.0))
                    .collect();
                mmwave_dsp::Heatmap::from_data(
                    cfg.heatmap_rows,
                    cfg.heatmap_cols,
                    mmwave_dsp::heatmap::HeatmapKind::RangeAngle,
                    data,
                )
            })
            .collect(),
    );
    let mut model = CnnLstm::new(&cfg, 1);
    let mut adam = Adam::new(1e-3);
    c.bench_function("cnn_lstm_train_step", |b| {
        b.iter(|| {
            let cache = model.forward(black_box(&seq));
            let (_, dlogits) = softmax_cross_entropy(&cache.logits, 2);
            model.zero_grads();
            model.backward(&cache, &dlogits);
            adam.step(&mut model.param_tensors());
        })
    });
    c.bench_function("cnn_lstm_inference", |b| {
        b.iter(|| black_box(model.predict(black_box(&seq))))
    });
}

criterion_group! {
    name = perf;
    config = Criterion::default().sample_size(20);
    targets = bench_fft, bench_if_synthesis, bench_drai, bench_train_step
}

// Hand-expanded `criterion_main!(perf)` so the run is wrapped in a
// baseline guard like every other target.
fn main() {
    let _baseline = mmwave_bench::baseline::BaselineGuard::new("perf_components");
    perf();
    Criterion::default().configure_from_args().final_summary();
}
