//! Fig. 5 — DRAI heatmaps with and without a trigger.
//!
//! Paper: a clean "Clockwise Turning" DRAI frame next to the same frame
//! with a 2x2-inch aluminum reflector at the optimal position; the change
//! is "nearly imperceptible to the human eye". We render both as ASCII
//! heatmaps and quantify the perturbation.

use mmwave_backdoor::{AttackSpec, ExperimentContext, ExperimentScale};
use mmwave_bench::{banner, Stopwatch};
use mmwave_body::{Activity, ActivitySampler, Participant, SampleVariation};
use mmwave_radar::capture::{TriggerPlan};
use mmwave_radar::trigger::TriggerAttachment;
use mmwave_radar::{Environment, Placement};

fn main() {
    let _baseline = mmwave_bench::baseline::BaselineGuard::new("fig05_heatmap_stealth");
    banner(
        "Fig. 5",
        "DRAI heatmaps with and without a trigger (stealthiness)",
        "the triggered heatmap is nearly indistinguishable from the clean one",
    );
    let watch = Stopwatch::new();
    let mut ctx = ExperimentContext::new(ExperimentScale::fast(), 42);
    watch.note("context + surrogate ready");
    let spec = AttackSpec::default();
    let site = ctx.optimal_site(Activity::Clockwise, spec.trigger);
    watch.note(&format!("optimal site for Clockwise: {site}"));

    let sampler = ActivitySampler::new(
        Participant::average(),
        ctx.config().n_frames,
        ctx.generator().capturer().config().frame_rate,
    );
    let seq = sampler.sample(Activity::Clockwise, &SampleVariation::nominal());
    let plan = TriggerPlan { attachment: TriggerAttachment::new(spec.trigger), site };
    let out = ctx.generator().capturer().capture(
        &seq,
        Placement::new(1.2, 0.0),
        &Environment::classroom(),
        Some(&plan),
        7,
    );
    let triggered = out.triggered.expect("trigger requested");

    // Show the frame where the trigger footprint is largest.
    let (worst, dist) = (0..out.clean.len())
        .map(|i| (i, out.clean.frame(i).l2_distance(triggered.frame(i))))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty sequence");
    println!("\n(a) clean DRAI, frame {worst} (range rows x angle cols):");
    println!("{}", out.clean.frame(worst).to_ascii());
    println!("(b) same frame with a 2x2-inch trigger at {site}:");
    println!("{}", triggered.frame(worst).to_ascii());

    let mean = out.clean.mean_l2_distance(&triggered);
    let frame_energy = out.clean.frame(worst).as_slice().iter().map(|v| v * v).sum::<f32>().sqrt();
    println!("worst-frame L2 change: {dist:.4} ({:.1}% of the frame's own norm)", 100.0 * dist / frame_energy);
    println!("mean per-frame L2 change: {mean:.4}");
    println!("(heatmaps are log-compressed and normalized to [0, 1])");
    watch.note("Fig. 5 complete");
}
