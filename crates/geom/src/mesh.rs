//! Indexed triangle meshes with per-vertex velocities.

use crate::{RigidTransform, Vec3};
use serde::{Deserialize, Serialize};

/// One triangle extracted from a mesh, with the derived quantities the radar
/// simulator needs: centroid (phase center), outward normal, area, and the
/// centroid's instantaneous velocity (for intra-frame Doppler).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    /// Vertex positions in world space.
    pub vertices: [Vec3; 3],
    /// Centroid, used as the triangle's phase center in Eq. (3).
    pub centroid: Vec3,
    /// Unit outward normal (zero for degenerate triangles).
    pub normal: Vec3,
    /// Surface area in square meters (the `A_a` factor of Eq. (3)).
    pub area: f64,
    /// Instantaneous velocity of the centroid in m/s.
    pub velocity: Vec3,
}

/// An indexed triangle mesh.
///
/// Faces are counter-clockwise when viewed from outside (normals point
/// outward). Each vertex optionally carries a velocity; a mesh without
/// velocities is static. Velocities are what make a reflector survive
/// moving-target-indication (MTI) clutter removal: a perfectly static
/// trigger disappears from the DRAI heatmaps, which is precisely why the
/// paper's trigger-placement optimization matters.
///
/// # Examples
///
/// ```
/// use mmwave_geom::{TriMesh, Vec3};
/// let mesh = TriMesh::from_faces(
///     vec![Vec3::ZERO, Vec3::X, Vec3::Z],
///     vec![[0, 1, 2]],
/// );
/// assert_eq!(mesh.triangle_count(), 1);
/// let tri = mesh.triangle(0);
/// assert!((tri.area - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TriMesh {
    vertices: Vec<Vec3>,
    faces: Vec<[u32; 3]>,
    velocities: Vec<Vec3>,
}

impl TriMesh {
    /// Creates an empty mesh.
    pub fn new() -> Self {
        TriMesh::default()
    }

    /// Creates a static mesh from vertices and faces.
    ///
    /// # Panics
    ///
    /// Panics if any face index is out of bounds.
    pub fn from_faces(vertices: Vec<Vec3>, faces: Vec<[u32; 3]>) -> Self {
        let n = vertices.len() as u32;
        for f in &faces {
            assert!(
                f.iter().all(|&i| i < n),
                "face index out of bounds: {f:?} with {n} vertices"
            );
        }
        let velocities = vec![Vec3::ZERO; vertices.len()];
        TriMesh { vertices, faces, velocities }
    }

    /// Creates a mesh with explicit per-vertex velocities.
    ///
    /// # Panics
    ///
    /// Panics if `velocities.len() != vertices.len()` or a face index is out
    /// of bounds.
    pub fn with_velocities(
        vertices: Vec<Vec3>,
        faces: Vec<[u32; 3]>,
        velocities: Vec<Vec3>,
    ) -> Self {
        assert_eq!(
            velocities.len(),
            vertices.len(),
            "one velocity per vertex required"
        );
        let mut mesh = TriMesh::from_faces(vertices, faces);
        mesh.velocities = velocities;
        mesh
    }

    /// Vertex positions.
    pub fn vertices(&self) -> &[Vec3] {
        &self.vertices
    }

    /// Face index triples.
    pub fn faces(&self) -> &[[u32; 3]] {
        &self.faces
    }

    /// Per-vertex velocities (same length as `vertices`).
    pub fn velocities(&self) -> &[Vec3] {
        &self.velocities
    }

    /// Number of triangles.
    pub fn triangle_count(&self) -> usize {
        self.faces.len()
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// True if the mesh has no faces.
    pub fn is_empty(&self) -> bool {
        self.faces.is_empty()
    }

    /// Extracts triangle `i` with derived quantities.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.triangle_count()`.
    pub fn triangle(&self, i: usize) -> Triangle {
        let [a, b, c] = self.faces[i];
        let (va, vb, vc) = (
            self.vertices[a as usize],
            self.vertices[b as usize],
            self.vertices[c as usize],
        );
        let cross = (vb - va).cross(vc - va);
        let cross_norm = cross.norm();
        let normal = if cross_norm > 1e-15 {
            cross / cross_norm
        } else {
            Vec3::ZERO
        };
        let velocity = (self.velocities[a as usize]
            + self.velocities[b as usize]
            + self.velocities[c as usize])
            / 3.0;
        Triangle {
            vertices: [va, vb, vc],
            centroid: (va + vb + vc) / 3.0,
            normal,
            area: 0.5 * cross_norm,
            velocity,
        }
    }

    /// Iterates over all triangles with derived quantities.
    pub fn triangles(&self) -> impl Iterator<Item = Triangle> + '_ {
        (0..self.faces.len()).map(move |i| self.triangle(i))
    }

    /// Total surface area.
    pub fn surface_area(&self) -> f64 {
        self.triangles().map(|t| t.area).sum()
    }

    /// Centroid of all vertices (not area-weighted).
    pub fn vertex_centroid(&self) -> Vec3 {
        if self.vertices.is_empty() {
            return Vec3::ZERO;
        }
        let sum = self.vertices.iter().fold(Vec3::ZERO, |acc, &v| acc + v);
        sum / self.vertices.len() as f64
    }

    /// Axis-aligned bounding box as `(min, max)`, or `None` when empty.
    pub fn bounding_box(&self) -> Option<(Vec3, Vec3)> {
        let first = *self.vertices.first()?;
        let (mut lo, mut hi) = (first, first);
        for &v in &self.vertices {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }

    /// Returns the mesh translated by `t` (velocities unchanged).
    pub fn translated(&self, t: Vec3) -> TriMesh {
        let mut out = self.clone();
        for v in &mut out.vertices {
            *v += t;
        }
        out
    }

    /// Returns the mesh with a rigid transform applied to the positions and
    /// the rotational part applied to the velocities.
    pub fn transformed(&self, xf: &RigidTransform) -> TriMesh {
        let mut out = self.clone();
        for v in &mut out.vertices {
            *v = xf.apply(*v);
        }
        for vel in &mut out.velocities {
            *vel = xf.apply_vector(*vel);
        }
        out
    }

    /// Overwrites every vertex velocity with `v`.
    pub fn set_uniform_velocity(&mut self, v: Vec3) {
        for vel in &mut self.velocities {
            *vel = v;
        }
    }

    /// Sets per-vertex velocities by finite difference against a mesh with
    /// identical topology at time `dt` earlier: `v = (self - prev) / dt`.
    ///
    /// # Panics
    ///
    /// Panics if `prev` has a different vertex count or `dt <= 0`.
    pub fn set_velocities_from_previous(&mut self, prev: &TriMesh, dt: f64) {
        assert_eq!(
            self.vertices.len(),
            prev.vertices.len(),
            "topology mismatch in finite-difference velocities"
        );
        assert!(dt > 0.0, "dt must be positive");
        for (i, vel) in self.velocities.iter_mut().enumerate() {
            *vel = (self.vertices[i] - prev.vertices[i]) / dt;
        }
    }

    /// Applies a function to every vertex position in place (velocities are
    /// untouched; recompute them afterwards if the map is time-dependent).
    pub fn map_vertices(&mut self, mut f: impl FnMut(Vec3) -> Vec3) {
        for v in &mut self.vertices {
            *v = f(*v);
        }
    }

    /// Appends another mesh, merging vertex and face lists.
    pub fn merge(&mut self, other: &TriMesh) {
        let offset = self.vertices.len() as u32;
        self.vertices.extend_from_slice(&other.vertices);
        self.velocities.extend_from_slice(&other.velocities);
        self.faces
            .extend(other.faces.iter().map(|f| [f[0] + offset, f[1] + offset, f[2] + offset]));
    }

    /// Finds the vertex nearest to `p` and returns `(index, distance)`.
    ///
    /// Used by the trigger-placement optimizer to map candidate positions to
    /// attachment sites on the body mesh. Returns `None` when empty.
    pub fn nearest_vertex(&self, p: Vec3) -> Option<(usize, f64)> {
        self.vertices
            .iter()
            .enumerate()
            .map(|(i, &v)| (i, v.distance(p)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }
}

impl Extend<TriMesh> for TriMesh {
    fn extend<T: IntoIterator<Item = TriMesh>>(&mut self, iter: T) {
        for m in iter {
            self.merge(&m);
        }
    }
}

impl FromIterator<TriMesh> for TriMesh {
    fn from_iter<T: IntoIterator<Item = TriMesh>>(iter: T) -> Self {
        let mut out = TriMesh::new();
        out.extend(iter);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mat3;

    fn unit_triangle() -> TriMesh {
        TriMesh::from_faces(vec![Vec3::ZERO, Vec3::X, Vec3::Y], vec![[0, 1, 2]])
    }

    #[test]
    fn triangle_derived_quantities() {
        let t = unit_triangle().triangle(0);
        assert!((t.area - 0.5).abs() < 1e-12);
        assert!((t.normal - Vec3::Z).norm() < 1e-12);
        assert!((t.centroid - Vec3::new(1.0 / 3.0, 1.0 / 3.0, 0.0)).norm() < 1e-12);
        assert_eq!(t.velocity, Vec3::ZERO);
    }

    #[test]
    fn degenerate_triangle_has_zero_area_and_normal() {
        let m = TriMesh::from_faces(vec![Vec3::ZERO, Vec3::X, Vec3::X * 2.0], vec![[0, 1, 2]]);
        let t = m.triangle(0);
        assert_eq!(t.area, 0.0);
        assert_eq!(t.normal, Vec3::ZERO);
    }

    #[test]
    #[should_panic(expected = "face index out of bounds")]
    fn out_of_bounds_face_panics() {
        TriMesh::from_faces(vec![Vec3::ZERO], vec![[0, 1, 2]]);
    }

    #[test]
    #[should_panic(expected = "one velocity per vertex")]
    fn velocity_length_mismatch_panics() {
        TriMesh::with_velocities(vec![Vec3::ZERO, Vec3::X, Vec3::Y], vec![[0, 1, 2]], vec![Vec3::ZERO]);
    }

    #[test]
    fn translation_moves_bbox_not_velocity() {
        let mut m = unit_triangle();
        m.set_uniform_velocity(Vec3::Z);
        let moved = m.translated(Vec3::new(10.0, 0.0, 0.0));
        let (lo, _) = moved.bounding_box().unwrap();
        assert!((lo.x - 10.0).abs() < 1e-12);
        assert_eq!(moved.velocities()[0], Vec3::Z);
    }

    #[test]
    fn rigid_transform_rotates_velocities() {
        let mut m = unit_triangle();
        m.set_uniform_velocity(Vec3::X);
        let xf = RigidTransform::rotation(Mat3::rotation_z(std::f64::consts::FRAC_PI_2));
        let rotated = m.transformed(&xf);
        assert!((rotated.velocities()[0] - Vec3::Y).norm() < 1e-12);
    }

    #[test]
    fn finite_difference_velocities() {
        let prev = unit_triangle();
        let mut cur = prev.translated(Vec3::new(0.0, 0.1, 0.0));
        cur.set_velocities_from_previous(&prev, 0.1);
        for &v in cur.velocities() {
            assert!((v - Vec3::new(0.0, 1.0, 0.0)).norm() < 1e-12);
        }
    }

    #[test]
    fn merge_offsets_face_indices() {
        let mut a = unit_triangle();
        let b = unit_triangle().translated(Vec3::Z);
        a.merge(&b);
        assert_eq!(a.triangle_count(), 2);
        assert_eq!(a.vertex_count(), 6);
        assert_eq!(a.faces()[1], [3, 4, 5]);
        // Total area is the sum of parts.
        assert!((a.surface_area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_iterator_collects_meshes() {
        let combined: TriMesh = vec![unit_triangle(), unit_triangle().translated(Vec3::Z)]
            .into_iter()
            .collect();
        assert_eq!(combined.triangle_count(), 2);
    }

    #[test]
    fn nearest_vertex_finds_closest() {
        let m = unit_triangle();
        let (i, d) = m.nearest_vertex(Vec3::new(1.1, 0.0, 0.0)).unwrap();
        assert_eq!(i, 1);
        assert!((d - 0.1).abs() < 1e-12);
        assert!(TriMesh::new().nearest_vertex(Vec3::ZERO).is_none());
    }

    #[test]
    fn bounding_box_of_empty_mesh_is_none() {
        assert!(TriMesh::new().bounding_box().is_none());
    }

    #[test]
    fn vertex_centroid_averages_positions() {
        let m = unit_triangle();
        let c = m.vertex_centroid();
        assert!((c - Vec3::new(1.0 / 3.0, 1.0 / 3.0, 0.0)).norm() < 1e-12);
        assert_eq!(TriMesh::new().vertex_centroid(), Vec3::ZERO);
    }
}
