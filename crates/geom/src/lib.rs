//! 3D geometry substrate for the mmWave HAR backdoor reproduction.
//!
//! The radar simulator (crate `mmwave-radar`) models the world as collections
//! of small triangular reflective surfaces, following Eq. (3) of the paper:
//! every visible triangle contributes one attenuated, phase-shifted complex
//! exponential to the intermediate-frequency (IF) signal. This crate provides
//! the geometric vocabulary for that model:
//!
//! * [`Vec3`] — double-precision 3D vectors (phase at 77 GHz is sensitive to
//!   sub-millimeter path-length errors, so geometry is `f64` end to end);
//! * [`Mat3`] and [`RigidTransform`] — rotations and rigid placements;
//! * [`TriMesh`] — indexed triangle meshes carrying per-vertex velocities
//!   (velocities produce Doppler and let MTI clutter removal distinguish the
//!   moving user from the static environment);
//! * [`primitives`] — tessellated plates, boxes, cylinders, and ellipsoids
//!   used to build the human body, triggers, and room clutter;
//! * [`visibility`] — back-face culling and a coarse angular z-buffer that
//!   keeps only surfaces the radar can actually illuminate.
//!
//! # Examples
//!
//! ```
//! use mmwave_geom::{Vec3, primitives, visibility};
//!
//! // A 2x2 inch "credit card" aluminum trigger plate, 1 m in front of origin.
//! let side = 0.0508; // 2 inches in meters
//! let plate = primitives::plate(side, side, 2, 2)
//!     .translated(Vec3::new(0.0, 1.0, 1.0));
//! let radar = Vec3::new(0.0, 0.0, 1.0);
//! let visible = visibility::visible_triangles(&plate, radar);
//! assert!(!visible.is_empty());
//! ```

pub mod mesh;
pub mod primitives;
pub mod transform;
pub mod vec3;
pub mod visibility;

pub use mesh::{Triangle, TriMesh};
pub use transform::{Mat3, RigidTransform};
pub use vec3::Vec3;
