//! Tessellated building blocks: plates, boxes, cylinders, and ellipsoids.
//!
//! The human body model in `mmwave-body` is assembled from these primitives
//! (ellipsoid head/torso/hand, cylinder limbs), environments from boxes and
//! plates, and the aluminum trigger from a subdivided plate. Tessellation
//! density trades simulation fidelity against the per-chirp cost of Eq. (3),
//! which is linear in the number of visible triangles.

use crate::{TriMesh, Vec3};

/// A flat rectangular plate in the `x`–`z` plane, centered at the origin,
/// facing `-y` (toward a radar placed down `-y`), subdivided into
/// `nx * nz * 2` triangles.
///
/// Trigger reflectors are plates: the paper uses 2x2-inch and 4x4-inch
/// aluminum sheets.
///
/// # Panics
///
/// Panics if `width` or `height` is not positive, or a subdivision count is
/// zero.
///
/// # Examples
///
/// ```
/// use mmwave_geom::primitives::plate;
/// let trigger = plate(0.0508, 0.0508, 2, 2);
/// assert_eq!(trigger.triangle_count(), 8);
/// assert!((trigger.surface_area() - 0.0508f64.powi(2)).abs() < 1e-9);
/// ```
pub fn plate(width: f64, height: f64, nx: usize, nz: usize) -> TriMesh {
    assert!(width > 0.0 && height > 0.0, "plate dimensions must be positive");
    assert!(nx > 0 && nz > 0, "subdivision counts must be nonzero");
    let mut vertices = Vec::with_capacity((nx + 1) * (nz + 1));
    for iz in 0..=nz {
        for ix in 0..=nx {
            let x = -width / 2.0 + width * ix as f64 / nx as f64;
            let z = -height / 2.0 + height * iz as f64 / nz as f64;
            vertices.push(Vec3::new(x, 0.0, z));
        }
    }
    let idx = |ix: usize, iz: usize| (iz * (nx + 1) + ix) as u32;
    let mut faces = Vec::with_capacity(nx * nz * 2);
    for iz in 0..nz {
        for ix in 0..nx {
            let (a, b, c, d) = (idx(ix, iz), idx(ix + 1, iz), idx(ix + 1, iz + 1), idx(ix, iz + 1));
            // Winding chosen so normals point toward -y.
            faces.push([a, b, c]);
            faces.push([a, c, d]);
        }
    }
    TriMesh::from_faces(vertices, faces)
}

/// An axis-aligned box centered at the origin with the given full extents,
/// each face subdivided `n x n`. Used for furniture-style environment
/// clutter (tables, chairs, televisions).
///
/// # Panics
///
/// Panics if any extent is not positive or `n == 0`.
pub fn cuboid(extents: Vec3, n: usize) -> TriMesh {
    assert!(
        extents.x > 0.0 && extents.y > 0.0 && extents.z > 0.0,
        "box extents must be positive"
    );
    assert!(n > 0, "subdivision count must be nonzero");
    let half = extents / 2.0;
    let mut mesh = TriMesh::new();
    // Each face: generate a grid in plane coordinates (u, v) then map to 3D.
    // `map(u, v)` returns the face point; winding makes normals outward.
    let mut add_face = |map: &dyn Fn(f64, f64) -> Vec3, flip: bool| {
        let mut vertices = Vec::with_capacity((n + 1) * (n + 1));
        for iv in 0..=n {
            for iu in 0..=n {
                let u = -1.0 + 2.0 * iu as f64 / n as f64;
                let v = -1.0 + 2.0 * iv as f64 / n as f64;
                vertices.push(map(u, v));
            }
        }
        let idx = |iu: usize, iv: usize| (iv * (n + 1) + iu) as u32;
        let mut faces = Vec::with_capacity(n * n * 2);
        for iv in 0..n {
            for iu in 0..n {
                let (a, b, c, d) = (
                    idx(iu, iv),
                    idx(iu + 1, iv),
                    idx(iu + 1, iv + 1),
                    idx(iu, iv + 1),
                );
                if flip {
                    faces.push([a, c, b]);
                    faces.push([a, d, c]);
                } else {
                    faces.push([a, b, c]);
                    faces.push([a, c, d]);
                }
            }
        }
        mesh.merge(&TriMesh::from_faces(vertices, faces));
    };
    // +x and -x faces.
    add_face(&|u, v| Vec3::new(half.x, u * half.y, v * half.z), false);
    add_face(&|u, v| Vec3::new(-half.x, u * half.y, v * half.z), true);
    // +y and -y faces.
    add_face(&|u, v| Vec3::new(u * half.x, half.y, v * half.z), true);
    add_face(&|u, v| Vec3::new(u * half.x, -half.y, v * half.z), false);
    // +z and -z faces.
    add_face(&|u, v| Vec3::new(u * half.x, v * half.y, half.z), false);
    add_face(&|u, v| Vec3::new(u * half.x, v * half.y, -half.z), true);
    mesh
}

/// A cylinder of `radius` and `height` along `z`, centered at the origin,
/// with `segments` sides and `stacks` vertical subdivisions. Open-ended
/// (no caps): limb segments connect to neighbors, so caps are never visible.
///
/// # Panics
///
/// Panics if `radius` or `height` is not positive, `segments < 3`, or
/// `stacks == 0`.
pub fn cylinder(radius: f64, height: f64, segments: usize, stacks: usize) -> TriMesh {
    assert!(radius > 0.0 && height > 0.0, "cylinder dimensions must be positive");
    assert!(segments >= 3, "cylinder needs at least 3 segments");
    assert!(stacks > 0, "cylinder needs at least 1 stack");
    let mut vertices = Vec::with_capacity((segments + 1) * (stacks + 1));
    for is in 0..=stacks {
        let z = -height / 2.0 + height * is as f64 / stacks as f64;
        for ia in 0..=segments {
            let theta = std::f64::consts::TAU * ia as f64 / segments as f64;
            vertices.push(Vec3::new(radius * theta.cos(), radius * theta.sin(), z));
        }
    }
    let idx = |ia: usize, is: usize| (is * (segments + 1) + ia) as u32;
    let mut faces = Vec::with_capacity(segments * stacks * 2);
    for is in 0..stacks {
        for ia in 0..segments {
            let (a, b, c, d) = (
                idx(ia, is),
                idx(ia + 1, is),
                idx(ia + 1, is + 1),
                idx(ia, is + 1),
            );
            faces.push([a, b, c]);
            faces.push([a, c, d]);
        }
    }
    TriMesh::from_faces(vertices, faces)
}

/// A UV-tessellated ellipsoid with semi-axes `(rx, ry, rz)` centered at the
/// origin. `slices` bands of longitude, `stacks` bands of latitude.
///
/// # Panics
///
/// Panics if any semi-axis is not positive, `slices < 3`, or `stacks < 2`.
pub fn ellipsoid(rx: f64, ry: f64, rz: f64, slices: usize, stacks: usize) -> TriMesh {
    assert!(rx > 0.0 && ry > 0.0 && rz > 0.0, "semi-axes must be positive");
    assert!(slices >= 3 && stacks >= 2, "ellipsoid tessellation too coarse");
    let mut vertices = Vec::new();
    for is in 0..=stacks {
        // Latitude from -pi/2 (south pole) to +pi/2 (north pole).
        let lat = -std::f64::consts::FRAC_PI_2
            + std::f64::consts::PI * is as f64 / stacks as f64;
        let (sl, cl) = lat.sin_cos();
        for ia in 0..=slices {
            let lon = std::f64::consts::TAU * ia as f64 / slices as f64;
            let (slon, clon) = lon.sin_cos();
            vertices.push(Vec3::new(rx * cl * clon, ry * cl * slon, rz * sl));
        }
    }
    let idx = |ia: usize, is: usize| (is * (slices + 1) + ia) as u32;
    let mut faces = Vec::new();
    for is in 0..stacks {
        for ia in 0..slices {
            let (a, b, c, d) = (
                idx(ia, is),
                idx(ia + 1, is),
                idx(ia + 1, is + 1),
                idx(ia, is + 1),
            );
            if is != 0 {
                faces.push([a, b, c]);
            }
            if is != stacks - 1 {
                faces.push([a, c, d]);
            }
        }
    }
    TriMesh::from_faces(vertices, faces)
}

/// A capsule-like limb along `z` from `z = 0` to `z = length`, built from a
/// cylinder (no spherical caps; joints overlap in the body model).
///
/// # Panics
///
/// Panics if `radius` or `length` is not positive.
pub fn limb(radius: f64, length: f64, segments: usize) -> TriMesh {
    assert!(radius > 0.0 && length > 0.0, "limb dimensions must be positive");
    cylinder(radius, length, segments, 2).translated(Vec3::new(0.0, 0.0, length / 2.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plate_area_and_count() {
        let p = plate(2.0, 3.0, 4, 6);
        assert_eq!(p.triangle_count(), 4 * 6 * 2);
        assert!((p.surface_area() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn plate_normals_face_negative_y() {
        let p = plate(1.0, 1.0, 2, 2);
        for t in p.triangles() {
            assert!(t.normal.y < -0.99, "normal {:?} should face -y", t.normal);
        }
    }

    #[test]
    #[should_panic(expected = "plate dimensions must be positive")]
    fn zero_size_plate_panics() {
        plate(0.0, 1.0, 1, 1);
    }

    #[test]
    fn cuboid_area_matches_analytic() {
        let b = cuboid(Vec3::new(1.0, 2.0, 3.0), 2);
        let analytic = 2.0 * (1.0 * 2.0 + 2.0 * 3.0 + 1.0 * 3.0);
        assert!((b.surface_area() - analytic).abs() < 1e-9);
    }

    #[test]
    fn cuboid_normals_point_outward() {
        let b = cuboid(Vec3::splat(2.0), 1);
        for t in b.triangles() {
            // For a convex solid centered at the origin, outward normals
            // satisfy normal . centroid > 0.
            assert!(
                t.normal.dot(t.centroid) > 0.0,
                "inward-facing normal {:?} at {:?}",
                t.normal,
                t.centroid
            );
        }
    }

    #[test]
    fn cylinder_area_approaches_analytic() {
        let c = cylinder(0.5, 2.0, 64, 4);
        let analytic = std::f64::consts::TAU * 0.5 * 2.0;
        assert!((c.surface_area() - analytic).abs() / analytic < 0.01);
    }

    #[test]
    fn cylinder_normals_point_outward() {
        let c = cylinder(1.0, 1.0, 16, 2);
        for t in c.triangles() {
            let radial = Vec3::new(t.centroid.x, t.centroid.y, 0.0).normalized();
            assert!(t.normal.dot(radial) > 0.5);
        }
    }

    #[test]
    fn ellipsoid_area_close_to_sphere_for_equal_axes() {
        let e = ellipsoid(1.0, 1.0, 1.0, 48, 24);
        let analytic = 4.0 * std::f64::consts::PI;
        assert!((e.surface_area() - analytic).abs() / analytic < 0.01);
    }

    #[test]
    fn ellipsoid_normals_point_outward() {
        let e = ellipsoid(0.5, 0.7, 0.9, 12, 8);
        for t in e.triangles() {
            if t.area > 1e-12 {
                assert!(t.normal.dot(t.centroid) > 0.0);
            }
        }
    }

    #[test]
    fn ellipsoid_bbox_matches_semiaxes() {
        let e = ellipsoid(0.5, 1.0, 2.0, 16, 8);
        let (lo, hi) = e.bounding_box().unwrap();
        assert!((hi.z - 2.0).abs() < 1e-9 && (lo.z + 2.0).abs() < 1e-9);
        assert!(hi.x <= 0.5 + 1e-9 && hi.y <= 1.0 + 1e-9);
    }

    #[test]
    fn limb_spans_zero_to_length() {
        let l = limb(0.05, 0.3, 8);
        let (lo, hi) = l.bounding_box().unwrap();
        assert!(lo.z.abs() < 1e-9);
        assert!((hi.z - 0.3).abs() < 1e-9);
    }
}
