//! Radar line-of-sight filtering: back-face culling and coarse occlusion.
//!
//! The paper's simulator "determines which triangles on the mesh are visible
//! from the radar's perspective, filtering out occluded surfaces" and models
//! only "the single-sided surface that is reachable by the radar" (Fig. 4).
//! We reproduce that in two stages:
//!
//! 1. **Back-face culling** — a triangle whose outward normal points away
//!    from the radar cannot reflect toward it.
//! 2. **Angular z-buffer** — triangles are binned by (azimuth, elevation)
//!    as seen from the radar; within each bin only the nearest surfaces are
//!    kept, approximating self-occlusion (e.g. the torso hides the far arm)
//!    at a small fraction of ray-tracing cost.

use crate::{Triangle, TriMesh, Vec3};

/// Returns the triangles of `mesh` that pass back-face culling as seen from
/// `viewpoint` — i.e. those with `normal . (viewpoint - centroid) > 0`.
///
/// Degenerate (zero-area) triangles are dropped.
///
/// # Examples
///
/// ```
/// use mmwave_geom::{primitives, visibility, Vec3};
/// let sphere = primitives::ellipsoid(0.5, 0.5, 0.5, 16, 8)
///     .translated(Vec3::new(0.0, 2.0, 0.0));
/// let vis = visibility::visible_triangles(&sphere, Vec3::ZERO);
/// // Roughly half of a convex body faces any external viewpoint.
/// assert!(vis.len() < sphere.triangle_count());
/// assert!(vis.len() > sphere.triangle_count() / 4);
/// ```
pub fn visible_triangles(mesh: &TriMesh, viewpoint: Vec3) -> Vec<Triangle> {
    mesh.triangles()
        .filter(|t| t.area > 1e-12 && t.normal.dot(viewpoint - t.centroid) > 0.0)
        .collect()
}

/// Configuration for [`occlusion_filter`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OcclusionConfig {
    /// Number of azimuth bins across the +/- 90 degree field of view.
    pub azimuth_bins: usize,
    /// Number of elevation bins across the +/- 90 degree field of view.
    pub elevation_bins: usize,
    /// A triangle is kept if it is within this distance (meters) of the
    /// nearest surface in its angular bin. Allows partially-overlapping
    /// surfaces (e.g. a trigger plate a few millimeters off the chest) to
    /// coexist rather than being winner-take-all.
    pub depth_tolerance: f64,
}

impl Default for OcclusionConfig {
    fn default() -> Self {
        OcclusionConfig {
            azimuth_bins: 64,
            elevation_bins: 32,
            depth_tolerance: 0.12,
        }
    }
}

/// Filters back-face-culled triangles through a coarse angular z-buffer as
/// seen from `viewpoint`.
///
/// Within each (azimuth, elevation) bin, only triangles within
/// `depth_tolerance` of the closest centroid survive. This approximates
/// self-occlusion: body parts behind the torso do not reach the radar.
pub fn occlusion_filter(
    triangles: Vec<Triangle>,
    viewpoint: Vec3,
    config: &OcclusionConfig,
) -> Vec<Triangle> {
    if triangles.is_empty() {
        return triangles;
    }
    let naz = config.azimuth_bins.max(1);
    let nel = config.elevation_bins.max(1);
    let bin_of = |t: &Triangle| -> (usize, f64) {
        let d = t.centroid - viewpoint;
        let range = d.norm();
        let az = d.x.atan2(d.y); // [-pi, pi], but FOV limited to +/- pi/2
        let el = (d.z / range.max(1e-12)).asin();
        let half = std::f64::consts::FRAC_PI_2;
        let ai = (((az + half) / std::f64::consts::PI) * naz as f64)
            .clamp(0.0, naz as f64 - 1.0) as usize;
        let ei = (((el + half) / std::f64::consts::PI) * nel as f64)
            .clamp(0.0, nel as f64 - 1.0) as usize;
        (ei * naz + ai, range)
    };
    // Pass 1: nearest range per bin.
    let mut nearest = vec![f64::INFINITY; naz * nel];
    let mut bins = Vec::with_capacity(triangles.len());
    for t in &triangles {
        let (bin, range) = bin_of(t);
        if range < nearest[bin] {
            nearest[bin] = range;
        }
        bins.push((bin, range));
    }
    // Pass 2: keep triangles near the front surface of their bin
    // neighborhood. Comparing against a 3x3 neighborhood of bins makes the
    // filter robust to tessellations sparser than the bin grid.
    let front_of = |bin: usize| -> f64 {
        let (bi, bj) = (bin % naz, bin / naz);
        let mut best = f64::INFINITY;
        for dj in -1i64..=1 {
            for di in -1i64..=1 {
                let i = bi as i64 + di;
                let j = bj as i64 + dj;
                if i >= 0 && (i as usize) < naz && j >= 0 && (j as usize) < nel {
                    best = best.min(nearest[j as usize * naz + i as usize]);
                }
            }
        }
        best
    };
    triangles
        .into_iter()
        .zip(bins)
        .filter(|(_, (bin, range))| *range <= front_of(*bin) + config.depth_tolerance)
        .map(|(t, _)| t)
        .collect()
}

/// Convenience: back-face culling followed by the angular z-buffer.
pub fn radar_visible(mesh: &TriMesh, viewpoint: Vec3, config: &OcclusionConfig) -> Vec<Triangle> {
    occlusion_filter(visible_triangles(mesh, viewpoint), viewpoint, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives;

    fn radar() -> Vec3 {
        Vec3::ZERO
    }

    #[test]
    fn backface_culling_keeps_front_of_plate_only() {
        // Plate faces -y; radar sits at origin, plate at y = 2: front visible.
        let front = primitives::plate(0.5, 0.5, 2, 2).translated(Vec3::new(0.0, 2.0, 0.0));
        assert_eq!(visible_triangles(&front, radar()).len(), front.triangle_count());
        // Rotate the plate in place so it faces away from the radar:
        // nothing survives back-face culling.
        let center = Vec3::new(0.0, 2.0, 0.0);
        let away = front
            .translated(-center)
            .transformed(&crate::RigidTransform::rotation(
                crate::Mat3::rotation_z(std::f64::consts::PI),
            ))
            .translated(center);
        assert!(visible_triangles(&away, radar()).is_empty());
    }

    #[test]
    fn convex_body_shows_at_most_half_its_faces() {
        let sphere =
            primitives::ellipsoid(0.4, 0.4, 0.4, 24, 12).translated(Vec3::new(0.0, 3.0, 0.0));
        let vis = visible_triangles(&sphere, radar());
        assert!(vis.len() <= sphere.triangle_count() / 2 + 24);
        assert!(!vis.is_empty());
    }

    #[test]
    fn occlusion_removes_surface_hidden_behind_another() {
        // Two parallel plates, both facing the radar; the far one is hidden.
        let near = primitives::plate(1.0, 1.0, 4, 4).translated(Vec3::new(0.0, 2.0, 0.0));
        let far = primitives::plate(1.0, 1.0, 4, 4).translated(Vec3::new(0.0, 4.0, 0.0));
        let mut scene = near.clone();
        scene.merge(&far);
        let cfg = OcclusionConfig { depth_tolerance: 0.05, ..OcclusionConfig::default() };
        let vis = radar_visible(&scene, radar(), &cfg);
        // All surviving triangles are on the near plate (y ~= 2).
        assert!(!vis.is_empty());
        for t in &vis {
            assert!(t.centroid.y < 3.0, "far-plate triangle survived: {:?}", t.centroid);
        }
    }

    #[test]
    fn occlusion_keeps_laterally_separated_objects() {
        let a = primitives::plate(0.4, 0.4, 2, 2).translated(Vec3::new(-1.0, 2.0, 0.0));
        let b = primitives::plate(0.4, 0.4, 2, 2).translated(Vec3::new(1.0, 4.0, 0.0));
        let mut scene = a.clone();
        scene.merge(&b);
        let vis = radar_visible(&scene, radar(), &OcclusionConfig::default());
        let near_count = vis.iter().filter(|t| t.centroid.y < 3.0).count();
        let far_count = vis.len() - near_count;
        assert!(near_count > 0 && far_count > 0, "both plates should be visible");
    }

    #[test]
    fn depth_tolerance_allows_trigger_on_chest() {
        // A small plate 5 mm in front of a big plate: with default tolerance
        // both survive (the trigger is not swallowed by the body).
        let body = primitives::plate(0.6, 0.6, 4, 4).translated(Vec3::new(0.0, 2.0, 0.0));
        let trigger = primitives::plate(0.05, 0.05, 1, 1).translated(Vec3::new(0.0, 1.995, 0.0));
        let mut scene = body.clone();
        scene.merge(&trigger);
        let vis = radar_visible(&scene, radar(), &OcclusionConfig::default());
        let trigger_tris = vis.iter().filter(|t| t.area < 0.002).count();
        assert!(trigger_tris >= 2, "trigger should remain visible on the chest");
    }

    #[test]
    fn empty_mesh_yields_no_triangles() {
        let vis = radar_visible(&TriMesh::new(), radar(), &OcclusionConfig::default());
        assert!(vis.is_empty());
    }
}
