//! Rotation matrices and rigid transforms.

use crate::Vec3;
use serde::{Deserialize, Serialize};
use std::ops::Mul;

/// A 3x3 matrix, stored row-major. Used for rotations and scaling of mesh
/// vertices when posing body segments and placing triggers.
///
/// # Examples
///
/// ```
/// use mmwave_geom::{Mat3, Vec3};
/// let r = Mat3::rotation_z(std::f64::consts::FRAC_PI_2);
/// let v = r * Vec3::X;
/// assert!((v - Vec3::Y).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat3 {
    /// Rows of the matrix.
    pub rows: [[f64; 3]; 3],
}

impl Default for Mat3 {
    fn default() -> Self {
        Mat3::IDENTITY
    }
}

impl Mat3 {
    /// The identity matrix.
    pub const IDENTITY: Mat3 = Mat3 {
        rows: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
    };

    /// Builds a matrix from rows.
    pub const fn from_rows(rows: [[f64; 3]; 3]) -> Self {
        Mat3 { rows }
    }

    /// Rotation about the `x` axis by `angle` radians (right-handed).
    pub fn rotation_x(angle: f64) -> Mat3 {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows([[1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]])
    }

    /// Rotation about the `y` axis by `angle` radians (right-handed).
    pub fn rotation_y(angle: f64) -> Mat3 {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows([[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]])
    }

    /// Rotation about the `z` axis by `angle` radians (right-handed).
    ///
    /// In the radar frame (`z` up), this rotates in the horizontal plane and
    /// is the rotation used to place a user at an azimuth angle.
    pub fn rotation_z(angle: f64) -> Mat3 {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])
    }

    /// Rotation about an arbitrary unit `axis` by `angle` radians
    /// (Rodrigues' formula).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `axis` is not unit length.
    pub fn rotation_axis(axis: Vec3, angle: f64) -> Mat3 {
        debug_assert!((axis.norm() - 1.0).abs() < 1e-9, "axis must be unit length");
        let (s, c) = angle.sin_cos();
        let t = 1.0 - c;
        let (x, y, z) = (axis.x, axis.y, axis.z);
        Mat3::from_rows([
            [t * x * x + c, t * x * y - s * z, t * x * z + s * y],
            [t * x * y + s * z, t * y * y + c, t * y * z - s * x],
            [t * x * z - s * y, t * y * z + s * x, t * z * z + c],
        ])
    }

    /// Uniform or per-axis scaling matrix.
    pub fn scaling(sx: f64, sy: f64, sz: f64) -> Mat3 {
        Mat3::from_rows([[sx, 0.0, 0.0], [0.0, sy, 0.0], [0.0, 0.0, sz]])
    }

    /// Matrix transpose. For pure rotations this is the inverse.
    pub fn transpose(&self) -> Mat3 {
        let r = &self.rows;
        Mat3::from_rows([
            [r[0][0], r[1][0], r[2][0]],
            [r[0][1], r[1][1], r[2][1]],
            [r[0][2], r[1][2], r[2][2]],
        ])
    }

    /// Determinant (used in tests to verify rotations stay orthonormal).
    pub fn determinant(&self) -> f64 {
        let r = &self.rows;
        r[0][0] * (r[1][1] * r[2][2] - r[1][2] * r[2][1])
            - r[0][1] * (r[1][0] * r[2][2] - r[1][2] * r[2][0])
            + r[0][2] * (r[1][0] * r[2][1] - r[1][1] * r[2][0])
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        let r = &self.rows;
        Vec3::new(
            r[0][0] * v.x + r[0][1] * v.y + r[0][2] * v.z,
            r[1][0] * v.x + r[1][1] * v.y + r[1][2] * v.z,
            r[2][0] * v.x + r[2][1] * v.y + r[2][2] * v.z,
        )
    }
}

impl Mul<Mat3> for Mat3 {
    type Output = Mat3;
    fn mul(self, rhs: Mat3) -> Mat3 {
        let mut out = [[0.0; 3]; 3];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (0..3).map(|k| self.rows[i][k] * rhs.rows[k][j]).sum();
            }
        }
        Mat3::from_rows(out)
    }
}

/// A rigid placement: rotate then translate (`p' = R p + t`).
///
/// Used to pose body segments in world space and to attach trigger plates to
/// body sites.
///
/// # Examples
///
/// ```
/// use mmwave_geom::{Mat3, RigidTransform, Vec3};
/// let t = RigidTransform::new(
///     Mat3::rotation_z(std::f64::consts::PI),
///     Vec3::new(0.0, 2.0, 0.0),
/// );
/// let p = t.apply(Vec3::X);
/// assert!((p - Vec3::new(-1.0, 2.0, 0.0)).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RigidTransform {
    /// Rotation applied first.
    pub rotation: Mat3,
    /// Translation applied second.
    pub translation: Vec3,
}

impl RigidTransform {
    /// The identity transform.
    pub const IDENTITY: RigidTransform = RigidTransform {
        rotation: Mat3::IDENTITY,
        translation: Vec3::ZERO,
    };

    /// Creates a transform from a rotation and translation.
    pub const fn new(rotation: Mat3, translation: Vec3) -> Self {
        RigidTransform { rotation, translation }
    }

    /// Pure translation.
    pub const fn translation(t: Vec3) -> Self {
        RigidTransform { rotation: Mat3::IDENTITY, translation: t }
    }

    /// Pure rotation.
    pub const fn rotation(r: Mat3) -> Self {
        RigidTransform { rotation: r, translation: Vec3::ZERO }
    }

    /// Applies the transform to a point.
    #[inline]
    pub fn apply(&self, p: Vec3) -> Vec3 {
        self.rotation * p + self.translation
    }

    /// Applies only the rotational part (correct for directions/velocities).
    #[inline]
    pub fn apply_vector(&self, v: Vec3) -> Vec3 {
        self.rotation * v
    }

    /// Composition: `self.then(&g)` applies `self` first, then `g`.
    pub fn then(&self, g: &RigidTransform) -> RigidTransform {
        RigidTransform {
            rotation: g.rotation * self.rotation,
            translation: g.rotation * self.translation + g.translation,
        }
    }

    /// Inverse transform (assumes the rotation part is orthonormal).
    pub fn inverse(&self) -> RigidTransform {
        let rt = self.rotation.transpose();
        RigidTransform {
            rotation: rt,
            translation: -(rt * self.translation),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn assert_close(a: Vec3, b: Vec3) {
        assert!((a - b).norm() < 1e-12, "{a} != {b}");
    }

    #[test]
    fn axis_rotations_map_basis_vectors() {
        assert_close(Mat3::rotation_z(FRAC_PI_2) * Vec3::X, Vec3::Y);
        assert_close(Mat3::rotation_x(FRAC_PI_2) * Vec3::Y, Vec3::Z);
        assert_close(Mat3::rotation_y(FRAC_PI_2) * Vec3::Z, Vec3::X);
    }

    #[test]
    fn rodrigues_matches_axis_rotations() {
        for angle in [0.3, 1.2, -0.7] {
            let r1 = Mat3::rotation_z(angle);
            let r2 = Mat3::rotation_axis(Vec3::Z, angle);
            let v = Vec3::new(0.3, -1.0, 2.0);
            assert_close(r1 * v, r2 * v);
        }
    }

    #[test]
    fn rotations_preserve_length_and_orientation() {
        let r = Mat3::rotation_axis(Vec3::new(1.0, 2.0, -1.0).normalized(), 0.8);
        let v = Vec3::new(0.5, -0.25, 3.0);
        assert!(((r * v).norm() - v.norm()).abs() < 1e-12);
        assert!((r.determinant() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transpose_inverts_rotation() {
        let r = Mat3::rotation_axis(Vec3::new(0.0, 1.0, 1.0).normalized(), 1.1);
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_close(r.transpose() * (r * v), v);
    }

    #[test]
    fn matrix_product_associates_with_application() {
        let a = Mat3::rotation_x(0.3);
        let b = Mat3::rotation_z(-0.9);
        let v = Vec3::new(1.0, -2.0, 0.5);
        assert_close((a * b) * v, a * (b * v));
    }

    #[test]
    fn rigid_transform_composition_and_inverse() {
        let f = RigidTransform::new(Mat3::rotation_z(0.4), Vec3::new(1.0, 2.0, 3.0));
        let g = RigidTransform::new(Mat3::rotation_x(-0.2), Vec3::new(-1.0, 0.0, 0.5));
        let p = Vec3::new(0.2, 0.4, -0.6);
        // Composition applies f first.
        assert_close(f.then(&g).apply(p), g.apply(f.apply(p)));
        // Inverse round-trips.
        assert_close(f.inverse().apply(f.apply(p)), p);
        assert_close(f.apply(f.inverse().apply(p)), p);
    }

    #[test]
    fn pure_translation_moves_points_not_vectors() {
        let t = RigidTransform::translation(Vec3::new(5.0, 0.0, 0.0));
        assert_close(t.apply(Vec3::ZERO), Vec3::new(5.0, 0.0, 0.0));
        assert_close(t.apply_vector(Vec3::Y), Vec3::Y);
    }

    #[test]
    fn rotation_pi_flips_xy() {
        let t = RigidTransform::rotation(Mat3::rotation_z(PI));
        assert_close(t.apply(Vec3::new(1.0, 1.0, 0.0)), Vec3::new(-1.0, -1.0, 0.0));
    }

    #[test]
    fn scaling_matrix_scales_each_axis() {
        let s = Mat3::scaling(2.0, 3.0, 4.0);
        assert_close(s * Vec3::new(1.0, 1.0, 1.0), Vec3::new(2.0, 3.0, 4.0));
    }
}
