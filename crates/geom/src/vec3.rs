//! Double-precision 3D vectors.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 3D vector (or point) in meters, in the radar's right-handed frame:
/// `x` points to the radar's right, `y` points away from the radar
/// (boresight / range direction), and `z` points up.
///
/// # Examples
///
/// ```
/// use mmwave_geom::Vec3;
/// let a = Vec3::new(1.0, 2.0, 2.0);
/// assert_eq!(a.norm(), 3.0);
/// assert_eq!(a.dot(Vec3::Z), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// Rightward component (meters).
    pub x: f64,
    /// Down-range component (meters).
    pub y: f64,
    /// Upward component (meters).
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    /// Unit vector along `x` (radar right).
    pub const X: Vec3 = Vec3 { x: 1.0, y: 0.0, z: 0.0 };
    /// Unit vector along `y` (radar boresight).
    pub const Y: Vec3 = Vec3 { x: 0.0, y: 1.0, z: 0.0 };
    /// Unit vector along `z` (up).
    pub const Z: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 1.0 };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product (right-handed).
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (avoids the square root).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, rhs: Vec3) -> f64 {
        (self - rhs).norm()
    }

    /// Returns the unit vector pointing in the same direction.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the vector is (near) zero; in release builds
    /// a zero vector yields non-finite components.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 1e-12, "cannot normalize a (near) zero vector");
        self / n
    }

    /// Returns the unit vector, or `None` if the norm is below `1e-12`.
    #[inline]
    pub fn try_normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n > 1e-12 {
            Some(self / n)
        } else {
            None
        }
    }

    /// Linear interpolation: `self` at `t = 0`, `rhs` at `t = 1`.
    #[inline]
    pub fn lerp(self, rhs: Vec3, t: f64) -> Vec3 {
        self + (rhs - self) * t
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// True if every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Azimuth angle in radians measured from boresight (`+y`), positive
    /// toward `+x` (radar right). This is the angle the radar's angle-FFT
    /// estimates for a uniform linear array along `x`.
    #[inline]
    pub fn azimuth(self) -> f64 {
        self.x.atan2(self.y)
    }

    /// Range in the horizontal plane (ignores height), as seen by a radar at
    /// the origin.
    #[inline]
    pub fn ground_range(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4}, {:.4})", self.x, self.y, self.z)
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f64; 3] {
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Vec3::new(1.0, -2.0, 3.0);
        let b = Vec3::new(0.5, 4.0, -1.0);
        assert_eq!(a + b - b, a);
        assert_eq!(a + Vec3::ZERO, a);
        assert_eq!(-(-a), a);
        assert_eq!(a * 2.0 / 2.0, a);
        assert_eq!(2.0 * a, a * 2.0);
    }

    #[test]
    fn dot_and_cross() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
        // Cross product is antisymmetric.
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 4.0);
        assert_eq!(a.cross(b), -(b.cross(a)));
        // a x b is orthogonal to both.
        assert!(a.cross(b).dot(a).abs() < 1e-12);
        assert!(a.cross(b).dot(b).abs() < 1e-12);
    }

    #[test]
    fn norm_distance_normalize() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_sq(), 25.0);
        assert!((v.normalized().norm() - 1.0).abs() < 1e-14);
        assert_eq!(Vec3::ZERO.distance(v), 5.0);
        assert!(Vec3::ZERO.try_normalized().is_none());
        assert!(v.try_normalized().is_some());
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn azimuth_signs() {
        // Boresight is +y: zero azimuth.
        assert_eq!(Vec3::new(0.0, 1.0, 0.0).azimuth(), 0.0);
        // Right of boresight: positive.
        assert!(Vec3::new(1.0, 1.0, 0.0).azimuth() > 0.0);
        // Left of boresight: negative.
        assert!(Vec3::new(-1.0, 1.0, 0.0).azimuth() < 0.0);
        // 45 degrees.
        let az = Vec3::new(1.0, 1.0, 0.0).azimuth();
        assert!((az - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn conversions_roundtrip() {
        let v = Vec3::new(1.5, -2.5, 3.5);
        let a: [f64; 3] = v.into();
        assert_eq!(Vec3::from(a), v);
    }

    #[test]
    fn min_max_componentwise() {
        let a = Vec3::new(1.0, 5.0, -3.0);
        let b = Vec3::new(2.0, -1.0, 0.0);
        assert_eq!(a.min(b), Vec3::new(1.0, -1.0, -3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 0.0));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Vec3::ZERO).is_empty());
    }
}
