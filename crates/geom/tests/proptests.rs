//! Property-based tests for the geometry substrate.

use mmwave_geom::{primitives, visibility, Mat3, RigidTransform, TriMesh, Vec3};
use proptest::prelude::*;

fn arb_vec3() -> impl Strategy<Value = Vec3> {
    (-10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn arb_unit() -> impl Strategy<Value = Vec3> {
    arb_vec3().prop_filter_map("norm too small", |v| v.try_normalized())
}

proptest! {
    #[test]
    fn rotation_preserves_norm(axis in arb_unit(), angle in -6.28f64..6.28, v in arb_vec3()) {
        let r = Mat3::rotation_axis(axis, angle);
        prop_assert!(((r * v).norm() - v.norm()).abs() < 1e-9);
    }

    #[test]
    fn rotation_determinant_is_one(axis in arb_unit(), angle in -6.28f64..6.28) {
        let r = Mat3::rotation_axis(axis, angle);
        prop_assert!((r.determinant() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rigid_inverse_roundtrips(
        axis in arb_unit(),
        angle in -3.0f64..3.0,
        t in arb_vec3(),
        p in arb_vec3(),
    ) {
        let f = RigidTransform::new(Mat3::rotation_axis(axis, angle), t);
        let q = f.inverse().apply(f.apply(p));
        prop_assert!((q - p).norm() < 1e-8);
    }

    #[test]
    fn composition_matches_sequential_application(
        a1 in -3.0f64..3.0, a2 in -3.0f64..3.0,
        t1 in arb_vec3(), t2 in arb_vec3(), p in arb_vec3(),
    ) {
        let f = RigidTransform::new(Mat3::rotation_x(a1), t1);
        let g = RigidTransform::new(Mat3::rotation_z(a2), t2);
        let lhs = f.then(&g).apply(p);
        let rhs = g.apply(f.apply(p));
        prop_assert!((lhs - rhs).norm() < 1e-9);
    }

    #[test]
    fn dot_cross_lagrange_identity(a in arb_vec3(), b in arb_vec3()) {
        // |a x b|^2 + (a.b)^2 = |a|^2 |b|^2
        let lhs = a.cross(b).norm_sq() + a.dot(b).powi(2);
        let rhs = a.norm_sq() * b.norm_sq();
        prop_assert!((lhs - rhs).abs() <= 1e-6 * rhs.max(1.0));
    }

    #[test]
    fn surface_area_invariant_under_rigid_motion(
        axis in arb_unit(), angle in -3.0f64..3.0, t in arb_vec3(),
        rx in 0.1f64..1.0, ry in 0.1f64..1.0, rz in 0.1f64..1.0,
    ) {
        let mesh = primitives::ellipsoid(rx, ry, rz, 8, 4);
        let moved = mesh.transformed(&RigidTransform::new(Mat3::rotation_axis(axis, angle), t));
        let (a, b) = (mesh.surface_area(), moved.surface_area());
        prop_assert!((a - b).abs() < 1e-9 * a.max(1.0));
    }

    #[test]
    fn plate_area_matches_dimensions(
        w in 0.01f64..2.0, h in 0.01f64..2.0,
        nx in 1usize..6, nz in 1usize..6,
    ) {
        let p = primitives::plate(w, h, nx, nz);
        prop_assert!((p.surface_area() - w * h).abs() < 1e-9);
        prop_assert_eq!(p.triangle_count(), nx * nz * 2);
    }

    #[test]
    fn visible_subset_never_grows(offset_y in 1.0f64..5.0) {
        let sphere = primitives::ellipsoid(0.3, 0.3, 0.3, 12, 6)
            .translated(Vec3::new(0.0, offset_y, 0.0));
        let vis = visibility::visible_triangles(&sphere, Vec3::ZERO);
        prop_assert!(vis.len() <= sphere.triangle_count());
        let occluded = visibility::radar_visible(
            &sphere,
            Vec3::ZERO,
            &visibility::OcclusionConfig::default(),
        );
        prop_assert!(occluded.len() <= vis.len());
    }

    #[test]
    fn merge_preserves_counts(tx in arb_vec3()) {
        let a = primitives::cuboid(Vec3::splat(1.0), 1);
        let b = primitives::cylinder(0.2, 1.0, 6, 2).translated(tx);
        let mut m = TriMesh::new();
        m.merge(&a);
        m.merge(&b);
        prop_assert_eq!(m.triangle_count(), a.triangle_count() + b.triangle_count());
        prop_assert_eq!(m.vertex_count(), a.vertex_count() + b.vertex_count());
    }
}
