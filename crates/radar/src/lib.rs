//! FMCW mmWave radar simulator and capture pipeline.
//!
//! This crate stands in for the paper's TI MMWCAS-RF-EVM radar *and* for the
//! authors' PyTorch signal simulator (Section VI-D), which are one and the
//! same model: Eq. (3) sums an attenuated, phase-shifted complex exponential
//! over every visible triangular surface patch to produce the
//! intermediate-frequency (IF) signal at each receive antenna.
//!
//! Module map:
//!
//! * [`config`] — FMCW waveform and TDM-MIMO virtual-array geometry
//!   (defaults are a laptop-scale profile; [`config::RadarConfig::mmwcas_like`]
//!   configures the paper's 86-virtual-antenna cascade);
//! * [`material`] — reflectivity models (skin, aluminum, wood, fabric...);
//! * [`scene`] — static environment clutter; training-hallway and
//!   attack-classroom presets (Fig. 6);
//! * [`simulator`] — the Eq. (3) synthesizer, with an exact per-chirp,
//!   per-antenna path-length phase model and incremental-phasor inner loop;
//! * [`trigger`] — aluminum reflector plates and their attachment to body
//!   sites (including under-clothing attenuation);
//! * [`placement`] — the 12-position (distance x angle) experiment grid;
//! * [`capture`] — the end-to-end "perform activity at position, record
//!   DRAI sequence" pipeline, exploiting IF linearity to emit clean and
//!   triggered versions of each sample in one pass;
//! * [`faults`] — deterministic sensor fault injection (frame dropout, ADC
//!   saturation, RF interference bursts, LO phase noise) for robustness
//!   campaigns.
//!
//! # Examples
//!
//! ```
//! use mmwave_body::{Activity, ActivitySampler, Participant, SampleVariation};
//! use mmwave_radar::capture::{CaptureConfig, Capturer};
//! use mmwave_radar::placement::Placement;
//! use mmwave_radar::scene::Environment;
//!
//! let capturer = Capturer::new(CaptureConfig::fast());
//! let sampler = ActivitySampler::new(
//!     Participant::average(),
//!     8,
//!     capturer.config().frame_rate,
//! );
//! let seq = sampler.sample(Activity::Push, &SampleVariation::nominal());
//! let placement = Placement::new(1.2, 0.0);
//! let out = capturer.capture(&seq, placement, &Environment::hallway(), None, 1);
//! assert_eq!(out.clean.len(), 8);
//! ```

pub mod capture;
pub mod config;
pub mod faults;
pub mod material;
pub mod placement;
pub mod scene;
pub mod simulator;
pub mod trigger;

pub use capture::{CaptureConfig, CaptureOutput, Capturer, TriggerPlan};
pub use faults::{Fault, FaultInjector};
pub use config::RadarConfig;
pub use material::Material;
pub use placement::Placement;
pub use scene::Environment;
pub use simulator::IfSynthesizer;
pub use trigger::{Trigger, TriggerAttachment};
