//! Sensor fault injection on the capture path.
//!
//! Real mmWave deployments see imperfect captures: frames dropped by bus
//! congestion, ADC saturation from close-in reflectors, co-channel bursts
//! from other 77 GHz radars, and local-oscillator phase noise. A
//! [`FaultInjector`] composes these faults deterministically — the fault
//! realization is a pure function of the injector seed and the frame index
//! — so a clean capture and its triggered twin degrade identically and
//! experiment campaigns can sweep fault severity reproducibly.
//!
//! Amplitude-type faults are expressed relative to the frame's RMS sample
//! amplitude, so the same injector composes with any radar profile or
//! scene without retuning.

use mmwave_dsp::{Complex32, IfFrame};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One kind of sensor fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Fault {
    /// Drop the whole frame with this probability. The capture path
    /// zero-fills the frame's heatmap and the DSP layer interpolates it
    /// from its neighbors (see `mmwave_dsp::heatmap::repair_dropped_frames`).
    FrameDropout {
        /// Per-frame drop probability in `[0, 1]`.
        probability: f64,
    },
    /// Receiver front-end / ADC saturation: every sample magnitude is
    /// soft-clipped through `clip * tanh(r / clip)` where
    /// `clip = clip_rms_multiple x frame RMS amplitude`. Small signals pass
    /// nearly unchanged; strong reflections compress smoothly.
    Saturation {
        /// Saturation point as a multiple of the frame RMS amplitude.
        clip_rms_multiple: f32,
    },
    /// With `probability` per frame, add a narrowband tone burst across a
    /// random contiguous chirp window on all antennas (another radar
    /// sweeping through the victim's band).
    Interference {
        /// Per-frame burst probability in `[0, 1]`.
        probability: f64,
        /// Burst amplitude as a multiple of the frame RMS amplitude.
        rms_multiple: f32,
    },
    /// Local-oscillator phase noise: each chirp is rotated by a zero-mean
    /// Gaussian phase error, identical across antennas (they share the LO).
    PhaseNoise {
        /// Standard deviation of the per-chirp phase error in radians.
        sigma_radians: f32,
    },
}

/// A composable, deterministic sensor-fault injector.
///
/// # Examples
///
/// ```
/// use mmwave_dsp::IfFrame;
/// use mmwave_radar::faults::{Fault, FaultInjector};
///
/// let injector = FaultInjector::new(7)
///     .with(Fault::PhaseNoise { sigma_radians: 0.1 })
///     .with(Fault::FrameDropout { probability: 0.0 });
/// let mut frame = IfFrame::zeros(2, 4, 8);
/// let dropped = injector.apply(&mut frame, 0);
/// assert!(!dropped);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultInjector {
    faults: Vec<Fault>,
    seed: u64,
}

impl FaultInjector {
    /// Creates an injector with no faults.
    pub fn new(seed: u64) -> FaultInjector {
        FaultInjector { faults: Vec::new(), seed }
    }

    /// Adds a fault to the chain (applied in insertion order).
    pub fn with(mut self, fault: Fault) -> FaultInjector {
        self.faults.push(fault);
        self
    }

    /// The configured fault chain.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// True when no faults are configured (`apply` is then a no-op).
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// A one-knob profile for severity sweeps. `severity` is clamped to
    /// `[0, 1]`; zero yields an empty (no-op) injector, and one means 20%
    /// frame dropout, sigma = 0.25 rad phase noise, 30%-probability 4x-RMS
    /// interference bursts, and saturation at 1x the RMS amplitude.
    pub fn severity_profile(severity: f64, seed: u64) -> FaultInjector {
        let s = severity.clamp(0.0, 1.0);
        let injector = FaultInjector::new(seed);
        if s == 0.0 {
            return injector;
        }
        injector
            .with(Fault::FrameDropout { probability: 0.2 * s })
            .with(Fault::PhaseNoise { sigma_radians: 0.25 * s as f32 })
            .with(Fault::Interference { probability: 0.3 * s, rms_multiple: 4.0 })
            .with(Fault::Saturation { clip_rms_multiple: (4.0 - 3.0 * s) as f32 })
    }

    /// Applies the fault chain to `frame`. Deterministic per
    /// `(injector seed, frame_index)`: calling it on the clean and the
    /// triggered twin of the same frame draws the same realization, so the
    /// pair stays comparable. Returns `true` when the frame is dropped —
    /// the caller is expected to discard its heatmap and let the DSP layer
    /// repair the gap.
    pub fn apply(&self, frame: &mut IfFrame, frame_index: usize) -> bool {
        if self.faults.is_empty() {
            return false;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.seed
                ^ (frame_index as u64)
                    .wrapping_add(1)
                    .wrapping_mul(0xA076_1D64_78BD_642F),
        );
        let mut dropped = false;
        for fault in &self.faults {
            match *fault {
                Fault::FrameDropout { probability } => {
                    if rng.gen_bool(probability.clamp(0.0, 1.0)) {
                        dropped = true;
                    }
                }
                Fault::Saturation { clip_rms_multiple } => {
                    saturate(frame, clip_rms_multiple);
                }
                Fault::Interference { probability, rms_multiple } => {
                    // Draw the burst geometry unconditionally so the random
                    // stream seen by later faults does not depend on
                    // whether this burst fires.
                    let fire = rng.gen_bool(probability.clamp(0.0, 1.0));
                    let start = rng.gen_range(0..frame.n_chirps());
                    let len = rng.gen_range(1..=frame.n_chirps());
                    let bin_frac = rng.gen_range(0.0..1.0_f64);
                    let phase = rng.gen_range(0.0..std::f64::consts::TAU);
                    if fire {
                        interfere(frame, start, len, bin_frac, phase, rms_multiple);
                    }
                }
                Fault::PhaseNoise { sigma_radians } => {
                    phase_noise(frame, sigma_radians, &mut rng);
                }
            }
        }
        dropped
    }
}

fn rms_amplitude(frame: &IfFrame) -> f32 {
    (frame.energy() / frame.as_slice().len() as f64).sqrt() as f32
}

fn saturate(frame: &mut IfFrame, clip_rms_multiple: f32) {
    let clip = clip_rms_multiple * rms_amplitude(frame);
    let usable = clip.is_finite() && clip > 0.0;
    if !usable {
        return;
    }
    for vrx in 0..frame.n_vrx() {
        for chirp in 0..frame.n_chirps() {
            for z in frame.chirp_mut(vrx, chirp) {
                let r = z.abs();
                if r > 1e-12 {
                    *z = z.scale(clip * (r / clip).tanh() / r);
                }
            }
        }
    }
}

fn interfere(
    frame: &mut IfFrame,
    start: usize,
    len: usize,
    bin_frac: f64,
    phase: f64,
    rms_multiple: f32,
) {
    let amp = rms_multiple * rms_amplitude(frame);
    let usable = amp.is_finite() && amp > 0.0;
    if !usable {
        return;
    }
    let n_adc = frame.n_adc();
    let end = (start + len).min(frame.n_chirps());
    // Park the tone somewhere in the kept half-spectrum so it lands in the
    // processed range profile like a real interferer would.
    let tone_bin = bin_frac * n_adc as f64 / 2.0;
    for vrx in 0..frame.n_vrx() {
        for chirp in start..end {
            for (s, z) in frame.chirp_mut(vrx, chirp).iter_mut().enumerate() {
                let theta = std::f64::consts::TAU * tone_bin * s as f64 / n_adc as f64 + phase;
                *z += Complex32::from_polar(amp, theta as f32);
            }
        }
    }
}

fn phase_noise(frame: &mut IfFrame, sigma: f32, rng: &mut ChaCha8Rng) {
    for chirp in 0..frame.n_chirps() {
        let rot = Complex32::cis(sigma * gaussian(rng) as f32);
        for vrx in 0..frame.n_vrx() {
            for z in frame.chirp_mut(vrx, chirp) {
                *z *= rot;
            }
        }
    }
}

/// Standard normal via Box-Muller (keeps the crate free of heavier
/// distribution dependencies).
fn gaussian(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_frame(seed: u64) -> IfFrame {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut frame = IfFrame::zeros(4, 8, 16);
        for vrx in 0..4 {
            for chirp in 0..8 {
                for z in frame.chirp_mut(vrx, chirp) {
                    *z = Complex32::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
                }
            }
        }
        frame
    }

    #[test]
    fn application_is_deterministic() {
        let injector = FaultInjector::severity_profile(0.7, 99);
        let mut a = test_frame(1);
        let mut b = test_frame(1);
        let da = injector.apply(&mut a, 5);
        let db = injector.apply(&mut b, 5);
        assert_eq!(da, db);
        assert_eq!(a, b);
    }

    #[test]
    fn different_frame_indices_draw_different_realizations() {
        let injector =
            FaultInjector::new(3).with(Fault::PhaseNoise { sigma_radians: 0.5 });
        let mut a = test_frame(1);
        let mut b = test_frame(1);
        injector.apply(&mut a, 0);
        injector.apply(&mut b, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn dropout_probability_extremes() {
        let always = FaultInjector::new(0).with(Fault::FrameDropout { probability: 1.0 });
        let never = FaultInjector::new(0).with(Fault::FrameDropout { probability: 0.0 });
        let mut frame = test_frame(2);
        assert!(always.apply(&mut frame, 0));
        assert!(!never.apply(&mut frame, 0));
    }

    #[test]
    fn saturation_bounds_magnitudes() {
        let injector = FaultInjector::new(0).with(Fault::Saturation { clip_rms_multiple: 1.0 });
        let mut frame = test_frame(4);
        let clip = rms_amplitude(&frame);
        injector.apply(&mut frame, 0);
        for z in frame.as_slice() {
            assert!(z.abs() <= clip * 1.0001, "sample magnitude {} above clip {clip}", z.abs());
        }
    }

    #[test]
    fn phase_noise_preserves_energy() {
        let injector = FaultInjector::new(0).with(Fault::PhaseNoise { sigma_radians: 0.8 });
        let mut frame = test_frame(5);
        let before = frame.energy();
        injector.apply(&mut frame, 0);
        assert!((frame.energy() - before).abs() / before < 1e-4);
    }

    #[test]
    fn interference_adds_energy_when_it_fires() {
        let injector = FaultInjector::new(0)
            .with(Fault::Interference { probability: 1.0, rms_multiple: 4.0 });
        let mut frame = test_frame(6);
        let before = frame.energy();
        injector.apply(&mut frame, 0);
        assert!(frame.energy() > before);
    }

    #[test]
    fn zero_severity_profile_is_a_noop() {
        let injector = FaultInjector::severity_profile(0.0, 42);
        assert!(injector.is_empty());
        let mut frame = test_frame(7);
        let pristine = frame.clone();
        assert!(!injector.apply(&mut frame, 0));
        assert_eq!(frame, pristine);
    }

    #[test]
    fn faults_survive_serde_roundtrip() {
        let injector = FaultInjector::severity_profile(0.5, 11);
        let json = serde_json::to_string(&injector).unwrap();
        let back: FaultInjector = serde_json::from_str(&json).unwrap();
        assert_eq!(injector, back);
    }
}
