//! User placements: the distance x angle experiment grid.

use mmwave_geom::{Mat3, RigidTransform, Vec3};
use serde::{Deserialize, Serialize};

/// Where a user stands relative to the radar: ground distance (meters) and
/// azimuth angle (degrees, positive to the radar's right), facing the radar.
///
/// # Examples
///
/// ```
/// use mmwave_radar::Placement;
/// let grid = Placement::training_grid();
/// assert_eq!(grid.len(), 12); // 4 distances x 3 angles (Section VI-B)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Ground-plane distance from the radar, in meters.
    pub distance: f64,
    /// Azimuth in degrees; positive is to the radar's right.
    pub angle_deg: f64,
}

impl Placement {
    /// Creates a placement.
    ///
    /// # Panics
    ///
    /// Panics if `distance <= 0` or the angle exceeds +/- 80 degrees.
    pub fn new(distance: f64, angle_deg: f64) -> Placement {
        assert!(distance > 0.0, "distance must be positive");
        assert!(angle_deg.abs() <= 80.0, "angle outside the radar field of view");
        Placement { distance, angle_deg }
    }

    /// The paper's 12 training positions: distances {0.8, 1.2, 1.6, 2.0} m
    /// crossed with angles {-30, 0, 30} degrees.
    pub fn training_grid() -> Vec<Placement> {
        let mut out = Vec::with_capacity(12);
        for &d in &[0.8, 1.2, 1.6, 2.0] {
            for &a in &[-30.0, 0.0, 30.0] {
                out.push(Placement::new(d, a));
            }
        }
        out
    }

    /// The robustness-evaluation angles of Fig. 14 (degrees, distance fixed
    /// at 1.6 m by the caller). Angles -30, 0, 30 are "seen" (in the
    /// training grid); the rest are zero-shot.
    pub fn robustness_angles() -> [f64; 7] {
        [-30.0, -20.0, -10.0, 0.0, 10.0, 20.0, 30.0]
    }

    /// The robustness-evaluation distances of Fig. 15 (meters, angle fixed
    /// at 0 degrees). 0.8, 1.2, 1.6, 2.0 are "seen"; the rest are zero-shot.
    pub fn robustness_distances() -> [f64; 7] {
        [0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0]
    }

    /// True if this placement appears in the training grid.
    pub fn is_seen(&self) -> bool {
        Placement::training_grid().iter().any(|p| {
            (p.distance - self.distance).abs() < 1e-9
                && (p.angle_deg - self.angle_deg).abs() < 1e-9
        })
    }

    /// World position of the point between the user's feet (radar at the
    /// origin looking down `+y`).
    pub fn feet_position(&self) -> Vec3 {
        let az = self.angle_deg.to_radians();
        Vec3::new(self.distance * az.sin(), self.distance * az.cos(), 0.0)
    }

    /// Rigid transform taking body-local coordinates (person at the origin
    /// facing `+y`) to world coordinates: the person stands at
    /// [`feet_position`](Self::feet_position) facing the radar.
    pub fn body_to_world(&self) -> RigidTransform {
        let feet = self.feet_position();
        // Facing direction: horizontally back toward the radar.
        let facing = Vec3::new(-feet.x, -feet.y, 0.0).normalized();
        // Rotation about z taking +y to `facing`.
        let theta = (-facing.x).atan2(facing.y);
        RigidTransform::new(Mat3::rotation_z(theta), feet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_grid_matches_paper() {
        let g = Placement::training_grid();
        assert_eq!(g.len(), 12);
        assert!(g.iter().all(|p| p.is_seen()));
        assert!(!Placement::new(1.0, 0.0).is_seen());
        assert!(!Placement::new(1.6, 10.0).is_seen());
    }

    #[test]
    fn feet_position_geometry() {
        let p = Placement::new(2.0, 0.0);
        assert!((p.feet_position() - Vec3::new(0.0, 2.0, 0.0)).norm() < 1e-12);
        let q = Placement::new(1.0, 30.0);
        let fp = q.feet_position();
        assert!(fp.x > 0.0, "positive angle is to the radar's right (+x)");
        assert!((fp.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn body_to_world_faces_the_radar() {
        for (d, a) in [(1.2, 0.0), (1.6, 30.0), (0.8, -30.0)] {
            let p = Placement::new(d, a);
            let xf = p.body_to_world();
            // The body-local "front" direction +y must map to a vector
            // pointing from the feet toward the radar (horizontally).
            let front_world = xf.apply_vector(Vec3::Y);
            let toward_radar = (-p.feet_position()).normalized();
            assert!(
                front_world.dot(toward_radar) > 0.999,
                "placement {p:?}: front {front_world} vs {toward_radar}"
            );
            // Feet land at the placement position.
            assert!((xf.apply(Vec3::ZERO) - p.feet_position()).norm() < 1e-12);
        }
    }

    #[test]
    fn robustness_sets_contain_seen_and_unseen() {
        let seen_angles = [-30.0, 0.0, 30.0];
        let angles = Placement::robustness_angles();
        assert!(angles.iter().any(|a| seen_angles.contains(a)));
        assert!(angles.iter().any(|a| !seen_angles.contains(a)));
        let seen_d = [0.8, 1.2, 1.6, 2.0];
        let ds = Placement::robustness_distances();
        assert!(ds.iter().any(|d| seen_d.contains(d)));
        assert!(ds.iter().any(|d| !seen_d.contains(d)));
    }

    #[test]
    #[should_panic(expected = "field of view")]
    fn extreme_angle_panics() {
        Placement::new(1.0, 85.0);
    }
}
