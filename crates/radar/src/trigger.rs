//! Trigger reflectors: the aluminum plates the attacker tapes to their body.

use crate::material::Material;
use mmwave_body::SitePose;
use mmwave_geom::{primitives, Mat3, RigidTransform, TriMesh, Vec3};
use serde::{Deserialize, Serialize};

/// Physical description of a trigger reflector (the `T` of Eq. (2)): a flat
/// square plate of a given side length and material.
///
/// # Examples
///
/// ```
/// use mmwave_radar::Trigger;
/// let small = Trigger::aluminum_2x2();
/// let large = Trigger::aluminum_4x4();
/// assert!(large.side_m > small.side_m);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Trigger {
    /// Side length of the square plate, in meters.
    pub side_m: f64,
    /// Plate material.
    pub material: Material,
    /// Amplitude transmission of whatever covers the trigger (1.0 = bare;
    /// `Material::FABRIC_TRANSMISSION` squared for two-way passage through
    /// clothing).
    pub cover_transmission: f64,
}

impl Trigger {
    /// The paper's 2x2-inch aluminum trigger ("roughly credit-card sized").
    pub fn aluminum_2x2() -> Trigger {
        Trigger {
            side_m: 0.0508,
            material: Material::aluminum(),
            cover_transmission: 1.0,
        }
    }

    /// The paper's 4x4-inch aluminum trigger.
    pub fn aluminum_4x4() -> Trigger {
        Trigger {
            side_m: 0.1016,
            material: Material::aluminum(),
            cover_transmission: 1.0,
        }
    }

    /// The same trigger hidden under clothing: radar passes through the
    /// fabric twice, so amplitude is scaled by the squared transmission.
    pub fn under_clothing(mut self) -> Trigger {
        self.cover_transmission = Material::FABRIC_TRANSMISSION * Material::FABRIC_TRANSMISSION;
        self
    }

    /// Effective amplitude scale of the trigger's returns.
    pub fn amplitude_scale(&self) -> f64 {
        self.cover_transmission
    }

    /// Plate area in square meters.
    pub fn area(&self) -> f64 {
        self.side_m * self.side_m
    }
}

/// A trigger attached to a body site (the `C(y, T, T_p)` of Eq. (2)):
/// the plate rides the site's position, orientation, and velocity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriggerAttachment {
    /// The physical trigger.
    pub trigger: Trigger,
    /// Gap between the body surface and the plate, in meters (tape
    /// thickness plus clothing, if any).
    pub standoff_m: f64,
}

impl TriggerAttachment {
    /// Attaches with the default 5 mm standoff.
    pub fn new(trigger: Trigger) -> TriggerAttachment {
        TriggerAttachment { trigger, standoff_m: 0.005 }
    }

    /// Builds the world-space plate mesh for the trigger at a site pose.
    /// The plate is centered on the site, offset along the outward normal,
    /// facing outward, and inherits the site's velocity.
    pub fn mesh_at(&self, site: &SitePose) -> TriMesh {
        let side = self.trigger.side_m;
        // 2x2 subdivision keeps patch size well below typical range
        // resolution while staying cheap (8 triangles).
        let plate = primitives::plate(side, side, 2, 2);
        // plate() faces -y; rotate so the face normal equals the site
        // normal (i.e. map -y to `normal`).
        let rot = rotation_from_to(-Vec3::Y, site.normal);
        let xf = RigidTransform::new(rot, site.position + site.normal * self.standoff_m);
        let mut plate = plate.transformed(&xf);
        // The site velocity is already in the same frame as its position —
        // assign it after posing so the rigid transform does not rotate it.
        plate.set_uniform_velocity(site.velocity);
        plate
    }
}

/// Rotation taking unit vector `from` to unit vector `to`.
fn rotation_from_to(from: Vec3, to: Vec3) -> Mat3 {
    let c = from.dot(to);
    if c > 1.0 - 1e-9 {
        return Mat3::IDENTITY;
    }
    if c < -1.0 + 1e-9 {
        // Opposite directions: rotate 180 degrees about any perpendicular.
        let perp = from
            .cross(Vec3::Z)
            .try_normalized()
            .unwrap_or_else(|| from.cross(Vec3::X).normalized());
        return Mat3::rotation_axis(perp, std::f64::consts::PI);
    }
    let axis = from.cross(to).normalized();
    Mat3::rotation_axis(axis, c.acos())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_body::SiteId;

    fn site(position: Vec3, normal: Vec3, velocity: Vec3) -> SitePose {
        SitePose { site: SiteId::Chest, position, normal, velocity }
    }

    #[test]
    fn trigger_sizes_match_paper() {
        assert!((Trigger::aluminum_2x2().side_m - 2.0 * 0.0254).abs() < 1e-9);
        assert!((Trigger::aluminum_4x4().side_m - 4.0 * 0.0254).abs() < 1e-9);
        assert!((Trigger::aluminum_4x4().area() / Trigger::aluminum_2x2().area() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn under_clothing_attenuates_but_barely() {
        let bare = Trigger::aluminum_2x2();
        let hidden = bare.under_clothing();
        assert!(hidden.amplitude_scale() < bare.amplitude_scale());
        assert!(hidden.amplitude_scale() > 0.8, "fabric is nearly transparent at 77 GHz");
    }

    #[test]
    fn plate_faces_site_normal() {
        let n = Vec3::new(0.3, -0.8, 0.2).normalized();
        let s = site(Vec3::new(0.1, 1.5, 1.1), n, Vec3::ZERO);
        let mesh = TriggerAttachment::new(Trigger::aluminum_2x2()).mesh_at(&s);
        for t in mesh.triangles() {
            assert!(t.normal.dot(n) > 0.99, "plate normal {:?} vs site normal {n}", t.normal);
        }
    }

    #[test]
    fn plate_center_offset_by_standoff() {
        let n = Vec3::Y;
        let pos = Vec3::new(0.0, 1.0, 1.2);
        let att = TriggerAttachment::new(Trigger::aluminum_2x2());
        let mesh = att.mesh_at(&site(pos, n, Vec3::ZERO));
        let center = mesh.vertex_centroid();
        assert!((center - (pos + n * att.standoff_m)).norm() < 1e-9);
    }

    #[test]
    fn plate_inherits_site_velocity() {
        let v = Vec3::new(0.2, -0.1, 0.4);
        let mesh = TriggerAttachment::new(Trigger::aluminum_4x4())
            .mesh_at(&site(Vec3::new(0.0, 1.0, 1.0), Vec3::Y, v));
        for &vel in mesh.velocities() {
            assert!((vel - v).norm() < 1e-9);
        }
    }

    #[test]
    fn plate_area_preserved_by_attachment() {
        let t = Trigger::aluminum_4x4();
        let mesh = TriggerAttachment::new(t)
            .mesh_at(&site(Vec3::new(0.5, 2.0, 1.0), Vec3::new(0.0, -1.0, 0.0), Vec3::ZERO));
        assert!((mesh.surface_area() - t.area()).abs() < 1e-9);
    }

    #[test]
    fn rotation_from_to_handles_all_cases() {
        let pairs = [
            (Vec3::X, Vec3::Y),
            (Vec3::X, Vec3::X),
            (Vec3::X, -Vec3::X),
            (Vec3::Z, -Vec3::Z),
            (Vec3::new(1.0, 1.0, 0.0).normalized(), Vec3::new(0.0, -1.0, 1.0).normalized()),
        ];
        for (a, b) in pairs {
            let r = rotation_from_to(a, b);
            assert!((r * a - b).norm() < 1e-9, "{a} -> {b}");
        }
    }
}
