//! Static environment clutter: the training hallway and attack classroom.

use crate::material::Material;
use mmwave_geom::{primitives, TriMesh, Vec3};
use serde::{Deserialize, Serialize};

/// One static object in the environment.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneObject {
    /// Descriptive name ("left wall", "table"...).
    pub name: String,
    /// The object's mesh, in world coordinates (radar at the origin).
    pub mesh: TriMesh,
    /// Surface material.
    pub material: Material,
}

/// A static environment: background clutter around the user.
///
/// The paper trains in a dormitory hallway and attacks in a classroom
/// (Fig. 6); the two presets here differ in layout and furniture the same
/// way. All environment objects are static, so MTI clutter removal cancels
/// them from DRAI heatmaps — but they still shape the raw spectrum and the
/// RDI, and they differ between training and attack, exercising the paper's
/// cross-environment setting.
#[derive(Debug, Clone, PartialEq)]
pub struct Environment {
    name: String,
    objects: Vec<SceneObject>,
}

/// Identifies one of the two experiment environments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnvironmentKind {
    /// The dormitory hallway used for prototype training (Fig. 6a).
    TrainingHallway,
    /// The classroom used for the attacks (Fig. 6b).
    AttackClassroom,
}

impl EnvironmentKind {
    /// Builds the corresponding environment.
    pub fn build(self) -> Environment {
        match self {
            EnvironmentKind::TrainingHallway => Environment::hallway(),
            EnvironmentKind::AttackClassroom => Environment::classroom(),
        }
    }
}

impl Environment {
    /// An empty environment (anechoic — useful in unit tests).
    pub fn empty() -> Environment {
        Environment { name: "empty".to_string(), objects: Vec::new() }
    }

    /// The dormitory hallway: two long side walls, a back wall, and a pair
    /// of chairs/tables along the sides.
    pub fn hallway() -> Environment {
        let mut objects = Vec::new();
        // Narrow corridor: walls at x = +/- 1.4 m. Tessellation is coarse —
        // static clutter is cached once per scene.
        let wall = |name: &str, x: f64| SceneObject {
            name: name.to_string(),
            mesh: wall_panel_along_y(x, 4.0, 2.4),
            material: Material::wall(),
        };
        objects.push(wall("left wall", -1.4));
        objects.push(wall("right wall", 1.4));
        objects.push(SceneObject {
            name: "end wall".to_string(),
            mesh: primitives::plate(2.8, 2.4, 2, 2).translated(Vec3::new(0.0, 3.5, 1.2)),
            material: Material::wall(),
        });
        objects.push(SceneObject {
            name: "chair".to_string(),
            mesh: primitives::cuboid(Vec3::new(0.45, 0.45, 0.9), 1)
                .translated(Vec3::new(-1.0, 2.6, 0.45)),
            material: Material::wood(),
        });
        objects.push(SceneObject {
            name: "table".to_string(),
            mesh: primitives::cuboid(Vec3::new(0.9, 0.6, 0.75), 1)
                .translated(Vec3::new(1.0, 3.0, 0.38)),
            material: Material::wood(),
        });
        Environment { name: "dormitory hallway".to_string(), objects }
    }

    /// The classroom: wider room, desks, chairs, and a wall-mounted TV.
    pub fn classroom() -> Environment {
        let mut objects = Vec::new();
        let wall = |name: &str, x: f64| SceneObject {
            name: name.to_string(),
            mesh: wall_panel_along_y(x, 5.0, 2.6),
            material: Material::wall(),
        };
        objects.push(wall("left wall", -2.6));
        objects.push(wall("right wall", 2.6));
        objects.push(SceneObject {
            name: "front wall".to_string(),
            mesh: primitives::plate(5.2, 2.6, 3, 2).translated(Vec3::new(0.0, 4.2, 1.3)),
            material: Material::wall(),
        });
        for (i, x) in [-1.6, -0.2, 1.4].iter().enumerate() {
            objects.push(SceneObject {
                name: format!("desk {i}"),
                mesh: primitives::cuboid(Vec3::new(1.1, 0.55, 0.74), 1)
                    .translated(Vec3::new(*x, 3.1, 0.37)),
                material: Material::wood(),
            });
            objects.push(SceneObject {
                name: format!("chair {i}"),
                mesh: primitives::cuboid(Vec3::new(0.4, 0.4, 0.85), 1)
                    .translated(Vec3::new(*x, 3.6, 0.43)),
                material: Material::wood(),
            });
        }
        objects.push(SceneObject {
            name: "television".to_string(),
            mesh: primitives::plate(1.2, 0.7, 2, 1).translated(Vec3::new(0.8, 4.15, 1.7)),
            material: Material::electronics(),
        });
        Environment { name: "classroom".to_string(), objects }
    }

    /// Environment name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The static objects.
    pub fn objects(&self) -> &[SceneObject] {
        &self.objects
    }

    /// Total triangle count across objects.
    pub fn triangle_count(&self) -> usize {
        self.objects.iter().map(|o| o.mesh.triangle_count()).sum()
    }
}

/// A wall running along `y` at lateral offset `x`, of the given length and
/// height, facing the room center.
fn wall_panel_along_y(x: f64, length: f64, height: f64) -> TriMesh {
    // plate() lies in the x-z plane facing -y; rotate 90 degrees about z so
    // it lies in the y-z plane, facing +/- x toward the center.
    let sign = if x < 0.0 { 1.0 } else { -1.0 };
    let rot = mmwave_geom::Mat3::rotation_z(sign * std::f64::consts::FRAC_PI_2);
    primitives::plate(length, height, 3, 2)
        .transformed(&mmwave_geom::RigidTransform::rotation(rot))
        .translated(Vec3::new(x, length / 2.0 - 0.5, height / 2.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_geom::visibility;

    #[test]
    fn presets_are_nonempty_and_distinct() {
        let h = Environment::hallway();
        let c = Environment::classroom();
        assert!(h.triangle_count() > 0);
        assert!(c.triangle_count() > 0);
        assert_ne!(h.name(), c.name());
        assert_ne!(h.triangle_count(), c.triangle_count());
    }

    #[test]
    fn kind_builds_matching_environment() {
        assert_eq!(EnvironmentKind::TrainingHallway.build().name(), "dormitory hallway");
        assert_eq!(EnvironmentKind::AttackClassroom.build().name(), "classroom");
    }

    #[test]
    fn walls_face_the_radar() {
        // At least some wall triangles must be visible from the radar at the
        // origin (otherwise the environment contributes nothing).
        for env in [Environment::hallway(), Environment::classroom()] {
            let mut any_visible = false;
            for obj in env.objects() {
                let vis =
                    visibility::visible_triangles(&obj.mesh, Vec3::new(0.0, 0.0, 1.0));
                if !vis.is_empty() {
                    any_visible = true;
                }
            }
            assert!(any_visible, "{} invisible to the radar", env.name());
        }
    }

    #[test]
    fn objects_are_in_front_of_the_radar() {
        for env in [Environment::hallway(), Environment::classroom()] {
            for obj in env.objects() {
                let (lo, hi) = obj.mesh.bounding_box().unwrap();
                assert!(
                    hi.y > 0.0,
                    "{} '{}' entirely behind the radar",
                    env.name(),
                    obj.name
                );
                assert!(lo.y > -1.0, "{} '{}' implausibly placed", env.name(), obj.name);
            }
        }
    }

    #[test]
    fn empty_environment_has_no_triangles() {
        assert_eq!(Environment::empty().triangle_count(), 0);
    }
}
