//! FMCW waveform and antenna-array configuration.

use mmwave_geom::Vec3;
use serde::{Deserialize, Serialize};

/// Speed of light in m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// FMCW radar configuration: waveform timing, bandwidth, and the TDM-MIMO
/// virtual-array geometry.
///
/// The default profile is a laptop-scale surrogate for the paper's
/// TI MMWCAS-RF-EVM: same 77 GHz carrier and the same processing semantics,
/// but 2 TX x 4 RX = 8 virtual antennas instead of 86 and small FFT sizes so
/// a full backdoor experiment runs on one CPU core.
/// [`RadarConfig::mmwcas_like`] scales the array up when fidelity matters
/// more than wall-clock time.
///
/// # Examples
///
/// ```
/// use mmwave_radar::RadarConfig;
/// let cfg = RadarConfig::default();
/// assert_eq!(cfg.n_virtual(), 8);
/// // 1 GHz of sampled bandwidth gives 15 cm range resolution.
/// assert!((cfg.range_resolution() - 0.15).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadarConfig {
    /// Carrier (chirp start) frequency in Hz.
    pub carrier_hz: f64,
    /// Bandwidth swept during the sampled portion of a chirp, in Hz.
    pub bandwidth_hz: f64,
    /// ADC samples per chirp (power of two).
    pub n_adc: usize,
    /// Duration of the sampled portion of a chirp, in seconds.
    pub adc_duration_s: f64,
    /// Chirps per frame (power of two).
    pub n_chirps: usize,
    /// Chirp repetition interval in seconds.
    pub chirp_interval_s: f64,
    /// Radar frames per second.
    pub frame_rate: f64,
    /// Number of transmit antennas.
    pub n_tx: usize,
    /// Number of receive antennas.
    pub n_rx: usize,
    /// Height of the antenna array above the floor, in meters.
    pub mount_height: f64,
    /// Overall amplitude gain applied to every return (folds the constant
    /// `omega / (4 pi)^2` factor of Eq. (3) into a number that keeps `f32`
    /// signal amplitudes well-scaled).
    pub gain: f64,
}

impl Default for RadarConfig {
    fn default() -> Self {
        RadarConfig {
            carrier_hz: 77.0e9,
            bandwidth_hz: 1.0e9,
            n_adc: 64,
            adc_duration_s: 40.0e-6,
            n_chirps: 16,
            chirp_interval_s: 0.8e-3,
            frame_rate: 10.0,
            n_tx: 2,
            n_rx: 4,
            mount_height: 1.0,
            gain: 1.0e3,
        }
    }
}

impl RadarConfig {
    /// A configuration resembling the paper's 4-chip AWR2243 cascade: a
    /// large virtual array (86 elements) and finer range resolution.
    /// Roughly 10x the simulation cost of the default profile.
    pub fn mmwcas_like() -> RadarConfig {
        RadarConfig {
            carrier_hz: 77.0e9,
            bandwidth_hz: 2.0e9,
            n_adc: 128,
            adc_duration_s: 40.0e-6,
            n_chirps: 32,
            chirp_interval_s: 0.4e-3,
            n_tx: 9,
            n_rx: 10,
            ..RadarConfig::default()
        }
    }

    /// Wavelength at the carrier frequency, in meters.
    pub fn wavelength(&self) -> f64 {
        SPEED_OF_LIGHT / self.carrier_hz
    }

    /// Chirp slope in Hz/s.
    pub fn slope(&self) -> f64 {
        self.bandwidth_hz / self.adc_duration_s
    }

    /// ADC sampling interval in seconds.
    pub fn sample_interval(&self) -> f64 {
        self.adc_duration_s / self.n_adc as f64
    }

    /// Range resolution `c / (2B)` in meters.
    pub fn range_resolution(&self) -> f64 {
        SPEED_OF_LIGHT / (2.0 * self.bandwidth_hz)
    }

    /// Maximum unambiguous range of the full FFT, in meters.
    pub fn max_range(&self) -> f64 {
        self.range_resolution() * self.n_adc as f64 / 2.0
    }

    /// Unambiguous radial velocity `lambda / (4 T_c)` in m/s.
    pub fn max_velocity(&self) -> f64 {
        self.wavelength() / (4.0 * self.chirp_interval_s)
    }

    /// Number of virtual antennas (`n_tx * n_rx`).
    pub fn n_virtual(&self) -> usize {
        self.n_tx * self.n_rx
    }

    /// Phase center of the radar (array center), in world coordinates.
    pub fn position(&self) -> Vec3 {
        Vec3::new(0.0, 0.0, self.mount_height)
    }

    /// Transmit antenna positions. TX elements are spaced `n_rx * lambda/2`
    /// apart along `x` so the TDM-MIMO virtual array is a uniform linear
    /// array at `lambda/2`.
    pub fn tx_positions(&self) -> Vec<Vec3> {
        let d = self.wavelength() / 2.0;
        let span = (self.n_tx - 1) as f64 * self.n_rx as f64 * d;
        (0..self.n_tx)
            .map(|i| {
                Vec3::new(
                    i as f64 * self.n_rx as f64 * d - span / 2.0,
                    0.0,
                    self.mount_height,
                )
            })
            .collect()
    }

    /// Receive antenna positions, spaced `lambda/2` along `x`.
    pub fn rx_positions(&self) -> Vec<Vec3> {
        let d = self.wavelength() / 2.0;
        let span = (self.n_rx - 1) as f64 * d;
        (0..self.n_rx)
            .map(|i| Vec3::new(i as f64 * d - span / 2.0, 0.0, self.mount_height))
            .collect()
    }

    /// Validates the waveform parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !self.n_adc.is_power_of_two() {
            return Err(format!("n_adc {} must be a power of two", self.n_adc));
        }
        if !self.n_chirps.is_power_of_two() {
            return Err(format!("n_chirps {} must be a power of two", self.n_chirps));
        }
        if self.n_tx == 0 || self.n_rx == 0 {
            return Err("antenna counts must be nonzero".to_string());
        }
        if self.carrier_hz <= 0.0 || self.bandwidth_hz <= 0.0 {
            return Err("carrier and bandwidth must be positive".to_string());
        }
        if self.adc_duration_s <= 0.0 || self.chirp_interval_s < self.adc_duration_s {
            return Err("chirp interval must cover the ADC window".to_string());
        }
        if self.n_chirps as f64 * self.chirp_interval_s > 1.0 / self.frame_rate {
            return Err("chirp burst longer than the frame period".to_string());
        }
        Ok(())
    }

    /// Range-FFT bin (fractional) where a reflector at round-trip delay
    /// `tau` seconds lands.
    pub fn range_bin_of_delay(&self, tau: f64) -> f64 {
        // Beat frequency f_b = slope * tau; bin = f_b * adc_duration.
        self.slope() * tau * self.adc_duration_s
    }

    /// Range-FFT bin (fractional) for a target at one-way distance `d`.
    pub fn range_bin_of_distance(&self, d: f64) -> f64 {
        self.range_bin_of_delay(2.0 * d / SPEED_OF_LIGHT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        RadarConfig::default().validate().unwrap();
    }

    #[test]
    fn mmwcas_like_has_86_plus_virtual_antennas() {
        let cfg = RadarConfig::mmwcas_like();
        cfg.validate().unwrap();
        assert!(cfg.n_virtual() >= 86, "got {}", cfg.n_virtual());
    }

    #[test]
    fn wavelength_is_about_3_9_mm() {
        let cfg = RadarConfig::default();
        assert!((cfg.wavelength() - 0.0039).abs() < 0.0002);
    }

    #[test]
    fn range_bin_mapping_matches_resolution() {
        let cfg = RadarConfig::default();
        // A target at exactly k range-resolutions lands on bin k.
        for k in [1.0, 5.0, 10.0] {
            let d = k * cfg.range_resolution();
            assert!((cfg.range_bin_of_distance(d) - k).abs() < 1e-9);
        }
    }

    #[test]
    fn experiment_distances_fit_in_16_bins() {
        let cfg = RadarConfig::default();
        // All paper positions (0.8 m to 2 m) must land inside the 16 range
        // bins the prototype keeps.
        for d in [0.8, 1.2, 1.6, 2.0] {
            let bin = cfg.range_bin_of_distance(d);
            assert!(bin > 2.0 && bin < 15.0, "distance {d} maps to bin {bin}");
        }
    }

    #[test]
    fn virtual_array_is_uniform_half_wavelength() {
        let cfg = RadarConfig::default();
        let d = cfg.wavelength() / 2.0;
        // Virtual positions = tx + rx (relative to center); collect all x.
        let rx = cfg.rx_positions();
        let mut xs: Vec<f64> = cfg
            .tx_positions()
            .iter()
            .flat_map(|t| rx.iter().map(move |r| t.x + r.x))
            .collect();
        xs.sort_by(f64::total_cmp);
        for w in xs.windows(2) {
            assert!((w[1] - w[0] - d).abs() < 1e-9, "non-uniform spacing {}", w[1] - w[0]);
        }
    }

    #[test]
    fn max_velocity_covers_hand_speeds() {
        let cfg = RadarConfig::default();
        assert!(cfg.max_velocity() > 1.0, "hand gestures reach ~1 m/s");
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = RadarConfig::default();
        cfg.n_adc = 48;
        assert!(cfg.validate().is_err());
        let mut cfg = RadarConfig::default();
        cfg.chirp_interval_s = 1e-6;
        assert!(cfg.validate().is_err());
        let mut cfg = RadarConfig::default();
        cfg.n_chirps = 1024;
        assert!(cfg.validate().is_err(), "burst longer than frame period");
    }
}
