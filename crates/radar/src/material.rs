//! Surface reflectivity models (the `A_m` factor of Eq. (3)).

use serde::{Deserialize, Serialize};

/// Reflection properties of a surface at 77 GHz.
///
/// `reflectivity` is the amplitude factor `A_m`; `specularity` shapes the
/// angular gain factor `A_g = cos(theta)^specularity` where `theta` is the
/// angle between the surface normal and the radar direction. Flat metal is
/// strongly specular (bright at normal incidence, dim off-axis), while skin
/// and clothing scatter more diffusely.
///
/// # Examples
///
/// ```
/// use mmwave_radar::Material;
/// let al = Material::aluminum();
/// let skin = Material::skin();
/// // Metal outshines skin head-on...
/// assert!(al.angular_gain(1.0) > 3.0 * skin.angular_gain(1.0));
/// // ...but falls off faster at grazing angles.
/// assert!(al.angular_gain(0.3) / al.angular_gain(1.0)
///     < skin.angular_gain(0.3) / skin.angular_gain(1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Material {
    /// Amplitude reflectivity `A_m` (relative units).
    pub reflectivity: f64,
    /// Exponent of the `cos(theta)` angular gain.
    pub specularity: f64,
}

impl Material {
    /// Creates a material.
    ///
    /// # Panics
    ///
    /// Panics if `reflectivity < 0` or `specularity < 0`.
    pub fn new(reflectivity: f64, specularity: f64) -> Material {
        assert!(reflectivity >= 0.0, "reflectivity must be non-negative");
        assert!(specularity >= 0.0, "specularity must be non-negative");
        Material { reflectivity, specularity }
    }

    /// Human skin / light clothing over skin.
    pub fn skin() -> Material {
        Material::new(0.5, 1.0)
    }

    /// 1/32-inch aluminum sheet — the paper's trigger stock.
    ///
    /// The reflectivity folds in the physical-optics *aperture gain* of a
    /// flat conducting plate: at normal incidence a 2x2-inch plate has
    /// RCS `4 pi A^2 / lambda^2 ~ 5.5 m^2` at 77 GHz — several times the
    /// whole human torso (~0.1-1 m^2) despite its tiny area. Within this
    /// crate's diffuse-patch body model (amplitude proportional to area),
    /// that ratio calibrates to an effective `A_m ~ 40`: the plate's total
    /// return is a few times the torso's, exactly as in reality. The
    /// strong `cos^theta` specularity captures the plate's rapid fall-off
    /// away from normal incidence.
    pub fn aluminum() -> Material {
        Material::new(40.0, 2.5)
    }

    /// Wooden furniture (tables, chairs).
    pub fn wood() -> Material {
        Material::new(0.25, 1.0)
    }

    /// Painted drywall / concrete walls.
    pub fn wall() -> Material {
        Material::new(0.4, 1.5)
    }

    /// Television / monitor glass-and-metal front.
    pub fn electronics() -> Material {
        Material::new(0.8, 2.0)
    }

    /// One-way amplitude transmission of common clothing fabric at 77 GHz
    /// (mmWave penetrates fabric with little loss — the physical basis of
    /// the paper's under-clothing attack).
    pub const FABRIC_TRANSMISSION: f64 = 0.93;

    /// Angular gain `A_g` for a given `cos(theta)` of incidence
    /// (values `<= 0` — back-facing — return zero gain).
    pub fn angular_gain(&self, cos_theta: f64) -> f64 {
        if cos_theta <= 0.0 {
            0.0
        } else {
            self.reflectivity * cos_theta.powf(self.specularity)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backfacing_surfaces_reflect_nothing() {
        assert_eq!(Material::skin().angular_gain(-0.5), 0.0);
        assert_eq!(Material::aluminum().angular_gain(0.0), 0.0);
    }

    #[test]
    fn normal_incidence_equals_reflectivity() {
        for m in [Material::skin(), Material::aluminum(), Material::wood()] {
            assert!((m.angular_gain(1.0) - m.reflectivity).abs() < 1e-12);
        }
    }

    #[test]
    fn gain_is_monotone_in_cos_theta() {
        let m = Material::aluminum();
        let mut prev = 0.0;
        for i in 1..=10 {
            let g = m.angular_gain(i as f64 / 10.0);
            assert!(g > prev);
            prev = g;
        }
    }

    #[test]
    fn aluminum_dominates_skin_head_on() {
        assert!(Material::aluminum().angular_gain(1.0) > 5.0 * Material::skin().angular_gain(1.0));
    }

    #[test]
    fn fabric_is_nearly_transparent() {
        assert!(Material::FABRIC_TRANSMISSION > 0.85);
        assert!(Material::FABRIC_TRANSMISSION < 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_reflectivity_panics() {
        Material::new(-1.0, 1.0);
    }
}
