//! The Eq. (3) IF-signal synthesizer.
//!
//! For every visible triangle `i`, transmit antenna `T`, and receive antenna
//! `R`, the IF contribution during one chirp is
//!
//! ```text
//! s(t) = A_i * exp(-j * (2 pi f_c tau + 2 pi S tau t)),
//! A_i  = gain * A_g(theta) * A_m * A_a / ((4 pi)^2 ~ folded into gain) / (d_Ti * d_iR),
//! tau  = (d_Ti + d_iR) / c,
//! ```
//!
//! which is the paper's Eq. (3) with the FMCW dechirp made explicit: the
//! beat frequency `S * tau` encodes range, the chirp-to-chirp evolution of
//! `f_c * tau` encodes Doppler, and the per-antenna path differences encode
//! angle. Triangles move between chirps according to their velocity, which
//! is what MTI clutter removal and the Doppler FFT observe.
//!
//! The inner loop uses an incremental complex phasor (one rotation per ADC
//! sample) instead of per-sample `sin`/`cos`, keeping a full human capture
//! in the hundreds of milliseconds on one core.

use crate::config::{RadarConfig, SPEED_OF_LIGHT};
use crate::material::Material;
use mmwave_dsp::{Complex32, IfFrame};
use mmwave_geom::{Triangle, Vec3};
use rand::Rng;
use std::f64::consts::TAU;

/// Synthesizes IF frames from triangle soups according to Eq. (3).
///
/// # Examples
///
/// ```
/// use mmwave_radar::{IfSynthesizer, Material, RadarConfig};
/// use mmwave_geom::{primitives, visibility, Vec3};
///
/// let cfg = RadarConfig::default();
/// let synth = IfSynthesizer::new(cfg.clone());
/// let plate = primitives::plate(0.1, 0.1, 2, 2)
///     .translated(Vec3::new(0.0, 1.2, 1.0));
/// let tris = visibility::visible_triangles(&plate, cfg.position());
/// let mut frame = synth.empty_frame();
/// synth.add_triangles(&mut frame, &tris, &Material::aluminum(), 1.0);
/// assert!(frame.energy() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct IfSynthesizer {
    config: RadarConfig,
    tx: Vec<Vec3>,
    rx: Vec<Vec3>,
}

impl IfSynthesizer {
    /// Creates a synthesizer.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`RadarConfig::validate`].
    pub fn new(config: RadarConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid radar config: {e}"));
        let tx = config.tx_positions();
        let rx = config.rx_positions();
        IfSynthesizer { config, tx, rx }
    }

    /// The radar configuration.
    pub fn config(&self) -> &RadarConfig {
        &self.config
    }

    /// Allocates a zeroed IF frame with this radar's dimensions.
    pub fn empty_frame(&self) -> IfFrame {
        IfFrame::zeros(self.config.n_virtual(), self.config.n_chirps, self.config.n_adc)
    }

    /// Adds the IF contribution of `triangles` (world frame, velocities
    /// meaningful) made of `material`, scaled by `amplitude_scale`
    /// (e.g. fabric transmission for an under-clothing trigger).
    ///
    /// Triangles whose surface faces away from the radar contribute nothing
    /// (their angular gain is zero) — run visibility culling first to avoid
    /// wasting time on them.
    pub fn add_triangles(
        &self,
        frame: &mut IfFrame,
        triangles: &[Triangle],
        material: &Material,
        amplitude_scale: f64,
    ) {
        let c = &self.config;
        let radar = c.position();
        let slope = c.slope();
        let ts = c.sample_interval();
        let n_adc = c.n_adc;
        let fc = c.carrier_hz;
        let tc = c.chirp_interval_s;

        for tri in triangles {
            if tri.area <= 1e-12 {
                continue;
            }
            for chirp in 0..c.n_chirps {
                // Position at this chirp (slow-time motion).
                let p = tri.centroid + tri.velocity * (chirp as f64 * tc);
                let to_radar = radar - p;
                let dist = to_radar.norm();
                if dist < 1e-6 {
                    continue;
                }
                let cos_theta = tri.normal.dot(to_radar) / dist;
                let a_g = material.angular_gain(cos_theta);
                if a_g <= 0.0 {
                    continue;
                }
                // Exact per-antenna path lengths.
                let d_tx: Vec<f64> = self.tx.iter().map(|t| p.distance(*t)).collect();
                let d_rx: Vec<f64> = self.rx.iter().map(|r| p.distance(*r)).collect();
                for (ti, &dt) in d_tx.iter().enumerate() {
                    for (ri, &dr) in d_rx.iter().enumerate() {
                        let vrx = ti * self.rx.len() + ri;
                        let tau = (dt + dr) / SPEED_OF_LIGHT;
                        let amp =
                            (c.gain * a_g * tri.area * amplitude_scale / (dt * dr)) as f32;
                        // Initial phase and per-sample beat rotation, both
                        // reduced mod 2 pi in f64 before touching f32. The
                        // positive sign puts beat energy in the positive
                        // (low) range-FFT bins, matching the dechirp
                        // convention of the processing chain.
                        let phi0 = (TAU * fc * tau).rem_euclid(TAU);
                        let dphi = (TAU * slope * tau * ts).rem_euclid(TAU);
                        let mut phasor =
                            Complex32::from_polar(amp, phi0 as f32);
                        let step = Complex32::cis(dphi as f32);
                        let out = frame.chirp_mut(vrx, chirp);
                        for z in out.iter_mut().take(n_adc) {
                            *z += phasor;
                            phasor *= step;
                        }
                    }
                }
            }
        }
    }

    /// Synthesizes the single-chirp IF of a *static* triangle set, per
    /// virtual antenna. Because static reflectors produce identical samples
    /// on every chirp of every frame, this is computed once per scene and
    /// replayed with [`add_static`](Self::add_static) — the environment
    /// cache that makes dataset generation tractable.
    pub fn static_chirp(&self, triangles: &[Triangle], material: &Material) -> Vec<Vec<Complex32>> {
        // Use a one-chirp frame and reuse the main loop.
        let one = RadarConfig { n_chirps: 1, ..self.config.clone() };
        let sub = IfSynthesizer::new(one);
        let mut frame = sub.empty_frame();
        // Static: ignore velocities by zeroing them.
        let static_tris: Vec<Triangle> = triangles
            .iter()
            .map(|t| Triangle { velocity: Vec3::ZERO, ..*t })
            .collect();
        sub.add_triangles(&mut frame, &static_tris, material, 1.0);
        (0..self.config.n_virtual())
            .map(|vrx| frame.chirp(vrx, 0).to_vec())
            .collect()
    }

    /// Replays a cached static chirp onto every chirp of `frame`.
    ///
    /// # Panics
    ///
    /// Panics if the cache shape does not match the radar dimensions.
    pub fn add_static(&self, frame: &mut IfFrame, cache: &[Vec<Complex32>]) {
        assert_eq!(cache.len(), self.config.n_virtual(), "static cache antenna mismatch");
        for (vrx, chirp_data) in cache.iter().enumerate() {
            assert_eq!(chirp_data.len(), self.config.n_adc, "static cache ADC mismatch");
            for chirp in 0..self.config.n_chirps {
                let out = frame.chirp_mut(vrx, chirp);
                for (z, &s) in out.iter_mut().zip(chirp_data) {
                    *z += s;
                }
            }
        }
    }

    /// Adds circularly-symmetric complex Gaussian noise with the given
    /// standard deviation per component (thermal noise floor).
    pub fn add_noise<R: Rng + ?Sized>(&self, frame: &mut IfFrame, sigma: f64, rng: &mut R) {
        if sigma <= 0.0 {
            return;
        }
        for vrx in 0..self.config.n_virtual() {
            for chirp in 0..self.config.n_chirps {
                for z in frame.chirp_mut(vrx, chirp) {
                    // Box-Muller.
                    let u1: f64 = rng.gen_range(1e-12..1.0);
                    let u2: f64 = rng.gen_range(0.0..TAU);
                    let r = sigma * (-2.0 * u1.ln()).sqrt();
                    *z += Complex32::new((r * u2.cos()) as f32, (r * u2.sin()) as f32);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_dsp::processing::{ProcessingConfig, Processor};
    use mmwave_geom::primitives;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn synth() -> IfSynthesizer {
        IfSynthesizer::new(RadarConfig::default())
    }

    fn processor(cfg: &RadarConfig) -> Processor {
        Processor::new(
            cfg.n_virtual(),
            cfg.n_chirps,
            cfg.n_adc,
            ProcessingConfig::default(),
        )
    }

    /// A small plate facing the radar at ground distance `d`, azimuth `az`
    /// (radians), chest height, moving with `velocity`.
    fn plate_at(d: f64, az: f64, velocity: Vec3) -> Vec<Triangle> {
        let mut mesh = primitives::plate(0.12, 0.12, 2, 2);
        mesh.set_uniform_velocity(velocity);
        // plate() faces -y; rotate to face back toward the radar and place.
        let pos = Vec3::new(d * az.sin(), d * az.cos(), 1.0);
        let mesh = mesh.translated(pos);
        mmwave_geom::visibility::visible_triangles(&mesh, RadarConfig::default().position())
    }

    #[test]
    fn target_lands_at_predicted_range_bin() {
        let s = synth();
        let cfg = s.config().clone();
        for d in [0.8, 1.2, 1.6, 2.0] {
            let tris = plate_at(d, 0.0, Vec3::new(0.0, 0.3, 0.0));
            let mut frame = s.empty_frame();
            s.add_triangles(&mut frame, &tris, &Material::aluminum(), 1.0);
            let rdi = processor(&cfg).rdi(&frame);
            let (bin, _, _) = rdi.peak().unwrap();
            let expected = cfg.range_bin_of_distance(d).round() as usize;
            assert!(
                (bin as i64 - expected as i64).abs() <= 1,
                "distance {d}: bin {bin} vs expected {expected}"
            );
        }
    }

    #[test]
    fn moving_target_shows_doppler() {
        let s = synth();
        let cfg = s.config().clone();
        // Radially approaching at 0.4 m/s.
        let tris = plate_at(1.2, 0.0, Vec3::new(0.0, -0.4, 0.0));
        let mut frame = s.empty_frame();
        s.add_triangles(&mut frame, &tris, &Material::aluminum(), 1.0);
        let rdi = processor(&cfg).rdi(&frame);
        let (_, doppler, _) = rdi.peak().unwrap();
        let center = cfg.n_chirps / 2;
        assert_ne!(doppler, center, "approaching target must shift off zero Doppler");
    }

    #[test]
    fn static_target_vanishes_from_drai() {
        let s = synth();
        let cfg = s.config().clone();
        let static_tris = plate_at(1.2, 0.0, Vec3::ZERO);
        let mut frame = s.empty_frame();
        s.add_triangles(&mut frame, &static_tris, &Material::aluminum(), 1.0);
        let drai = processor(&cfg).drai(&frame);
        // MTI removes the static return entirely (up to float noise).
        assert!(
            drai.total() < 1e-3 * frame.energy() as f32,
            "static target survived MTI: {}",
            drai.total()
        );
    }

    #[test]
    fn angle_of_arrival_matches_position() {
        let s = synth();
        let cfg = s.config().clone();
        let p = processor(&cfg);
        let left = plate_at(1.2, -0.5, Vec3::new(0.0, -0.3, 0.0));
        let right = plate_at(1.2, 0.5, Vec3::new(0.0, -0.3, 0.0));
        let drai_of = |tris: &[Triangle]| {
            let mut f = s.empty_frame();
            s.add_triangles(&mut f, tris, &Material::aluminum(), 1.0);
            p.drai(&f)
        };
        let (_, col_l, _) = drai_of(&left).peak().unwrap();
        let (_, col_r, _) = drai_of(&right).peak().unwrap();
        let center = 16 / 2;
        assert!(
            (col_l < center) != (col_r < center),
            "targets at opposite azimuths should split around boresight: {col_l} vs {col_r}"
        );
    }

    #[test]
    fn closer_targets_are_brighter() {
        // Use a small (point-like) reflector: a large flat plate decoheres
        // in the near field (Fresnel curvature across the aperture), which
        // is real physics but obscures the 1/d^4 point-target law.
        let s = synth();
        let cfg = s.config().clone();
        let small_plate = |d: f64| {
            let mut mesh = primitives::plate(0.03, 0.03, 1, 1);
            mesh.set_uniform_velocity(Vec3::new(0.0, -0.3, 0.0));
            let mesh = mesh.translated(Vec3::new(0.0, d, 1.0));
            mmwave_geom::visibility::visible_triangles(&mesh, cfg.position())
        };
        let energy = |tris: &[Triangle]| {
            let mut f = s.empty_frame();
            s.add_triangles(&mut f, tris, &Material::aluminum(), 1.0);
            processor(&cfg).drai(&f).total()
        };
        assert!(energy(&small_plate(0.9)) > 2.0 * energy(&small_plate(1.9)));
    }

    #[test]
    fn amplitude_scale_attenuates_linearly() {
        let s = synth();
        let tris = plate_at(1.2, 0.0, Vec3::new(0.0, -0.3, 0.0));
        let mut full = s.empty_frame();
        let mut half = s.empty_frame();
        s.add_triangles(&mut full, &tris, &Material::aluminum(), 1.0);
        s.add_triangles(&mut half, &tris, &Material::aluminum(), 0.5);
        assert!((half.energy() - 0.25 * full.energy()).abs() < 1e-3 * full.energy());
    }

    #[test]
    fn static_cache_equals_direct_synthesis() {
        let s = synth();
        let tris = plate_at(1.5, 0.2, Vec3::ZERO);
        // Direct synthesis of the static triangles.
        let mut direct = s.empty_frame();
        s.add_triangles(&mut direct, &tris, &Material::wall(), 1.0);
        // Cached replay.
        let cache = s.static_chirp(&tris, &Material::wall());
        let mut replayed = s.empty_frame();
        s.add_static(&mut replayed, &cache);
        // Compare a few samples exactly.
        for vrx in [0usize, 3, 7] {
            for chirp in [0usize, 5, 15] {
                for n in [0usize, 13, 63] {
                    let a = direct.chirp(vrx, chirp)[n];
                    let b = replayed.chirp(vrx, chirp)[n];
                    assert!((a - b).abs() < 1e-4, "mismatch at {vrx},{chirp},{n}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn noise_raises_energy_predictably() {
        let s = synth();
        let mut frame = s.empty_frame();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let sigma = 0.1;
        s.add_noise(&mut frame, sigma, &mut rng);
        let n = frame.as_slice().len() as f64;
        let expected = 2.0 * sigma * sigma * n;
        let e = frame.energy();
        assert!((e - expected).abs() < 0.1 * expected, "energy {e} vs expected {expected}");
    }

    #[test]
    fn zero_sigma_noise_is_noop() {
        let s = synth();
        let mut frame = s.empty_frame();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        s.add_noise(&mut frame, 0.0, &mut rng);
        assert_eq!(frame.energy(), 0.0);
    }

    #[test]
    fn superposition_of_two_targets() {
        let s = synth();
        let a = plate_at(1.0, -0.3, Vec3::new(0.0, -0.3, 0.0));
        let b = plate_at(1.8, 0.3, Vec3::new(0.0, 0.3, 0.0));
        let mut fa = s.empty_frame();
        let mut fb = s.empty_frame();
        let mut fab = s.empty_frame();
        s.add_triangles(&mut fa, &a, &Material::skin(), 1.0);
        s.add_triangles(&mut fb, &b, &Material::skin(), 1.0);
        s.add_triangles(&mut fab, &a, &Material::skin(), 1.0);
        s.add_triangles(&mut fab, &b, &Material::skin(), 1.0);
        let sum = fa.superposed(&fb);
        for (x, y) in fab.as_slice().iter().zip(sum.as_slice()) {
            assert!((*x - *y).abs() < 1e-4);
        }
    }
}
