//! End-to-end capture: activity performance -> DRAI heatmap sequence.
//!
//! A "capture" is what the real testbed does when a participant performs a
//! gesture in front of the radar: synthesize the IF cube for every frame,
//! then run the processing chain to DRAI heatmaps. Because Eq. (3) is
//! linear, a capture can emit the *clean* and *triggered* version of the
//! same performance in one pass: the trigger's IF contribution is computed
//! separately and superposed.

use crate::config::RadarConfig;
use crate::faults::FaultInjector;
use crate::material::Material;
use crate::placement::Placement;
use crate::scene::Environment;
use crate::simulator::IfSynthesizer;
use crate::trigger::TriggerAttachment;
use mmwave_body::{MeshSequence, SiteId, SitePose};
use mmwave_dsp::heatmap::HeatmapKind;
use mmwave_dsp::processing::{ProcessingConfig, Processor};
use mmwave_dsp::{repair_dropped_frames, Complex32, Heatmap, HeatmapSeq};
use mmwave_geom::visibility::{self, OcclusionConfig};
use parking_lot::Mutex;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::sync::Arc;

/// Cached per-environment state: the static-clutter IF chirp (replayed
/// onto every frame) and the calibrated background range profile the DRAI
/// stage subtracts.
#[derive(Debug)]
struct EnvCache {
    chirp: Vec<Vec<Complex32>>,
    background: Vec<Vec<Complex32>>,
}

/// Where and how a trigger is worn during a capture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriggerPlan {
    /// The trigger and its standoff.
    pub attachment: TriggerAttachment,
    /// The body site it is taped to.
    pub site: SiteId,
}

/// Configuration for the capture pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct CaptureConfig {
    /// Radar waveform and array.
    pub radar: RadarConfig,
    /// FFT pipeline settings.
    pub processing: ProcessingConfig,
    /// Per-component standard deviation of thermal noise.
    pub noise_sigma: f64,
    /// Body surface material.
    pub body_material: Material,
    /// Occlusion filter settings.
    pub occlusion: OcclusionConfig,
    /// Apply `log(1+x)` compression to heatmaps.
    pub log_compress: bool,
    /// How heatmap sequences are normalized.
    pub normalize: Normalization,
    /// Optional sensor fault injection applied to every captured IF frame
    /// (clean and triggered twins see the same realization). Dropped
    /// frames are repaired by neighbor interpolation before finalization,
    /// so the output is always a valid [`HeatmapSeq`].
    pub faults: Option<FaultInjector>,
}

/// Heatmap normalization policy applied after log compression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Normalization {
    /// Leave raw (log-compressed) values.
    None,
    /// Divide the whole sequence by its global maximum (AGC-style).
    GlobalMax,
    /// Divide by a fixed reference scale — a fixed receiver gain. With a
    /// fixed scale a reflector's contribution stays purely additive and
    /// does not rescale the rest of the image, unlike `GlobalMax`.
    Fixed(f32),
}

impl CaptureConfig {
    /// The laptop-scale profile used throughout the reproduction.
    pub fn fast() -> CaptureConfig {
        CaptureConfig {
            radar: RadarConfig::default(),
            processing: ProcessingConfig::default(),
            noise_sigma: 0.02,
            body_material: Material::skin(),
            occlusion: OcclusionConfig::default(),
            log_compress: true,
            // Fixed receiver gain calibrated to the typical log-domain
            // sequence maximum of this profile (median ~20 across
            // participants and placements). Keeps reflector returns purely
            // additive; see DESIGN.md.
            normalize: Normalization::Fixed(20.0),
            faults: None,
        }
    }
}

impl Default for CaptureConfig {
    fn default() -> Self {
        CaptureConfig::fast()
    }
}

/// Output of one capture.
#[derive(Debug, Clone, PartialEq)]
pub struct CaptureOutput {
    /// DRAI sequence without the trigger.
    pub clean: HeatmapSeq,
    /// DRAI sequence with the trigger worn, if a [`TriggerPlan`] was given.
    /// Shares the body pose and the noise realization with `clean`, so any
    /// difference between the two is attributable to the trigger alone.
    pub triggered: Option<HeatmapSeq>,
}

/// The capture pipeline. Reusable across samples; caches per-environment
/// static clutter (static reflectors produce identical IF on every chirp of
/// every frame, so their contribution is synthesized once per environment).
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug)]
pub struct Capturer {
    config: CaptureConfig,
    synth: IfSynthesizer,
    processor: Processor,
    env_cache: Mutex<HashMap<String, Arc<EnvCache>>>,
}

impl Capturer {
    /// Creates a capturer.
    ///
    /// # Panics
    ///
    /// Panics if the radar or processing configuration is invalid.
    pub fn new(config: CaptureConfig) -> Capturer {
        let synth = IfSynthesizer::new(config.radar.clone());
        let processor = Processor::new(
            config.radar.n_virtual(),
            config.radar.n_chirps,
            config.radar.n_adc,
            config.processing.clone(),
        );
        Capturer { config, synth, processor, env_cache: Mutex::new(HashMap::new()) }
    }

    /// The radar configuration.
    pub fn config(&self) -> &RadarConfig {
        &self.config.radar
    }

    /// The full capture configuration.
    pub fn capture_config(&self) -> &CaptureConfig {
        &self.config
    }

    /// The processing pipeline (exposed for defenses that need raw access).
    pub fn processor(&self) -> &Processor {
        &self.processor
    }

    /// Captures a performance at `placement` in `environment`.
    ///
    /// `seed` fixes the noise realization; the same `(sequence, placement,
    /// environment, seed)` always produces the same output.
    pub fn capture(
        &self,
        sequence: &MeshSequence,
        placement: Placement,
        environment: &Environment,
        trigger: Option<&TriggerPlan>,
        seed: u64,
    ) -> CaptureOutput {
        self.capture_with_scale(sequence, placement, environment, trigger, seed, 1.0)
    }

    /// Like [`capture`](Self::capture) with a body-reflectivity multiplier
    /// (per-participant skin/clothing variation).
    pub fn capture_with_scale(
        &self,
        sequence: &MeshSequence,
        placement: Placement,
        environment: &Environment,
        trigger: Option<&TriggerPlan>,
        seed: u64,
        body_scale: f64,
    ) -> CaptureOutput {
        let _capture_span = mmwave_telemetry::span_at("capture", mmwave_telemetry::Level::Debug);
        let xf = placement.body_to_world();
        let radar_pos = self.config.radar.position();
        let env = self.environment_cache(environment);

        // Frames are mutually independent by construction: every per-frame
        // random stream (noise, faults) is derived from `(seed,
        // frame_index)`, never drawn sequentially, so fanning the loop out
        // over workers is byte-identical to the serial loop for any
        // `MMWAVE_WORKERS` (results are collected in frame order below).
        let body_frames: Vec<_> = sequence.iter().collect();
        struct FrameOut {
            clean: Heatmap,
            triggered: Option<Heatmap>,
            dropped: bool,
        }
        let outputs = mmwave_exec::par_map(&body_frames, |fi, body_frame| {
            let synth_span = mmwave_telemetry::span("synthesis");
            // Body in world coordinates, culled to radar-visible surfaces.
            let world_mesh = body_frame.mesh.transformed(&xf);
            let tris = visibility::radar_visible(&world_mesh, radar_pos, &self.config.occlusion);

            let mut base = self.synth.empty_frame();
            self.synth
                .add_triangles(&mut base, &tris, &self.config.body_material, body_scale);
            self.synth.add_static(&mut base, &env.chirp);
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (fi as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            self.synth.add_noise(&mut base, self.config.noise_sigma, &mut rng);

            // Superpose the trigger before fault injection so both twins
            // pass through the same (deterministic) fault realization.
            let mut combined = trigger.map(|plan| {
                let site_world = transform_site(body_frame.site(plan.site), &xf);
                base.superposed(&self.trigger_if(plan, &site_world))
            });
            drop(synth_span);

            let mut frame_dropped = false;
            if let Some(injector) = &self.config.faults {
                frame_dropped = injector.apply(&mut base, fi);
                if let Some(c) = combined.as_mut() {
                    injector.apply(c, fi);
                }
            }
            if frame_dropped {
                // Placeholder; repaired below by neighbor interpolation.
                FrameOut {
                    clean: self.empty_drai(),
                    triggered: trigger.map(|_| self.empty_drai()),
                    dropped: true,
                }
            } else {
                FrameOut {
                    clean: self.processor.drai_with_background(&base, &env.background),
                    triggered: combined
                        .as_ref()
                        .map(|c| self.processor.drai_with_background(c, &env.background)),
                    dropped: false,
                }
            }
        });

        let mut clean_frames = Vec::with_capacity(outputs.len());
        let mut trig_frames = trigger.map(|_| Vec::with_capacity(outputs.len()));
        let mut dropped_flags = Vec::with_capacity(outputs.len());
        for (fi, out) in outputs.into_iter().enumerate() {
            if out.dropped {
                mmwave_telemetry::counter("radar.frames_dropped", 1);
                if mmwave_telemetry::enabled(mmwave_telemetry::Level::Debug) {
                    let mut fields = serde_json::Map::new();
                    fields.insert("frame".to_string(), serde_json::Value::from(fi as u64));
                    mmwave_telemetry::event(
                        mmwave_telemetry::Level::Debug,
                        mmwave_telemetry::EventKind::Fault,
                        "radar.frame_dropout",
                        fields,
                    );
                }
            }
            dropped_flags.push(out.dropped);
            clean_frames.push(out.clean);
            if let Some(frames) = trig_frames.as_mut() {
                frames.push(out.triggered.expect("triggered twin exists when a plan is given"));
            }
        }

        // Graceful degradation: dropped frames are interpolated from their
        // valid neighbors (and stay zero when every frame dropped) so the
        // pipeline always yields a valid sequence.
        let n_dropped = dropped_flags.iter().filter(|&&d| d).count();
        if n_dropped > 0 {
            repair_dropped_frames(&mut clean_frames, &dropped_flags);
            if let Some(frames) = trig_frames.as_mut() {
                repair_dropped_frames(frames, &dropped_flags);
            }
        }

        mmwave_telemetry::counter("radar.frames", sequence.len() as u64);
        if mmwave_telemetry::enabled(mmwave_telemetry::Level::Trace) {
            let mut fields = serde_json::Map::new();
            fields.insert("frames".to_string(), serde_json::Value::from(sequence.len() as u64));
            fields.insert("dropped".to_string(), serde_json::Value::from(n_dropped as u64));
            fields.insert(
                "triggered".to_string(),
                serde_json::Value::from(trigger.is_some()),
            );
            mmwave_telemetry::event(
                mmwave_telemetry::Level::Trace,
                mmwave_telemetry::EventKind::Metric,
                "radar.capture",
                fields,
            );
        }

        CaptureOutput {
            clean: self.finalize(clean_frames),
            triggered: trig_frames.map(|f| self.finalize(f)),
        }
    }

    /// An all-zero DRAI of this pipeline's output shape, standing in for a
    /// dropped frame until repair.
    fn empty_drai(&self) -> Heatmap {
        Heatmap::zeros(
            self.config.processing.n_range_bins,
            self.config.processing.n_angle_bins,
            HeatmapKind::RangeAngle,
        )
    }

    /// Synthesizes the *base* IF frames of a performance (body + static
    /// environment + noise, no trigger), one per body frame. This is the
    /// expensive part of a capture; the Eq. (2) position optimizer calls it
    /// once and then probes many candidate trigger placements by cheap
    /// superposition. Fault injection is deliberately *not* applied here:
    /// the optimizer models the attacker's ideal-conditions planning pass,
    /// while [`capture`](Self::capture) models the deployed sensor.
    pub fn base_if_frames(
        &self,
        sequence: &MeshSequence,
        placement: Placement,
        environment: &Environment,
        seed: u64,
        body_scale: f64,
    ) -> Vec<mmwave_dsp::IfFrame> {
        let xf = placement.body_to_world();
        let radar_pos = self.config.radar.position();
        let env = self.environment_cache(environment);
        let body_frames: Vec<_> = sequence.iter().collect();
        mmwave_exec::par_map(&body_frames, |fi, body_frame| {
            let world_mesh = body_frame.mesh.transformed(&xf);
            let tris = visibility::radar_visible(&world_mesh, radar_pos, &self.config.occlusion);
            let mut base = self.synth.empty_frame();
            self.synth
                .add_triangles(&mut base, &tris, &self.config.body_material, body_scale);
            self.synth.add_static(&mut base, &env.chirp);
            let mut rng = ChaCha8Rng::seed_from_u64(
                seed ^ (fi as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            self.synth.add_noise(&mut base, self.config.noise_sigma, &mut rng);
            base
        })
    }

    /// Applies this capturer's heatmap post-processing (log compression +
    /// global normalization) to raw DRAI frames, matching what
    /// [`capture`](Self::capture) feeds the classifier.
    pub fn finalize_heatmaps(&self, frames: Vec<Heatmap>) -> HeatmapSeq {
        self.finalize(frames)
    }

    /// The trigger's own IF contribution at a world-space site pose.
    /// Exposed for the attack optimizer, which probes many candidate sites
    /// without re-simulating the body.
    pub fn trigger_if(
        &self,
        plan: &TriggerPlan,
        site_world: &SitePose,
    ) -> mmwave_dsp::IfFrame {
        let mesh = plan.attachment.mesh_at(site_world);
        let tris =
            visibility::visible_triangles(&mesh, self.config.radar.position());
        let mut frame = self.synth.empty_frame();
        self.synth.add_triangles(
            &mut frame,
            &tris,
            &plan.attachment.trigger.material,
            plan.attachment.trigger.amplitude_scale(),
        );
        frame
    }

    /// DRAI of a raw IF frame captured in `environment` (post-processing
    /// shared with full captures; used by the Eq. (2) optimizer).
    pub fn drai_of(&self, frame: &mmwave_dsp::IfFrame, environment: &Environment) -> Heatmap {
        let env = self.environment_cache(environment);
        self.processor.drai_with_background(frame, &env.background)
    }

    fn finalize(&self, mut frames: Vec<Heatmap>) -> HeatmapSeq {
        if self.config.log_compress {
            for f in &mut frames {
                f.log_compress();
            }
        }
        let mut seq = HeatmapSeq::new(frames);
        match self.config.normalize {
            Normalization::None => {}
            Normalization::GlobalMax => seq.normalize_global(),
            Normalization::Fixed(scale) => {
                for i in 0..seq.len() {
                    seq.frame_mut(i).normalize_by(scale);
                }
            }
        }
        seq
    }

    fn environment_cache(&self, env: &Environment) -> Arc<EnvCache> {
        let mut cache = self.env_cache.lock();
        if let Some(cached) = cache.get(env.name()) {
            return Arc::clone(cached);
        }
        let radar_pos = self.config.radar.position();
        let n_vrx = self.config.radar.n_virtual();
        let n_adc = self.config.radar.n_adc;
        let mut acc = vec![vec![Complex32::ZERO; n_adc]; n_vrx];
        for obj in env.objects() {
            let tris = visibility::visible_triangles(&obj.mesh, radar_pos);
            let chirp = self.synth.static_chirp(&tris, &obj.material);
            for (a, c) in acc.iter_mut().zip(&chirp) {
                for (x, y) in a.iter_mut().zip(c) {
                    *x += *y;
                }
            }
        }
        // Calibration: the DRAI background is the empty room's range
        // profile, exactly as an operator would record it once per site.
        let background = self.processor.background_profile(&acc);
        let arc = Arc::new(EnvCache { chirp: acc, background });
        cache.insert(env.name().to_string(), Arc::clone(&arc));
        arc
    }
}

/// Transforms a body-local site pose into world coordinates.
pub fn transform_site(site: &SitePose, xf: &mmwave_geom::RigidTransform) -> SitePose {
    SitePose {
        site: site.site,
        position: xf.apply(site.position),
        normal: xf.apply_vector(site.normal),
        velocity: xf.apply_vector(site.velocity),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trigger::Trigger;
    use mmwave_body::{Activity, ActivitySampler, Participant, SampleVariation};

    fn short_capture_setup() -> (Capturer, MeshSequence) {
        let capturer = Capturer::new(CaptureConfig::fast());
        // 12 frames at 10 fps covers the core of the gesture (start delay
        // 0.3 s, duration 2.2 s).
        let sampler = ActivitySampler::new(
            Participant::average(),
            12,
            capturer.config().frame_rate,
        );
        let seq = sampler.sample(Activity::Push, &SampleVariation::nominal());
        (capturer, seq)
    }

    #[test]
    fn capture_produces_normalized_nonzero_heatmaps() {
        let (capturer, seq) = short_capture_setup();
        let out = capturer.capture(&seq, Placement::new(1.2, 0.0), &Environment::hallway(), None, 3);
        assert_eq!(out.clean.len(), 12);
        assert!(out.triggered.is_none());
        let max: f32 = out
            .clean
            .frames()
            .iter()
            .filter_map(|f| f.peak().map(|p| p.2))
            .fold(0.0, f32::max);
        assert!(
            max > 0.3 && max < 1.5,
            "fixed-gain normalization should land near [0, 1]: max {max}"
        );
    }

    #[test]
    fn capture_is_deterministic_for_fixed_seed() {
        let (capturer, seq) = short_capture_setup();
        let p = Placement::new(1.6, 30.0);
        let a = capturer.capture(&seq, p, &Environment::hallway(), None, 11);
        let b = capturer.capture(&seq, p, &Environment::hallway(), None, 11);
        assert_eq!(a.clean, b.clean);
        let c = capturer.capture(&seq, p, &Environment::hallway(), None, 12);
        assert_ne!(a.clean, c.clean, "different seeds must differ");
    }

    #[test]
    fn user_appears_at_expected_range() {
        let (capturer, seq) = short_capture_setup();
        let d = 1.6;
        let out = capturer.capture(&seq, Placement::new(d, 0.0), &Environment::empty(), None, 5);
        // Mid-gesture frame: the dominant DRAI return is the moving hand,
        // which sits between the torso range and ~0.55 m in front of it.
        let hm = out.clean.frame(8);
        let (row, _, _) = hm.peak().unwrap();
        let torso_bin = capturer.config().range_bin_of_distance(d);
        let hand_bin = capturer.config().range_bin_of_distance(d - 0.55);
        assert!(
            (row as f64) >= hand_bin - 1.5 && (row as f64) <= torso_bin + 1.5,
            "user at {d} m: peak bin {row} outside [{hand_bin:.1}, {torso_bin:.1}]"
        );
    }

    #[test]
    fn triggered_output_differs_from_clean_but_subtly() {
        let (capturer, seq) = short_capture_setup();
        let plan = TriggerPlan {
            attachment: TriggerAttachment::new(Trigger::aluminum_2x2()),
            site: SiteId::RightForearm,
        };
        let out = capturer.capture(
            &seq,
            Placement::new(1.2, 0.0),
            &Environment::classroom(),
            Some(&plan),
            7,
        );
        let trig = out.triggered.expect("requested trigger");
        let dist = out.clean.mean_l2_distance(&trig);
        assert!(dist > 1e-4, "trigger must leave a footprint, got {dist}");
        // Stealthiness (Fig. 5): the per-frame change is small relative to
        // the heatmap's own scale.
        let scale: f32 = out.clean.frames().iter().map(Heatmap::total).sum::<f32>()
            / out.clean.len() as f32;
        assert!(
            dist < 0.5 * scale.sqrt(),
            "trigger footprint implausibly large: {dist} vs scale {scale}"
        );
    }

    #[test]
    fn arm_site_trigger_is_stronger_than_leg_site_under_mti() {
        // Under per-burst MTI (not the default Background mode), a trigger
        // survives only through the motion of the body part it rides, so a
        // wrist mount must out-signal a shin mount mid-gesture.
        let mut cfg = CaptureConfig::fast();
        cfg.processing.clutter_removal =
            mmwave_dsp::processing::ClutterRemoval::Mti;
        let capturer = Capturer::new(cfg);
        let sampler = ActivitySampler::new(
            Participant::average(),
            12,
            capturer.config().frame_rate,
        );
        let seq = sampler.sample(Activity::Push, &SampleVariation::nominal());
        let footprint = |site: SiteId| {
            let plan = TriggerPlan {
                attachment: TriggerAttachment::new(Trigger::aluminum_2x2()),
                site,
            };
            let out = capturer.capture(
                &seq,
                Placement::new(1.2, 0.0),
                &Environment::empty(),
                Some(&plan),
                7,
            );
            out.clean.mean_l2_distance(&out.triggered.unwrap())
        };
        let wrist = footprint(SiteId::RightWrist);
        let shin = footprint(SiteId::LeftShin);
        assert!(
            wrist > 1.5 * shin,
            "a wrist-mounted trigger should out-signal a shin one after MTI: {wrist} vs {shin}"
        );
    }

    #[test]
    fn environment_cache_is_reused() {
        let (capturer, seq) = short_capture_setup();
        let env = Environment::hallway();
        let _ = capturer.capture(&seq, Placement::new(1.2, 0.0), &env, None, 1);
        let cached = capturer.env_cache.lock().len();
        let _ = capturer.capture(&seq, Placement::new(1.6, 0.0), &env, None, 2);
        assert_eq!(capturer.env_cache.lock().len(), cached, "no duplicate cache entries");
    }

    #[test]
    fn body_scale_changes_intensity_before_normalization() {
        let (_, seq) = short_capture_setup();
        let mut cfg = CaptureConfig::fast();
        cfg.normalize = Normalization::None;
        cfg.log_compress = false;
        cfg.noise_sigma = 0.0;
        let capturer = Capturer::new(cfg);
        let p = Placement::new(1.2, 0.0);
        let full = capturer.capture_with_scale(&seq, p, &Environment::empty(), None, 1, 1.0);
        let half = capturer.capture_with_scale(&seq, p, &Environment::empty(), None, 1, 0.5);
        let sum = |o: &CaptureOutput| {
            o.clean.frames().iter().map(Heatmap::total).sum::<f32>()
        };
        let ratio = sum(&half) / sum(&full);
        assert!((ratio - 0.25).abs() < 0.02, "power scales with the square: {ratio}");
    }

    #[test]
    fn faulted_capture_yields_valid_deterministic_output() {
        let (_, seq) = short_capture_setup();
        let mut cfg = CaptureConfig::fast();
        cfg.faults = Some(crate::faults::FaultInjector::severity_profile(0.6, 77));
        let capturer = Capturer::new(cfg);
        let p = Placement::new(1.2, 0.0);
        let a = capturer.capture(&seq, p, &Environment::hallway(), None, 3);
        assert_eq!(a.clean.len(), 12);
        assert!(a
            .clean
            .frames()
            .iter()
            .all(|f| f.as_slice().iter().all(|v| v.is_finite())));
        let b = capturer.capture(&seq, p, &Environment::hallway(), None, 3);
        assert_eq!(a.clean, b.clean, "fault realization must be deterministic");

        let pristine = Capturer::new(CaptureConfig::fast())
            .capture(&seq, p, &Environment::hallway(), None, 3);
        assert_ne!(a.clean, pristine.clean, "faults must leave a footprint");
    }

    #[test]
    fn total_frame_dropout_still_yields_valid_sequence() {
        let (_, seq) = short_capture_setup();
        let mut cfg = CaptureConfig::fast();
        cfg.faults = Some(
            crate::faults::FaultInjector::new(0)
                .with(crate::faults::Fault::FrameDropout { probability: 1.0 }),
        );
        let capturer = Capturer::new(cfg);
        let out = capturer.capture(&seq, Placement::new(1.2, 0.0), &Environment::empty(), None, 1);
        assert_eq!(out.clean.len(), 12);
        assert!(out
            .clean
            .frames()
            .iter()
            .all(|f| f.as_slice().iter().all(|&v| v == 0.0)));
    }

    #[test]
    fn clean_and_triggered_twins_share_fault_realization() {
        let (_, seq) = short_capture_setup();
        let mut cfg = CaptureConfig::fast();
        // Phase noise only: no dropout, so the trigger footprint survives
        // and the twins stay comparable.
        cfg.faults = Some(
            crate::faults::FaultInjector::new(5)
                .with(crate::faults::Fault::PhaseNoise { sigma_radians: 0.2 }),
        );
        let capturer = Capturer::new(cfg);
        let plan = TriggerPlan {
            attachment: TriggerAttachment::new(Trigger::aluminum_2x2()),
            site: SiteId::RightForearm,
        };
        let out = capturer.capture(
            &seq,
            Placement::new(1.2, 0.0),
            &Environment::classroom(),
            Some(&plan),
            7,
        );
        let trig = out.triggered.expect("requested trigger");
        let dist = out.clean.mean_l2_distance(&trig);
        assert!(dist > 1e-4, "trigger footprint must survive faults, got {dist}");
    }

    #[test]
    fn transform_site_moves_all_components() {
        let xf = Placement::new(1.0, 30.0).body_to_world();
        let local = SitePose {
            site: SiteId::Chest,
            position: mmwave_geom::Vec3::new(0.0, 0.1, 1.2),
            normal: mmwave_geom::Vec3::Y,
            velocity: mmwave_geom::Vec3::new(0.0, 0.3, 0.0),
        };
        let world = transform_site(&local, &xf);
        assert!((world.normal.norm() - 1.0).abs() < 1e-9);
        assert!(world.position.distance(local.position) > 0.5);
        // Velocity rotates but keeps magnitude.
        assert!((world.velocity.norm() - local.velocity.norm()).abs() < 1e-12);
    }
}
