//! Property-based tests for the radar simulator.

use mmwave_dsp::processing::{ProcessingConfig, Processor};
use mmwave_geom::{primitives, visibility, Vec3};
use mmwave_radar::{IfSynthesizer, Material, Placement, RadarConfig};
use proptest::prelude::*;

fn processor(cfg: &RadarConfig) -> Processor {
    Processor::new(cfg.n_virtual(), cfg.n_chirps, cfg.n_adc, ProcessingConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn point_target_range_bin_tracks_distance(d in 0.7f64..2.2) {
        let cfg = RadarConfig::default();
        let synth = IfSynthesizer::new(cfg.clone());
        let mut mesh = primitives::plate(0.03, 0.03, 1, 1);
        mesh.set_uniform_velocity(Vec3::new(0.0, -0.3, 0.0));
        let mesh = mesh.translated(Vec3::new(0.0, d, 1.0));
        let tris = visibility::visible_triangles(&mesh, cfg.position());
        let mut frame = synth.empty_frame();
        synth.add_triangles(&mut frame, &tris, &Material::aluminum(), 1.0);
        let rdi = processor(&cfg).rdi(&frame);
        let (bin, _, _) = rdi.peak().expect("nonempty");
        let expected = cfg.range_bin_of_distance(d);
        prop_assert!((bin as f64 - expected).abs() <= 1.5, "d {d}: bin {bin} vs {expected:.1}");
    }

    #[test]
    fn if_energy_scales_with_squared_amplitude(scale in 0.1f64..1.0) {
        let cfg = RadarConfig::default();
        let synth = IfSynthesizer::new(cfg.clone());
        let mut mesh = primitives::plate(0.05, 0.05, 1, 1);
        mesh.set_uniform_velocity(Vec3::new(0.0, -0.2, 0.0));
        let mesh = mesh.translated(Vec3::new(0.0, 1.5, 1.0));
        let tris = visibility::visible_triangles(&mesh, cfg.position());
        let mut full = synth.empty_frame();
        let mut scaled = synth.empty_frame();
        synth.add_triangles(&mut full, &tris, &Material::skin(), 1.0);
        synth.add_triangles(&mut scaled, &tris, &Material::skin(), scale);
        let ratio = scaled.energy() / full.energy().max(1e-30);
        prop_assert!((ratio - scale * scale).abs() < 1e-3, "ratio {ratio} vs {}", scale * scale);
    }

    #[test]
    fn placement_round_trip(d in 0.8f64..2.0, a in -45.0f64..45.0) {
        let p = Placement::new(d, a);
        let feet = p.feet_position();
        prop_assert!((feet.norm() - d).abs() < 1e-9);
        let xf = p.body_to_world();
        // Inverse maps feet back to the origin.
        let back = xf.inverse().apply(feet);
        prop_assert!(back.norm() < 1e-9);
    }

    #[test]
    fn angular_gain_bounded_by_reflectivity(cos_theta in -1.0f64..1.0, r in 0.0f64..50.0, s in 0.5f64..4.0) {
        let m = Material::new(r, s);
        let g = m.angular_gain(cos_theta);
        prop_assert!(g >= 0.0);
        prop_assert!(g <= r + 1e-9);
    }
}
