//! The trigger-detection model.

use mmwave_dsp::HeatmapSeq;
use mmwave_har::{CnnLstm, PrototypeConfig};
use mmwave_nn::{softmax, softmax_cross_entropy, Adam};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A labeled sample for detector training/evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorSample {
    /// The DRAI sequence.
    pub heatmaps: HeatmapSeq,
    /// True when a trigger was worn during the capture.
    pub triggered: bool,
}

/// Detection quality metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionReport {
    /// Overall accuracy.
    pub accuracy: f64,
    /// True-positive rate (triggered samples flagged).
    pub tpr: f64,
    /// False-positive rate (clean samples flagged).
    pub fpr: f64,
    /// Area under the ROC curve (threshold-free quality).
    pub auc: f64,
}

/// A binary CNN-LSTM that decides whether a capture contains a reflector
/// trigger. Reuses the prototype architecture with a 2-class head —
/// the defender has the same modeling budget as the HAR system itself.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerDetector {
    model: CnnLstm,
}

impl TriggerDetector {
    /// Creates an untrained detector for the prototype's heatmap geometry.
    pub fn new(config: &PrototypeConfig, seed: u64) -> TriggerDetector {
        let det_cfg = PrototypeConfig { n_classes: 2, ..config.clone() };
        TriggerDetector { model: CnnLstm::new(&det_cfg, seed) }
    }

    /// Probability that `sample` contains a trigger.
    pub fn score(&self, sample: &HeatmapSeq) -> f64 {
        softmax(&self.model.logits(sample))[1] as f64
    }

    /// Hard decision at the 0.5 threshold.
    pub fn detect(&self, sample: &HeatmapSeq) -> bool {
        self.score(sample) > 0.5
    }

    /// Trains the detector.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty or `epochs == 0`.
    pub fn fit(&mut self, train: &[DetectorSample], epochs: usize, lr: f32, seed: u64) {
        assert!(!train.is_empty(), "cannot train on an empty set");
        assert!(epochs > 0, "need at least one epoch");
        let mut adam = Adam::new(lr);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..train.len()).collect();
        for _ in 0..epochs {
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for batch in order.chunks(8) {
                self.model.zero_grads();
                for &si in batch {
                    let s = &train[si];
                    let cache = self.model.forward(&s.heatmaps);
                    let (_, dlogits) =
                        softmax_cross_entropy(&cache.logits, s.triggered as usize);
                    let scale = 1.0 / batch.len() as f32;
                    let dlogits: Vec<f32> = dlogits.iter().map(|g| g * scale).collect();
                    self.model.backward(&cache, &dlogits);
                }
                mmwave_nn::param::clip_global_norm(&mut self.model.param_tensors(), 5.0);
                adam.step(&mut self.model.param_tensors());
            }
        }
    }

    /// Evaluates on labeled samples.
    ///
    /// # Panics
    ///
    /// Panics if `test` is empty.
    pub fn evaluate(&self, test: &[DetectorSample]) -> DetectionReport {
        assert!(!test.is_empty(), "cannot evaluate on an empty set");
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut pos = 0usize;
        let mut neg = 0usize;
        let mut scored: Vec<(f64, bool)> = Vec::with_capacity(test.len());
        for s in test {
            let score = self.score(&s.heatmaps);
            scored.push((score, s.triggered));
            let flag = score > 0.5;
            if s.triggered {
                pos += 1;
                if flag {
                    tp += 1;
                }
            } else {
                neg += 1;
                if flag {
                    fp += 1;
                }
            }
        }
        let correct = tp + (neg - fp);
        DetectionReport {
            accuracy: correct as f64 / test.len() as f64,
            tpr: if pos > 0 { tp as f64 / pos as f64 } else { 0.0 },
            fpr: if neg > 0 { fp as f64 / neg as f64 } else { 0.0 },
            auc: auc(&scored),
        }
    }
}

/// Mann-Whitney AUC: probability a random positive scores above a random
/// negative (ties count half). Returns 0.5 when either class is absent.
fn auc(scored: &[(f64, bool)]) -> f64 {
    let pos: Vec<f64> = scored.iter().filter(|(_, t)| *t).map(|(s, _)| *s).collect();
    let neg: Vec<f64> = scored.iter().filter(|(_, t)| !*t).map(|(s, _)| *s).collect();
    if pos.is_empty() || neg.is_empty() {
        return 0.5;
    }
    let mut wins = 0.0f64;
    for &p in &pos {
        for &n in &neg {
            if p > n {
                wins += 1.0;
            } else if p == n {
                wins += 0.5;
            }
        }
    }
    wins / (pos.len() * neg.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_dsp::heatmap::{Heatmap, HeatmapKind};
    use rand::Rng;

    fn cfg() -> PrototypeConfig {
        PrototypeConfig::smoke_test()
    }

    fn sample(cfg: &PrototypeConfig, triggered: bool, rng: &mut ChaCha8Rng) -> DetectorSample {
        // Synthetic: triggers add a faint, consistent blob at (3, 12).
        let frames = (0..cfg.n_frames)
            .map(|_| {
                let mut hm =
                    Heatmap::zeros(cfg.heatmap_rows, cfg.heatmap_cols, HeatmapKind::RangeAngle);
                for _ in 0..8 {
                    let r = rng.gen_range(0..cfg.heatmap_rows);
                    let c = rng.gen_range(0..cfg.heatmap_cols);
                    *hm.get_mut(r, c) += rng.gen_range(0.1..0.6);
                }
                if triggered {
                    *hm.get_mut(3, 12) += 0.7;
                }
                hm
            })
            .collect();
        DetectorSample { heatmaps: HeatmapSeq::new(frames), triggered }
    }

    #[test]
    fn detector_learns_a_synthetic_trigger() {
        let cfg = cfg();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let train: Vec<DetectorSample> =
            (0..40).map(|i| sample(&cfg, i % 2 == 0, &mut rng)).collect();
        let test: Vec<DetectorSample> =
            (0..20).map(|i| sample(&cfg, i % 2 == 0, &mut rng)).collect();
        let mut det = TriggerDetector::new(&cfg, 3);
        det.fit(&train, 12, 3e-3, 1);
        let report = det.evaluate(&test);
        assert!(report.accuracy > 0.8, "detector accuracy {:.2}", report.accuracy);
        assert!(report.auc > 0.9, "detector AUC {:.2}", report.auc);
        assert!(report.tpr > report.fpr);
    }

    #[test]
    fn untrained_detector_is_near_chance() {
        let cfg = cfg();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let test: Vec<DetectorSample> =
            (0..30).map(|i| sample(&cfg, i % 2 == 0, &mut rng)).collect();
        let det = TriggerDetector::new(&cfg, 5);
        let report = det.evaluate(&test);
        assert!(report.auc > 0.2 && report.auc < 0.8, "AUC {:.2}", report.auc);
    }

    #[test]
    fn auc_of_perfect_separation_is_one() {
        let scored = vec![(0.9, true), (0.8, true), (0.2, false), (0.1, false)];
        assert_eq!(auc(&scored), 1.0);
        let reversed = vec![(0.1, true), (0.9, false)];
        assert_eq!(auc(&reversed), 0.0);
        let degenerate = vec![(0.5, true)];
        assert_eq!(auc(&degenerate), 0.5);
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn empty_training_panics() {
        let cfg = cfg();
        TriggerDetector::new(&cfg, 0).fit(&[], 1, 1e-3, 0);
    }
}
