//! Defenses against physical backdoor attacks on mmWave HAR (Section VII).
//!
//! The paper proposes two countermeasures, both implemented here:
//!
//! * **Trigger detection** ([`detector`]) — a binary CNN-LSTM that flags
//!   samples containing a metal-reflector signature. Because attackers at
//!   different positions/orientations produce different reflection
//!   patterns, the detector is trained across the full placement grid.
//! * **Data augmentation** ([`augmentation`]) — include triggered samples
//!   with their *correct* labels in training, teaching the model that the
//!   reflector signature is not class-informative and suppressing the
//!   backdoor.
//!
//! As an extension beyond Section VII, [`activation_clustering`]
//! implements the classic poisoned-data detector of Chen et al.: the
//! target class's activations split into genuine and poisoned clusters.
//!
//! # Examples
//!
//! ```no_run
//! use mmwave_defense::detector::{DetectorSample, TriggerDetector};
//! use mmwave_har::PrototypeConfig;
//!
//! let cfg = PrototypeConfig::fast();
//! let mut det = TriggerDetector::new(&cfg, 1);
//! # let train: Vec<DetectorSample> = vec![];
//! # let test: Vec<DetectorSample> = vec![];
//! det.fit(&train, 10, 2e-3, 0);
//! let report = det.evaluate(&test);
//! println!("detection accuracy {:.1}%", 100.0 * report.accuracy);
//! ```

pub mod activation_clustering;
pub mod augmentation;
pub mod detector;

pub use activation_clustering::{analyze_classes, ClassAnalysis};
pub use augmentation::augment_with_correct_labels;
pub use detector::{DetectionReport, DetectorSample, TriggerDetector};
