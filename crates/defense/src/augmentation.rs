//! The data-augmentation defense: triggered samples with correct labels.

use mmwave_har::dataset::{Dataset, LabeledSample, PairedSample};

/// Augments a clean training set with triggered captures carrying their
/// *correct* activity labels (Section VII): the model learns that the
/// reflector signature does not predict the class, starving the backdoor.
///
/// `defender_pairs` are captures the defender produced themselves (e.g.
/// with generative augmentation in the paper; here, with the simulator)
/// of people wearing reflectors at various sites while performing
/// activities.
pub fn augment_with_correct_labels(
    clean_train: &Dataset,
    defender_pairs: &[PairedSample],
) -> Dataset {
    let mut out = clean_train.clone();
    out.samples.extend(defender_pairs.iter().map(|p| LabeledSample {
        heatmaps: p.triggered.clone(),
        label: p.label, // the truthful label — this is the whole defense
        placement: p.placement,
        participant: usize::MAX,
    }));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_body::Activity;
    use mmwave_dsp::heatmap::{Heatmap, HeatmapKind};
    use mmwave_dsp::HeatmapSeq;
    use mmwave_radar::Placement;

    fn seq(v: f32) -> HeatmapSeq {
        HeatmapSeq::new(vec![
            Heatmap::from_data(2, 2, HeatmapKind::RangeAngle, vec![v; 4]);
            4
        ])
    }

    #[test]
    fn augmentation_appends_truthfully_labeled_triggered_samples() {
        let mut clean = Dataset::new();
        clean.samples.push(LabeledSample {
            heatmaps: seq(0.1),
            label: Activity::Push,
            placement: Placement::new(1.2, 0.0),
            participant: 0,
        });
        let pairs = vec![PairedSample {
            clean: seq(0.2),
            triggered: seq(0.9),
            label: Activity::Push,
            placement: Placement::new(1.6, 30.0),
        }];
        let augmented = augment_with_correct_labels(&clean, &pairs);
        assert_eq!(augmented.len(), 2);
        let added = &augmented.samples[1];
        assert_eq!(added.label, Activity::Push, "label stays truthful");
        assert_eq!(added.heatmaps, seq(0.9), "the triggered capture is used");
    }

    #[test]
    fn empty_pairs_is_a_noop() {
        let clean = Dataset::new();
        assert_eq!(augment_with_correct_labels(&clean, &[]), clean);
    }
}
