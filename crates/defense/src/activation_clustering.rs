//! Activation clustering: detecting poisoned training data.
//!
//! Beyond the paper's two proposed defenses, the classic backdoor
//! countermeasure of Chen et al. (activation clustering) applies directly
//! to this attack: poisoned samples carry the trigger's activation
//! signature, so within the *target* class the penultimate activations
//! split into two clusters — genuine samples and relabeled poisoned ones.
//! A suspiciously small-but-coherent minority cluster flags the class as
//! poisoned.

use mmwave_har::dataset::Dataset;
use mmwave_har::CnnLstm;
use mmwave_body::Activity;
use serde::{Deserialize, Serialize};

/// Result of analyzing one class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassAnalysis {
    /// The class analyzed.
    pub class: Activity,
    /// Samples assigned to the minority cluster, as indices into the
    /// class's sample list (in dataset order).
    pub minority_indices: Vec<usize>,
    /// Minority cluster fraction (0.5 = even split).
    pub minority_fraction: f64,
    /// Normalized inter-cluster separation (centroid distance over mean
    /// intra-cluster spread). Higher = more suspicious.
    pub separation: f64,
}

impl ClassAnalysis {
    /// Heuristic verdict: a class looks poisoned when a clearly separated
    /// minority cluster holds between ~2% and ~45% of the samples.
    pub fn looks_poisoned(&self, min_separation: f64) -> bool {
        self.separation >= min_separation
            && self.minority_fraction >= 0.02
            && self.minority_fraction <= 0.45
            && self.minority_indices.len() >= 2
    }
}

/// Runs 2-means activation clustering on every class of a training set
/// using the model's per-sample feature vector (mean CNN frame feature —
/// cheap and trigger-sensitive).
pub fn analyze_classes(model: &CnnLstm, data: &Dataset) -> Vec<ClassAnalysis> {
    Activity::ALL
        .iter()
        .filter_map(|&class| {
            let feats: Vec<Vec<f32>> = data
                .samples
                .iter()
                .filter(|s| s.label == class)
                .map(|s| sample_embedding(model, &s.heatmaps))
                .collect();
            if feats.len() < 4 {
                return None;
            }
            let (assignment, centroids) = two_means(&feats, 25);
            let n1 = assignment.iter().filter(|&&a| a == 1).count();
            let minority_label = usize::from(n1 * 2 <= assignment.len());
            let minority_indices: Vec<usize> = assignment
                .iter()
                .enumerate()
                .filter(|(_, &a)| a == minority_label)
                .map(|(i, _)| i)
                .collect();
            let spread = mean_intra_spread(&feats, &assignment, &centroids);
            let centroid_dist = l2(&centroids[0], &centroids[1]);
            Some(ClassAnalysis {
                class,
                minority_fraction: minority_indices.len() as f64 / feats.len() as f64,
                minority_indices,
                separation: if spread > 1e-9 {
                    (centroid_dist / spread) as f64
                } else {
                    0.0
                },
            })
        })
        .collect()
}

/// Mean CNN frame feature of a sample — a cheap sample-level embedding.
fn sample_embedding(model: &CnnLstm, seq: &mmwave_dsp::HeatmapSeq) -> Vec<f32> {
    let dim = model.feature_dim();
    let mut acc = vec![0.0f32; dim];
    for frame in seq.frames() {
        for (a, f) in acc.iter_mut().zip(model.frame_features(frame)) {
            *a += f;
        }
    }
    for a in &mut acc {
        *a /= seq.len() as f32;
    }
    acc
}

/// Deterministic 2-means: initialized from the two mutually farthest
/// points among a small probe set.
fn two_means(points: &[Vec<f32>], iters: usize) -> (Vec<usize>, [Vec<f32>; 2]) {
    // Farthest pair among the first 16 points (deterministic seeding).
    let probe = points.len().min(16);
    let (mut bi, mut bj, mut best) = (0, 1.min(points.len() - 1), -1.0f32);
    for i in 0..probe {
        for j in (i + 1)..probe {
            let d = l2(&points[i], &points[j]);
            if d > best {
                best = d;
                bi = i;
                bj = j;
            }
        }
    }
    let mut centroids = [points[bi].clone(), points[bj].clone()];
    let mut assignment = vec![0usize; points.len()];
    for _ in 0..iters {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let a = usize::from(l2(p, &centroids[1]) < l2(p, &centroids[0]));
            if assignment[i] != a {
                assignment[i] = a;
                changed = true;
            }
        }
        for k in 0..2 {
            let members: Vec<&Vec<f32>> = points
                .iter()
                .zip(&assignment)
                .filter(|(_, &a)| a == k)
                .map(|(p, _)| p)
                .collect();
            if members.is_empty() {
                continue;
            }
            let dim = members[0].len();
            let mut c = vec![0.0f32; dim];
            for m in &members {
                for (ci, mi) in c.iter_mut().zip(m.iter()) {
                    *ci += mi;
                }
            }
            for ci in &mut c {
                *ci /= members.len() as f32;
            }
            centroids[k] = c;
        }
        if !changed {
            break;
        }
    }
    (assignment, centroids)
}

fn mean_intra_spread(points: &[Vec<f32>], assignment: &[usize], centroids: &[Vec<f32>; 2]) -> f32 {
    let total: f32 = points
        .iter()
        .zip(assignment)
        .map(|(p, &a)| l2(p, &centroids[a]))
        .sum();
    total / points.len() as f32
}

fn l2(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_dsp::heatmap::{Heatmap, HeatmapKind};
    use mmwave_dsp::HeatmapSeq;
    use mmwave_har::dataset::LabeledSample;
    use mmwave_har::PrototypeConfig;
    use mmwave_radar::Placement;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn sample(cfg: &PrototypeConfig, blob_row: usize, bright: bool, rng: &mut ChaCha8Rng, label: Activity) -> LabeledSample {
        let frames = (0..cfg.n_frames)
            .map(|_| {
                let mut hm =
                    Heatmap::zeros(cfg.heatmap_rows, cfg.heatmap_cols, HeatmapKind::RangeAngle);
                for c in 0..cfg.heatmap_cols {
                    *hm.get_mut(blob_row, c) = 0.5 + rng.gen_range(0.0..0.1);
                }
                if bright {
                    *hm.get_mut(3, 12) = 1.0; // trigger-like anomaly
                }
                hm
            })
            .collect();
        LabeledSample {
            heatmaps: HeatmapSeq::new(frames),
            label,
            placement: Placement::new(1.2, 0.0),
            participant: 0,
        }
    }

    #[test]
    fn poisoned_class_splits_into_two_clusters() {
        let cfg = PrototypeConfig::smoke_test();
        let model = CnnLstm::new(&cfg, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut data = Dataset::new();
        // Clean Pull class with a minority of trigger-marked samples
        // (simulating relabeled poisons).
        for i in 0..20 {
            data.samples.push(sample(&cfg, 8, i < 5, &mut rng, Activity::Pull));
        }
        // A clean class for contrast.
        for _ in 0..20 {
            data.samples.push(sample(&cfg, 4, false, &mut rng, Activity::Push));
        }
        let analyses = analyze_classes(&model, &data);
        let pull = analyses.iter().find(|a| a.class == Activity::Pull).unwrap();
        let push = analyses.iter().find(|a| a.class == Activity::Push).unwrap();
        assert!(
            pull.separation > 2.0 * push.separation,
            "poisoned class should separate more: {} vs {}",
            pull.separation,
            push.separation
        );
        assert!((pull.minority_fraction - 0.25).abs() < 0.11, "{}", pull.minority_fraction);
        // The minority cluster is exactly the poisoned indices (0..5).
        assert_eq!(pull.minority_indices, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn clean_class_is_not_flagged() {
        let cfg = PrototypeConfig::smoke_test();
        let model = CnnLstm::new(&cfg, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut data = Dataset::new();
        for _ in 0..24 {
            data.samples.push(sample(&cfg, 6, false, &mut rng, Activity::Clockwise));
        }
        let analyses = analyze_classes(&model, &data);
        let a = analyses.iter().find(|x| x.class == Activity::Clockwise).unwrap();
        assert!(!a.looks_poisoned(6.0), "clean class flagged: {a:?}");
    }

    #[test]
    fn tiny_classes_are_skipped() {
        let cfg = PrototypeConfig::smoke_test();
        let model = CnnLstm::new(&cfg, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut data = Dataset::new();
        for _ in 0..2 {
            data.samples.push(sample(&cfg, 6, false, &mut rng, Activity::Push));
        }
        assert!(analyze_classes(&model, &data).is_empty());
    }

    #[test]
    fn two_means_separates_obvious_blobs() {
        let points: Vec<Vec<f32>> = (0..10)
            .map(|i| if i < 6 { vec![0.0, 0.0] } else { vec![10.0, 10.0] })
            .collect();
        let (assignment, _) = two_means(&points, 10);
        assert!(assignment[..6].iter().all(|&a| a == assignment[0]));
        assert!(assignment[6..].iter().all(|&a| a != assignment[0]));
    }
}
