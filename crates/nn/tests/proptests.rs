//! Property-based tests for the neural-network substrate.

use mmwave_nn::{relu, relu_backward, softmax, softmax_cross_entropy, Dense, Lstm, MaxPool2};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-5.0f32..5.0, len)
}

proptest! {
    #[test]
    fn softmax_is_a_distribution(logits in arb_vec(6)) {
        let p = softmax(&logits);
        prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn cross_entropy_is_nonnegative(logits in arb_vec(6), target in 0usize..6) {
        let (loss, grad) = softmax_cross_entropy(&logits, target);
        prop_assert!(loss >= 0.0);
        prop_assert!(grad.iter().sum::<f32>().abs() < 1e-4, "grad sums to zero");
        prop_assert!(grad[target] <= 0.0, "target grad is non-positive");
    }

    #[test]
    fn relu_backward_zeroes_only_inactive(x in arb_vec(16), dy in arb_vec(16)) {
        let dx = relu_backward(&x, &dy);
        for i in 0..16 {
            if x[i] > 0.0 {
                prop_assert_eq!(dx[i], dy[i]);
            } else {
                prop_assert_eq!(dx[i], 0.0);
            }
        }
        prop_assert!(relu(&x).iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn dense_is_linear(x in arb_vec(8), y in arb_vec(8), a in -2.0f32..2.0) {
        let layer = Dense::new(8, 4, &mut ChaCha8Rng::seed_from_u64(1));
        let fx = layer.forward(&x);
        let fy = layer.forward(&y);
        let mix: Vec<f32> = x.iter().zip(&y).map(|(xi, yi)| a * xi + (1.0 - a) * yi).collect();
        let fmix = layer.forward(&mix);
        for k in 0..4 {
            let expected = a * fx[k] + (1.0 - a) * fy[k];
            prop_assert!((fmix[k] - expected).abs() < 1e-2 * expected.abs().max(1.0));
        }
    }

    #[test]
    fn maxpool_output_dominates_inputs(x in arb_vec(64)) {
        let (out, idx) = MaxPool2.forward(&x, 1, 8, 8);
        prop_assert_eq!(out.len(), 16);
        for (o, &i) in out.iter().zip(&idx) {
            prop_assert_eq!(*o, x[i as usize]);
        }
        // Pooled max equals global max.
        let global = x.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let pooled = out.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        prop_assert_eq!(global, pooled);
    }

    #[test]
    fn lstm_is_deterministic_and_bounded(seed in 0u64..50, steps in 1usize..12) {
        let lstm = Lstm::new(4, 6, &mut ChaCha8Rng::seed_from_u64(seed));
        let inputs: Vec<Vec<f32>> = (0..steps)
            .map(|t| (0..4).map(|i| ((t * 4 + i) as f32 * 0.3).sin()).collect())
            .collect();
        let a = lstm.forward(&inputs);
        let b = lstm.forward(&inputs);
        prop_assert_eq!(a.hidden_states(), b.hidden_states());
        for h in a.hidden_states() {
            prop_assert!(h.iter().all(|v| v.abs() <= 1.0));
        }
    }
}
