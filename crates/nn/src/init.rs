//! Weight initialization.

use rand::Rng;

/// Uniform Xavier/Glorot initialization: samples `n` weights from
/// `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
///
/// # Panics
///
/// Panics if either fan is zero.
pub fn xavier_uniform<R: Rng + ?Sized>(
    n: usize,
    fan_in: usize,
    fan_out: usize,
    rng: &mut R,
) -> Vec<f32> {
    assert!(fan_in > 0 && fan_out > 0, "fans must be nonzero");
    let a = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
    (0..n).map(|_| rng.gen_range(-a..a)).collect()
}

/// Kaiming/He uniform initialization for ReLU layers:
/// `U(-a, a)` with `a = sqrt(6 / fan_in)`.
///
/// # Panics
///
/// Panics if `fan_in` is zero.
pub fn kaiming_uniform<R: Rng + ?Sized>(n: usize, fan_in: usize, rng: &mut R) -> Vec<f32> {
    assert!(fan_in > 0, "fan_in must be nonzero");
    let a = (6.0 / fan_in as f64).sqrt() as f32;
    (0..n).map(|_| rng.gen_range(-a..a)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let w = xavier_uniform(1000, 64, 32, &mut rng);
        let a = (6.0f32 / 96.0).sqrt();
        assert!(w.iter().all(|&x| x.abs() <= a));
        // Not degenerate.
        let mean: f32 = w.iter().sum::<f32>() / w.len() as f32;
        assert!(mean.abs() < 0.05);
    }

    #[test]
    fn kaiming_scales_with_fan_in() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let small_fan = kaiming_uniform(1000, 4, &mut rng);
        let large_fan = kaiming_uniform(1000, 400, &mut rng);
        let spread = |w: &[f32]| w.iter().map(|x| x * x).sum::<f32>() / w.len() as f32;
        assert!(spread(&small_fan) > 10.0 * spread(&large_fan));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = xavier_uniform(8, 4, 4, &mut ChaCha8Rng::seed_from_u64(7));
        let b = xavier_uniform(8, 4, 4, &mut ChaCha8Rng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "fans must be nonzero")]
    fn zero_fan_panics() {
        xavier_uniform(1, 0, 1, &mut ChaCha8Rng::seed_from_u64(0));
    }
}
