//! Stochastic gradient descent with momentum.

use crate::param::ParamTensor;
use serde::{Deserialize, Serialize};

/// SGD with classical momentum and optional L2 weight decay — the baseline
/// optimizer against which [`crate::Adam`] is compared in ablations.
///
/// # Examples
///
/// ```
/// use mmwave_nn::{ParamTensor, sgd::Sgd};
/// let mut p = ParamTensor::from_data(vec![1.0]);
/// p.grad = vec![2.0];
/// let mut opt = Sgd::new(0.1, 0.9, 0.0);
/// opt.step(&mut [&mut p]);
/// assert!(p.data[0] < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient in `[0, 1)`.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `momentum` is outside `[0, 1)`.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Sgd {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        Sgd { lr, momentum, weight_decay, velocity: Vec::new() }
    }

    /// Applies one update. Tensor count and lengths must be stable across
    /// calls, like [`crate::Adam::step`].
    ///
    /// # Panics
    ///
    /// Panics if the tensor layout changes between calls.
    pub fn step(&mut self, tensors: &mut [&mut ParamTensor]) {
        if self.velocity.is_empty() {
            self.velocity = tensors.iter().map(|t| vec![0.0; t.len()]).collect();
        }
        assert_eq!(self.velocity.len(), tensors.len(), "tensor count changed");
        for (tensor, v) in tensors.iter_mut().zip(&mut self.velocity) {
            assert_eq!(tensor.len(), v.len(), "tensor length changed");
            for i in 0..tensor.len() {
                let g = tensor.grad[i] + self.weight_decay * tensor.data[i];
                v[i] = self.momentum * v[i] - self.lr * g;
                tensor.data[i] += v[i];
            }
        }
    }

    /// Resets momentum buffers.
    pub fn reset(&mut self) {
        self.velocity.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_a_quadratic() {
        let mut p = ParamTensor::from_data(vec![5.0]);
        let mut opt = Sgd::new(0.05, 0.9, 0.0);
        for _ in 0..300 {
            p.zero_grad();
            p.grad[0] = 2.0 * (p.data[0] + 1.0);
            opt.step(&mut [&mut p]);
        }
        assert!((p.data[0] + 1.0).abs() < 1e-3, "converged to {}", p.data[0]);
    }

    #[test]
    fn momentum_accelerates_along_consistent_gradients() {
        let run = |momentum: f32| {
            let mut p = ParamTensor::from_data(vec![0.0]);
            let mut opt = Sgd::new(0.01, momentum, 0.0);
            for _ in 0..10 {
                p.zero_grad();
                p.grad[0] = 1.0; // constant slope
                opt.step(&mut [&mut p]);
            }
            p.data[0]
        };
        assert!(run(0.9) < run(0.0), "momentum should travel farther");
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut p = ParamTensor::from_data(vec![1.0]);
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        p.zero_grad(); // zero task gradient: only decay acts
        opt.step(&mut [&mut p]);
        assert!(p.data[0] < 1.0 && p.data[0] > 0.0);
    }

    #[test]
    #[should_panic(expected = "momentum must be in [0, 1)")]
    fn bad_momentum_panics() {
        Sgd::new(0.1, 1.0, 0.0);
    }
}
