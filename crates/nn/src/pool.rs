//! 2x2 max pooling.

use serde::{Deserialize, Serialize};

/// Non-overlapping 2x2 max pooling over `C x H x W` tensors.
///
/// `forward` returns the pooled tensor together with the winning indices so
/// `backward` can route gradients to the argmax positions.
///
/// # Examples
///
/// ```
/// use mmwave_nn::MaxPool2;
/// let pool = MaxPool2;
/// let input = vec![1.0, 2.0, 3.0, 4.0]; // one 2x2 channel
/// let (out, idx) = pool.forward(&input, 1, 2, 2);
/// assert_eq!(out, vec![4.0]);
/// assert_eq!(idx, vec![3]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MaxPool2;

impl MaxPool2 {
    /// Forward pass. Returns `(pooled, argmax_indices)` where indices point
    /// into the input slice.
    ///
    /// # Panics
    ///
    /// Panics if `h` or `w` is odd, or the input length mismatches.
    pub fn forward(&self, input: &[f32], c: usize, h: usize, w: usize) -> (Vec<f32>, Vec<u32>) {
        assert!(h % 2 == 0 && w % 2 == 0, "pooling needs even spatial dims");
        assert_eq!(input.len(), c * h * w, "pool input size mismatch");
        let (oh, ow) = (h / 2, w / 2);
        let mut out = Vec::with_capacity(c * oh * ow);
        let mut idx = Vec::with_capacity(c * oh * ow);
        for ch in 0..c {
            let base = ch * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_i = 0u32;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let i = base + (oy * 2 + dy) * w + ox * 2 + dx;
                            if input[i] > best {
                                best = input[i];
                                best_i = i as u32;
                            }
                        }
                    }
                    out.push(best);
                    idx.push(best_i);
                }
            }
        }
        (out, idx)
    }

    /// Backward pass: scatters `dout` to the argmax positions.
    ///
    /// # Panics
    ///
    /// Panics if `dout.len() != indices.len()`.
    pub fn backward(&self, dout: &[f32], indices: &[u32], input_len: usize) -> Vec<f32> {
        assert_eq!(dout.len(), indices.len(), "pool grad/index length mismatch");
        let mut dinput = vec![0.0; input_len];
        for (&g, &i) in dout.iter().zip(indices) {
            dinput[i as usize] += g;
        }
        dinput
    }

    /// Output spatial dimensions.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (h / 2, w / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_maximum_per_window() {
        let pool = MaxPool2;
        #[rustfmt::skip]
        let input = vec![
            1.0, 5.0,  2.0, 0.0,
            3.0, 4.0,  8.0, 1.0,
            0.0, 0.0,  1.0, 1.0,
            9.0, 0.0,  1.0, 1.0,
        ];
        let (out, _) = pool.forward(&input, 1, 4, 4);
        assert_eq!(out, vec![5.0, 8.0, 9.0, 1.0]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let pool = MaxPool2;
        let input = vec![1.0, 5.0, 3.0, 4.0];
        let (_, idx) = pool.forward(&input, 1, 2, 2);
        let dinput = pool.backward(&[2.0], &idx, 4);
        assert_eq!(dinput, vec![0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn channels_are_pooled_independently() {
        let pool = MaxPool2;
        let input = vec![
            // Channel 0.
            1.0, 2.0, 3.0, 4.0, // 2x2
            // Channel 1.
            8.0, 7.0, 6.0, 5.0,
        ];
        let (out, _) = pool.forward(&input, 2, 2, 2);
        assert_eq!(out, vec![4.0, 8.0]);
    }

    #[test]
    fn gradient_check() {
        let pool = MaxPool2;
        let input: Vec<f32> = (0..16).map(|i| (i * 5 % 16) as f32).collect();
        let (out, idx) = pool.forward(&input, 1, 4, 4);
        let dout = vec![1.0; out.len()];
        let dinput = pool.backward(&dout, &idx, input.len());
        let eps = 1e-2;
        for i in 0..input.len() {
            let mut xp = input.clone();
            xp[i] += eps;
            let mut xm = input.clone();
            xm[i] -= eps;
            let f = |x: &[f32]| pool.forward(x, 1, 4, 4).0.iter().sum::<f32>();
            let fd = (f(&xp) - f(&xm)) / (2.0 * eps);
            assert!((fd - dinput[i]).abs() < 1e-3, "input {i}: {fd} vs {}", dinput[i]);
        }
    }

    #[test]
    #[should_panic(expected = "even spatial dims")]
    fn odd_dims_panic() {
        MaxPool2.forward(&[0.0; 9], 1, 3, 3);
    }
}
