//! Softmax and cross-entropy loss.

/// Numerically-stable softmax.
///
/// # Panics
///
/// Panics if `logits` is empty.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    assert!(!logits.is_empty(), "softmax of empty logits");
    let max = logits.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    let exps: Vec<f32> = logits.iter().map(|&z| (z - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Softmax cross-entropy against an integer target. Returns
/// `(loss, dlogits)` where `dlogits = softmax(logits) - onehot(target)`.
///
/// # Panics
///
/// Panics if `target >= logits.len()`.
pub fn softmax_cross_entropy(logits: &[f32], target: usize) -> (f32, Vec<f32>) {
    assert!(target < logits.len(), "target class out of range");
    let probs = softmax(logits);
    let loss = -(probs[target].max(1e-12)).ln();
    let mut grad = probs;
    grad[target] -= 1.0;
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_extreme_logits() {
        let p = softmax(&[1000.0, 0.0, -1000.0]);
        assert!((p[0] - 1.0).abs() < 1e-6);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cross_entropy_of_confident_correct_prediction_is_small() {
        let (loss, _) = softmax_cross_entropy(&[10.0, 0.0, 0.0], 0);
        assert!(loss < 0.01);
        let (loss_wrong, _) = softmax_cross_entropy(&[10.0, 0.0, 0.0], 1);
        assert!(loss_wrong > 5.0);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = [0.5f32, -1.0, 2.0, 0.0];
        let target = 2;
        let (_, grad) = softmax_cross_entropy(&logits, target);
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut lp = logits;
            lp[i] += eps;
            let mut lm = logits;
            lm[i] -= eps;
            let fd = (softmax_cross_entropy(&lp, target).0 - softmax_cross_entropy(&lm, target).0)
                / (2.0 * eps);
            assert!((fd - grad[i]).abs() < 1e-3, "logit {i}: {fd} vs {}", grad[i]);
        }
    }

    #[test]
    fn gradient_sums_to_zero() {
        let (_, grad) = softmax_cross_entropy(&[1.0, 2.0, -1.0], 0);
        assert!(grad.iter().sum::<f32>().abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_target_panics() {
        softmax_cross_entropy(&[1.0, 2.0], 5);
    }
}
