//! Softmax and cross-entropy loss.

use std::fmt;

/// Why a loss computation was rejected.
///
/// Divergent training (exploding weights, corrupt inputs) shows up here
/// first: a non-finite logit would silently poison the gradient, so the
/// fallible entry point ([`try_softmax_cross_entropy`]) refuses it and lets
/// the trainer roll back instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossError {
    /// The logit vector was empty.
    EmptyLogits,
    /// The target class index does not address a logit.
    TargetOutOfRange {
        /// Requested class.
        target: usize,
        /// Number of logits available.
        n_classes: usize,
    },
    /// A logit was NaN or infinite.
    NonFiniteLogit {
        /// Index of the first offending logit.
        index: usize,
    },
}

impl fmt::Display for LossError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LossError::EmptyLogits => write!(f, "softmax of empty logits"),
            LossError::TargetOutOfRange { target, n_classes } => {
                write!(f, "target class out of range: {target} >= {n_classes}")
            }
            LossError::NonFiniteLogit { index } => {
                write!(f, "non-finite logit at index {index}")
            }
        }
    }
}

impl std::error::Error for LossError {}

/// Numerically-stable softmax.
///
/// # Panics
///
/// Panics if `logits` is empty.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    assert!(!logits.is_empty(), "softmax of empty logits");
    let max = logits.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    let exps: Vec<f32> = logits.iter().map(|&z| (z - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Fallible softmax cross-entropy: like [`softmax_cross_entropy`] but
/// returns a typed error instead of panicking or propagating NaN.
///
/// # Errors
///
/// Returns [`LossError::EmptyLogits`] for an empty logit vector,
/// [`LossError::TargetOutOfRange`] for a bad target, and
/// [`LossError::NonFiniteLogit`] when any logit is NaN or infinite.
pub fn try_softmax_cross_entropy(
    logits: &[f32],
    target: usize,
) -> Result<(f32, Vec<f32>), LossError> {
    if logits.is_empty() {
        return Err(LossError::EmptyLogits);
    }
    if target >= logits.len() {
        return Err(LossError::TargetOutOfRange { target, n_classes: logits.len() });
    }
    if let Some(index) = logits.iter().position(|z| !z.is_finite()) {
        return Err(LossError::NonFiniteLogit { index });
    }
    let probs = softmax(logits);
    let loss = -(probs[target].max(1e-12)).ln();
    let mut grad = probs;
    grad[target] -= 1.0;
    Ok((loss, grad))
}

/// Softmax cross-entropy against an integer target. Returns
/// `(loss, dlogits)` where `dlogits = softmax(logits) - onehot(target)`.
///
/// # Panics
///
/// Panics if `logits` is empty, `target >= logits.len()`, or any logit is
/// non-finite. Use [`try_softmax_cross_entropy`] in loops that must
/// recover from divergence.
pub fn softmax_cross_entropy(logits: &[f32], target: usize) -> (f32, Vec<f32>) {
    match try_softmax_cross_entropy(logits, target) {
        Ok(out) => out,
        Err(LossError::TargetOutOfRange { .. }) => panic!("target class out of range"),
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_extreme_logits() {
        let p = softmax(&[1000.0, 0.0, -1000.0]);
        assert!((p[0] - 1.0).abs() < 1e-6);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cross_entropy_of_confident_correct_prediction_is_small() {
        let (loss, _) = softmax_cross_entropy(&[10.0, 0.0, 0.0], 0);
        assert!(loss < 0.01);
        let (loss_wrong, _) = softmax_cross_entropy(&[10.0, 0.0, 0.0], 1);
        assert!(loss_wrong > 5.0);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = [0.5f32, -1.0, 2.0, 0.0];
        let target = 2;
        let (_, grad) = softmax_cross_entropy(&logits, target);
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut lp = logits;
            lp[i] += eps;
            let mut lm = logits;
            lm[i] -= eps;
            let fd = (softmax_cross_entropy(&lp, target).0 - softmax_cross_entropy(&lm, target).0)
                / (2.0 * eps);
            assert!((fd - grad[i]).abs() < 1e-3, "logit {i}: {fd} vs {}", grad[i]);
        }
    }

    #[test]
    fn gradient_sums_to_zero() {
        let (_, grad) = softmax_cross_entropy(&[1.0, 2.0, -1.0], 0);
        assert!(grad.iter().sum::<f32>().abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_target_panics() {
        softmax_cross_entropy(&[1.0, 2.0], 5);
    }

    #[test]
    fn try_rejects_nan_logit() {
        let err = try_softmax_cross_entropy(&[1.0, f32::NAN, 0.0], 0).unwrap_err();
        assert_eq!(err, LossError::NonFiniteLogit { index: 1 });
    }

    #[test]
    fn try_rejects_infinite_logit() {
        let err = try_softmax_cross_entropy(&[f32::INFINITY, 0.0], 1).unwrap_err();
        assert_eq!(err, LossError::NonFiniteLogit { index: 0 });
        let err = try_softmax_cross_entropy(&[0.0, f32::NEG_INFINITY], 0).unwrap_err();
        assert_eq!(err, LossError::NonFiniteLogit { index: 1 });
    }

    #[test]
    fn try_rejects_empty_and_out_of_range() {
        assert_eq!(try_softmax_cross_entropy(&[], 0).unwrap_err(), LossError::EmptyLogits);
        assert_eq!(
            try_softmax_cross_entropy(&[1.0, 2.0], 5).unwrap_err(),
            LossError::TargetOutOfRange { target: 5, n_classes: 2 },
        );
    }

    #[test]
    fn try_matches_panicking_version_on_finite_input() {
        let logits = [0.5f32, -1.0, 2.0];
        let (loss_a, grad_a) = softmax_cross_entropy(&logits, 2);
        let (loss_b, grad_b) = try_softmax_cross_entropy(&logits, 2).unwrap();
        assert_eq!(loss_a, loss_b);
        assert_eq!(grad_a, grad_b);
    }

    #[test]
    #[should_panic(expected = "non-finite logit")]
    fn nan_logit_panics_in_strict_version() {
        softmax_cross_entropy(&[f32::NAN, 1.0], 0);
    }
}
