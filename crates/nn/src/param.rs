//! Parameter storage.

use serde::{Deserialize, Serialize};

/// A learnable parameter buffer paired with its gradient accumulator.
///
/// Layers own one `ParamTensor` per weight matrix / bias vector; training
/// loops zero the gradients, run `backward` passes that accumulate into
/// them, and hand the tensors to an optimizer.
///
/// # Examples
///
/// ```
/// use mmwave_nn::ParamTensor;
/// let mut p = ParamTensor::zeros(3);
/// p.grad[0] = 1.0;
/// p.zero_grad();
/// assert_eq!(p.grad, vec![0.0; 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamTensor {
    /// Parameter values.
    pub data: Vec<f32>,
    /// Gradient accumulator, same length as `data`.
    pub grad: Vec<f32>,
}

impl ParamTensor {
    /// All-zero parameters of length `n`.
    pub fn zeros(n: usize) -> ParamTensor {
        ParamTensor { data: vec![0.0; n], grad: vec![0.0; n] }
    }

    /// Parameters from existing values.
    pub fn from_data(data: Vec<f32>) -> ParamTensor {
        let n = data.len();
        ParamTensor { data, grad: vec![0.0; n] }
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Resets the gradient accumulator to zero.
    pub fn zero_grad(&mut self) {
        for g in &mut self.grad {
            *g = 0.0;
        }
    }

    /// L2 norm of the gradient (for clipping / diagnostics).
    pub fn grad_norm(&self) -> f32 {
        self.grad.iter().map(|g| g * g).sum::<f32>().sqrt()
    }

    /// Scales the gradient in place (gradient clipping).
    pub fn scale_grad(&mut self, s: f32) {
        for g in &mut self.grad {
            *g *= s;
        }
    }
}

/// Clips the global gradient norm of a set of tensors to `max_norm`.
/// Returns the pre-clip norm.
pub fn clip_global_norm(tensors: &mut [&mut ParamTensor], max_norm: f32) -> f32 {
    let total: f32 = tensors
        .iter()
        .map(|t| t.grad.iter().map(|g| g * g).sum::<f32>())
        .sum::<f32>()
        .sqrt();
    if total > max_norm && total > 0.0 {
        let s = max_norm / total;
        for t in tensors.iter_mut() {
            t.scale_grad(s);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_lengths() {
        let p = ParamTensor::zeros(5);
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
        assert!(ParamTensor::zeros(0).is_empty());
    }

    #[test]
    fn grad_norm_and_scaling() {
        let mut p = ParamTensor::from_data(vec![0.0; 2]);
        p.grad = vec![3.0, 4.0];
        assert!((p.grad_norm() - 5.0).abs() < 1e-6);
        p.scale_grad(0.5);
        assert_eq!(p.grad, vec![1.5, 2.0]);
    }

    #[test]
    fn global_clip_reduces_norm() {
        let mut a = ParamTensor::zeros(1);
        let mut b = ParamTensor::zeros(1);
        a.grad = vec![3.0];
        b.grad = vec![4.0];
        let pre = clip_global_norm(&mut [&mut a, &mut b], 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        let post = (a.grad[0].powi(2) + b.grad[0].powi(2)).sqrt();
        assert!((post - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_is_noop_below_threshold() {
        let mut a = ParamTensor::zeros(1);
        a.grad = vec![0.5];
        clip_global_norm(&mut [&mut a], 1.0);
        assert_eq!(a.grad[0], 0.5);
    }
}
